//! Extending the framework with your own accelerator — the paper's
//! framework explicitly supports this ("though we have already developed
//! some of instructions with dedicated hardware, any such hardware
//! component can be integrated into the design").
//!
//! This example implements a tiny custom coprocessor from scratch — a
//! saturating decimal "cents accumulator" with two functions — attaches it
//! to the cycle-accurate core, and runs a guest program against it.
//!
//! ```text
//! cargo run --release --example custom_accelerator
//! ```

use decimalarith::riscv_asm::{assemble, STACK_TOP};
use decimalarith::riscv_isa::Reg;
use decimalarith::riscv_sim::{Coprocessor, CpuError, Memory, RoccCommand, RoccResponse};
use decimalarith::rocket_sim::{RocketSim, TimingConfig};

/// funct7 values of the custom functions.
const FN_ADD_CENTS: u8 = 0x20;
const FN_READ_TOTAL: u8 = 0x21;

/// A saturating cents accumulator: `ADD_CENTS` adds a (binary) cent amount,
/// clamping at a configurable limit; `READ_TOTAL` returns the running total.
struct CentsAccumulator {
    total: u64,
    limit: u64,
    saturated_adds: u64,
}

impl CentsAccumulator {
    fn new(limit: u64) -> Self {
        CentsAccumulator {
            total: 0,
            limit,
            saturated_adds: 0,
        }
    }
}

impl Coprocessor for CentsAccumulator {
    fn execute(&mut self, cmd: &RoccCommand, _mem: &mut Memory) -> Result<RoccResponse, CpuError> {
        match cmd.instruction.funct7 {
            FN_ADD_CENTS => {
                let next = self.total.saturating_add(cmd.rs1_value);
                if next > self.limit {
                    self.total = self.limit;
                    self.saturated_adds += 1;
                } else {
                    self.total = next;
                }
                Ok(RoccResponse {
                    rd_value: Some(self.total),
                    busy_cycles: 1,
                    mem_accesses: 0,
                })
            }
            FN_READ_TOTAL => Ok(RoccResponse {
                rd_value: Some(self.total),
                busy_cycles: 1,
                mem_accesses: 0,
            }),
            other => Err(CpuError::UnknownRoccFunction { funct7: other }),
        }
    }

    fn reset(&mut self) {
        self.total = 0;
        self.saturated_adds = 0;
    }
}

fn main() {
    // A guest that streams twelve payments into the accumulator.
    let source = r#"
        start:
            la   s0, payments
            li   s1, 12
        loop:
            ld   a0, 0(s0)
            custom0 0x20, a1, a0, zero, 1, 1, 0   # ADD_CENTS
            addi s0, s0, 8
            addi s1, s1, -1
            bnez s1, loop
            custom0 0x21, a0, zero, zero, 1, 0, 0 # READ_TOTAL
            li   a7, 93
            ecall
        .data
        payments:
            .dword 1999, 2999, 499, 12999, 799, 4999
            .dword 1999, 2999, 499, 12999, 799, 4999
    "#;
    let program = assemble(source).expect("guest assembles");

    let mut sim = RocketSim::new(TimingConfig::default());
    sim.attach_coprocessor(Box::new(CentsAccumulator::new(50_000)));
    for seg in program.segments() {
        if !seg.data.is_empty() {
            sim.cpu.memory.load_bytes(seg.base, &seg.data).unwrap();
        }
    }
    sim.cpu.set_pc(program.entry);
    sim.cpu.set_reg(Reg::SP, STACK_TOP);
    let report = sim.run(10_000).expect("guest runs");

    let exact: u64 = [1999u64, 2999, 499, 12999, 799, 4999]
        .iter()
        .sum::<u64>()
        * 2;
    println!("custom accelerator run:");
    println!("  exact sum            : {exact} cents");
    println!("  accumulator returned : {} cents (limit 50000)", report.exit_code);
    println!(
        "  cycles {} (hw part {}), {} RoCC commands",
        report.stats.cycles, report.stats.hw_cycles, report.stats.rocc_instructions
    );
    assert_eq!(report.exit_code as u64, exact.min(50_000));
    assert_eq!(report.stats.rocc_instructions, 13);
    println!("  -> the same pipeline, caches and RoCC timing apply to user hardware.");
}
