//! Table VI bench: the Gem5-like atomic-CPU evaluation (simulated seconds
//! for software vs dummy), plus simulator throughput measurement.

use codesign::framework::run_atomic;
use codesign::kernels::KernelKind;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use decimal_bench::{atomic_config, guest_for, workload};

fn bench(c: &mut Criterion) {
    let vectors = workload(400, 2019);
    let config = atomic_config();
    let mut simulated = Vec::new();
    for kind in [KernelKind::Software, KernelKind::Method1Dummy] {
        let guest = guest_for(kind, &vectors);
        let eval = run_atomic(&guest, config);
        simulated.push((kind.name(), eval.simulated_seconds));
    }
    println!(
        "\nTable VI (sampled): software {:.6} s, dummy {:.6} s, speedup {:.2}x\n",
        simulated[0].1,
        simulated[1].1,
        simulated[0].1 / simulated[1].1
    );

    let mut group = c.benchmark_group("table6_simulation_throughput");
    group.sample_size(10);
    let small = workload(100, 5);
    for kind in [KernelKind::Software, KernelKind::Method1Dummy] {
        let guest = guest_for(kind, &small);
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(run_atomic(&guest, config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
