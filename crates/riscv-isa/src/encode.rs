//! Instruction encoding to 32-bit words.

use std::fmt;

use crate::instr::{Instr, Op32Op, OpImm32Op, OpImmOp, OpOp};
use crate::Reg;

/// Errors produced when an instruction's fields do not fit its encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// An immediate does not fit the field width or alignment.
    ImmediateOutOfRange {
        /// Which instruction field.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodeError::ImmediateOutOfRange { what, value } => {
                write!(f, "{what} immediate {value} out of range")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

fn check_i12(what: &'static str, v: i32) -> Result<u32, EncodeError> {
    if (-2048..=2047).contains(&v) {
        Ok((v as u32) & 0xFFF)
    } else {
        Err(EncodeError::ImmediateOutOfRange {
            what,
            value: v.into(),
        })
    }
}

fn r_type(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (funct7 << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

fn i_type(imm12: u32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (imm12 << 20) | (u32::from(rs1) << 15) | (funct3 << 12) | (u32::from(rd) << 7) | opcode
}

impl Instr {
    /// Encodes into the 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when an immediate does not fit its field
    /// (e.g. a branch offset beyond ±4 KiB or a misaligned jump target).
    pub fn encode(&self) -> Result<u32, EncodeError> {
        Ok(match *self {
            Instr::Lui { rd, imm20 } => {
                if !(-(1 << 19)..(1 << 19)).contains(&imm20) && imm20 as u32 > 0xFFFFF {
                    return Err(EncodeError::ImmediateOutOfRange {
                        what: "lui",
                        value: imm20.into(),
                    });
                }
                (((imm20 as u32) & 0xFFFFF) << 12) | (u32::from(rd) << 7) | 0b0110111
            }
            Instr::Auipc { rd, imm20 } => {
                (((imm20 as u32) & 0xFFFFF) << 12) | (u32::from(rd) << 7) | 0b0010111
            }
            Instr::Jal { rd, offset } => {
                if offset % 2 != 0 || !(-(1 << 20)..(1 << 20)).contains(&offset) {
                    return Err(EncodeError::ImmediateOutOfRange {
                        what: "jal",
                        value: offset.into(),
                    });
                }
                let imm = offset as u32;
                let bit20 = (imm >> 20) & 1;
                let bits10_1 = (imm >> 1) & 0x3FF;
                let bit11 = (imm >> 11) & 1;
                let bits19_12 = (imm >> 12) & 0xFF;
                (bit20 << 31)
                    | (bits10_1 << 21)
                    | (bit11 << 20)
                    | (bits19_12 << 12)
                    | (u32::from(rd) << 7)
                    | 0b1101111
            }
            Instr::Jalr { rd, rs1, offset } => {
                i_type(check_i12("jalr", offset)?, rs1, 0b000, rd, 0b1100111)
            }
            Instr::Branch { op, rs1, rs2, offset } => {
                if offset % 2 != 0 || !(-(1 << 12)..(1 << 12)).contains(&offset) {
                    return Err(EncodeError::ImmediateOutOfRange {
                        what: "branch",
                        value: offset.into(),
                    });
                }
                let imm = offset as u32;
                let bit12 = (imm >> 12) & 1;
                let bits10_5 = (imm >> 5) & 0x3F;
                let bits4_1 = (imm >> 1) & 0xF;
                let bit11 = (imm >> 11) & 1;
                (bit12 << 31)
                    | (bits10_5 << 25)
                    | (u32::from(rs2) << 20)
                    | (u32::from(rs1) << 15)
                    | (op.funct3() << 12)
                    | (bits4_1 << 8)
                    | (bit11 << 7)
                    | 0b1100011
            }
            Instr::Load { op, rd, rs1, offset } => {
                i_type(check_i12("load", offset)?, rs1, op.funct3(), rd, 0b0000011)
            }
            Instr::Store { op, rs2, rs1, offset } => {
                let imm = check_i12("store", offset)?;
                ((imm >> 5) << 25)
                    | (u32::from(rs2) << 20)
                    | (u32::from(rs1) << 15)
                    | (op.funct3() << 12)
                    | ((imm & 0x1F) << 7)
                    | 0b0100011
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let (funct3, imm12) = match op {
                    OpImmOp::Addi => (0b000, check_i12("addi", imm)?),
                    OpImmOp::Slti => (0b010, check_i12("slti", imm)?),
                    OpImmOp::Sltiu => (0b011, check_i12("sltiu", imm)?),
                    OpImmOp::Xori => (0b100, check_i12("xori", imm)?),
                    OpImmOp::Ori => (0b110, check_i12("ori", imm)?),
                    OpImmOp::Andi => (0b111, check_i12("andi", imm)?),
                    OpImmOp::Slli | OpImmOp::Srli | OpImmOp::Srai => {
                        if !(0..64).contains(&imm) {
                            return Err(EncodeError::ImmediateOutOfRange {
                                what: "shift amount",
                                value: imm.into(),
                            });
                        }
                        let high = if op == OpImmOp::Srai { 0x400 } else { 0 };
                        let funct3 = if op == OpImmOp::Slli { 0b001 } else { 0b101 };
                        (funct3, high | imm as u32)
                    }
                };
                i_type(imm12, rs1, funct3, rd, 0b0010011)
            }
            Instr::OpImm32 { op, rd, rs1, imm } => {
                let (funct3, imm12) = match op {
                    OpImm32Op::Addiw => (0b000, check_i12("addiw", imm)?),
                    OpImm32Op::Slliw | OpImm32Op::Srliw | OpImm32Op::Sraiw => {
                        if !(0..32).contains(&imm) {
                            return Err(EncodeError::ImmediateOutOfRange {
                                what: "shift amount",
                                value: imm.into(),
                            });
                        }
                        let high = if op == OpImm32Op::Sraiw { 0x400 } else { 0 };
                        let funct3 = if op == OpImm32Op::Slliw { 0b001 } else { 0b101 };
                        (funct3, high | imm as u32)
                    }
                };
                i_type(imm12, rs1, funct3, rd, 0b0011011)
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let (funct7, funct3) = match op {
                    OpOp::Add => (0b0000000, 0b000),
                    OpOp::Sub => (0b0100000, 0b000),
                    OpOp::Sll => (0b0000000, 0b001),
                    OpOp::Slt => (0b0000000, 0b010),
                    OpOp::Sltu => (0b0000000, 0b011),
                    OpOp::Xor => (0b0000000, 0b100),
                    OpOp::Srl => (0b0000000, 0b101),
                    OpOp::Sra => (0b0100000, 0b101),
                    OpOp::Or => (0b0000000, 0b110),
                    OpOp::And => (0b0000000, 0b111),
                    OpOp::Mul => (0b0000001, 0b000),
                    OpOp::Mulh => (0b0000001, 0b001),
                    OpOp::Mulhsu => (0b0000001, 0b010),
                    OpOp::Mulhu => (0b0000001, 0b011),
                    OpOp::Div => (0b0000001, 0b100),
                    OpOp::Divu => (0b0000001, 0b101),
                    OpOp::Rem => (0b0000001, 0b110),
                    OpOp::Remu => (0b0000001, 0b111),
                };
                r_type(funct7, rs2, rs1, funct3, rd, 0b0110011)
            }
            Instr::Op32 { op, rd, rs1, rs2 } => {
                let (funct7, funct3) = match op {
                    Op32Op::Addw => (0b0000000, 0b000),
                    Op32Op::Subw => (0b0100000, 0b000),
                    Op32Op::Sllw => (0b0000000, 0b001),
                    Op32Op::Srlw => (0b0000000, 0b101),
                    Op32Op::Sraw => (0b0100000, 0b101),
                    Op32Op::Mulw => (0b0000001, 0b000),
                    Op32Op::Divw => (0b0000001, 0b100),
                    Op32Op::Divuw => (0b0000001, 0b101),
                    Op32Op::Remw => (0b0000001, 0b110),
                    Op32Op::Remuw => (0b0000001, 0b111),
                };
                r_type(funct7, rs2, rs1, funct3, rd, 0b0111011)
            }
            Instr::Fence => 0x0FF0_000F,
            Instr::Ecall => 0x0000_0073,
            Instr::Ebreak => 0x0010_0073,
            Instr::Mret => 0x3020_0073,
            Instr::Csr { op, rd, csr, rs1 } => {
                i_type(u32::from(csr), rs1, op.funct3(false), rd, 0b1110011)
            }
            Instr::CsrImm { op, rd, csr, imm } => {
                if imm >= 32 {
                    return Err(EncodeError::ImmediateOutOfRange {
                        what: "csr immediate",
                        value: imm.into(),
                    });
                }
                (u32::from(csr) << 20)
                    | (u32::from(imm) << 15)
                    | (op.funct3(true) << 12)
                    | (u32::from(rd) << 7)
                    | 0b1110011
            }
            Instr::Custom(rocc) => rocc.encode(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchOp, CsrOp, LoadOp, StoreOp};

    #[test]
    fn golden_encodings() {
        // Cross-checked against the RISC-V spec / binutils output.
        let cases: Vec<(Instr, u32)> = vec![
            (Instr::NOP, 0x0000_0013),
            (
                Instr::OpImm {
                    op: OpImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    imm: 1,
                },
                0x0015_0513,
            ),
            (
                Instr::Op {
                    op: OpOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                0x00C5_8533,
            ),
            (
                Instr::Lui {
                    rd: Reg::T0,
                    imm20: 0x12345,
                },
                0x1234_52B7,
            ),
            (
                Instr::Jal {
                    rd: Reg::RA,
                    offset: 8,
                },
                0x0080_00EF,
            ),
            (
                Instr::Load {
                    op: LoadOp::Ld,
                    rd: Reg::A0,
                    rs1: Reg::SP,
                    offset: 16,
                },
                0x0101_3503,
            ),
            (
                Instr::Store {
                    op: StoreOp::Sd,
                    rs2: Reg::A0,
                    rs1: Reg::SP,
                    offset: 16,
                },
                0x00A1_3823,
            ),
            (
                Instr::Branch {
                    op: BranchOp::Bne,
                    rs1: Reg::A0,
                    rs2: Reg::ZERO,
                    offset: -4,
                },
                0xFE05_1EE3,
            ),
            (Instr::Ecall, 0x0000_0073),
            (Instr::Ebreak, 0x0010_0073),
            (Instr::Mret, 0x3020_0073),
            (
                // rdcycle a0 == csrrs a0, cycle, x0
                Instr::Csr {
                    op: CsrOp::Csrrs,
                    rd: Reg::A0,
                    csr: 0xC00,
                    rs1: Reg::ZERO,
                },
                0xC000_2573,
            ),
            (
                Instr::Op {
                    op: OpOp::Mul,
                    rd: Reg::A3,
                    rs1: Reg::A4,
                    rs2: Reg::A5,
                },
                0x02F7_06B3,
            ),
        ];
        for (instr, expected) in cases {
            assert_eq!(instr.encode().unwrap(), expected, "{instr}");
        }
    }

    #[test]
    fn branch_range_checked() {
        let b = Instr::Branch {
            op: BranchOp::Beq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 5000,
        };
        assert!(b.encode().is_err());
        let odd = Instr::Branch {
            op: BranchOp::Beq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 3,
        };
        assert!(odd.encode().is_err());
    }

    #[test]
    fn addi_range_checked() {
        let i = Instr::OpImm {
            op: OpImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 2048,
        };
        assert!(i.encode().is_err());
        let j = Instr::OpImm {
            op: OpImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: -2048,
        };
        assert!(j.encode().is_ok());
    }

    #[test]
    fn shift_amount_checked() {
        let i = Instr::OpImm {
            op: OpImmOp::Slli,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 64,
        };
        assert!(i.encode().is_err());
        let w = Instr::OpImm32 {
            op: OpImm32Op::Slliw,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 32,
        };
        assert!(w.encode().is_err());
    }
}
