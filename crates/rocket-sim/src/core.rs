//! The cycle-accurate core model.

use riscv_isa::instr::{Instr, OpOp};
use riscv_isa::Reg;
use riscv_sim::snapshot::{seal, unseal, ByteReader, ByteWriter};
use riscv_sim::{Coprocessor, CpuError, CpuSnapshot, Event, Marker, Memory, Retired, SnapshotError};

use crate::cache::{Cache, CacheConfig, CacheSnapshot, CacheStats};

/// Pipeline latency and penalty parameters, with Rocket-flavoured defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Extra cycles for an L1 miss (refill from the next level).
    pub miss_penalty: u32,
    /// Load-to-use latency on a hit (1 means no load-use stall possible).
    pub load_latency: u32,
    /// Multiplier result latency (pipelined).
    pub mul_latency: u32,
    /// Iterative divider occupancy (blocking).
    pub div_latency: u32,
    /// Flush penalty for a taken control-flow transfer.
    pub branch_penalty: u32,
    /// Cycles from accelerator `ready` to the core observing `resp` when the
    /// command has `xd` set (the RoCC interface "imposes a latency overhead
    /// during data exchange", paper §V).
    pub rocc_resp_latency: u32,
    /// RoCC busy-watchdog bound: a command whose accelerator busy time
    /// reaches this many cycles is aborted and reported as
    /// [`CpuError::RoccTimeout`] (trappable when `mtvec` is armed).
    pub rocc_watchdog: u32,
    /// Pipeline flush cost of delivering a trap to the `mtvec` handler.
    pub trap_penalty: u32,
    /// Seed for the caches' random-replacement generators.
    pub seed: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            icache: CacheConfig::rocket_l1(),
            dcache: CacheConfig::rocket_l1(),
            miss_penalty: 20,
            load_latency: 2,
            mul_latency: 4,
            div_latency: 34,
            branch_penalty: 2,
            rocc_resp_latency: 2,
            rocc_watchdog: riscv_sim::DEFAULT_ROCC_WATCHDOG,
            trap_penalty: 3,
            seed: 0x5EED_0001,
        }
    }
}

/// Aggregate counters for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Total modelled cycles.
    pub cycles: u64,
    /// Cycles attributed to ordinary (software) execution.
    pub sw_cycles: u64,
    /// Cycles attributed to the accelerator: RoCC dispatch, execution-unit
    /// busy time, and response synchronization (the "HW part" column of the
    /// paper's Table IV).
    pub hw_cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// RoCC instructions among them.
    pub rocc_instructions: u64,
    /// Cycles lost to operand (scoreboard) stalls.
    pub stall_cycles: u64,
    /// Instruction-cache counters.
    pub icache: CacheStats,
    /// Data-cache counters.
    pub dcache: CacheStats,
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The guest's exit code.
    pub exit_code: i64,
    /// Cycle/instruction counters.
    pub stats: RunStats,
    /// Markers the guest recorded (cycle values are modelled cycles).
    pub markers: Vec<Marker>,
    /// Captured console output.
    pub console: Vec<u8>,
}

/// The Rocket-like cycle-accurate core: an in-order single-issue pipeline
/// model wrapping the functional executor.
///
/// Timing is charged per retired instruction: one issue cycle, operand
/// stalls from a register scoreboard (load/mul/div latencies), I-cache and
/// D-cache miss penalties, a flush penalty for taken control transfers, and
/// the RoCC handshake + accelerator busy time for custom instructions.
/// RoCC-attributed cycles accumulate separately so Table IV's SW/HW split
/// falls directly out of a run.
pub struct RocketSim {
    /// The wrapped functional core (public for program loading and register
    /// setup).
    pub cpu: riscv_sim::Cpu,
    config: TimingConfig,
    icache: Cache,
    dcache: Cache,
    cycle: u64,
    ready_at: [u64; 32],
    stats: RunStats,
}

impl std::fmt::Debug for RocketSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RocketSim")
            .field("cycle", &self.cycle)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Default for RocketSim {
    fn default() -> Self {
        RocketSim::new(TimingConfig::default())
    }
}

impl RocketSim {
    /// Builds a core with the given timing parameters.
    #[must_use]
    pub fn new(config: TimingConfig) -> Self {
        let mut cpu = riscv_sim::Cpu::new();
        cpu.rocc_watchdog = config.rocc_watchdog;
        RocketSim {
            cpu,
            icache: Cache::new(config.icache, config.seed ^ 0x1CAC4E),
            dcache: Cache::new(config.dcache, config.seed ^ 0xDCAC4E),
            config,
            cycle: 0,
            ready_at: [0; 32],
            stats: RunStats::default(),
        }
    }

    /// Attaches an accelerator to the core's RoCC port.
    pub fn attach_coprocessor(&mut self, coprocessor: Box<dyn Coprocessor>) {
        self.cpu.attach_coprocessor(coprocessor);
    }

    /// Installs a retirement observer on the wrapped functional core, so
    /// this simulator emits the same canonical retirement stream as the
    /// others (see [`riscv_sim::RetirementRecord`]).
    pub fn set_retire_observer(
        &mut self,
        observer: impl FnMut(&riscv_sim::RetirementRecord) + 'static,
    ) {
        self.cpu.set_retire_observer(observer);
    }

    /// The modelled cycle count so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Guest memory, for program loading.
    pub fn memory(&mut self) -> &mut Memory {
        &mut self.cpu.memory
    }

    /// Executes one instruction, charging modelled time.
    ///
    /// # Errors
    ///
    /// Propagates functional-core faults ([`CpuError`]).
    pub fn step(&mut self) -> Result<Event, CpuError> {
        // Let guest rdcycle observe modelled time.
        self.cpu.cycle = self.cycle;
        let event = self.cpu.step()?;
        let retired = match event {
            Event::Exited { .. } => {
                // The exiting ecall costs one software cycle.
                self.cycle += 1;
                self.stats.cycles = self.cycle;
                self.stats.instret += 1;
                self.stats.sw_cycles += 1;
                return Ok(event);
            }
            Event::Trapped { .. } => {
                // Trap delivery flushes the pipeline but retires nothing.
                let cost = 1 + u64::from(self.config.trap_penalty);
                self.cycle += cost;
                self.stats.cycles = self.cycle;
                self.stats.sw_cycles += cost;
                return Ok(event);
            }
            Event::Retired(r) => r,
        };
        let cost = self.charge(&retired)?;
        self.cycle += cost.total;
        self.stats.cycles = self.cycle;
        self.stats.instret += 1;
        self.stats.sw_cycles += cost.total - cost.hw;
        self.stats.hw_cycles += cost.hw;
        Ok(event)
    }

    fn charge(&mut self, retired: &Retired) -> Result<Cost, CpuError> {
        let mut total: u64 = 1; // issue
        let mut hw: u64 = 0;

        // Operand stalls against the scoreboard.
        let mut stall = 0;
        for src in retired.instr.sources().into_iter().flatten() {
            if src != Reg::ZERO {
                stall = stall.max(self.ready_at[src.number() as usize].saturating_sub(self.cycle));
            }
        }
        total += stall;
        self.stats.stall_cycles += stall;

        // Fetch.
        if !self.icache.access(retired.pc) {
            total += u64::from(self.config.miss_penalty);
        }

        // Data access.
        if let Some(access) = retired.mem_access {
            let hit = self.dcache.access(access.addr);
            if !hit {
                total += u64::from(self.config.miss_penalty);
            }
            if !access.store {
                if let Some(rd) = retired.instr.dest() {
                    self.ready_at[rd.number() as usize] =
                        self.cycle + total + u64::from(self.config.load_latency) - 1;
                }
            }
        }

        match retired.instr {
            Instr::Op { op, rd, .. } if op.is_muldiv() => {
                if matches!(op, OpOp::Div | OpOp::Divu | OpOp::Rem | OpOp::Remu) {
                    // Iterative, blocking divider.
                    total += u64::from(self.config.div_latency) - 1;
                } else if rd != Reg::ZERO {
                    self.ready_at[rd.number() as usize] =
                        self.cycle + total + u64::from(self.config.mul_latency) - 1;
                }
            }
            Instr::Op32 { op, rd, .. } if op.is_muldiv() => {
                if op == riscv_isa::instr::Op32Op::Mulw {
                    if rd != Reg::ZERO {
                        self.ready_at[rd.number() as usize] =
                            self.cycle + total + u64::from(self.config.mul_latency) - 1;
                    }
                } else {
                    total += u64::from(self.config.div_latency) - 1;
                }
            }
            Instr::Custom(instr) => {
                self.stats.rocc_instructions += 1;
                let resp = retired
                    .rocc
                    .ok_or(CpuError::RoccProtocol("retired custom carried no response"))?;
                let mut rocc_cost = u64::from(resp.busy_cycles);
                rocc_cost += u64::from(resp.mem_accesses); // RoCC mem port occupancy
                if instr.xd {
                    rocc_cost += u64::from(self.config.rocc_resp_latency);
                }
                total += rocc_cost;
                // The whole instruction — dispatch cycle, operand stalls and
                // accelerator time — is the co-design's hardware share.
                hw = total;
            }
            _ => {}
        }

        // Taken control transfers flush the front end.
        if retired.redirected() {
            total += u64::from(self.config.branch_penalty);
        }

        Ok(Cost { total, hw })
    }

    /// Captures the complete machine state: the wrapped functional core
    /// (via [`riscv_sim::Cpu::snapshot`]), the modelled cycle count, the
    /// register scoreboard, the run counters, and both cache models
    /// including their replacement-generator state — so a restored run's
    /// timing (and therefore every guest-visible `rdcycle` value) matches
    /// the uninterrupted run bit-for-bit.
    #[must_use]
    pub fn snapshot(&self) -> RocketSnapshot {
        RocketSnapshot {
            cpu: self.cpu.snapshot(),
            cycle: self.cycle,
            ready_at: self.ready_at,
            stats: self.stats,
            icache: self.icache.snapshot(),
            dcache: self.dcache.snapshot(),
        }
    }

    /// Restores a snapshot taken from a core with the same
    /// [`TimingConfig`] (the config itself is not snapshotted; cache
    /// geometry is validated).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on cache-geometry or coprocessor
    /// mismatches; see [`riscv_sim::Cpu::restore`].
    pub fn restore(&mut self, snapshot: &RocketSnapshot) -> Result<(), SnapshotError> {
        self.icache
            .restore(&snapshot.icache)
            .map_err(SnapshotError::Malformed)?;
        self.dcache
            .restore(&snapshot.dcache)
            .map_err(SnapshotError::Malformed)?;
        self.cpu.restore(&snapshot.cpu)?;
        self.cycle = snapshot.cycle;
        self.ready_at = snapshot.ready_at;
        self.stats = snapshot.stats;
        Ok(())
    }

    /// Runs to exit or `max_instructions`.
    ///
    /// # Errors
    ///
    /// Propagates faults; see [`RocketSim::step`].
    pub fn run(&mut self, max_instructions: u64) -> Result<RunReport, CpuError> {
        for _ in 0..max_instructions {
            if let Event::Exited { code } = self.step()? {
                return Ok(RunReport {
                    exit_code: code,
                    stats: RunStats {
                        icache: self.icache.stats(),
                        dcache: self.dcache.stats(),
                        ..self.stats
                    },
                    markers: self.cpu.markers.clone(),
                    console: self.cpu.console.clone(),
                });
            }
        }
        Err(CpuError::InstructionLimit(max_instructions))
    }
}

struct Cost {
    total: u64,
    hw: u64,
}

/// Envelope kind tag of a Rocket-core snapshot.
pub const SNAPSHOT_KIND: u32 = 0x3154_4B52; // "RKT1"

/// Complete serializable state of a [`RocketSim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RocketSnapshot {
    /// The wrapped functional core's state.
    pub cpu: CpuSnapshot,
    /// The modelled cycle count.
    pub cycle: u64,
    /// The register scoreboard (cycle each register's value is ready).
    pub ready_at: [u64; 32],
    /// Run counters.
    pub stats: RunStats,
    /// Instruction-cache state.
    pub icache: CacheSnapshot,
    /// Data-cache state.
    pub dcache: CacheSnapshot,
}

fn encode_cache(w: &mut ByteWriter, cache: &CacheSnapshot) {
    w.u64(cache.tags.len() as u64);
    for tag in &cache.tags {
        match tag {
            None => w.bool(false),
            Some(tag) => {
                w.bool(true);
                w.u64(*tag);
            }
        }
    }
    w.u64(cache.rng);
    w.u64(cache.stats.hits);
    w.u64(cache.stats.misses);
}

fn decode_cache(r: &mut ByteReader<'_>) -> Result<CacheSnapshot, SnapshotError> {
    let entries = r.u64()?;
    let mut tags = Vec::new();
    for _ in 0..entries {
        tags.push(if r.bool()? { Some(r.u64()?) } else { None });
    }
    Ok(CacheSnapshot {
        tags,
        rng: r.u64()?,
        stats: CacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
        },
    })
}

impl RocketSnapshot {
    /// Serializes into the sealed envelope format shared with the other
    /// simulators (same magic/version/checksum scheme).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.blob(&self.cpu.to_bytes());
        w.u64(self.cycle);
        for ready in self.ready_at {
            w.u64(ready);
        }
        w.u64(self.stats.cycles);
        w.u64(self.stats.sw_cycles);
        w.u64(self.stats.hw_cycles);
        w.u64(self.stats.instret);
        w.u64(self.stats.rocc_instructions);
        w.u64(self.stats.stall_cycles);
        w.u64(self.stats.icache.hits);
        w.u64(self.stats.icache.misses);
        w.u64(self.stats.dcache.hits);
        w.u64(self.stats.dcache.misses);
        encode_cache(&mut w, &self.icache);
        encode_cache(&mut w, &self.dcache);
        seal(SNAPSHOT_KIND, &w.finish())
    }

    /// Deserializes from the sealed envelope format.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on version, kind, checksum, or structure
    /// mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let body = unseal(bytes, SNAPSHOT_KIND)?;
        let mut r = ByteReader::new(body);
        let cpu = CpuSnapshot::from_bytes(r.blob()?)?;
        let cycle = r.u64()?;
        let mut ready_at = [0u64; 32];
        for ready in &mut ready_at {
            *ready = r.u64()?;
        }
        let stats = RunStats {
            cycles: r.u64()?,
            sw_cycles: r.u64()?,
            hw_cycles: r.u64()?,
            instret: r.u64()?,
            rocc_instructions: r.u64()?,
            stall_cycles: r.u64()?,
            icache: CacheStats {
                hits: r.u64()?,
                misses: r.u64()?,
            },
            dcache: CacheStats {
                hits: r.u64()?,
                misses: r.u64()?,
            },
        };
        let icache = decode_cache(&mut r)?;
        let dcache = decode_cache(&mut r)?;
        r.expect_end()?;
        Ok(RocketSnapshot {
            cpu,
            cycle,
            ready_at,
            stats,
            icache,
            dcache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::instr::{OpImmOp};

    fn load(sim: &mut RocketSim, base: u64, prog: &[Instr]) {
        for (i, instr) in prog.iter().enumerate() {
            sim.cpu
                .memory
                .write_u32(base + 4 * i as u64, instr.encode().unwrap())
                .unwrap();
        }
        sim.cpu.set_pc(base);
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::OpImm {
            op: OpImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    fn exit_prog(mut body: Vec<Instr>) -> Vec<Instr> {
        body.push(addi(Reg::A7, Reg::ZERO, 93));
        body.push(Instr::Ecall);
        body
    }

    #[test]
    fn cycles_at_least_instructions() {
        let mut sim = RocketSim::default();
        let prog = exit_prog(vec![Instr::NOP; 50]);
        load(&mut sim, 0x1000, &prog);
        let report = sim.run(1000).unwrap();
        assert!(report.stats.cycles >= report.stats.instret);
        assert_eq!(report.stats.instret, 52);
        assert_eq!(report.stats.hw_cycles, 0);
    }

    #[test]
    fn load_use_stall_costs_a_cycle() {
        // Two programs: load then immediately use vs load, gap, use.
        let dependent = exit_prog(vec![
            Instr::Load {
                op: riscv_isa::instr::LoadOp::Ld,
                rd: Reg::T0,
                rs1: Reg::T1,
                offset: 0,
            },
            addi(Reg::T2, Reg::T0, 1),
        ]);
        let independent = exit_prog(vec![
            Instr::Load {
                op: riscv_isa::instr::LoadOp::Ld,
                rd: Reg::T0,
                rs1: Reg::T1,
                offset: 0,
            },
            addi(Reg::T3, Reg::T4, 1),
            addi(Reg::T2, Reg::T0, 1),
        ]);
        let run = |prog: &[Instr]| {
            let mut sim = RocketSim::default();
            sim.cpu.memory.write_u64(0x2000, 7).unwrap();
            sim.cpu.set_reg(Reg::T1, 0x2000);
            load(&mut sim, 0x1000, prog);
            sim.run(100).unwrap().stats
        };
        let dep = run(&dependent);
        let indep = run(&independent);
        assert!(dep.stall_cycles > 0, "dependent use must stall");
        // The independent version retires one more instruction but stalls less.
        assert_eq!(indep.stall_cycles, 0);
        assert_eq!(indep.cycles, dep.cycles + 1 - dep.stall_cycles);
    }

    #[test]
    fn div_costs_more_than_mul() {
        let muls = exit_prog(vec![
            Instr::Op {
                op: OpOp::Mul,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            };
            8
        ]);
        let divs = exit_prog(vec![
            Instr::Op {
                op: OpOp::Divu,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            };
            8
        ]);
        let run = |prog: &[Instr]| {
            let mut sim = RocketSim::default();
            sim.cpu.set_reg(Reg::T1, 100);
            sim.cpu.set_reg(Reg::T2, 7);
            load(&mut sim, 0x1000, prog);
            sim.run(100).unwrap().stats.cycles
        };
        assert!(run(&divs) > run(&muls) + 8 * 20);
    }

    #[test]
    fn taken_branch_pays_penalty() {
        // Loop 10 times vs straight-line equivalent instruction count.
        let loop_prog = exit_prog(vec![
            addi(Reg::T0, Reg::ZERO, 10),
            addi(Reg::T0, Reg::T0, -1),
            Instr::Branch {
                op: riscv_isa::instr::BranchOp::Bne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: -4,
            },
        ]);
        let mut sim = RocketSim::default();
        load(&mut sim, 0x1000, &loop_prog);
        let report = sim.run(1000).unwrap();
        // 9 taken branches * 2-cycle penalty at least.
        assert!(report.stats.cycles >= report.stats.instret + 9 * 2);
    }

    #[test]
    fn cold_caches_miss_then_warm() {
        let mut sim = RocketSim::default();
        let prog = exit_prog(vec![Instr::NOP; 4]);
        load(&mut sim, 0x1000, &prog);
        let report = sim.run(100).unwrap();
        // All instructions share one line: one compulsory I$ miss. The
        // exiting ecall's fetch is not modelled, so five accesses total.
        assert_eq!(report.stats.icache.misses, 1);
        assert_eq!(report.stats.icache.hits, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sim = RocketSim::new(TimingConfig {
                seed,
                ..TimingConfig::default()
            });
            let body: Vec<Instr> = (0..64)
                .map(|i| Instr::Load {
                    op: riscv_isa::instr::LoadOp::Ld,
                    rd: Reg::T0,
                    rs1: Reg::T1,
                    offset: (i % 16) * 8,
                })
                .collect();
            sim.cpu.set_reg(Reg::T1, 0x2000);
            for i in 0..32 {
                sim.cpu.memory.write_u64(0x2000 + i * 8, i).unwrap();
            }
            load(&mut sim, 0x1000, &exit_prog(body));
            sim.run(10_000).unwrap().stats.cycles
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn rdcycle_sees_modelled_time() {
        let mut sim = RocketSim::default();
        let prog = exit_prog(vec![
            Instr::Op {
                op: OpOp::Divu,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            },
            Instr::Csr {
                op: riscv_isa::instr::CsrOp::Csrrs,
                rd: Reg::A0,
                csr: riscv_isa::csr::CYCLE,
                rs1: Reg::ZERO,
            },
            addi(Reg::A0, Reg::A0, 0),
        ]);
        sim.cpu.set_reg(Reg::T1, 10);
        sim.cpu.set_reg(Reg::T2, 3);
        load(&mut sim, 0x1000, &prog);
        // Run and read a0 before exit: patch — run fully, use exit code.
        let prog2 = {
            let mut p = vec![
                Instr::Op {
                    op: OpOp::Divu,
                    rd: Reg::T0,
                    rs1: Reg::T1,
                    rs2: Reg::T2,
                },
                Instr::Csr {
                    op: riscv_isa::instr::CsrOp::Csrrs,
                    rd: Reg::A0,
                    csr: riscv_isa::csr::CYCLE,
                    rs1: Reg::ZERO,
                },
            ];
            p = exit_prog(p);
            p
        };
        let mut sim2 = RocketSim::default();
        sim2.cpu.set_reg(Reg::T1, 10);
        sim2.cpu.set_reg(Reg::T2, 3);
        load(&mut sim2, 0x1000, &prog2);
        let report = sim2.run(100).unwrap();
        // The divider took div_latency cycles, so rdcycle must exceed it.
        assert!(report.exit_code >= 34, "rdcycle saw {}", report.exit_code);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use riscv_isa::instr::{LoadOp, OpImmOp, OpOp};
    use riscv_isa::Instr;

    fn load(sim: &mut RocketSim, base: u64, prog: &[Instr]) {
        for (i, instr) in prog.iter().enumerate() {
            sim.cpu
                .memory
                .write_u32(base + 4 * i as u64, instr.encode().unwrap())
                .unwrap();
        }
        sim.cpu.set_pc(base);
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::OpImm { op: OpImmOp::Addi, rd, rs1, imm }
    }

    fn exit_prog(mut body: Vec<Instr>) -> Vec<Instr> {
        body.push(addi(Reg::A7, Reg::ZERO, 93));
        body.push(Instr::Ecall);
        body
    }

    #[test]
    fn pipelined_mul_latency_can_be_hidden() {
        // mul followed by 4 independent instructions costs the same as
        // 5 independent instructions; an immediate consumer stalls.
        let mul = Instr::Op { op: OpOp::Mul, rd: Reg::T0, rs1: Reg::T1, rs2: Reg::T2 };
        let hidden = exit_prog(vec![
            mul,
            addi(Reg::T3, Reg::T4, 1),
            addi(Reg::T5, Reg::T6, 1),
            addi(Reg::T3, Reg::T4, 1),
            addi(Reg::A0, Reg::T0, 0),
        ]);
        let exposed = exit_prog(vec![mul, addi(Reg::A0, Reg::T0, 0)]);
        let run = |prog: &[Instr]| {
            let mut sim = RocketSim::default();
            load(&mut sim, 0x1000, prog);
            sim.run(100).unwrap().stats
        };
        assert_eq!(run(&hidden).stall_cycles, 0, "distance 4 hides the latency");
        assert!(run(&exposed).stall_cycles >= 2, "immediate consumer stalls");
    }

    #[test]
    fn store_then_load_same_line_hits() {
        let mut sim = RocketSim::default();
        let prog = exit_prog(vec![
            Instr::Store { op: riscv_isa::instr::StoreOp::Sd, rs2: Reg::T1, rs1: Reg::T0, offset: 0 },
            Instr::Load { op: LoadOp::Ld, rd: Reg::T2, rs1: Reg::T0, offset: 8 },
        ]);
        sim.cpu.set_reg(Reg::T0, 0x2000);
        sim.cpu.memory.write_u64(0x2008, 5).unwrap();
        load(&mut sim, 0x1000, &prog);
        let report = sim.run(100).unwrap();
        assert_eq!(report.stats.dcache.misses, 1, "write-allocate fills the line");
        assert_eq!(report.stats.dcache.hits, 1, "the load hits the filled line");
    }

    #[test]
    fn sw_plus_hw_equals_total() {
        let mut sim = RocketSim::default();
        let prog = exit_prog(vec![Instr::NOP; 25]);
        load(&mut sim, 0x1000, &prog);
        let report = sim.run(100).unwrap();
        assert_eq!(
            report.stats.sw_cycles + report.stats.hw_cycles,
            report.stats.cycles
        );
    }

    #[test]
    fn instruction_budget_error_propagates() {
        let mut sim = RocketSim::default();
        load(&mut sim, 0x1000, &[Instr::Jal { rd: Reg::ZERO, offset: 0 }]);
        assert!(matches!(
            sim.run(5),
            Err(riscv_sim::CpuError::InstructionLimit(5))
        ));
    }
}
