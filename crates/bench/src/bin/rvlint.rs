//! `rvlint` CLI: statically lints every co-design kernel (and a sample of
//! generated test programs) for CFG/dataflow defects and RoCC-protocol
//! violations.
//!
//! ```text
//! rvlint [kernel-slug ...] [--seed S] [--testgen-samples N] [--repetitions N]
//!        [--verbose]
//! ```
//!
//! With no slugs, all kernels are linted. Each kernel is assembled into the
//! same driver+kernel guest the simulators run, then analyzed with
//! [`rvlint::analyze`]. On top of the default single-vector guest, the
//! `--testgen-samples` option (default 3) lints guests built from
//! generator-produced vector databases of increasing size — the same
//! programs `testgen` feeds the lockstep harness — so data-layout
//! variation (operand tables, result areas) is exercised too.
//!
//! Exits 1 if any gating (Error-severity) finding is reported, printing
//! every diagnostic with its pc, instruction, source location, and path
//! witness. Info notes never gate; pass `--verbose` to see them and the
//! per-guest statistics.

use codesign::kernels::KernelKind;
use testgen::TestConfig;

struct Options {
    kinds: Vec<KernelKind>,
    seed: u64,
    testgen_samples: usize,
    repetitions: u32,
    verbose: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        kinds: Vec::new(),
        seed: 2019,
        testgen_samples: 3,
        repetitions: 1,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |flag: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
        };
        match arg.as_str() {
            "--seed" => options.seed = number("--seed"),
            "--testgen-samples" => options.testgen_samples = number("--testgen-samples") as usize,
            "--repetitions" => options.repetitions = number("--repetitions") as u32,
            "--verbose" => options.verbose = true,
            slug => match KernelKind::from_slug(slug) {
                Some(kind) => options.kinds.push(kind),
                None => usage(&format!(
                    "unknown kernel {slug:?} (expected one of: {})",
                    KernelKind::ALL.map(KernelKind::slug).join(", ")
                )),
            },
        }
    }
    if options.kinds.is_empty() {
        options.kinds = KernelKind::ALL.to_vec();
    }
    options
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: rvlint [kernel-slug ...] [--seed S] [--testgen-samples N] \
         [--repetitions N] [--verbose]"
    );
    std::process::exit(2);
}

/// Lints one guest; returns the number of gating findings.
fn lint_guest(label: &str, kind: KernelKind, vectors: &[testgen::TestVector], options: &Options) -> usize {
    let guest = match codesign::framework::build_guest(kind, vectors, options.repetitions) {
        Ok(guest) => guest,
        Err(e) => {
            println!("  {label}: FAILED TO ASSEMBLE: {e}");
            return 1;
        }
    };
    let report = rvlint::analyze(&guest.program);
    let errors = report.errors().count();
    let notes = report.diagnostics.len() - errors;
    if errors > 0 {
        println!("  {label}: {errors} error(s), {notes} note(s)");
        for diagnostic in report.errors() {
            println!("    {diagnostic}");
        }
    } else if options.verbose {
        println!(
            "  {label}: clean ({} instructions, {} blocks, {} functions, {} accel commands, \
             {notes} note(s))",
            report.stats.instructions,
            report.stats.basic_blocks,
            report.stats.functions,
            report.stats.accel_commands
        );
    } else {
        println!("  {label}: clean ({notes} note(s))");
    }
    if options.verbose {
        for diagnostic in &report.diagnostics {
            if diagnostic.severity != rvlint::Severity::Error {
                println!("    {diagnostic}");
            }
        }
    }
    errors
}

fn main() {
    let options = parse_args();
    // Generator-produced databases of increasing size: the single-vector
    // guest plus progressively larger operand/result layouts.
    let sizes: Vec<usize> = std::iter::once(1)
        .chain((0..options.testgen_samples).map(|k| 5 * 10usize.pow(k.min(3) as u32)))
        .collect();
    let mut errors = 0usize;
    println!(
        "rvlint: {} kernel(s) × {} generated layouts, seed {}",
        options.kinds.len(),
        sizes.len(),
        options.seed
    );
    for &kind in &options.kinds {
        println!("— {} ({})", kind.name(), kind.slug());
        for (sample, &count) in sizes.iter().enumerate() {
            let vectors = testgen::generate(&TestConfig {
                count,
                seed: options.seed + sample as u64,
                ..TestConfig::default()
            });
            let label = format!("{} vectors (seed {})", count, options.seed + sample as u64);
            errors += lint_guest(&label, kind, &vectors, &options);
        }
    }
    if errors > 0 {
        eprintln!("rvlint: {errors} gating finding(s)");
        std::process::exit(1);
    }
    println!("rvlint: all guests clean");
}
