//! RISC-V guest kernels for every evaluated configuration.
//!
//! Each kernel is a function `kernel` with the calling convention the test
//! driver uses: decimal64 interchange bits of the operands in `a0`/`a1`,
//! result bits returned in `a0`. The kernels are emitted as assembly text
//! and built with the in-tree assembler — real RV64IM machine code, the same
//! role the GCC cross-compiler plays in the paper's framework.
//!
//! Configurations:
//!
//! * [`KernelKind::Software`] — the decNumber-style software baseline:
//!   DPD→unit decode (base-1000 units, one per declet), schoolbook
//!   unit-array multiplication in memory, decimal rounding by division,
//!   binary→DPD encode. No custom instructions.
//! * [`KernelKind::SoftwareBid`] — a second software baseline in the style
//!   of Intel's BID library: binary coefficients, one `mul`/`mulhu`
//!   product. Faster than decNumber-style; used as an ablation point.
//! * [`KernelKind::Method1`] — the paper's Method-1: DPD→BCD decode, the
//!   multiplicand-multiples table built with `DEC_ADD`/`DEC_ADC`, Horner
//!   accumulation of partial products, BCD rounding, BCD→DPD encode. "No
//!   binary conversion is required."
//! * [`KernelKind::Method1Dummy`] — Method-1 with every accelerator call
//!   replaced by a call to a dummy function with a fixed return (the prior
//!   art's estimation methodology; results are wrong by design).
//! * [`KernelKind::Method1Ft`] — fault-tolerant Method-1: the hardware
//!   phase is wrapped in a detection net (in-band `STAT`, the watchdog
//!   trap flag, mod-9 residues) and degrades gracefully to a digit-serial
//!   software recompute when the accelerator misbehaves.
//! * [`KernelKind::Method2`]/[`KernelKind::Method3`]/[`KernelKind::Method4`] — the deeper-offload
//!   design points (multiples table inside the accelerator; digit
//!   multiply-accumulate; full hardware multiply).

mod common;
mod method1;
mod method1_ft;
mod methods234;
mod softmul;
mod tables;

pub use tables::data_tables;

/// Which kernel to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// decNumber-style pure-software multiplication (unit arrays).
    Software,
    /// Binary-encoding-style (Intel BID-like) software multiplication — a
    /// second software baseline used for ablation.
    SoftwareBid,
    /// Method-1 with real RoCC instructions.
    Method1,
    /// Method-1 with dummy functions instead of hardware.
    Method1Dummy,
    /// Fault-tolerant Method-1: detection net plus software fallback.
    Method1Ft,
    /// Method-2: multiples table kept in the accelerator register file.
    Method2,
    /// Method-3: digit multiply-accumulate in hardware.
    Method3,
    /// Method-4: full coefficient multiplication in hardware.
    Method4,
}

impl KernelKind {
    /// All kernels, software baseline first.
    pub const ALL: [KernelKind; 8] = [
        KernelKind::Software,
        KernelKind::SoftwareBid,
        KernelKind::Method1,
        KernelKind::Method1Dummy,
        KernelKind::Method1Ft,
        KernelKind::Method2,
        KernelKind::Method3,
        KernelKind::Method4,
    ];

    /// The kernels the fault-injection campaign exercises: plain Method-1
    /// (demonstrating silent corruption) and its fault-tolerant variant
    /// (demonstrating zero silent corruption). This is the single registry
    /// the lockstep CLI and tests consume — don't re-enumerate the pair.
    pub const FAULT_CAMPAIGN: [KernelKind; 2] = [KernelKind::Method1, KernelKind::Method1Ft];

    /// Stable machine-readable identifier, used by CLI arguments
    /// (`lockstep`, `rvlint`) and machine-readable reports.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            KernelKind::Software => "software",
            KernelKind::SoftwareBid => "software_bid",
            KernelKind::Method1 => "method1",
            KernelKind::Method1Dummy => "method1_dummy",
            KernelKind::Method1Ft => "method1_ft",
            KernelKind::Method2 => "method2",
            KernelKind::Method3 => "method3",
            KernelKind::Method4 => "method4",
        }
    }

    /// Looks a kernel up by its [`KernelKind::slug`].
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<KernelKind> {
        KernelKind::ALL.into_iter().find(|k| k.slug() == slug)
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Software => "Software (decNumber-style)",
            KernelKind::SoftwareBid => "Software (BID-style)",
            KernelKind::Method1 => "Method-1",
            KernelKind::Method1Dummy => "Method-1 (dummy functions)",
            KernelKind::Method1Ft => "Method-1 (fault-tolerant)",
            KernelKind::Method2 => "Method-2",
            KernelKind::Method3 => "Method-3",
            KernelKind::Method4 => "Method-4",
        }
    }

    /// True if this kernel issues real RoCC instructions (needs the
    /// accelerator attached).
    #[must_use]
    pub fn uses_accelerator(self) -> bool {
        !matches!(
            self,
            KernelKind::Software | KernelKind::SoftwareBid | KernelKind::Method1Dummy
        )
    }

    /// True if results are expected to be wrong (dummy estimation runs).
    #[must_use]
    pub fn results_are_dummy(self) -> bool {
        self == KernelKind::Method1Dummy
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Emits the complete kernel source for `kind`: the `kernel` entry, its
/// helper subroutines, and the `.data` tables and scratch space it needs.
/// Concatenate with a driver (see [`testgen::driver_source`]) and assemble.
#[must_use]
pub fn kernel_source(kind: KernelKind) -> String {
    let mut out = String::from("    .text\n");
    match kind {
        KernelKind::Software => {
            out += &softmul::kernel_decnumber();
            out += &common::subroutines_binary();
        }
        KernelKind::SoftwareBid => {
            out += &softmul::kernel_bid();
            out += &common::subroutines_binary();
        }
        KernelKind::Method1 | KernelKind::Method1Dummy => {
            let dummy = kind == KernelKind::Method1Dummy;
            out += &method1::kernel(dummy);
            out += &common::subroutines_bcd(common::AddStyle::from_dummy(dummy));
            if dummy {
                out += common::DUMMY_FUNCTIONS;
            }
        }
        KernelKind::Method1Ft => {
            // The rounding epilogue also uses the software adder, so a
            // fault latched after the detection net cannot corrupt the
            // rounding increment.
            out += &method1_ft::kernel_ft();
            out += &common::subroutines_bcd(common::AddStyle::Soft);
            out += common::SOFT_BCD_ADD;
        }
        KernelKind::Method2 => {
            out += &methods234::kernel_method2();
            out += &common::subroutines_bcd(common::AddStyle::Hw);
        }
        KernelKind::Method3 => {
            out += &methods234::kernel_method3();
            out += &common::subroutines_bcd(common::AddStyle::Hw);
        }
        KernelKind::Method4 => {
            out += &methods234::kernel_method4();
            out += &common::subroutines_bcd(common::AddStyle::Hw);
        }
    }
    out += &tables::data_tables(kind);
    out
}

#[cfg(test)]
mod kernel_tests;
