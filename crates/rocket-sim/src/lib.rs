//! Cycle-accurate Rocket-like core model.
//!
//! This crate plays the role of the paper's Rocket-chip emulator: it wraps
//! the functional executor from [`riscv_sim`] with an in-order single-issue
//! pipeline timing model — register scoreboard, multi-cycle multiply/divide,
//! L1 instruction/data caches with seeded random replacement, taken-branch
//! flush penalty, and RoCC dispatch/response timing — and splits every run's
//! cycles into a software part and a hardware (accelerator) part, which is
//! exactly the decomposition reported in the paper's Table IV.
//!
//! # Example
//!
//! ```
//! use rocket_sim::{RocketSim, TimingConfig};
//! use riscv_isa::{Instr, Reg};
//! use riscv_isa::instr::OpImmOp;
//!
//! # fn main() -> Result<(), riscv_sim::CpuError> {
//! let mut sim = RocketSim::new(TimingConfig::default());
//! let prog = [
//!     Instr::OpImm { op: OpImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 0 },
//!     Instr::OpImm { op: OpImmOp::Addi, rd: Reg::A7, rs1: Reg::ZERO, imm: 93 },
//!     Instr::Ecall,
//! ];
//! for (i, instr) in prog.iter().enumerate() {
//!     sim.cpu.memory.write_u32(0x1000 + 4 * i as u64, instr.encode().unwrap())?;
//! }
//! sim.cpu.set_pc(0x1000);
//! let report = sim.run(100)?;
//! assert!(report.stats.cycles >= report.stats.instret);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod core;

pub use crate::core::{RocketSim, RocketSnapshot, RunReport, RunStats, TimingConfig};
pub use cache::{Cache, CacheConfig, CacheSnapshot, CacheStats};
