//! Table IV bench: regenerates the cycle-accurate SW/HW split for the
//! evaluated configurations, and benchmarks the simulator's wall-clock
//! throughput while doing so.
//!
//! The cycle numbers themselves are deterministic (they come from the
//! modelled core, not from host timing); they are printed once at startup
//! so a `cargo bench` run leaves the Table IV data in its log.

use codesign::kernels::KernelKind;
use codesign::report;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use decimal_bench::{evaluate_cycles, rocket_timing, workload};

const BENCH_SAMPLES: usize = 400;

fn print_table4_once() {
    let vectors = workload(BENCH_SAMPLES, 2019);
    let timing = rocket_timing(2019);
    let mut rows = Vec::new();
    let mut baseline = None;
    for kind in [
        KernelKind::Method1,
        KernelKind::Software,
        KernelKind::Method1Dummy,
        KernelKind::SoftwareBid,
        KernelKind::Method2,
        KernelKind::Method3,
        KernelKind::Method4,
    ] {
        let eval = evaluate_cycles(kind, &vectors, timing);
        let row = report::Table4Row::from_eval(kind, &eval);
        if kind == KernelKind::Software {
            baseline = Some(row.clone());
        }
        rows.push(row);
    }
    println!(
        "\n{}\n(sampled at {BENCH_SAMPLES} inputs; run the `tables` binary for the full 8,000)\n",
        report::table4(&rows, &baseline.expect("software row"))
    );
}

fn bench(c: &mut Criterion) {
    print_table4_once();
    let vectors = workload(100, 7);
    let timing = rocket_timing(7);
    let mut group = c.benchmark_group("table4_simulation_throughput");
    group.sample_size(10);
    for kind in [KernelKind::Software, KernelKind::Method1] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(evaluate_cycles(kind, &vectors, timing)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
