//! The lockstep comparator: steps two simulators through the same program,
//! compares their canonical retirement streams, and reports the first
//! divergence with full context.

use std::collections::VecDeque;

use riscv_isa::instr::Instr;
use riscv_isa::{csr, Reg};
use riscv_sim::{Cpu, CpuError, Event, RetirementRecord};

/// Default number of pre-divergence retirements kept as context.
pub const DEFAULT_CONTEXT: usize = 8;

/// Anything that can be stepped in lockstep: the functional core itself, or
/// a timing model wrapping one. The wrapped [`Cpu`] gives the comparator
/// access to the architectural state after each step.
pub trait LockstepSim {
    /// Short name used in divergence reports (e.g. `"rocket"`).
    fn label(&self) -> &'static str;

    /// The wrapped functional core.
    fn cpu(&self) -> &Cpu;

    /// The wrapped functional core, mutably (for program loading).
    fn cpu_mut(&mut self) -> &mut Cpu;

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`CpuError`].
    fn step_sim(&mut self) -> Result<Event, CpuError>;
}

impl LockstepSim for Cpu {
    fn label(&self) -> &'static str {
        "functional"
    }

    fn cpu(&self) -> &Cpu {
        self
    }

    fn cpu_mut(&mut self) -> &mut Cpu {
        self
    }

    fn step_sim(&mut self) -> Result<Event, CpuError> {
        self.step()
    }
}

impl LockstepSim for rocket_sim::RocketSim {
    fn label(&self) -> &'static str {
        "rocket"
    }

    fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    fn step_sim(&mut self) -> Result<Event, CpuError> {
        self.step()
    }
}

impl LockstepSim for atomic_sim::AtomicSim {
    fn label(&self) -> &'static str {
        "atomic"
    }

    fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    fn step_sim(&mut self) -> Result<Event, CpuError> {
        self.step()
    }
}

/// What one simulator did at one lockstep position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired.
    Retired(RetirementRecord),
    /// The program exited.
    Exited {
        /// The exit code.
        code: i64,
    },
    /// A fault was delivered to the guest's `mtvec` handler instead of
    /// killing the run.
    Trapped {
        /// The `mcause` value written.
        cause: u64,
        /// The `mepc` value written (the faulting pc).
        epc: u64,
    },
    /// The step faulted.
    Fault(CpuError),
}

impl std::fmt::Display for StepOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepOutcome::Retired(record) => write!(f, "{record}"),
            StepOutcome::Exited { code } => write!(f, "exited with code {code}"),
            StepOutcome::Trapped { cause, epc } => {
                write!(f, "trapped to handler (mcause={cause}, mepc={epc:#x})")
            }
            StepOutcome::Fault(error) => write!(f, "fault: {error}"),
        }
    }
}

/// One differing register between the two final (or divergence-time)
/// register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegDelta {
    /// The register.
    pub reg: Reg,
    /// Its value on the first simulator.
    pub a_value: u64,
    /// Its value on the second simulator.
    pub b_value: u64,
}

/// A full divergence report: where the streams split, what each side did,
/// how the register files differ, and the shared history leading up to it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Lockstep position (0-based count of retirements before this one).
    pub step: u64,
    /// Address of the divergent retirement (the first simulator's if it
    /// retired, otherwise the second's, otherwise the first's current pc).
    pub pc: u64,
    /// Label of the first simulator.
    pub a_label: &'static str,
    /// Label of the second simulator.
    pub b_label: &'static str,
    /// What the first simulator did.
    pub a: StepOutcome,
    /// What the second simulator did.
    pub b: StepOutcome,
    /// Registers whose post-step values differ.
    pub reg_delta: Vec<RegDelta>,
    /// Memory effects, when the two sides' differ: `(first, second)`.
    pub mem_delta: Option<(Option<riscv_sim::MemEffect>, Option<riscv_sim::MemEffect>)>,
    /// The last retirements before the divergence — identical on both sides
    /// by construction, so one copy suffices.
    pub context: Vec<RetirementRecord>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "lockstep divergence at retirement #{} (pc {:#x}) between `{}` and `{}`:",
            self.step, self.pc, self.a_label, self.b_label
        )?;
        writeln!(f, "  {:<12} {}", self.a_label, self.a)?;
        writeln!(f, "  {:<12} {}", self.b_label, self.b)?;
        if !self.reg_delta.is_empty() {
            writeln!(f, "  register delta:")?;
            for delta in &self.reg_delta {
                writeln!(
                    f,
                    "    {:<5} {} {:#x} | {} {:#x}",
                    delta.reg.to_string(),
                    self.a_label,
                    delta.a_value,
                    self.b_label,
                    delta.b_value
                )?;
            }
        }
        if let Some((a_mem, b_mem)) = &self.mem_delta {
            writeln!(
                f,
                "  memory delta: {} {:?} | {} {:?}",
                self.a_label, a_mem, self.b_label, b_mem
            )?;
        }
        if !self.context.is_empty() {
            writeln!(f, "  last {} retirements before divergence:", self.context.len())?;
            for record in &self.context {
                writeln!(f, "    {record}")?;
            }
        }
        Ok(())
    }
}

/// Why an agreeing lockstep run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Both programs exited with this code.
    Exited(i64),
    /// Both simulators faulted identically — architectural agreement.
    MatchingFault(CpuError),
    /// The step budget ran out with the streams still matching.
    BudgetExhausted,
}

/// The result of a lockstep run.
#[derive(Debug, Clone)]
pub enum LockstepOutcome {
    /// The retirement streams (and final state, if compared) matched.
    Agreement {
        /// Instructions retired in lockstep.
        instructions: u64,
        /// How the run ended.
        termination: Termination,
    },
    /// The streams split; here is where and how.
    Divergence(Box<Divergence>),
}

impl LockstepOutcome {
    /// True if the run agreed to completion.
    #[must_use]
    pub fn is_agreement(&self) -> bool {
        matches!(self, LockstepOutcome::Agreement { .. })
    }

    /// The divergence report, if the run diverged.
    #[must_use]
    pub fn divergence(&self) -> Option<&Divergence> {
        match self {
            LockstepOutcome::Agreement { .. } => None,
            LockstepOutcome::Divergence(divergence) => Some(divergence),
        }
    }
}

/// Knobs for a lockstep run.
#[derive(Debug, Clone, Copy)]
pub struct LockstepOptions {
    /// Step budget before giving up with [`Termination::BudgetExhausted`].
    pub max_instructions: u64,
    /// Pre-divergence retirements to keep as context.
    pub context: usize,
    /// Also compare final register files, console output and markers when
    /// both programs exit.
    pub compare_final_state: bool,
}

impl Default for LockstepOptions {
    fn default() -> Self {
        LockstepOptions {
            max_instructions: 2_000_000,
            context: DEFAULT_CONTEXT,
            compare_final_state: true,
        }
    }
}

/// The CSR number an instruction reads, if it is a CSR instruction.
fn csr_number(instr: &Instr) -> Option<u16> {
    match *instr {
        Instr::Csr { csr, .. } | Instr::CsrImm { csr, .. } => Some(csr),
        _ => None,
    }
}

/// True if the instruction reads the cycle/time counter — the one value
/// that legitimately differs across timing models.
fn is_cycle_read(instr: &Instr) -> bool {
    matches!(csr_number(instr), Some(number) if matches!(number, csr::CYCLE | csr::TIME))
}

/// Canonicalizes a record for comparison: the destination value of a
/// `rdcycle`/`rdtime` read is each timing model's own cycle count, which
/// legitimately differs across simulators, so it is masked to zero.
/// `rdinstret` is identical everywhere and stays comparable.
///
/// Masking covers the read itself; values *derived* from a cycle read by
/// later arithmetic are not tracked and will be reported as divergences.
/// The evaluation guests never compute on cycle values (they delimit
/// measurement regions with the `mark` syscall), and the fuzzer clears a
/// register immediately after reading `rdcycle` into it.
#[must_use]
pub fn canonical(mut record: RetirementRecord) -> RetirementRecord {
    if is_cycle_read(&record.instr) {
        if let Some((reg, _)) = record.rd_write {
            record.rd_write = Some((reg, 0));
        }
    }
    record
}

fn register_delta(a: &Cpu, b: &Cpu) -> Vec<RegDelta> {
    let (ra, rb) = (a.registers(), b.registers());
    (0..32)
        .filter(|&i| ra[i] != rb[i])
        .map(|i| RegDelta {
            reg: Reg::new(i as u8),
            a_value: ra[i],
            b_value: rb[i],
        })
        .collect()
}

fn outcome_of(result: Result<Event, CpuError>, cpu: &Cpu) -> StepOutcome {
    match result {
        Ok(Event::Retired(retired)) => {
            StepOutcome::Retired(RetirementRecord::capture(cpu, &retired))
        }
        Ok(Event::Exited { code }) => StepOutcome::Exited { code },
        Ok(Event::Trapped { cause, epc }) => StepOutcome::Trapped { cause, epc },
        Err(error) => StepOutcome::Fault(error),
    }
}

fn divergence_pc(a: &StepOutcome, b: &StepOutcome, fallback: u64) -> u64 {
    match (a, b) {
        (StepOutcome::Retired(record), _) | (_, StepOutcome::Retired(record)) => record.pc,
        _ => fallback,
    }
}

/// Runs two simulators in lockstep over whatever programs are already
/// loaded into them, comparing canonical retirement streams step by step.
///
/// Both simulators must have been loaded with the same program (see
/// `guest::load_program`). A fault on both sides with the same error is
/// architectural agreement; anything asymmetric is a divergence.
pub fn run_lockstep(
    a: &mut dyn LockstepSim,
    b: &mut dyn LockstepSim,
    options: &LockstepOptions,
) -> LockstepOutcome {
    let mut context: VecDeque<RetirementRecord> = VecDeque::with_capacity(options.context.max(1));
    // Registers whose current value came straight from a cycle/time read;
    // they hold each timing model's own count and are excluded from the
    // final-state register comparison.
    let mut cycle_tainted = [false; 32];
    let divergence = |step: u64,
                      a: &dyn LockstepSim,
                      b: &dyn LockstepSim,
                      oa: StepOutcome,
                      ob: StepOutcome,
                      context: &VecDeque<RetirementRecord>| {
        let mem_delta = match (&oa, &ob) {
            (StepOutcome::Retired(ra), StepOutcome::Retired(rb)) if ra.mem != rb.mem => {
                Some((ra.mem, rb.mem))
            }
            _ => None,
        };
        LockstepOutcome::Divergence(Box::new(Divergence {
            step,
            pc: divergence_pc(&oa, &ob, a.cpu().pc()),
            a_label: a.label(),
            b_label: b.label(),
            reg_delta: register_delta(a.cpu(), b.cpu()),
            mem_delta,
            a: oa,
            b: ob,
            context: context.iter().copied().collect(),
        }))
    };

    for step in 0..options.max_instructions {
        let oa = outcome_of(a.step_sim(), a.cpu());
        let ob = outcome_of(b.step_sim(), b.cpu());
        match (&oa, &ob) {
            (StepOutcome::Retired(ra), StepOutcome::Retired(rb)) => {
                let (ca, cb) = (canonical(*ra), canonical(*rb));
                if ca != cb {
                    return divergence(step, a, b, oa, ob, &context);
                }
                if let Some((reg, _)) = ca.rd_write {
                    cycle_tainted[reg.number() as usize] = is_cycle_read(&ca.instr);
                }
                if context.len() == options.context {
                    context.pop_front();
                }
                if options.context > 0 {
                    context.push_back(ca);
                }
            }
            (StepOutcome::Exited { code: ca }, StepOutcome::Exited { code: cb }) if ca == cb => {
                if options.compare_final_state {
                    if let Some(outcome) =
                        final_state_divergence(step, a, b, &oa, &ob, &context, &cycle_tainted)
                    {
                        return outcome;
                    }
                }
                return LockstepOutcome::Agreement {
                    instructions: step + 1,
                    termination: Termination::Exited(*ca),
                };
            }
            (
                StepOutcome::Trapped { cause: ca, epc: ea },
                StepOutcome::Trapped { cause: cb, epc: eb },
            ) if ca == cb && ea == eb => {
                // Identical trap delivery on both sides: not a retirement,
                // the lockstep run simply continues inside the handler.
            }
            (StepOutcome::Fault(ea), StepOutcome::Fault(eb)) if ea == eb => {
                return LockstepOutcome::Agreement {
                    instructions: step,
                    termination: Termination::MatchingFault(*ea),
                };
            }
            _ => return divergence(step, a, b, oa, ob, &context),
        }
    }
    LockstepOutcome::Agreement {
        instructions: options.max_instructions,
        termination: Termination::BudgetExhausted,
    }
}

/// After a matching exit, checks final architectural state: register files,
/// console output, and markers (ids and instruction counts; marker cycle
/// counts are timing and excluded). Registers whose last write was a
/// cycle/time read hold each timing model's own count and are skipped.
fn final_state_divergence(
    step: u64,
    a: &dyn LockstepSim,
    b: &dyn LockstepSim,
    oa: &StepOutcome,
    ob: &StepOutcome,
    context: &VecDeque<RetirementRecord>,
    cycle_tainted: &[bool; 32],
) -> Option<LockstepOutcome> {
    let mut reg_delta = register_delta(a.cpu(), b.cpu());
    reg_delta.retain(|delta| !cycle_tainted[delta.reg.number() as usize]);
    let console_match = a.cpu().console == b.cpu().console;
    let markers_match = a.cpu().markers.len() == b.cpu().markers.len()
        && a.cpu()
            .markers
            .iter()
            .zip(&b.cpu().markers)
            .all(|(ma, mb)| ma.id == mb.id && ma.instret == mb.instret);
    if reg_delta.is_empty() && console_match && markers_match {
        return None;
    }
    Some(LockstepOutcome::Divergence(Box::new(Divergence {
        step,
        pc: a.cpu().pc(),
        a_label: a.label(),
        b_label: b.label(),
        a: oa.clone(),
        b: ob.clone(),
        reg_delta,
        mem_delta: None,
        context: context.iter().copied().collect(),
    })))
}
