//! Guest-side test-program generation.
//!
//! The generated program is the driver loop of the paper's framework: it
//! walks an operand table, calls the kernel under test for each pair
//! (repeating `repetitions` times, as the generator's "number of repetition
//! per calculation" option configures), stores each result, and brackets
//! the measurement region with `mark` syscalls so the harness can subtract
//! setup cost.

use std::fmt::Write as _;

use crate::TestVector;

/// Marker id recorded immediately before the measurement loop.
pub const MARK_LOOP_START: u64 = 1;

/// Marker id recorded immediately after the measurement loop.
pub const MARK_LOOP_END: u64 = 2;

/// Base marker id for per-sample markers (`MARK_SAMPLE_BASE + i` fires
/// before sample `i` when per-sample marking is enabled).
pub const MARK_SAMPLE_BASE: u64 = 0x1000;

/// Memory layout contract between the driver and the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverLayout {
    /// Number of operand pairs.
    pub count: usize,
    /// Repetitions per pair.
    pub repetitions: u32,
    /// Record a marker before every sample (enables per-class cycle
    /// attribution at the cost of one `mark` syscall per sample).
    pub per_sample_marks: bool,
}

/// Emits the `.data` section holding the operand table and result array.
///
/// Layout: `operands:` count pairs of dwords (x bits, y bits), then
/// `results:` count dwords initialized to zero.
#[must_use]
pub fn operand_data_section(vectors: &[TestVector]) -> String {
    let mut out = String::new();
    out.push_str(".data\n.align 3\noperands:\n");
    for v in vectors {
        let (x, y) = v.to_decimal64_bits();
        let _ = writeln!(out, "    .dword 0x{x:016X}, 0x{y:016X}  # {}", v.class);
    }
    let _ = writeln!(out, "results:\n    .space {}", vectors.len() * 8);
    out
}

/// Emits the driver's `.text` (entry `start`), which calls the symbol
/// `kernel` once per repetition per operand pair. The kernel receives the
/// operands' decimal64 bits in `a0`/`a1` and returns the result bits in
/// `a0`; it may clobber any caller-saved register.
#[must_use]
pub fn driver_source(layout: DriverLayout) -> String {
    let mut out = String::new();
    let count = layout.count;
    let reps = layout.repetitions.max(1);
    let per_sample = if layout.per_sample_marks {
        "    mv   a0, s4
    li   a7, 0x700
    ecall                            # mark: sample boundary
    addi s4, s4, 1
"
        .to_string()
    } else {
        String::new()
    };
    let _ = write!(
        out,
        r#"
    .text
start:
    la   s0, operands
    la   s1, results
    li   s2, {count}
    li   s4, {MARK_SAMPLE_BASE}
    beqz s2, finish
    li   a0, {MARK_LOOP_START}
    li   a7, 0x700
    ecall                      # mark: measurement region begins
sample_loop:
{per_sample}    li   s3, {reps}
repeat_loop:
    ld   a0, 0(s0)
    ld   a1, 8(s0)
    call kernel
    addi s3, s3, -1
    bnez s3, repeat_loop
    sd   a0, 0(s1)
    addi s0, s0, 16
    addi s1, s1, 8
    addi s2, s2, -1
    bnez s2, sample_loop
    li   a0, {MARK_LOOP_END}
    li   a7, 0x700
    ecall                      # mark: measurement region ends
finish:
    li   a0, 0
    li   a7, 93
    ecall
"#
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, TestConfig};

    #[test]
    fn data_section_shape() {
        let config = TestConfig {
            count: 5,
            ..TestConfig::default()
        };
        let vectors = generate(&config);
        let data = operand_data_section(&vectors);
        assert!(data.contains("operands:"));
        assert!(data.contains("results:"));
        assert_eq!(data.matches(".dword").count(), 5);
        assert!(data.contains(".space 40"));
    }

    #[test]
    fn driver_contains_markers_and_kernel_call() {
        let src = driver_source(DriverLayout {
            count: 8,
            repetitions: 3,
            per_sample_marks: false,
        });
        assert!(src.contains("call kernel"));
        assert!(src.contains("li   s3, 3"));
        assert!(src.contains("li   s2, 8"));
        assert!(src.contains("0x700"));
    }

    #[test]
    fn per_sample_marks_emit_the_counter() {
        let src = driver_source(DriverLayout {
            count: 4,
            repetitions: 1,
            per_sample_marks: true,
        });
        assert!(src.contains("mv   a0, s4"));
        assert!(src.contains("addi s4, s4, 1"));
    }

    #[test]
    fn zero_repetitions_clamped_to_one() {
        let src = driver_source(DriverLayout {
            count: 1,
            repetitions: 0,
            per_sample_marks: false,
        });
        assert!(src.contains("li   s3, 1"));
    }
}
