//! Precision rounding and exponent-range finishing.
//!
//! Every arithmetic operation computes an exact (or sticky-preserving)
//! intermediate result and hands it to [`DecNumber::finish`], which rounds
//! the coefficient to the context precision and then applies the IEEE
//! overflow / underflow / clamping rules. The paper's workload generator
//! deliberately exercises all of these paths (its "rounding", "overflow",
//! "underflow" and "clamping" input classes), so the flag behaviour here is
//! load-bearing for the experiments.

use dpd::Sign;

use crate::context::{Context, Rounding, Status};
use crate::number::{DecNumber, Kind};

/// Whether the kept coefficient must be incremented, given the rounding
/// mode, result sign, the first discarded digit, whether any further
/// discarded digit is non-zero, and the least significant kept digit.
pub(crate) fn should_increment(
    mode: Rounding,
    sign: Sign,
    round_digit: u8,
    sticky: bool,
    last_kept: u8,
) -> bool {
    let discarded_nonzero = round_digit != 0 || sticky;
    match mode {
        Rounding::Down => false,
        Rounding::Up => discarded_nonzero,
        Rounding::Ceiling => sign == Sign::Positive && discarded_nonzero,
        Rounding::Floor => sign == Sign::Negative && discarded_nonzero,
        Rounding::HalfUp => round_digit >= 5,
        Rounding::HalfDown => round_digit > 5 || (round_digit == 5 && sticky),
        Rounding::HalfEven => {
            round_digit > 5 || (round_digit == 5 && (sticky || last_kept % 2 == 1))
        }
        Rounding::ZeroFiveUp => discarded_nonzero && (last_kept == 0 || last_kept == 5),
    }
}

/// Adds one to an LSD-first digit vector, propagating carries; may grow the
/// vector by one digit.
pub(crate) fn increment(digits: &mut Vec<u8>) {
    for d in digits.iter_mut() {
        if *d < 9 {
            *d += 1;
            return;
        }
        *d = 0;
    }
    digits.push(1);
}

/// Discards the lowest `count` digits of `digits` with rounding, returning
/// `(rounded, inexact)` status contributions. `count` may exceed the length.
pub(crate) fn round_off(
    digits: &mut Vec<u8>,
    count: usize,
    mode: Rounding,
    sign: Sign,
) -> (bool, bool) {
    if count == 0 {
        return (false, false);
    }
    let (round_digit, sticky) = if count > digits.len() {
        // Everything (and more) is discarded: the round digit is an implied
        // zero unless count == len + ... — when count exceeds the length the
        // round digit position is above all digits, so the entire value is
        // sticky.
        let sticky = digits.iter().any(|&d| d != 0);
        digits.clear();
        (0, sticky)
    } else {
        let sticky = digits[..count - 1].iter().any(|&d| d != 0);
        let round_digit = digits[count - 1];
        digits.drain(..count);
        (round_digit, sticky)
    };
    let last_kept = digits.first().copied().unwrap_or(0);
    let inexact = round_digit != 0 || sticky;
    if should_increment(mode, sign, round_digit, sticky, last_kept) {
        increment(digits);
    }
    while digits.last() == Some(&0) {
        digits.pop();
    }
    (true, inexact)
}

/// The largest finite number in `ctx` (`Nmax`), with the given sign.
pub(crate) fn nmax(sign: Sign, ctx: &Context) -> DecNumber {
    DecNumber {
        sign,
        kind: Kind::Finite,
        digits: vec![9; ctx.precision as usize],
        exponent: ctx.etop(),
    }
}

impl DecNumber {
    /// Rounds the coefficient to the context precision and applies the
    /// exponent-range rules (overflow, subnormal underflow, clamping),
    /// raising the corresponding status flags.
    ///
    /// This is decNumber's internal `decFinish`/`decSetCoeff` pipeline and
    /// the single place every arithmetic result funnels through.
    #[must_use]
    pub fn finish(mut self, ctx: &mut Context) -> DecNumber {
        if self.kind != Kind::Finite {
            return self;
        }
        // Zero coefficient: just bring the exponent into range.
        if self.digits.is_empty() {
            let clamped_low = self.exponent.max(ctx.etiny());
            let clamped = if ctx.clamp {
                clamped_low.min(ctx.etop())
            } else {
                clamped_low.min(ctx.emax)
            };
            if clamped != self.exponent {
                ctx.raise(Status::CLAMPED);
                self.exponent = clamped;
            }
            return self;
        }

        // Tininess is detected before rounding (decNumber's choice).
        let subnormal_before = self.adjusted_exponent() < ctx.emin;

        // Round ONCE: to the precision, or — for results below the subnormal
        // threshold — at Etiny, whichever discards more. Rounding to
        // precision first and re-rounding at Etiny would double-round.
        let etiny = ctx.etiny();
        let discard_precision = self.digits.len().saturating_sub(ctx.precision as usize);
        let discard_etiny = if subnormal_before && self.exponent < etiny {
            (etiny - self.exponent) as usize
        } else {
            0
        };
        let discard = discard_precision.max(discard_etiny);
        let mut inexact = false;
        if discard > 0 {
            let (rounded, was_inexact) =
                round_off(&mut self.digits, discard, ctx.rounding, self.sign);
            self.exponent += discard as i32;
            inexact = was_inexact;
            if rounded {
                ctx.raise(Status::ROUNDED);
            }
            if was_inexact {
                ctx.raise(Status::INEXACT);
            }
            // An all-nines coefficient may have grown by a digit.
            if self.digits.len() > ctx.precision as usize {
                debug_assert_eq!(self.digits.len(), ctx.precision as usize + 1);
                debug_assert_eq!(self.digits.first(), Some(&0));
                self.digits.remove(0);
                self.exponent += 1;
            }
        }

        // Overflow.
        if self.adjusted_exponent() > ctx.emax {
            ctx.raise(
                Status::OVERFLOW
                    .union(Status::INEXACT)
                    .union(Status::ROUNDED),
            );
            return match ctx.rounding {
                Rounding::HalfEven | Rounding::HalfUp | Rounding::HalfDown | Rounding::Up => {
                    DecNumber::infinity(self.sign)
                }
                Rounding::Down | Rounding::ZeroFiveUp => nmax(self.sign, ctx),
                Rounding::Ceiling => {
                    if self.sign == Sign::Positive {
                        DecNumber::infinity(Sign::Positive)
                    } else {
                        nmax(Sign::Negative, ctx)
                    }
                }
                Rounding::Floor => {
                    if self.sign == Sign::Negative {
                        DecNumber::infinity(Sign::Negative)
                    } else {
                        nmax(Sign::Positive, ctx)
                    }
                }
            };
        }

        // Subnormal / underflow flags (tininess was detected pre-rounding).
        if subnormal_before {
            ctx.raise(Status::SUBNORMAL);
            if inexact {
                ctx.raise(Status::UNDERFLOW);
            }
            if self.digits.is_empty() {
                // Underflowed to zero: keep the sign, exponent Etiny; this
                // is also a clamped result.
                ctx.raise(Status::CLAMPED);
            }
            #[cfg(debug_assertions)]
            self.assert_valid();
            return self;
        }

        // IEEE clamping: fold an over-large exponent into trailing zeros.
        if ctx.clamp && self.exponent > ctx.etop() {
            let pad = (self.exponent - ctx.etop()) as usize;
            if !self.digits.is_empty() {
                // Shifting left must fit inside the precision; adjusted
                // exponent <= emax guarantees it does.
                let mut padded = vec![0u8; pad];
                padded.extend_from_slice(&self.digits);
                debug_assert!(padded.len() <= ctx.precision as usize);
                self.digits = padded;
            }
            self.exponent = ctx.etop();
            ctx.raise(Status::CLAMPED);
        }
        #[cfg(debug_assertions)]
        self.assert_valid();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::decimal64()
    }

    fn finish(s: &str, ctx: &mut Context) -> DecNumber {
        s.parse::<DecNumber>().unwrap().finish(ctx)
    }

    #[test]
    fn exact_fit_untouched() {
        let mut c = ctx();
        let n = finish("1234567890123456", &mut c);
        assert_eq!(n.to_string(), "1234567890123456");
        assert!(c.status().is_clear());
    }

    #[test]
    fn rounds_to_precision_half_even() {
        let mut c = ctx();
        // 17 digits, round digit 5 with zero sticky, last kept digit even.
        let n = finish("12345678901234565", &mut c);
        assert_eq!(n.to_string(), "1.234567890123456E+16");
        assert!(c.status().contains(Status::ROUNDED.union(Status::INEXACT)));

        let mut c2 = ctx();
        let n2 = finish("12345678901234575", &mut c2);
        assert_eq!(n2.to_string(), "1.234567890123458E+16");
    }

    #[test]
    fn all_nines_rounds_up_a_digit() {
        let mut c = ctx();
        let n = finish("99999999999999995", &mut c);
        assert_eq!(n.to_string(), "1.000000000000000E+17");
        assert_eq!(n.ndigits(), 16);
    }

    #[test]
    fn overflow_to_infinity_half_even() {
        let mut c = ctx();
        let n = finish("1E+385", &mut c);
        assert!(n.is_infinite());
        assert!(c.status().contains(Status::OVERFLOW));
    }

    #[test]
    fn overflow_direction_by_mode() {
        for (mode, negative, expect_inf) in [
            (Rounding::Down, false, false),
            (Rounding::Up, false, true),
            (Rounding::Ceiling, false, true),
            (Rounding::Ceiling, true, false),
            (Rounding::Floor, true, true),
            (Rounding::Floor, false, false),
        ] {
            let mut c = ctx().with_rounding(mode);
            let s = if negative { "-1E+999" } else { "1E+999" };
            let n = finish(s, &mut c);
            assert_eq!(n.is_infinite(), expect_inf, "{mode:?} {negative}");
            if !expect_inf {
                assert_eq!(n.abs().to_string(), "9.999999999999999E+384");
            }
        }
    }

    #[test]
    fn subnormal_flagged_without_precision_loss() {
        let mut c = ctx();
        // 1E-390 is subnormal for decimal64 but exactly representable.
        let n = finish("1E-390", &mut c);
        assert_eq!(n.to_string(), "1E-390");
        assert!(c.status().contains(Status::SUBNORMAL));
        assert!(!c.status().contains(Status::UNDERFLOW));
    }

    #[test]
    fn underflow_rounds_at_etiny() {
        let mut c = ctx();
        let n = finish("123E-400", &mut c);
        // Etiny = -398; 123E-400 = 1.23E-398 -> rounds to 1E-398.
        assert_eq!(n.to_string(), "1E-398");
        assert!(c
            .status()
            .contains(Status::SUBNORMAL.union(Status::UNDERFLOW).union(Status::INEXACT)));
    }

    #[test]
    fn underflow_to_zero() {
        let mut c = ctx();
        let n = finish("1E-500", &mut c);
        assert!(n.is_zero());
        assert_eq!(n.exponent(), -398);
        assert!(c.status().contains(Status::UNDERFLOW.union(Status::CLAMPED)));
    }

    #[test]
    fn clamping_pads_large_exponents() {
        let mut c = ctx();
        // 1E+384 has exponent above Etop (369): must become 1 followed by
        // fifteen zeros times 10^369.
        let n = finish("1E+384", &mut c);
        assert_eq!(n.exponent(), 369);
        assert_eq!(n.ndigits(), 16);
        assert!(c.status().contains(Status::CLAMPED));
        assert_eq!(n.to_string(), "1.000000000000000E+384");
    }

    #[test]
    fn zero_exponent_clamped_into_range() {
        let mut c = ctx();
        let n = finish("0E+500", &mut c);
        assert!(n.is_zero());
        assert_eq!(n.exponent(), 369);
        assert!(c.status().contains(Status::CLAMPED));

        let mut c2 = ctx();
        let n2 = finish("0E-500", &mut c2);
        assert_eq!(n2.exponent(), -398);
    }

    #[test]
    fn rounding_mode_matrix() {
        // Value 2.5 rounded to one digit under every mode, both signs.
        let cases: &[(Rounding, &str, &str)] = &[
            (Rounding::HalfEven, "2", "-2"),
            (Rounding::HalfUp, "3", "-3"),
            (Rounding::HalfDown, "2", "-2"),
            (Rounding::Down, "2", "-2"),
            (Rounding::Up, "3", "-3"),
            (Rounding::Ceiling, "3", "-2"),
            (Rounding::Floor, "2", "-3"),
            (Rounding::ZeroFiveUp, "2", "-2"),
        ];
        for &(mode, pos, neg) in cases {
            let mut c = Context::with_precision(1).with_rounding(mode);
            assert_eq!(finish("2.5", &mut c).to_string(), pos, "{mode:?} +");
            assert_eq!(finish("-2.5", &mut c).to_string(), neg, "{mode:?} -");
        }
    }

    #[test]
    fn zero_five_up_behaviour() {
        let mut c = Context::with_precision(2).with_rounding(Rounding::ZeroFiveUp);
        // last kept digit 0 -> bump; 2.01 -> keeps "20" + discarded nonzero -> 21
        assert_eq!(finish("2.01", &mut c).to_string(), "2.1");
        // last kept digit 3 -> no bump.
        assert_eq!(finish("2.31", &mut c).to_string(), "2.3");
        // last kept digit 5 -> bump.
        assert_eq!(finish("2.51", &mut c).to_string(), "2.6");
    }
}
