//! Differential verification driver: lockstep-checks the three simulators
//! against each other, the kernels against the verification database, the
//! accelerator against its software model, and the accelerator protocol
//! against a seeded fault-injection campaign.
//!
//! ```text
//! lockstep [conformance|fuzz|rocc|faults|all] [--samples N] [--seed S]
//!          [--programs N] [--body N] [--commands N] [--no-rocc]
//!          [--faults N] [--fault-samples N]
//! ```
//!
//! Defaults: `all`, 200 database samples (the paper's 8,000-sample
//! configuration scaled down for CI — pass `--samples 8000` for the full
//! database), seed 2019, 200 fuzz programs, 500 injected faults over a
//! 6-sample guest.
//!
//! Exits nonzero on any divergence, printing the full report (pc,
//! instruction, register/memory delta, retirement context) and the shrunk
//! reproducing program for fuzz failures. A lockstep run that only ends
//! because the step budget ran out is reported as a distinct warning (a
//! bounded hang is not a pass) and counted as a failure.

use codesign::kernels::KernelKind;
use lockstep::campaign::{run_campaign, CampaignConfig};
use lockstep::fuzz::{run_fuzz, FuzzConfig};
use lockstep::rocc_diff::fuzz_rocc_commands;
use lockstep::{guest_budget, run_guest_pair, LockstepOutcome, Pair, Termination, DEFAULT_CONTEXT};
use testgen::TestConfig;

struct Options {
    what: String,
    samples: usize,
    seed: u64,
    programs: u32,
    body_items: usize,
    commands: u32,
    with_rocc: bool,
    faults: usize,
    fault_samples: usize,
}

fn parse_args() -> Options {
    let mut options = Options {
        what: "all".to_string(),
        samples: 200,
        seed: 2019,
        programs: 200,
        body_items: 40,
        commands: 10_000,
        with_rocc: true,
        faults: 500,
        fault_samples: 6,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |flag: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
        };
        match arg.as_str() {
            "--samples" => options.samples = number("--samples") as usize,
            "--seed" => options.seed = number("--seed"),
            "--programs" => options.programs = number("--programs") as u32,
            "--body" => options.body_items = number("--body") as usize,
            "--commands" => options.commands = number("--commands") as u32,
            "--faults" => options.faults = number("--faults") as usize,
            "--fault-samples" => options.fault_samples = number("--fault-samples") as usize,
            "--no-rocc" => options.with_rocc = false,
            "conformance" | "fuzz" | "rocc" | "faults" | "all" => options.what = arg,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    options
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: lockstep [conformance|fuzz|rocc|faults|all] [--samples N] [--seed S] \
         [--programs N] [--body N] [--commands N] [--no-rocc] [--faults N] [--fault-samples N]"
    );
    std::process::exit(2);
}

/// Lockstep-checks every kernel over the verification database on every
/// simulator pair. Returns the number of divergences (budget exhaustion
/// counts: a guest that never exits within budget is a bounded hang, not
/// an agreement).
fn conformance(options: &Options) -> u32 {
    println!(
        "— conformance: {} samples, seed {}, {} kernels × {} pairs",
        options.samples,
        options.seed,
        KernelKind::ALL.len(),
        Pair::ALL.len()
    );
    let vectors = testgen::generate(&TestConfig {
        count: options.samples,
        seed: options.seed,
        ..TestConfig::default()
    });
    let mut divergences = 0;
    for kind in KernelKind::ALL {
        let guest = codesign::framework::build_guest(kind, &vectors, 1)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let mut verdict = "all pairs agree";
        for pair in Pair::ALL {
            let outcome = run_guest_pair(&guest, pair, DEFAULT_CONTEXT);
            match outcome {
                LockstepOutcome::Agreement {
                    termination: Termination::BudgetExhausted,
                    ..
                } => {
                    divergences += 1;
                    println!(
                        "  {kind:<16} WARNING on {pair}: step budget ({}) exhausted before \
                         exit — a bounded hang, not a pass",
                        guest_budget(&guest)
                    );
                    verdict = "";
                }
                outcome if !outcome.is_agreement() => {
                    divergences += 1;
                    println!("  {kind:<16} DIVERGED on {pair}:");
                    if let Some(divergence) = outcome.divergence() {
                        println!("{divergence}");
                    }
                    verdict = "";
                }
                _ => {}
            }
        }
        if !verdict.is_empty() {
            println!("  {kind:<16} {verdict}");
        }
    }
    divergences
}

/// Runs the seeded fault-injection campaign on the plain and the
/// fault-tolerant Method-1 guests. Returns the failure count: campaign
/// errors (replays outside the four classes) always fail; silent data
/// corruption fails only for the fault-tolerant kernel, whose whole job
/// is to eliminate that class.
fn faults(options: &Options) -> u32 {
    println!(
        "— faults: {} single-bit faults over a {}-sample guest, seed {}",
        options.faults, options.fault_samples, options.seed
    );
    let vectors = testgen::generate(&TestConfig {
        count: options.fault_samples,
        seed: options.seed,
        ..TestConfig::default()
    });
    let mut failures = 0;
    for kind in KernelKind::FAULT_CAMPAIGN {
        let guest = codesign::framework::build_guest(kind, &vectors, 1)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let config = CampaignConfig {
            seed: options.seed,
            faults: options.faults,
            instruction_budget: guest_budget(&guest),
            result_words: vectors.len(),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&guest.program, &config);
        let tally = report.tally();
        println!(
            "  {:<28} {} RoCC commands; {} masked, {} detected, {} caught-by-watchdog, {} \
             silent-data-corruption",
            kind.name(),
            report.total_commands,
            tally.masked,
            tally.detected,
            tally.caught_by_watchdog,
            tally.silent_data_corruption,
        );
        for error in &report.errors {
            failures += 1;
            println!("  {:<28} ERROR: {error}", kind.name());
        }
        if kind == KernelKind::Method1Ft && tally.silent_data_corruption > 0 {
            failures += tally.silent_data_corruption as u32;
            println!(
                "  {:<28} FAILED: {} silent corruption(s) slipped past the detection net",
                kind.name(),
                tally.silent_data_corruption
            );
        }
    }
    failures
}

/// Runs the differential instruction fuzzer. Returns the failure count.
fn fuzz(options: &Options) -> u32 {
    println!(
        "— fuzz: {} programs × {} pairs, seed {}, {} body items, rocc {}",
        options.programs,
        Pair::ALL.len(),
        options.seed,
        options.body_items,
        if options.with_rocc { "on" } else { "off" }
    );
    let report = run_fuzz(&FuzzConfig {
        seed: options.seed,
        programs: options.programs,
        body_items: options.body_items,
        with_rocc: options.with_rocc,
        ..FuzzConfig::default()
    });
    println!(
        "  {} programs, {} pair runs, {} instructions compared in lockstep",
        report.programs_run, report.pairs_checked, report.instructions_checked
    );
    for failure in &report.failures {
        println!(
            "  program {} DIVERGED on {}:\n{}\n  minimal reproducer:\n{}",
            failure.program_index, failure.pair, failure.divergence, failure.shrunk_source
        );
    }
    report.failures.len() as u32
}

/// Runs the RoCC command-level differential. Returns the mismatch count.
fn rocc(options: &Options) -> u32 {
    println!(
        "— rocc: {} commands against the software model, seed {}",
        options.commands, options.seed
    );
    let report = fuzz_rocc_commands(options.seed, options.commands);
    println!("  {} commands compared", report.commands_run);
    for mismatch in &report.mismatches {
        println!(
            "  command {} ({}) MISMATCHED: {}",
            mismatch.index, mismatch.funct, mismatch.detail
        );
    }
    report.mismatches.len() as u32
}

fn main() {
    let options = parse_args();
    let mut failures = 0;
    if matches!(options.what.as_str(), "conformance" | "all") {
        failures += conformance(&options);
    }
    if matches!(options.what.as_str(), "fuzz" | "all") {
        failures += fuzz(&options);
    }
    if matches!(options.what.as_str(), "rocc" | "all") {
        failures += rocc(&options);
    }
    if matches!(options.what.as_str(), "faults" | "all") {
        failures += faults(&options);
    }
    if failures > 0 {
        eprintln!("{failures} divergence(s) found");
        std::process::exit(1);
    }
    println!("all differential checks passed");
}
