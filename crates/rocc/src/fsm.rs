//! The accelerator's interface FSM (paper Fig. 5).
//!
//! Commands arrive from the Rocket core over the RoCC `cmd` channel; the
//! interface FSM leaves `Idle` for a function-specific state, waits for the
//! execution unit's `ready`, passes through a response state when the
//! command produces a core-bound value, and returns to `Idle`. The model
//! below executes commands atomically but records the exact state sequence,
//! so the Fig. 5 structure is observable and testable.

use std::fmt;

use crate::isa::DecimalFunct;

/// Interface FSM states. `Read`/`Write` cover the register-exchange
/// functions, `Execute` covers the decimal compute functions, and the
/// response states model the cycle in which `resp` fires back to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FsmState {
    /// Waiting for a command.
    #[default]
    Idle,
    /// Serving `RD` (register read toward the core).
    Read,
    /// Serving `WR`/`LD` (register write from core or memory).
    Write,
    /// Serving `CLR_ALL`.
    Clear,
    /// Serving `ACCUM`.
    Accum,
    /// Serving a decimal compute function (`DEC_ADD`, `DEC_MUL`, …).
    Execute(DecimalFunct),
    /// Sending a read/compute response back to the core.
    RespondRead,
    /// Acknowledging a write-style command.
    RespondWrite,
    /// Sticky error state (this framework's Fig. 5 extension): entered when
    /// the execution unit reports a fault, left only on `CLR_ALL`. `STAT`
    /// is serviced without leaving it; every other command is ignored.
    Error,
}

impl fmt::Display for FsmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmState::Idle => write!(f, "Idle"),
            FsmState::Read => write!(f, "Read"),
            FsmState::Write => write!(f, "Write"),
            FsmState::Clear => write!(f, "Clear"),
            FsmState::Accum => write!(f, "Accum"),
            FsmState::Execute(func) => write!(f, "Execute({func})"),
            FsmState::RespondRead => write!(f, "ReadResp"),
            FsmState::RespondWrite => write!(f, "WriteResp"),
            FsmState::Error => write!(f, "Error"),
        }
    }
}

/// One recorded FSM transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before.
    pub from: FsmState,
    /// State after.
    pub to: FsmState,
    /// The signal that caused it (`cmd.fire`, `ready`, `resp.fire`).
    pub cause: &'static str,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}--> {}", self.from, self.cause, self.to)
    }
}

/// The interface FSM with an optional transition trace.
#[derive(Debug, Default)]
pub struct InterfaceFsm {
    state: FsmState,
    tracing: bool,
    trace: Vec<Transition>,
}

impl InterfaceFsm {
    /// A fresh FSM in `Idle`.
    #[must_use]
    pub fn new() -> Self {
        InterfaceFsm::default()
    }

    /// Enables transition recording (disabled by default; the trace grows
    /// with every command).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// The recorded transitions (empty unless tracing).
    #[must_use]
    pub fn trace(&self) -> &[Transition] {
        &self.trace
    }

    /// Clears the recorded trace.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    fn goto(&mut self, to: FsmState, cause: &'static str) {
        if self.tracing {
            self.trace.push(Transition {
                from: self.state,
                to,
                cause,
            });
        }
        self.state = to;
    }

    /// Walks the state sequence for one command and returns to `Idle`.
    /// `responds` says whether the command sends a value back to the core
    /// (`xd` set).
    pub fn run_command(&mut self, funct: DecimalFunct, responds: bool) {
        debug_assert_eq!(self.state, FsmState::Idle, "command while busy");
        let busy = match funct {
            DecimalFunct::Rd | DecimalFunct::Stat => FsmState::Read,
            DecimalFunct::Wr | DecimalFunct::Ld => FsmState::Write,
            DecimalFunct::ClrAll => FsmState::Clear,
            DecimalFunct::Accum => FsmState::Accum,
            compute => FsmState::Execute(compute),
        };
        self.goto(busy, "cmd.fire");
        if responds {
            self.goto(FsmState::RespondRead, "ready");
            self.goto(FsmState::Idle, "resp.fire");
        } else {
            self.goto(FsmState::RespondWrite, "ready");
            self.goto(FsmState::Idle, "cmd_res");
        }
    }

    /// Enters the sticky `Error` state (the execution unit reported a
    /// fault, or the core's watchdog forced an abort).
    pub fn enter_error(&mut self, cause: &'static str) {
        self.goto(FsmState::Error, cause);
    }

    /// Leaves `Error` for `Idle` through the `Clear` state (the `CLR_ALL`
    /// recovery path).
    pub fn clear_error(&mut self) {
        self.goto(FsmState::Clear, "clr_all");
        self.goto(FsmState::RespondWrite, "ready");
        self.goto(FsmState::Idle, "cmd_res");
    }

    /// Fault-injection port: forces an arbitrary state, recording the
    /// transition with an `inject` cause. Models a bit flip in the state
    /// register itself.
    pub fn force_state(&mut self, state: FsmState) {
        self.goto(state, "inject");
    }

    /// Resets to `Idle` (trace preserved).
    pub fn reset(&mut self) {
        self.state = FsmState::Idle;
    }

    /// Restores a previously captured state without recording a
    /// transition — the machine-snapshot restore path, which must not
    /// perturb the observable trace the way [`InterfaceFsm::force_state`]
    /// (a modelled bit flip) does.
    pub fn restore_state(&mut self, state: FsmState) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_sequence_for_dec_add() {
        let mut fsm = InterfaceFsm::new();
        fsm.set_tracing(true);
        fsm.run_command(DecimalFunct::DecAdd, true);
        let states: Vec<FsmState> = fsm.trace().iter().map(|t| t.to).collect();
        assert_eq!(
            states,
            vec![
                FsmState::Execute(DecimalFunct::DecAdd),
                FsmState::RespondRead,
                FsmState::Idle
            ]
        );
        assert_eq!(fsm.trace()[0].cause, "cmd.fire");
    }

    #[test]
    fn fig5_sequence_for_wr() {
        let mut fsm = InterfaceFsm::new();
        fsm.set_tracing(true);
        fsm.run_command(DecimalFunct::Wr, false);
        let states: Vec<FsmState> = fsm.trace().iter().map(|t| t.to).collect();
        assert_eq!(
            states,
            vec![FsmState::Write, FsmState::RespondWrite, FsmState::Idle]
        );
    }

    #[test]
    fn always_returns_to_idle() {
        let mut fsm = InterfaceFsm::new();
        for funct in DecimalFunct::ALL {
            fsm.run_command(funct, funct == DecimalFunct::Rd);
            assert_eq!(fsm.state(), FsmState::Idle, "{funct}");
        }
    }

    #[test]
    fn error_state_is_sticky_until_cleared() {
        let mut fsm = InterfaceFsm::new();
        fsm.set_tracing(true);
        fsm.enter_error("exec.fault");
        assert_eq!(fsm.state(), FsmState::Error);
        fsm.clear_error();
        assert_eq!(fsm.state(), FsmState::Idle);
        let states: Vec<FsmState> = fsm.trace().iter().map(|t| t.to).collect();
        assert_eq!(
            states,
            vec![
                FsmState::Error,
                FsmState::Clear,
                FsmState::RespondWrite,
                FsmState::Idle
            ]
        );
    }

    #[test]
    fn forced_state_records_injection() {
        let mut fsm = InterfaceFsm::new();
        fsm.set_tracing(true);
        fsm.force_state(FsmState::Execute(DecimalFunct::DecAdd));
        assert_eq!(fsm.state(), FsmState::Execute(DecimalFunct::DecAdd));
        assert_eq!(fsm.trace()[0].cause, "inject");
    }

    #[test]
    fn tracing_off_by_default() {
        let mut fsm = InterfaceFsm::new();
        fsm.run_command(DecimalFunct::DecAdd, true);
        assert!(fsm.trace().is_empty());
    }
}
