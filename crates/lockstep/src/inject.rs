//! Accelerator fault injectors: wrappers around the real
//! [`DecimalAccelerator`] that introduce realistic hardware bugs, for
//! proving the lockstep comparator catches RoCC-level divergences (run a
//! core with the real accelerator against a core with a faulty one).

use riscv_sim::{Coprocessor, CpuError, Memory, RoccCommand, RoccResponse};
use rocc::{DecimalAccelerator, DecimalFunct};

/// An accelerator whose datapath computes one digit wrong: every response
/// of the trigger function has its least-significant digit incremented
/// (mod 10) — the classic off-by-one a broken BCD adder cell produces.
#[derive(Debug)]
pub struct WrongDigitAccelerator {
    inner: DecimalAccelerator,
    trigger: DecimalFunct,
}

impl WrongDigitAccelerator {
    /// A faulty accelerator corrupting responses of `trigger`.
    #[must_use]
    pub fn new(trigger: DecimalFunct) -> Self {
        WrongDigitAccelerator {
            inner: DecimalAccelerator::new(),
            trigger,
        }
    }
}

impl Coprocessor for WrongDigitAccelerator {
    fn execute(&mut self, cmd: &RoccCommand, mem: &mut Memory) -> Result<RoccResponse, CpuError> {
        let mut response = self.inner.execute(cmd, mem)?;
        if DecimalFunct::from_funct7(cmd.instruction.funct7) == Some(self.trigger) {
            if let Some(value) = response.rd_value {
                let low_digit = value & 0xF;
                response.rd_value = Some((value & !0xF) | ((low_digit + 1) % 10));
            }
        }
        Ok(response)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// An accelerator whose interface FSM wedges after a number of commands:
/// once stuck, the handshake never completes — `ready` stays low forever
/// (modelled as [`RoccResponse::hung`]) — modelling a Fig. 5 FSM that stops
/// advancing. The core's busy-watchdog is what bounds the hang.
#[derive(Debug)]
pub struct StuckFsmAccelerator {
    inner: DecimalAccelerator,
    stuck_after: u64,
    commands_seen: u64,
}

impl StuckFsmAccelerator {
    /// An accelerator that serves `stuck_after` commands correctly, then
    /// wedges.
    #[must_use]
    pub fn new(stuck_after: u64) -> Self {
        StuckFsmAccelerator {
            inner: DecimalAccelerator::new(),
            stuck_after,
            commands_seen: 0,
        }
    }
}

impl Coprocessor for StuckFsmAccelerator {
    fn execute(&mut self, cmd: &RoccCommand, mem: &mut Memory) -> Result<RoccResponse, CpuError> {
        self.commands_seen += 1;
        if self.commands_seen <= self.stuck_after {
            return self.inner.execute(cmd, mem);
        }
        Ok(RoccResponse::hung())
    }

    fn watchdog_abort(&mut self) {
        // The wrapped datapath latches the abort so a later STAT sees it.
        self.inner.watchdog_abort();
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.commands_seen = 0;
    }
}
