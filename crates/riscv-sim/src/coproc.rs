//! The RoCC coprocessor hook.
//!
//! The simulators treat an attached accelerator as a black box that consumes
//! commands and produces responses, mirroring the real RoCC `cmd`/`resp`
//! decoupled interfaces. Timing information (busy cycles, memory-port
//! traffic) rides along in the response so the cycle-accurate model can
//! charge it to the hardware bucket of Table IV; the functional simulator
//! simply ignores it.

use riscv_isa::rocc::RoccInstruction;

use crate::snapshot::{CoprocSnapshot, SnapshotError};
use crate::{CpuError, Memory};

/// A command sent to an accelerator over the RoCC `cmd` interface: the
/// decoded custom instruction plus the core-register values travelling with
/// it (valid only when the corresponding `xs` flag is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoccCommand {
    /// The custom instruction.
    pub instruction: RoccInstruction,
    /// Value of `rs1` in the core register file (meaningful if `xs1`).
    pub rs1_value: u64,
    /// Value of `rs2` in the core register file (meaningful if `xs2`).
    pub rs2_value: u64,
}

/// Sentinel busy-cycle count meaning "the accelerator will never respond"
/// (a wedged interface FSM). The core's busy-watchdog turns this into a
/// bounded timeout instead of an infinite handshake wait.
pub const ROCC_HANG: u32 = u32::MAX;

/// An accelerator's response to one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoccResponse {
    /// Value to write to the core `rd` (required when the command had `xd`).
    pub rd_value: Option<u64>,
    /// Cycles the accelerator's execution FSM was busy serving this command,
    /// excluding the interface handshake (which the core model charges
    /// separately). [`ROCC_HANG`] means the response never arrives.
    pub busy_cycles: u32,
    /// Number of L1-D-side memory accesses performed via the RoCC `mem`
    /// interface.
    pub mem_accesses: u32,
}

impl RoccResponse {
    /// A response that never arrives: the accelerator is wedged and the
    /// core would wait on the `resp` handshake forever.
    #[must_use]
    pub fn hung() -> RoccResponse {
        RoccResponse {
            rd_value: None,
            busy_cycles: ROCC_HANG,
            mem_accesses: 0,
        }
    }

    /// True when this response models a hang (see [`ROCC_HANG`]).
    #[must_use]
    pub fn is_hung(&self) -> bool {
        self.busy_cycles == ROCC_HANG
    }
}

/// An accelerator attachable to a simulated core's RoCC port.
pub trait Coprocessor {
    /// Executes one command. `mem` is the core's memory as seen through the
    /// RoCC memory interface (the accelerator shares the L1-D cache).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] for unimplemented functions or faulting memory
    /// accesses, which the core reports as an illegal-instruction-style
    /// failure at the call site.
    fn execute(&mut self, cmd: &RoccCommand, mem: &mut Memory) -> Result<RoccResponse, CpuError>;

    /// Called by the core when its busy-watchdog expires on this
    /// accelerator's response (it returned a [`RoccResponse::hung`] or
    /// exceeded the configured busy bound). The accelerator should force
    /// itself into a recoverable state; the default does nothing.
    fn watchdog_abort(&mut self) {}

    /// Resets all architectural accelerator state.
    fn reset(&mut self);

    /// Serializes the accelerator's architectural state for a machine
    /// snapshot. The default — for coprocessors with no state worth
    /// carrying across a snapshot — returns `None`, in which case
    /// [`Coprocessor::restore_state`] is never called on restore and the
    /// coprocessor is [`Coprocessor::reset`] instead.
    fn snapshot_state(&self) -> Option<CoprocSnapshot> {
        None
    }

    /// Restores state previously captured by
    /// [`Coprocessor::snapshot_state`]. The default rejects every
    /// snapshot: a stateful snapshot cannot be restored into a
    /// coprocessor that never produces one.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Coprocessor`] when the snapshot tag does
    /// not belong to this implementation, or a decode error for corrupt
    /// state bytes.
    fn restore_state(&mut self, snapshot: &CoprocSnapshot) -> Result<(), SnapshotError> {
        Err(SnapshotError::Coprocessor {
            found: snapshot.tag,
        })
    }
}

/// A coprocessor port with nothing attached: any custom instruction faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCoprocessor;

impl Coprocessor for NoCoprocessor {
    fn execute(&mut self, cmd: &RoccCommand, _mem: &mut Memory) -> Result<RoccResponse, CpuError> {
        Err(CpuError::NoCoprocessor {
            funct7: cmd.instruction.funct7,
        })
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::rocc::CustomOpcode;
    use riscv_isa::Reg;

    #[test]
    fn no_coprocessor_faults() {
        let mut none = NoCoprocessor;
        let cmd = RoccCommand {
            instruction: RoccInstruction::reg_reg(CustomOpcode::Custom0, 4, Reg::A2, Reg::A1, Reg::A0),
            rs1_value: 1,
            rs2_value: 2,
        };
        let mut mem = Memory::new();
        assert!(matches!(
            none.execute(&cmd, &mut mem),
            Err(CpuError::NoCoprocessor { funct7: 4 })
        ));
    }
}
