#!/usr/bin/env bash
# CI entry point: tier-1 (build + full test suite) plus a bounded,
# fixed-seed differential fuzz pass over all three simulator pairs.
# Everything here is deterministic; a red run reproduces locally with the
# same commands.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== differential verification (bounded) =="
# Conformance on a CI-sized database slice, a 200-program fuzz run, and
# the RoCC command differential — all on the paper's seed. The full
# 8,000-sample configuration is the same binary with --samples 8000.
cargo run --release -p decimal-bench --bin lockstep -- all \
    --seed 2019 --samples 200 --programs 200 --commands 10000

echo "ci: all checks passed"
