//! Encode/decode roundtrip property tests.

use proptest::prelude::*;
use riscv_isa::instr::{BranchOp, CsrOp, LoadOp, Op32Op, OpImm32Op, OpImmOp, OpOp, StoreOp};
use riscv_isa::rocc::{CustomOpcode, RoccInstruction};
use riscv_isa::{Instr, Reg};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Bge),
        Just(BranchOp::Bltu),
        Just(BranchOp::Bgeu),
    ]
}

fn op_op() -> impl Strategy<Value = OpOp> {
    prop_oneof![
        Just(OpOp::Add), Just(OpOp::Sub), Just(OpOp::Sll), Just(OpOp::Slt),
        Just(OpOp::Sltu), Just(OpOp::Xor), Just(OpOp::Srl), Just(OpOp::Sra),
        Just(OpOp::Or), Just(OpOp::And), Just(OpOp::Mul), Just(OpOp::Mulh),
        Just(OpOp::Mulhsu), Just(OpOp::Mulhu), Just(OpOp::Div), Just(OpOp::Divu),
        Just(OpOp::Rem), Just(OpOp::Remu),
    ]
}

fn op32_op() -> impl Strategy<Value = Op32Op> {
    prop_oneof![
        Just(Op32Op::Addw), Just(Op32Op::Subw), Just(Op32Op::Sllw),
        Just(Op32Op::Srlw), Just(Op32Op::Sraw), Just(Op32Op::Mulw),
        Just(Op32Op::Divw), Just(Op32Op::Divuw), Just(Op32Op::Remw),
        Just(Op32Op::Remuw),
    ]
}

fn load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::Lb), Just(LoadOp::Lh), Just(LoadOp::Lw), Just(LoadOp::Ld),
        Just(LoadOp::Lbu), Just(LoadOp::Lhu), Just(LoadOp::Lwu),
    ]
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw), Just(StoreOp::Sd),
    ]
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Instr::Lui { rd, imm20 }),
        (reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm20)| Instr::Auipc { rd, imm20 }),
        (reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|o| o * 2))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (reg(), reg(), -2048i32..=2047)
            .prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (branch_op(), reg(), reg(), (-2048i32..2048).prop_map(|o| o * 2))
            .prop_map(|(op, rs1, rs2, offset)| Instr::Branch { op, rs1, rs2, offset }),
        (load_op(), reg(), reg(), -2048i32..=2047)
            .prop_map(|(op, rd, rs1, offset)| Instr::Load { op, rd, rs1, offset }),
        (store_op(), reg(), reg(), -2048i32..=2047)
            .prop_map(|(op, rs2, rs1, offset)| Instr::Store { op, rs2, rs1, offset }),
        (reg(), reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::OpImm {
            op: OpImmOp::Addi,
            rd,
            rs1,
            imm
        }),
        (reg(), reg(), 0i32..64).prop_map(|(rd, rs1, imm)| Instr::OpImm {
            op: OpImmOp::Srai,
            rd,
            rs1,
            imm
        }),
        (reg(), reg(), 0i32..32).prop_map(|(rd, rs1, imm)| Instr::OpImm32 {
            op: OpImm32Op::Sraiw,
            rd,
            rs1,
            imm
        }),
        (op_op(), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        (op32_op(), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op32 { op, rd, rs1, rs2 }),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        (reg(), reg(), 0u16..4096).prop_map(|(rd, rs1, csr)| Instr::Csr {
            op: CsrOp::Csrrs,
            rd,
            csr,
            rs1
        }),
        (reg(), 0u16..4096, 0u8..32).prop_map(|(rd, csr, imm)| Instr::CsrImm {
            op: CsrOp::Csrrw,
            rd,
            csr,
            imm
        }),
        (reg(), reg(), reg(), 0u8..128, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
            |(rd, rs1, rs2, funct7, xd, xs1, xs2)| Instr::Custom(RoccInstruction {
                opcode: CustomOpcode::Custom0,
                funct7,
                rd,
                rs1,
                rs2,
                xd,
                xs1,
                xs2,
            })
        ),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(i in instr()) {
        let word = i.encode().unwrap();
        let back = Instr::decode(word).unwrap();
        prop_assert_eq!(back, i, "word {:#010x}", word);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Instr::decode(word);
    }

    #[test]
    fn decoded_reencodes_identically(word in any::<u32>()) {
        if let Ok(i) = Instr::decode(word) {
            // Decoding is not necessarily injective (e.g. fence variants all
            // decode to Fence), but re-encoding must re-decode to the same
            // instruction.
            let word2 = i.encode().unwrap();
            prop_assert_eq!(Instr::decode(word2).unwrap(), i);
        }
    }

    #[test]
    fn display_never_panics(i in instr()) {
        let _ = i.to_string();
    }
}
