//! Shared helpers for the benchmark harness: canonical workload and
//! platform configurations used by both the `tables` binary and the
//! Criterion benches, so every table is regenerated from one definition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atomic_sim::AtomicConfig;
use codesign::framework::{build_guest, run_rocket, verify_results, CycleEvaluation, GuestProgram};
use codesign::kernels::KernelKind;
use rocket_sim::TimingConfig;
use testgen::{TestConfig, TestVector};

/// The paper's sample count (Table IV: "8,000 sample inputs including
/// overflow, underflow, normal, rounding, and clamping cases").
pub const PAPER_SAMPLES: usize = 8_000;

/// The canonical Table IV workload, scaled to `count` samples.
#[must_use]
pub fn workload(count: usize, seed: u64) -> Vec<TestVector> {
    testgen::generate(&TestConfig {
        count,
        seed,
        ..TestConfig::default()
    })
}

/// The Rocket timing configuration every cycle-accurate table uses.
#[must_use]
pub fn rocket_timing(seed: u64) -> TimingConfig {
    TimingConfig {
        seed,
        ..TimingConfig::default()
    }
}

/// The Gem5-like configuration for Table VI: 1 GHz clock with Minor-CPU-ish
/// functional-unit latencies (IntMult 3, IntDiv 12).
#[must_use]
pub fn atomic_config() -> AtomicConfig {
    AtomicConfig {
        mul_cycles: 3,
        div_cycles: 12,
        ..AtomicConfig::default()
    }
}

/// A typed bench-harness failure, so the report binaries can exit with a
/// clear message and a nonzero status instead of a panic backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BenchError {
    /// Kernel emission produced unassemblable source (a generator bug).
    Build {
        /// The kernel that failed to build.
        kind: KernelKind,
        /// The assembler/framework error text.
        detail: String,
    },
    /// A non-dummy kernel's results disagreed with the oracle.
    ResultMismatch {
        /// The kernel whose results were wrong.
        kind: KernelKind,
        /// How many of the verified results mismatched.
        mismatches: usize,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Build { kind, detail } => {
                write!(f, "{kind}: failed to build guest: {detail}")
            }
            BenchError::ResultMismatch { kind, mismatches } => {
                write!(f, "{kind}: {mismatches} result mismatch(es) against the oracle")
            }
        }
    }
}

impl std::error::Error for BenchError {}

/// Builds a guest for the canonical workload, reporting build failures as
/// a typed [`BenchError`].
pub fn try_guest_for(kind: KernelKind, vectors: &[TestVector]) -> Result<GuestProgram, BenchError> {
    build_guest(kind, vectors, 1).map_err(|e| BenchError::Build {
        kind,
        detail: e.to_string(),
    })
}

/// Builds a guest for the canonical workload.
///
/// # Panics
///
/// Panics if kernel emission produced unassemblable source (a bug).
/// Binaries should prefer [`try_guest_for`]; this wrapper exists for the
/// Criterion benches, where a panic is the right failure mode.
#[must_use]
pub fn guest_for(kind: KernelKind, vectors: &[TestVector]) -> GuestProgram {
    try_guest_for(kind, vectors).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one kernel cycle-accurately and verifies results against the
/// oracle (unless the kernel is a dummy configuration), reporting both
/// build failures and oracle mismatches as typed [`BenchError`]s.
pub fn try_evaluate_cycles(
    kind: KernelKind,
    vectors: &[TestVector],
    timing: TimingConfig,
) -> Result<CycleEvaluation, BenchError> {
    let guest = try_guest_for(kind, vectors)?;
    let eval = run_rocket(&guest, timing);
    if !kind.results_are_dummy() {
        let mismatches = verify_results(&eval.results, vectors);
        if !mismatches.is_empty() {
            return Err(BenchError::ResultMismatch {
                kind,
                mismatches: mismatches.len(),
            });
        }
    }
    Ok(eval)
}

/// Runs one kernel cycle-accurately and verifies results against the
/// oracle (unless the kernel is a dummy configuration).
///
/// # Panics
///
/// Panics on result mismatches for non-dummy kernels. Binaries should
/// prefer [`try_evaluate_cycles`].
#[must_use]
pub fn evaluate_cycles(
    kind: KernelKind,
    vectors: &[TestVector],
    timing: TimingConfig,
) -> CycleEvaluation {
    try_evaluate_cycles(kind, vectors, timing).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(10, 1), workload(10, 1));
    }

    #[test]
    fn evaluate_cycles_smoke() {
        let vectors = workload(20, 3);
        let eval = evaluate_cycles(KernelKind::Method1, &vectors, rocket_timing(1));
        assert!(eval.avg_total_cycles > 0.0);
        assert!(eval.avg_hw_cycles > 0.0);
    }
}
