//! Command-level differential checking of the decimal accelerator against
//! an independent software model.
//!
//! The model reimplements every accelerator function over plain binary
//! `u128` arithmetic (decode packed BCD to a value, compute, re-encode) —
//! deliberately sharing nothing with the `bcd` crate's carry-lookahead
//! datapath the accelerator is built on, so an error in either shows up as
//! a mismatch.

use rocc::{AccelCause, DecimalAccelerator, DecimalFunct, ACC_INDEX};

use crate::fuzz::SplitMix64;

const POW10_16: u128 = 10u128.pow(16);
const POW10_32: u128 = 10u128.pow(32);

/// Decodes `digits` packed-BCD nibbles into a binary value; `None` if any
/// nibble exceeds 9.
fn bcd_value(raw: u128, digits: u32) -> Option<u128> {
    let mut value: u128 = 0;
    for position in (0..digits).rev() {
        let nibble = (raw >> (4 * position)) & 0xF;
        if nibble > 9 {
            return None;
        }
        value = value * 10 + nibble;
    }
    Some(value)
}

/// Encodes a binary value into packed BCD (low 32 digits).
fn bcd_encode(mut value: u128) -> u128 {
    let mut raw: u128 = 0;
    for position in 0..32 {
        raw |= (value % 10) << (4 * position);
        value /= 10;
    }
    raw
}

/// The independent software model of the accelerator's architectural state,
/// including the sticky in-band error protocol: a faulting command latches
/// a cause, subsequent commands are ignored (answered with a benign zero),
/// `STAT` reads the status word, and only `CLR_ALL` recovers.
#[derive(Debug, Clone, Default)]
pub struct SoftwareModel {
    regs: [u128; 16],
    bin_scratch: u64,
    carry: bool,
    error: bool,
    latched: Option<(AccelCause, u8)>,
}

impl SoftwareModel {
    /// A cleared model.
    #[must_use]
    pub fn new() -> Self {
        SoftwareModel::default()
    }

    /// Raw contents of a register-file entry.
    #[must_use]
    pub fn register(&self, index: usize) -> u128 {
        self.regs[index]
    }

    /// The latched carry.
    #[must_use]
    pub fn carry(&self) -> bool {
        self.carry
    }

    fn write_half(&mut self, field: u8, value: u64) {
        let index = (field & 0xF) as usize;
        let half = u32::from((field >> 4) & 1);
        let shift = 64 * half;
        let mask = u128::from(u64::MAX) << shift;
        self.regs[index] = (self.regs[index] & !mask) | (u128::from(value) << shift);
    }

    /// The status word `STAT` would read, built independently from the
    /// published wire format (funct7 in bits 15:8, error flag in bit 7,
    /// cause code in bits 6:0).
    #[must_use]
    pub fn status_word(&self) -> u64 {
        let mut word = 0u64;
        if self.error {
            word |= 1 << 7;
        }
        if let Some((cause, funct7)) = self.latched {
            word |= u64::from(cause.code()) | (u64::from(funct7) << 8);
        }
        word
    }

    fn clear(&mut self) {
        self.regs = [0; 16];
        self.bin_scratch = 0;
        self.carry = false;
        self.error = false;
        self.latched = None;
    }

    /// Executes one function; returns the `rd` value (if the function
    /// produces one). A faulting command latches its cause in-band and
    /// answers with a benign zero, exactly as the accelerator does.
    ///
    /// # Errors
    ///
    /// `LD` through this register-only entry point is a host protocol
    /// violation, mirroring [`DecimalAccelerator::command`].
    pub fn command(
        &mut self,
        funct: DecimalFunct,
        rs1_value: u64,
        rs2_value: u64,
        rd_field: u8,
        rs1_field: u8,
        rs2_field: u8,
    ) -> Result<Option<u64>, &'static str> {
        if funct == DecimalFunct::Ld {
            return Err("LD requires the memory interface");
        }
        if self.error {
            return Ok(match funct {
                DecimalFunct::Stat => Some(self.status_word()),
                DecimalFunct::ClrAll => {
                    self.clear();
                    None
                }
                _ => Some(0),
            });
        }
        match self.execute(funct, rs1_value, rs2_value, rd_field, rs1_field, rs2_field) {
            Ok(rd) => Ok(rd),
            Err(cause) => {
                self.latched = Some((cause, funct.funct7()));
                self.error = true;
                Ok(Some(0))
            }
        }
    }

    fn execute(
        &mut self,
        funct: DecimalFunct,
        rs1_value: u64,
        rs2_value: u64,
        rd_field: u8,
        rs1_field: u8,
        rs2_field: u8,
    ) -> Result<Option<u64>, AccelCause> {
        match funct {
            DecimalFunct::Wr => {
                self.write_half(rs2_field, rs1_value);
                Ok(None)
            }
            DecimalFunct::Rd => {
                let index = (rs1_field & 0xF) as usize;
                let half = u32::from((rs1_field >> 4) & 1);
                Ok(Some((self.regs[index] >> (64 * half)) as u64))
            }
            DecimalFunct::Ld => Err(AccelCause::ProtocolViolation),
            DecimalFunct::Stat => Ok(Some(self.status_word())),
            DecimalFunct::Accum => {
                self.bin_scratch = self.bin_scratch.wrapping_add(rs1_value);
                Ok(Some(self.bin_scratch))
            }
            DecimalFunct::DecAdd | DecimalFunct::DecAdc => {
                let a = bcd_value(u128::from(rs1_value), 16)
                    .ok_or(AccelCause::InvalidBcdOperand)?;
                let b = bcd_value(u128::from(rs2_value), 16)
                    .ok_or(AccelCause::InvalidBcdOperand)?;
                let carry_in =
                    u128::from(funct == DecimalFunct::DecAdc && self.carry);
                let sum = a + b + carry_in;
                self.carry = sum >= POW10_16;
                Ok(Some(bcd_encode(sum % POW10_16) as u64))
            }
            DecimalFunct::ClrAll => {
                self.clear();
                Ok(None)
            }
            DecimalFunct::DecCnv => {
                let encoded = bcd_encode(u128::from(rs1_value));
                self.regs[ACC_INDEX] = encoded;
                Ok(Some(encoded as u64))
            }
            DecimalFunct::DecMul => {
                let i1 = (rs1_field & 0xF) as usize;
                let i2 = (rs2_field & 0xF) as usize;
                let a = bcd_value(u128::from(self.regs[i1] as u64), 16)
                    .ok_or(AccelCause::InvalidBcdRegister)?;
                let b = bcd_value(u128::from(self.regs[i2] as u64), 16)
                    .ok_or(AccelCause::InvalidBcdRegister)?;
                let product = bcd_encode(a * b);
                self.regs[ACC_INDEX] = product;
                Ok(Some(product as u64))
            }
            DecimalFunct::DecAccum => {
                if rs1_value > 9 {
                    return Err(AccelCause::DigitRange);
                }
                let acc = bcd_value(self.regs[ACC_INDEX], 32)
                    .ok_or(AccelCause::InvalidBcdRegister)?;
                let addend = bcd_value(self.regs[rs1_value as usize], 32)
                    .ok_or(AccelCause::InvalidBcdRegister)?;
                let sum = (acc * 10) % POW10_32 + addend;
                self.carry = sum >= POW10_32;
                self.regs[ACC_INDEX] = bcd_encode(sum % POW10_32);
                Ok(None)
            }
            DecimalFunct::DecAddR => {
                let ia = (rs1_field & 0xF) as usize;
                let ib = (rs2_field & 0xF) as usize;
                let id = (rd_field & 0xF) as usize;
                let a = bcd_value(self.regs[ia], 32)
                    .ok_or(AccelCause::InvalidBcdRegister)?;
                let b = bcd_value(self.regs[ib], 32)
                    .ok_or(AccelCause::InvalidBcdRegister)?;
                let sum = a + b;
                self.carry = sum >= POW10_32;
                self.regs[id] = bcd_encode(sum % POW10_32);
                Ok(None)
            }
            DecimalFunct::DecMulD => {
                if rs1_value > 9 {
                    return Err(AccelCause::DigitRange);
                }
                let x = bcd_value(u128::from(self.regs[1] as u64), 16)
                    .ok_or(AccelCause::InvalidBcdRegister)?;
                let acc = bcd_value(self.regs[ACC_INDEX], 32)
                    .ok_or(AccelCause::InvalidBcdRegister)?;
                let sum = (acc * 10) % POW10_32 + x * rs1_value as u128;
                self.carry = sum >= POW10_32;
                self.regs[ACC_INDEX] = bcd_encode(sum % POW10_32);
                Ok(None)
            }
        }
    }
}

/// One accelerator/model disagreement.
#[derive(Debug, Clone)]
pub struct RoccMismatch {
    /// Command index in the generated sequence.
    pub index: u32,
    /// The function that disagreed.
    pub funct: DecimalFunct,
    /// What differed.
    pub detail: String,
}

/// Outcome of a RoCC command-level differential campaign.
#[derive(Debug, Clone)]
pub struct RoccDiffReport {
    /// Commands executed on both sides.
    pub commands_run: u32,
    /// All disagreements found.
    pub mismatches: Vec<RoccMismatch>,
}

impl RoccDiffReport {
    /// True if accelerator and model agreed throughout.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// A random valid packed-BCD word of 1..=16 significant digits.
fn bcd_word(rng: &mut SplitMix64) -> u64 {
    let digits = 1 + rng.below(16);
    let mut value = 0u64;
    for _ in 0..digits {
        value = (value << 4) | rng.below(10);
    }
    value
}

/// A random command. Most respect the valid-BCD register-file invariant so
/// both sides execute them; a small slice deliberately feeds garbage
/// operands (and later `STAT`/`CLR_ALL` reads) so the sticky in-band error
/// protocol is itself differentially checked.
fn random_command(rng: &mut SplitMix64) -> (DecimalFunct, u64, u64, u8, u8, u8) {
    let field = |rng: &mut SplitMix64| 1 + rng.below(7) as u8;
    match rng.below(12) {
        10 => (DecimalFunct::Stat, 0, 0, 0, 0, 0),
        11 => (
            // Raw 64-bit operands are almost never valid packed BCD, so
            // this usually latches InvalidBcdOperand on both sides.
            DecimalFunct::DecAdd,
            rng.next_u64() | 0xF,
            rng.next_u64(),
            0,
            0,
            0,
        ),
        0 => (DecimalFunct::Wr, bcd_word(rng), 0, 0, 0, field(rng)),
        1 => (DecimalFunct::Rd, 0, 0, 0, field(rng), 0),
        2 => (DecimalFunct::Accum, rng.next_u64(), 0, 0, 0, 0),
        3 => (DecimalFunct::DecAdd, bcd_word(rng), bcd_word(rng), 0, 0, 0),
        4 => (DecimalFunct::DecAdc, bcd_word(rng), bcd_word(rng), 0, 0, 0),
        5 => (DecimalFunct::ClrAll, 0, 0, 0, 0, 0),
        6 => (DecimalFunct::DecCnv, rng.next_u64(), 0, 0, 0, 0),
        7 => (DecimalFunct::DecMul, 0, 0, 0, field(rng), field(rng)),
        8 => {
            let funct = if rng.below(2) == 0 {
                DecimalFunct::DecAccum
            } else {
                DecimalFunct::DecMulD
            };
            (funct, rng.below(10), 0, 0, 0, 0)
        }
        _ => (DecimalFunct::DecAddR, 0, 0, field(rng), field(rng), field(rng)),
    }
}

/// Feeds the same seeded random command sequence to the accelerator and the
/// software model, comparing `rd` values, the full register file, and the
/// carry after every command.
#[must_use]
pub fn fuzz_rocc_commands(seed: u64, commands: u32) -> RoccDiffReport {
    let mut rng = SplitMix64::new(seed);
    let mut accelerator = DecimalAccelerator::new();
    let mut model = SoftwareModel::new();
    let mut report = RoccDiffReport {
        commands_run: 0,
        mismatches: Vec::new(),
    };
    for index in 0..commands {
        let (funct, rs1_value, rs2_value, rd_field, rs1_field, rs2_field) = random_command(&mut rng);
        let hardware = accelerator.command(funct, rs1_value, rs2_value, rd_field, rs1_field, rs2_field);
        let software = model.command(funct, rs1_value, rs2_value, rd_field, rs1_field, rs2_field);
        report.commands_run += 1;
        let mut mismatch = |detail: String| {
            report.mismatches.push(RoccMismatch { index, funct, detail });
        };
        match (&hardware, &software) {
            (Ok(response), Ok(rd)) => {
                if response.rd_value != *rd {
                    mismatch(format!(
                        "rd: accelerator {:?}, model {rd:?}",
                        response.rd_value
                    ));
                    continue;
                }
                if accelerator.carry() != model.carry() {
                    mismatch(format!(
                        "carry: accelerator {}, model {}",
                        accelerator.carry(),
                        model.carry()
                    ));
                    continue;
                }
                for register in 0..16 {
                    if accelerator.register(register) != model.register(register) {
                        mismatch(format!(
                            "reg[{register}]: accelerator {:#x}, model {:#x}",
                            accelerator.register(register),
                            model.register(register)
                        ));
                        break;
                    }
                }
            }
            (Err(_), Err(_)) => {}
            (hardware, software) => {
                mismatch(format!("accelerator {hardware:?}, model {software:?}"));
            }
        }
    }
    report
}
