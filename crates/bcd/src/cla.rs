//! Functional, cost-annotated model of the BCD carry-lookahead adder.
//!
//! Method-1 of the evaluated co-design requires exactly one BCD-CLA in
//! hardware: it generates the multiplicand multiples `1X..9X` and accumulates
//! shifted partial products. This module models that unit at the digit level —
//! per-digit decimal *generate*/*propagate* signals feeding a two-level carry
//! lookahead network — and annotates it with an area/delay cost estimate used
//! by the hardware-overhead reports.
//!
//! The functional output is bit-exact with the packed-BCD software adder
//! ([`crate::Bcd64::adc`]); a property test in the crate enforces this.

use crate::Bcd64;

/// Area/delay cost of a hardware block, in NAND2-equivalent gates and logic
/// levels. The numbers are first-order estimates of the kind used for early
/// design-space exploration; they are the basis of the Pareto analysis, not a
/// synthesis result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCost {
    /// NAND2-equivalent gate count.
    pub gates: u64,
    /// Critical-path depth in gate levels.
    pub delay_levels: u32,
}

impl GateCost {
    /// Combines two blocks placed side by side (areas add, delay is the max).
    #[must_use]
    pub fn parallel(self, other: GateCost) -> GateCost {
        GateCost {
            gates: self.gates + other.gates,
            delay_levels: self.delay_levels.max(other.delay_levels),
        }
    }

    /// Combines two blocks in series (areas add, delays add).
    #[must_use]
    pub fn series(self, other: GateCost) -> GateCost {
        GateCost {
            gates: self.gates + other.gates,
            delay_levels: self.delay_levels + other.delay_levels,
        }
    }
}

/// Per-digit cost of one BCD-CLA cell: a 4-bit binary CLA adder (~28 gates),
/// the decimal-overflow detector (~5 gates), and the +6 correction stage
/// (~13 gates).
const DIGIT_CELL: GateCost = GateCost {
    gates: 46,
    delay_levels: 6,
};

/// Per-digit share of the inter-digit lookahead network (group generate /
/// propagate terms plus the lookahead tree fan-in).
const LOOKAHEAD_PER_DIGIT: GateCost = GateCost {
    gates: 7,
    delay_levels: 0,
};

/// Depth of the two-level inter-digit lookahead network.
const LOOKAHEAD_LEVELS: u32 = 4;

/// A BCD carry-lookahead adder over a configurable number of digits.
///
/// # Example
///
/// ```
/// use bcd::cla::BcdCla;
/// use bcd::Bcd64;
///
/// # fn main() -> Result<(), bcd::BcdError> {
/// let cla = BcdCla::new(16);
/// let (sum, carry) = cla.add(Bcd64::from_value(905)?, Bcd64::from_value(95)?, false);
/// assert_eq!(sum.to_value(), 1000);
/// assert!(!carry);
/// println!("area = {} gates", cla.cost().gates);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcdCla {
    digits: u32,
}

impl BcdCla {
    /// Creates an adder over `digits` decimal digits (1..=16).
    ///
    /// # Panics
    ///
    /// Panics if `digits` is zero or greater than 16.
    #[must_use]
    pub fn new(digits: u32) -> Self {
        assert!(
            (1..=16).contains(&digits),
            "BCD-CLA width {digits} out of range 1..=16"
        );
        BcdCla { digits }
    }

    /// The adder width in decimal digits.
    #[must_use]
    pub fn digits(self) -> u32 {
        self.digits
    }

    /// Adds two operands with carry-in, computing carries through the
    /// lookahead network: digit *i* generates iff `a_i + b_i >= 10`, and
    /// propagates iff `a_i + b_i == 9`.
    ///
    /// Digits above the adder width are ignored (treated as zero).
    #[must_use]
    pub fn add(self, a: Bcd64, b: Bcd64, carry_in: bool) -> (Bcd64, bool) {
        let mut generate = [false; 16];
        let mut propagate = [false; 16];
        for i in 0..self.digits {
            let s = a.digit(i) + b.digit(i);
            generate[i as usize] = s >= 10;
            propagate[i as usize] = s == 9;
        }
        // Lookahead recurrence c[i+1] = g[i] | (p[i] & c[i]); in hardware the
        // recurrence is flattened into two lookahead levels, which only
        // changes delay, not the computed carries.
        let mut carries = [false; 17];
        carries[0] = carry_in;
        for i in 0..self.digits as usize {
            carries[i + 1] = generate[i] || (propagate[i] && carries[i]);
        }
        let mut sum = Bcd64::ZERO;
        for i in 0..self.digits {
            let s = a.digit(i) + b.digit(i) + u8::from(carries[i as usize]);
            let digit = if s >= 10 { s - 10 } else { s };
            sum = sum
                .with_digit(i, digit)
                .expect("digit sum mod 10 is a valid digit");
        }
        (sum, carries[self.digits as usize])
    }

    /// Area/delay estimate for this adder instance.
    #[must_use]
    pub fn cost(self) -> GateCost {
        let per_digit = GateCost {
            gates: (DIGIT_CELL.gates + LOOKAHEAD_PER_DIGIT.gates) * u64::from(self.digits),
            delay_levels: DIGIT_CELL.delay_levels,
        };
        GateCost {
            gates: per_digit.gates,
            delay_levels: per_digit.delay_levels + LOOKAHEAD_LEVELS,
        }
    }
}

impl Default for BcdCla {
    /// A full-width (16-digit) adder, the configuration Method-1 uses.
    fn default() -> Self {
        BcdCla::new(16)
    }
}

/// Cost of an `n`-bit register (flip-flops at ~6 NAND2 equivalents each).
#[must_use]
pub fn register_cost(bits: u64) -> GateCost {
    GateCost {
        gates: bits * 6,
        delay_levels: 1,
    }
}

/// Cost of an `entries × width` register file with one write and one read
/// port (storage plus a read multiplexer tree).
#[must_use]
pub fn regfile_cost(entries: u64, width: u64) -> GateCost {
    let storage = register_cost(entries * width);
    // Read mux: roughly width gates per doubling of entries.
    let mux_gates = width * entries.next_power_of_two().trailing_zeros() as u64;
    GateCost {
        gates: storage.gates + mux_gates,
        delay_levels: 1 + entries.next_power_of_two().trailing_zeros(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_software_adder_on_cases() {
        let cla = BcdCla::new(16);
        let cases = [
            (0u64, 0u64, false),
            (905, 95, false),
            (9_999_999_999_999_999, 1, false),
            (9_999_999_999_999_999, 9_999_999_999_999_999, true),
            (123_456_789, 987_654_321, true),
        ];
        for (av, bv, cin) in cases {
            let a = Bcd64::from_value(av).unwrap();
            let b = Bcd64::from_value(bv).unwrap();
            assert_eq!(cla.add(a, b, cin), a.adc(b, cin), "case {av} + {bv} + {cin}");
        }
    }

    #[test]
    fn narrow_adder_ignores_high_digits() {
        let cla = BcdCla::new(4);
        let a = Bcd64::from_value(99_1234).unwrap();
        let b = Bcd64::from_value(1).unwrap();
        let (s, c) = cla.add(a, b, false);
        assert_eq!(s.to_value(), 1235, "only the low four digits participate");
        assert!(!c);
    }

    #[test]
    fn carry_out_at_width() {
        let cla = BcdCla::new(4);
        let a = Bcd64::from_value(9999).unwrap();
        let (s, c) = cla.add(a, Bcd64::ONE, false);
        assert_eq!(s, Bcd64::ZERO);
        assert!(c);
    }

    #[test]
    fn cost_scales_with_width() {
        let narrow = BcdCla::new(4).cost();
        let wide = BcdCla::new(16).cost();
        assert!(wide.gates > narrow.gates);
        assert_eq!(wide.gates, 16 * 53);
        assert_eq!(wide.delay_levels, 10);
    }

    #[test]
    fn cost_combinators() {
        let a = GateCost { gates: 100, delay_levels: 5 };
        let b = GateCost { gates: 50, delay_levels: 8 };
        assert_eq!(a.parallel(b), GateCost { gates: 150, delay_levels: 8 });
        assert_eq!(a.series(b), GateCost { gates: 150, delay_levels: 13 });
    }

    #[test]
    fn regfile_cost_reasonable() {
        let c = regfile_cost(16, 128);
        assert!(c.gates > 16 * 128 * 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_panics() {
        let _ = BcdCla::new(0);
    }
}
