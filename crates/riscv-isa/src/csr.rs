//! Control and status register numbers used by the framework.

/// `cycle` — cycle counter for `RDCYCLE`, the instruction the paper uses to
/// count cycles ("We use RISC-V RDCYCLE instruction to count the number of
/// cycles").
pub const CYCLE: u16 = 0xC00;

/// `time` — wall-clock timer.
pub const TIME: u16 = 0xC01;

/// `instret` — instructions-retired counter for `RDINSTRET`.
pub const INSTRET: u16 = 0xC02;

/// `mhartid` — hardware thread id (always zero in the single-core models).
pub const MHARTID: u16 = 0xF14;

/// `mstatus` — machine status (modelled as plain storage; the minimal trap
/// model does not implement interrupt enables).
pub const MSTATUS: u16 = 0x300;

/// `mtvec` — machine trap vector. A nonzero value arms guest-visible trap
/// delivery in every simulator; zero (the reset value) keeps the seed
/// behaviour of surfacing faults to the host.
pub const MTVEC: u16 = 0x305;

/// `mscratch` — machine scratch register for trap handlers.
pub const MSCRATCH: u16 = 0x340;

/// `mepc` — machine exception program counter.
pub const MEPC: u16 = 0x341;

/// `mcause` — machine trap cause.
pub const MCAUSE: u16 = 0x342;

/// `mtval` — machine trap value (faulting address, CSR number, …).
pub const MTVAL: u16 = 0x343;

/// Machine trap-cause codes delivered by the simulators (RISC-V privileged
/// spec values, plus one custom code in the platform-use range).
pub mod cause {
    /// Instruction address misaligned.
    pub const MISALIGNED_FETCH: u64 = 0;
    /// Instruction access fault.
    pub const FETCH_FAULT: u64 = 1;
    /// Illegal instruction.
    pub const ILLEGAL_INSTRUCTION: u64 = 2;
    /// Breakpoint (`ebreak`).
    pub const BREAKPOINT: u64 = 3;
    /// Load access fault.
    pub const LOAD_FAULT: u64 = 5;
    /// RoCC busy-watchdog timeout (custom cause, platform-use range ≥ 24).
    pub const ROCC_TIMEOUT: u64 = 24;
}

/// Returns the canonical name of a CSR number, if known.
#[must_use]
pub fn name(csr: u16) -> Option<&'static str> {
    match csr {
        CYCLE => Some("cycle"),
        TIME => Some("time"),
        INSTRET => Some("instret"),
        MHARTID => Some("mhartid"),
        MSTATUS => Some("mstatus"),
        MTVEC => Some("mtvec"),
        MSCRATCH => Some("mscratch"),
        MEPC => Some("mepc"),
        MCAUSE => Some("mcause"),
        MTVAL => Some("mtval"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(name(CYCLE), Some("cycle"));
        assert_eq!(name(INSTRET), Some("instret"));
        assert_eq!(name(MTVEC), Some("mtvec"));
        assert_eq!(name(MEPC), Some("mepc"));
        assert_eq!(name(0x123), None);
    }

    #[test]
    fn privileged_spec_numbers() {
        assert_eq!(MSTATUS, 0x300);
        assert_eq!(MTVEC, 0x305);
        assert_eq!(MSCRATCH, 0x340);
        assert_eq!(MEPC, 0x341);
        assert_eq!(MCAUSE, 0x342);
        assert_eq!(MTVAL, 0x343);
    }
}
