//! Abstract packed-BCD digit analysis.
//!
//! Each core register is tracked as 16 abstract nibbles over the lattice
//!
//! ```text
//!        Any            (maybe-invalid: nothing known)
//!       /   \
//!    Digit   Known(v>9) (some decimal digit 0-9 / a concrete nibble)
//!       \   /
//!     Known(v<=9)       (a concrete digit)
//! ```
//!
//! Constants (immediates, `lui`/`auipc` materializations, link addresses)
//! are exact; `andi`/`ori`/`xori` and shifts by multiples of four operate
//! per-nibble, so the standard BCD pack/unpack idioms (`andi x, 15` digit
//! extraction, shift-and-or packing) stay precise. Loads pull from
//! per-data-symbol region summaries: each region joins its initial bytes
//! with every store the program can perform into it, so the DPD↔BCD
//! lookup tables yield `Digit` nibbles while runtime scratch (e.g. the
//! multiplicand-multiples table) degrades to `Any`. A store through a
//! statically-unknown non-stack pointer conservatively clobbers every
//! *writable* region (zero-initialized scratch or any region already
//! stored to) — constant tables are assumed not to be overwritten, the
//! usual const-table assumption for executable-only analysis.
//!
//! The checker flags only *definitely* invalid operands — a nibble that is
//! `Known(v)` with `v > 9` on some reaching path — never `Any`.

use std::collections::VecDeque;

use riscv_asm::Program;
use riscv_isa::instr::{LoadOp, Op32Op, OpImm32Op, OpImmOp, OpOp};
use riscv_isa::{Instr, Reg};

use crate::cfg::Cfg;

/// One abstract nibble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nib {
    /// Exactly this 4-bit value.
    Known(u8),
    /// Some decimal digit 0–9 (valid BCD, value unknown).
    Digit,
    /// Nothing known (maybe-invalid).
    Any,
}

impl Nib {
    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: Nib) -> Nib {
        match (self, other) {
            (a, b) if a == b => a,
            (Nib::Known(a), Nib::Known(b)) if a <= 9 && b <= 9 => Nib::Digit,
            (Nib::Known(v), Nib::Digit) | (Nib::Digit, Nib::Known(v)) if v <= 9 => Nib::Digit,
            _ => Nib::Any,
        }
    }

    /// True if this nibble can never hold a decimal digit.
    #[must_use]
    pub fn definitely_invalid(self) -> bool {
        matches!(self, Nib::Known(v) if v > 9)
    }

    fn and(self, other: Nib) -> Nib {
        match (self, other) {
            (Nib::Known(a), Nib::Known(b)) => Nib::Known(a & b),
            (Nib::Known(0), _) | (_, Nib::Known(0)) => Nib::Known(0),
            // Masking can only lower the value, so a digit stays a digit
            // and anything masked below ten becomes one.
            (Nib::Digit, _) | (_, Nib::Digit) => Nib::Digit,
            (Nib::Any, Nib::Known(m)) | (Nib::Known(m), Nib::Any) if m <= 9 => Nib::Digit,
            _ => Nib::Any,
        }
    }

    fn or(self, other: Nib) -> Nib {
        match (self, other) {
            (Nib::Known(a), Nib::Known(b)) => Nib::Known(a | b),
            (Nib::Known(0), v) | (v, Nib::Known(0)) => v,
            _ => Nib::Any,
        }
    }

    fn xor(self, other: Nib) -> Nib {
        match (self, other) {
            (Nib::Known(a), Nib::Known(b)) => Nib::Known(a ^ b),
            (Nib::Known(0), v) | (v, Nib::Known(0)) => v,
            _ => Nib::Any,
        }
    }
}

/// An abstract 64-bit value: 16 nibbles, least significant first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Nibble lattice elements, `nibs[0]` = bits 3:0.
    pub nibs: [Nib; 16],
}

impl AbsVal {
    /// The completely unknown value.
    pub const ANY: AbsVal = AbsVal {
        nibs: [Nib::Any; 16],
    };

    /// An exact constant.
    #[must_use]
    pub fn constant(value: u64) -> AbsVal {
        let mut nibs = [Nib::Known(0); 16];
        for (i, nib) in nibs.iter_mut().enumerate() {
            *nib = Nib::Known(((value >> (4 * i)) & 0xF) as u8);
        }
        AbsVal { nibs }
    }

    /// The exact value, if every nibble is known.
    #[must_use]
    pub fn as_const(&self) -> Option<u64> {
        let mut value = 0u64;
        for (i, nib) in self.nibs.iter().enumerate() {
            match nib {
                Nib::Known(v) => value |= u64::from(*v) << (4 * i),
                _ => return None,
            }
        }
        Some(value)
    }

    /// Nibble-wise least upper bound.
    #[must_use]
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        let mut nibs = self.nibs;
        for (n, o) in nibs.iter_mut().zip(&other.nibs) {
            *n = n.join(*o);
        }
        AbsVal { nibs }
    }

    fn map2(&self, other: &AbsVal, f: impl Fn(Nib, Nib) -> Nib) -> AbsVal {
        let mut nibs = [Nib::Any; 16];
        for (i, nib) in nibs.iter_mut().enumerate() {
            *nib = f(self.nibs[i], other.nibs[i]);
        }
        AbsVal { nibs }
    }

    /// Left shift by a multiple of four bits: nibbles slide up, zeros fill.
    fn shift_left_nibbles(&self, count: usize) -> AbsVal {
        let count = count.min(16);
        let mut nibs = [Nib::Known(0); 16];
        nibs[count..].copy_from_slice(&self.nibs[..16 - count]);
        AbsVal { nibs }
    }

    fn shift_right_nibbles(&self, count: usize) -> AbsVal {
        let count = count.min(16);
        let mut nibs = [Nib::Known(0); 16];
        nibs[..16 - count].copy_from_slice(&self.nibs[count..]);
        AbsVal { nibs }
    }

    /// The nibble positions that are definitely not decimal digits.
    #[must_use]
    pub fn invalid_nibbles(&self) -> Vec<usize> {
        self.nibs
            .iter()
            .enumerate()
            .filter(|(_, n)| n.definitely_invalid())
            .map(|(i, _)| i)
            .collect()
    }
}

/// A `.data` region between two consecutive data symbols.
struct Region {
    name: String,
    start: u64,
    end: u64,
    /// Join of (low, high) nibbles over every byte the region may hold.
    summary: (Nib, Nib),
    /// Zero-initialized scratch, or already observed as a store target:
    /// eligible for clobbering by stores through unknown pointers.
    writable: bool,
}

impl Region {
    fn absorb_byte(&mut self, lo: Nib, hi: Nib) -> bool {
        let merged = (self.summary.0.join(lo), self.summary.1.join(hi));
        let changed = merged != self.summary;
        self.summary = merged;
        changed
    }

    /// The abstract value of a `size`-byte load from this region.
    /// `signed` loads whose sign bit may be set lose their upper nibbles.
    fn load(&self, size: usize, signed: bool) -> AbsVal {
        let (lo, hi) = self.summary;
        let mut nibs = [Nib::Known(0); 16];
        for byte in 0..size {
            nibs[2 * byte] = lo;
            nibs[2 * byte + 1] = hi;
        }
        if signed && size < 8 && !matches!(hi, Nib::Known(v) if v <= 7) {
            for nib in nibs.iter_mut().skip(2 * size) {
                *nib = Nib::Any;
            }
        }
        AbsVal { nibs }
    }
}

fn build_regions(program: &Program) -> Vec<Region> {
    let data_base = program.data.base;
    let data_end = data_base + program.data.data.len() as u64;
    let mut starts: Vec<(&str, u64)> = program
        .symbols
        .iter()
        .filter(|&(_, &addr)| addr >= data_base && addr < data_end)
        .map(|(name, &addr)| (name.as_str(), addr))
        .collect();
    starts.sort_by_key(|&(_, addr)| addr);
    let mut regions = Vec::with_capacity(starts.len());
    for (i, &(name, start)) in starts.iter().enumerate() {
        let end = starts.get(i + 1).map_or(data_end, |&(_, next)| next);
        let bytes = &program.data.data[(start - data_base) as usize..(end - data_base) as usize];
        let mut summary: Option<(Nib, Nib)> = None;
        for &b in bytes {
            let lo = Nib::Known(b & 0xF);
            let hi = Nib::Known(b >> 4);
            summary = Some(match summary {
                Some((slo, shi)) => (slo.join(lo), shi.join(hi)),
                None => (lo, hi),
            });
        }
        regions.push(Region {
            name: name.to_string(),
            start,
            end,
            summary: summary.unwrap_or((Nib::Known(0), Nib::Known(0))),
            writable: bytes.iter().all(|&b| b == 0),
        });
    }
    regions
}

/// Solved BCD value facts: the abstract register file at each reachable
/// instruction (`None` where unreachable).
pub struct BcdValues {
    /// Per-instruction in-state, indexed by register number.
    pub states: Vec<Option<Box<[AbsVal; 32]>>>,
    /// Data-region names and their final summaries, for diagnostics.
    pub region_notes: Vec<(String, Nib, Nib)>,
}

impl BcdValues {
    /// The abstract value `instr`'s operand register holds on entry to
    /// instruction `i` (`ANY` when untracked).
    #[must_use]
    pub fn value_at(&self, i: u32, reg: Reg) -> AbsVal {
        if reg == Reg::ZERO {
            return AbsVal::constant(0);
        }
        self.states[i as usize]
            .as_ref()
            .map_or(AbsVal::ANY, |s| s[reg.number() as usize])
    }

    /// The summary of the data region a constant address falls in.
    #[must_use]
    pub fn region_load(&self, program: &Program, addr: u64, op: LoadOp) -> Option<(String, AbsVal)> {
        let regions = build_regions(program);
        let region = regions.iter().find(|r| addr >= r.start && addr < r.end)?;
        // Re-apply the final summaries computed during solving.
        let (name, lo, hi) = self
            .region_notes
            .iter()
            .find(|(name, _, _)| *name == region.name)?;
        let summarized = Region {
            name: name.clone(),
            start: region.start,
            end: region.end,
            summary: (*lo, *hi),
            writable: region.writable,
        };
        let signed = matches!(op, LoadOp::Lb | LoadOp::Lh | LoadOp::Lw);
        Some((name.clone(), summarized.load(op.size() as usize, signed)))
    }

    /// Propagates the nibble lattice to a fixpoint. Region summaries and
    /// register values depend on each other, so the register fixpoint runs
    /// inside an outer loop that re-applies every store until the
    /// summaries stabilize (the summary lattice is tiny, so this takes a
    /// handful of rounds at most).
    #[must_use]
    pub fn solve(cfg: &Cfg, program: &Program) -> BcdValues {
        let mut regions = build_regions(program);
        let mut states = solve_registers(cfg, &regions);
        for _round in 0..8 {
            let mut changed = false;
            let mut wild_store = false;
            for i in 0..cfg.len() as u32 {
                let Some(Instr::Store { op, rs2, rs1, offset }) = cfg.instrs[i as usize] else {
                    continue;
                };
                if !cfg.reachable[i as usize] {
                    continue;
                }
                let Some(state) = &states[i as usize] else { continue };
                let value = if rs2 == Reg::ZERO {
                    AbsVal::constant(0)
                } else {
                    state[rs2.number() as usize]
                };
                let base = if rs1 == Reg::ZERO {
                    AbsVal::constant(0)
                } else {
                    state[rs1.number() as usize]
                };
                match base.as_const() {
                    Some(b) => {
                        let addr = b.wrapping_add(offset as i64 as u64);
                        let size = op.size() as usize;
                        if let Some(region) =
                            regions.iter_mut().find(|r| addr >= r.start && addr < r.end)
                        {
                            region.writable = true;
                            for byte in 0..size {
                                let lo = value.nibs[(2 * byte).min(15)];
                                let hi = value.nibs[(2 * byte + 1).min(15)];
                                changed |= region.absorb_byte(lo, hi);
                            }
                        }
                    }
                    // Stack traffic is not data-region traffic: the stack
                    // lives outside the data segment by construction.
                    None if rs1 == Reg::SP => {}
                    None => wild_store = true,
                }
            }
            if wild_store {
                for region in regions.iter_mut().filter(|r| r.writable) {
                    changed |= region.absorb_byte(Nib::Any, Nib::Any);
                }
            }
            if !changed {
                break;
            }
            states = solve_registers(cfg, &regions);
        }
        let region_notes = regions
            .iter()
            .map(|r| (r.name.clone(), r.summary.0, r.summary.1))
            .collect();
        BcdValues {
            states,
            region_notes,
        }
    }
}

type RegVals = Box<[AbsVal; 32]>;

fn join_into(dst: &mut RegVals, src: &RegVals) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        let merged = d.join(s);
        if merged != *d {
            *d = merged;
            changed = true;
        }
    }
    changed
}

fn solve_registers(cfg: &Cfg, regions: &[Region]) -> Vec<Option<RegVals>> {
    let n = cfg.len();
    let mut states: Vec<Option<RegVals>> = vec![None; n];
    let mut queue = VecDeque::new();
    let mut on_queue = vec![false; n];
    let mut top: RegVals = Box::new([AbsVal::ANY; 32]);
    top[Reg::ZERO.number() as usize] = AbsVal::constant(0);
    for root in cfg.roots() {
        states[root as usize] = Some(top.clone());
        if !std::mem::replace(&mut on_queue[root as usize], true) {
            queue.push_back(root);
        }
    }
    while let Some(i) = queue.pop_front() {
        on_queue[i as usize] = false;
        let Some(state) = &states[i as usize] else { continue };
        let mut out = state.clone();
        if let Some(instr) = &cfg.instrs[i as usize] {
            apply(instr, cfg.pc(i), &mut out, regions);
        }
        for &t in &cfg.succs[i as usize] {
            let changed = match &mut states[t as usize] {
                Some(existing) => join_into(existing, &out),
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !std::mem::replace(&mut on_queue[t as usize], true) {
                queue.push_back(t);
            }
        }
    }
    states
}

/// Exact 64-bit constant evaluation of the RV64IM ALU operations.
fn eval_op(op: OpOp, a: u64, b: u64) -> u64 {
    let (sa, sb) = (a as i64, b as i64);
    match op {
        OpOp::Add => a.wrapping_add(b),
        OpOp::Sub => a.wrapping_sub(b),
        OpOp::Sll => a.wrapping_shl(b as u32 & 63),
        OpOp::Slt => u64::from(sa < sb),
        OpOp::Sltu => u64::from(a < b),
        OpOp::Xor => a ^ b,
        OpOp::Srl => a.wrapping_shr(b as u32 & 63),
        OpOp::Sra => (sa.wrapping_shr(b as u32 & 63)) as u64,
        OpOp::Or => a | b,
        OpOp::And => a & b,
        OpOp::Mul => a.wrapping_mul(b),
        OpOp::Mulh => ((i128::from(sa) * i128::from(sb)) >> 64) as u64,
        OpOp::Mulhsu => ((i128::from(sa) * (u128::from(b) as i128)) >> 64) as u64,
        OpOp::Mulhu => ((u128::from(a) * u128::from(b)) >> 64) as u64,
        OpOp::Div => {
            if b == 0 {
                u64::MAX
            } else if sa == i64::MIN && sb == -1 {
                sa as u64
            } else {
                (sa / sb) as u64
            }
        }
        OpOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        OpOp::Rem => {
            if b == 0 {
                a
            } else if sa == i64::MIN && sb == -1 {
                0
            } else {
                (sa % sb) as u64
            }
        }
        OpOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn eval_op32(op: Op32Op, a: u64, b: u64) -> u64 {
    let (wa, wb) = (a as u32, b as u32);
    let (sa, sb) = (wa as i32, wb as i32);
    let word = match op {
        Op32Op::Addw => wa.wrapping_add(wb),
        Op32Op::Subw => wa.wrapping_sub(wb),
        Op32Op::Sllw => wa.wrapping_shl(wb & 31),
        Op32Op::Srlw => wa.wrapping_shr(wb & 31),
        Op32Op::Sraw => (sa.wrapping_shr(wb & 31)) as u32,
        Op32Op::Mulw => wa.wrapping_mul(wb),
        Op32Op::Divw => {
            if wb == 0 {
                u32::MAX
            } else if sa == i32::MIN && sb == -1 {
                sa as u32
            } else {
                (sa / sb) as u32
            }
        }
        Op32Op::Divuw => wa.checked_div(wb).unwrap_or(u32::MAX),
        Op32Op::Remw => {
            if wb == 0 {
                wa
            } else if sa == i32::MIN && sb == -1 {
                0
            } else {
                (sa % sb) as u32
            }
        }
        Op32Op::Remuw => {
            if wb == 0 {
                wa
            } else {
                wa % wb
            }
        }
    };
    word as i32 as i64 as u64
}

#[allow(clippy::too_many_lines)]
fn apply(instr: &Instr, pc: u64, state: &mut RegVals, regions: &[Region]) {
    let read = |state: &RegVals, reg: Reg| -> AbsVal {
        if reg == Reg::ZERO {
            AbsVal::constant(0)
        } else {
            state[reg.number() as usize]
        }
    };
    let write = |state: &mut RegVals, reg: Reg, val: AbsVal| {
        if reg != Reg::ZERO {
            state[reg.number() as usize] = val;
        }
    };
    match *instr {
        Instr::Lui { rd, imm20 } => {
            write(state, rd, AbsVal::constant(((i64::from(imm20)) << 12) as u64));
        }
        Instr::Auipc { rd, imm20 } => {
            write(
                state,
                rd,
                AbsVal::constant(pc.wrapping_add(((i64::from(imm20)) << 12) as u64)),
            );
        }
        Instr::Jal { rd, .. } | Instr::Jalr { rd, .. } => {
            write(state, rd, AbsVal::constant(pc.wrapping_add(4)));
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            let a = read(state, rs1);
            let imm_val = imm as i64 as u64;
            let result = if let Some(c) = a.as_const() {
                let op_op = match op {
                    OpImmOp::Addi => OpOp::Add,
                    OpImmOp::Slti => OpOp::Slt,
                    OpImmOp::Sltiu => OpOp::Sltu,
                    OpImmOp::Xori => OpOp::Xor,
                    OpImmOp::Ori => OpOp::Or,
                    OpImmOp::Andi => OpOp::And,
                    OpImmOp::Slli => OpOp::Sll,
                    OpImmOp::Srli => OpOp::Srl,
                    OpImmOp::Srai => OpOp::Sra,
                };
                AbsVal::constant(eval_op(op_op, c, imm_val))
            } else {
                let b = AbsVal::constant(imm_val);
                match op {
                    OpImmOp::Addi if imm == 0 => a,
                    OpImmOp::Andi => a.map2(&b, Nib::and),
                    OpImmOp::Ori => a.map2(&b, Nib::or),
                    OpImmOp::Xori => a.map2(&b, Nib::xor),
                    OpImmOp::Slli if imm & 3 == 0 && (0..64).contains(&imm) => {
                        a.shift_left_nibbles((imm / 4) as usize)
                    }
                    OpImmOp::Srli if imm & 3 == 0 && (0..64).contains(&imm) => {
                        a.shift_right_nibbles((imm / 4) as usize)
                    }
                    OpImmOp::Slti | OpImmOp::Sltiu => {
                        let mut nibs = [Nib::Known(0); 16];
                        nibs[0] = Nib::Digit;
                        AbsVal { nibs }
                    }
                    _ => AbsVal::ANY,
                }
            };
            write(state, rd, result);
        }
        Instr::OpImm32 { op, rd, rs1, imm } => {
            let a = read(state, rs1);
            let result = match a.as_const() {
                Some(c) => {
                    let op32 = match op {
                        OpImm32Op::Addiw => Op32Op::Addw,
                        OpImm32Op::Slliw => Op32Op::Sllw,
                        OpImm32Op::Srliw => Op32Op::Srlw,
                        OpImm32Op::Sraiw => Op32Op::Sraw,
                    };
                    AbsVal::constant(eval_op32(op32, c, imm as i64 as u64))
                }
                None => AbsVal::ANY,
            };
            write(state, rd, result);
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let a = read(state, rs1);
            let b = read(state, rs2);
            let result = match (a.as_const(), b.as_const()) {
                (Some(ca), Some(cb)) => AbsVal::constant(eval_op(op, ca, cb)),
                _ => match op {
                    OpOp::And => a.map2(&b, Nib::and),
                    OpOp::Or => a.map2(&b, Nib::or),
                    OpOp::Xor => a.map2(&b, Nib::xor),
                    OpOp::Slt | OpOp::Sltu => {
                        let mut nibs = [Nib::Known(0); 16];
                        nibs[0] = Nib::Digit;
                        AbsVal { nibs }
                    }
                    _ => AbsVal::ANY,
                },
            };
            write(state, rd, result);
        }
        Instr::Op32 { op, rd, rs1, rs2 } => {
            let a = read(state, rs1);
            let b = read(state, rs2);
            let result = match (a.as_const(), b.as_const()) {
                (Some(ca), Some(cb)) => AbsVal::constant(eval_op32(op, ca, cb)),
                _ => AbsVal::ANY,
            };
            write(state, rd, result);
        }
        Instr::Load { op, rd, rs1, offset } => {
            let base = read(state, rs1);
            let result = match base.as_const() {
                Some(b) => {
                    let addr = b.wrapping_add(offset as i64 as u64);
                    match regions.iter().find(|r| addr >= r.start && addr < r.end) {
                        Some(region) => {
                            let signed = matches!(op, LoadOp::Lb | LoadOp::Lh | LoadOp::Lw);
                            region.load(op.size() as usize, signed)
                        }
                        None => AbsVal::ANY,
                    }
                }
                None => AbsVal::ANY,
            };
            write(state, rd, result);
        }
        Instr::Store { .. } => {
            // Stores are folded into the region summaries by the outer
            // fixpoint in `BcdValues::solve`.
        }
        Instr::Csr { rd, .. } | Instr::CsrImm { rd, .. } => write(state, rd, AbsVal::ANY),
        Instr::Custom(rocc) => {
            if rocc.xd {
                write(state, rocc.rd, AbsVal::ANY);
            }
        }
        Instr::Ecall => {
            // Syscall return convention: a0 may be clobbered.
            write(state, Reg::A0, AbsVal::ANY);
        }
        Instr::Branch { .. } | Instr::Fence | Instr::Ebreak | Instr::Mret => {}
    }
}
