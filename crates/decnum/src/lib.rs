//! A decNumber-like IEEE 754-2008 decimal floating-point library.
//!
//! This crate plays the role the IBM decNumber C library plays in the paper:
//! it is the **pure-software decimal arithmetic baseline** that the
//! hardware-accelerated co-design is compared against, and the **reference
//! oracle** that every co-design implementation must agree with across the
//! verification database.
//!
//! The model follows the General Decimal Arithmetic specification:
//!
//! * [`DecNumber`] — sign + decimal coefficient + exponent, of any length;
//! * [`Context`] — working precision, rounding mode, exponent range and
//!   accumulated [`Status`] flags;
//! * arithmetic (`add`, `sub`, `mul`, `div`, `compare`, `quantize`, …) that
//!   computes exact intermediates and rounds once;
//! * conversions to and from the DPD interchange formats
//!   ([`dpd::Decimal64`], [`dpd::Decimal128`]).
//!
//! # Example
//!
//! ```
//! use decnum::{Context, DecNumber, Status};
//!
//! let mut ctx = Context::decimal64();
//! let x: DecNumber = "1.05".parse().unwrap();
//! let rate: DecNumber = "0.0825".parse().unwrap();
//! let tax = x.mul(&rate, &mut ctx);
//! assert_eq!(tax.to_string(), "0.086625");
//! assert!(ctx.status().is_clear());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod arith_ext;
mod context;
mod convert;
mod number;
mod round;

pub use context::{Context, Rounding, Status};
pub use convert::{add_decimal64, mul_decimal128, mul_decimal64, sub_decimal64};
pub use dpd::Sign;
pub use number::{DecNumber, Kind, ParseDecError};
