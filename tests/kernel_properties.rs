//! Property-based end-to-end test: random decimal64 operand pairs, executed
//! through the Method-1 guest kernel on the functional simulator, must match
//! the decNumber-style oracle bit for bit.
//!
//! Assembly and simulation are amortized by batching each proptest case
//! into one guest run over a vector of operand pairs.

use decimalarith::codesign::framework::{build_guest, run_functional, verify_results};
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::decnum::DecNumber;
use decimalarith::dpd::Sign;
use decimalarith::testgen::{CaseClass, TestVector};
use proptest::prelude::*;

fn operand() -> impl Strategy<Value = DecNumber> {
    (
        0u64..=9_999_999_999_999_999,
        -398i32..=369,
        any::<bool>(),
    )
        .prop_map(|(coeff, exp, neg)| {
            let digits: Vec<u8> = {
                let mut v = Vec::new();
                let mut c = coeff;
                while c != 0 {
                    v.push((c % 10) as u8);
                    c /= 10;
                }
                v
            };
            DecNumber::from_parts(
                if neg { Sign::Negative } else { Sign::Positive },
                &digits,
                exp,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case batch-runs 24 multiplications in the guest
        ..ProptestConfig::default()
    })]

    #[test]
    fn method1_guest_matches_oracle_on_random_operands(
        pairs in proptest::collection::vec((operand(), operand()), 24)
    ) {
        let vectors: Vec<TestVector> = pairs
            .into_iter()
            .map(|(x, y)| TestVector { x, y, class: CaseClass::Normal })
            .collect();
        let guest = build_guest(KernelKind::Method1, &vectors, 1).unwrap();
        let run = run_functional(&guest);
        let mismatches = verify_results(&run.results, &vectors);
        prop_assert!(
            mismatches.is_empty(),
            "mismatch at {:?}: {} × {}",
            mismatches.first(),
            vectors[*mismatches.first().unwrap()].x,
            vectors[*mismatches.first().unwrap()].y,
        );
    }

    #[test]
    fn software_guest_matches_oracle_on_random_operands(
        pairs in proptest::collection::vec((operand(), operand()), 24)
    ) {
        let vectors: Vec<TestVector> = pairs
            .into_iter()
            .map(|(x, y)| TestVector { x, y, class: CaseClass::Normal })
            .collect();
        let guest = build_guest(KernelKind::Software, &vectors, 1).unwrap();
        let run = run_functional(&guest);
        let mismatches = verify_results(&run.results, &vectors);
        prop_assert!(mismatches.is_empty(), "mismatches: {mismatches:?}");
    }
}
