use std::fmt;

/// Errors produced when constructing or operating on BCD values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BcdError {
    /// A raw word contained a nibble that is not a decimal digit.
    InvalidNibble {
        /// Digit position (0 = least significant) of the offending nibble.
        position: u32,
        /// The nibble's value (10..=15).
        nibble: u8,
    },
    /// A binary value does not fit in the target BCD width.
    ValueTooLarge {
        /// Number of decimal digits available in the target type.
        capacity: u32,
    },
    /// A digit outside `0..=9` was supplied.
    InvalidDigit {
        /// The offending digit value.
        digit: u8,
    },
    /// A string could not be parsed as an unsigned decimal integer.
    ParseError,
}

impl fmt::Display for BcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BcdError::InvalidNibble { position, nibble } => {
                write!(f, "invalid BCD nibble {nibble:#x} at digit position {position}")
            }
            BcdError::ValueTooLarge { capacity } => {
                write!(f, "value does not fit in {capacity} decimal digits")
            }
            BcdError::InvalidDigit { digit } => {
                write!(f, "digit {digit} is outside the decimal range 0..=9")
            }
            BcdError::ParseError => write!(f, "string is not an unsigned decimal integer"),
        }
    }
}

impl std::error::Error for BcdError {}
