//! The software-baseline guest kernels.
//!
//! [`kernel_decnumber`] reproduces the IBM decNumber algorithm the paper
//! compares against: coefficients unpack from DPD into base-1000 *units*
//! (decNumber's `DECDPUN=3` configuration — one unit per declet), a
//! schoolbook unit-array multiplication accumulates in memory with
//! carry-splitting by 1000 (the magic-multiply sequence a C compiler emits
//! for `/1000`), and rounding walks decimal digits off with divisions.
//!
//! [`kernel_bid`] is a second, binary-encoding-style baseline (the approach
//! of Intel's BID library): coefficients become single binary integers, the
//! product is one `mul`/`mulhu` pair, and all decimal structure is
//! recovered by division. It is considerably faster and serves as an
//! ablation point; the paper's baseline is decNumber.

/// The decNumber-style software kernel.
#[must_use]
pub(crate) fn kernel_decnumber() -> String {
    let prologue = super::method1::PROLOGUE;
    let epilogue = super::method1::EPILOGUE;
    // Unpack one operand's units from raw bits in `{bits}` to the array at
    // label `{arr}` (6 dword units, base 1000, least significant first).
    let unpack = |bits: &str, arr: &str, tag: &str| {
        let mut s = String::new();
        s += &format!("    la   t4, {arr}\n    la   t5, dpd2bin\n");
        for i in 0..5 {
            if i == 0 {
                s += &format!("    andi t0, {bits}, 1023\n");
            } else {
                s += &format!("    srli t0, {bits}, {}\n    andi t0, t0, 1023\n", 10 * i);
            }
            s += "    slli t0, t0, 1\n    add  t0, t0, t5\n    lhu  t1, 0(t0)\n";
            s += &format!("    sd   t1, {}(t4)\n", 8 * i);
        }
        // Unit 5 is the MSD from the combination field.
        s += &format!(
            "    srli t0, {bits}, 58
    andi t0, t0, 31
    srli t1, t0, 3
    li   t2, 3
    bne  t1, t2, sm_small_msd_{tag}
    andi t3, t0, 1
    addi t3, t3, 8
    j    sm_have_msd_{tag}
sm_small_msd_{tag}:
    andi t3, t0, 7
sm_have_msd_{tag}:
    sd   t3, 40(t4)\n"
        );
        s
    };
    let core = format!(
        "
    # ---- decNumber-style unit-array multiplication ----
{unpack_x}{unpack_y}
    la   t4, acc_units
    sd   zero, 0(t4)
    sd   zero, 8(t4)
    sd   zero, 16(t4)
    sd   zero, 24(t4)
    sd   zero, 32(t4)
    sd   zero, 40(t4)
    sd   zero, 48(t4)
    sd   zero, 56(t4)
    sd   zero, 64(t4)
    sd   zero, 72(t4)
    sd   zero, 80(t4)
    sd   zero, 88(t4)
    la   s4, x_units
    la   s5, y_units
    li   t5, 0                 # i * 8
sm_outer:
    add  t0, s4, t5
    ld   t6, 0(t0)             # x unit i
    li   t1, 0                 # j * 8
    li   t2, 0                 # carry
sm_inner:
    add  t0, s5, t1
    ld   t3, 0(t0)             # y unit j
    mul  t3, t3, t6
    add  t0, t5, t1
    add  t0, t0, t4
    ld   a6, 0(t0)
    add  t3, t3, a6
    add  t3, t3, t2            # t < 10^6
    # carry = t / 1000 via the compiler's magic multiply
    li   a7, 2199023256
    mul  t2, t3, a7
    srli t2, t2, 41
    li   a7, 1000
    mul  a6, t2, a7
    sub  t3, t3, a6            # t % 1000
    sd   t3, 0(t0)
    addi t1, t1, 8
    li   a7, 48
    bne  t1, a7, sm_inner
    # the row's final carry lands in acc[i+6]
    add  t0, t5, t1
    add  t0, t0, t4
    sd   t2, 0(t0)
sm_outer_next:
    addi t5, t5, 8
    li   a7, 48
    bne  t5, a7, sm_outer
    # ---- units -> 128-bit binary coefficient (Horner by 1000) ----
    li   a0, 0
    li   a1, 0
    li   t1, 88
sm_horner:
    li   t0, 1000
    mulhu t2, a0, t0
    mul  a0, a0, t0
    mul  a1, a1, t0
    add  a1, a1, t2
    add  t0, t4, t1
    ld   t0, 0(t0)
    add  a0, a0, t0
    sltu t2, a0, t0
    add  a1, a1, t2
    addi t1, t1, -8
    bgez t1, sm_horner
    mv   s11, a0
    mv   s9, a1
    j    k_pack
",
        unpack_x = unpack("s4", "x_units", "x"),
        unpack_y = unpack("s5", "y_units", "y"),
    );
    format!("{prologue}{core}{epilogue}")
}

/// The binary-path (BID-style) software kernel: one `mul`/`mulhu` product.
#[must_use]
pub(crate) fn kernel_bid() -> String {
    let prologue = super::method1::PROLOGUE;
    let epilogue = super::method1::EPILOGUE;
    let core = "
    # ---- binary coefficient product: one mul + one mulhu ----
    mul   s11, s6, s7
    mulhu s9, s6, s7
    j     k_pack
";
    format!("{prologue}{core}{epilogue}")
}
