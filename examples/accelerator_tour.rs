//! Accelerator tour: the hardware side of the framework — the instruction
//! set (Table II), the interface FSM transitions (Fig. 5), the encoding of
//! the custom instructions (Fig. 3 / Table III), and the area estimates
//! behind the Pareto analysis.
//!
//! ```text
//! cargo run --release --example accelerator_tour
//! ```

use decimalarith::codesign::report;
use decimalarith::rocc::{AcceleratorConfig, DecimalAccelerator, DecimalFunct};

fn main() {
    // Table II: the instruction set.
    println!("{}", report::table2());

    // Table III / Fig. 3: encodings.
    println!("{}", report::table3());

    // Fig. 5: drive the accelerator and print the interface-FSM trace.
    println!("Fig. 5: interface FSM transitions for a command sequence");
    let mut accelerator = DecimalAccelerator::new();
    accelerator.set_fsm_tracing(true);
    accelerator
        .command(DecimalFunct::ClrAll, 0, 0, 0, 0, 0)
        .expect("CLR_ALL executes");
    accelerator
        .command(DecimalFunct::Wr, 0x0905, 0, 0, 0, 1)
        .expect("WR executes");
    accelerator
        .command(DecimalFunct::DecAdd, 0x0905, 0x0095, 0, 0, 0)
        .expect("DEC_ADD executes");
    accelerator
        .command(DecimalFunct::Rd, 0, 0, 0, 1, 0)
        .expect("RD executes");
    for transition in accelerator.fsm().trace() {
        println!("  {transition}");
    }

    // Fig. 4 in numbers: the blocks and their estimated cost.
    println!("\nFig. 4 block costs (NAND2-equivalent gates):");
    let cla = decimalarith::bcd::cla::BcdCla::new(16).cost();
    println!("  16-digit BCD-CLA execution unit : {:>6} gates, {} levels", cla.gates, cla.delay_levels);
    for config in AcceleratorConfig::all_methods() {
        let cost = config.cost();
        println!(
            "  {:<10} accelerator total     : {:>6} gates, {} levels",
            config.name, cost.gates, cost.delay_levels
        );
    }

    // The latched-carry mechanism that chains 64-bit halves.
    println!("\ncarry chaining demo (17-digit multiple 9 x 9999999999999999):");
    let mut acc = DecimalAccelerator::new();
    let mut lo = 0u64;
    let mut hi = 0u64;
    for _ in 0..9 {
        lo = acc
            .command(DecimalFunct::DecAdd, lo, 0x9999_9999_9999_9999, 0, 0, 0)
            .expect("DEC_ADD executes")
            .rd_value
            .expect("responds");
        hi = acc
            .command(DecimalFunct::DecAdc, hi, 0, 0, 0, 0)
            .expect("DEC_ADC executes")
            .rd_value
            .expect("responds");
    }
    println!("  9X = {hi:x}{lo:016x} (BCD)");
    assert_eq!(format!("{hi:x}{lo:016x}"), "89999999999999991");
}
