//! Control and status register numbers used by the framework.

/// `cycle` — cycle counter for `RDCYCLE`, the instruction the paper uses to
/// count cycles ("We use RISC-V RDCYCLE instruction to count the number of
/// cycles").
pub const CYCLE: u16 = 0xC00;

/// `time` — wall-clock timer.
pub const TIME: u16 = 0xC01;

/// `instret` — instructions-retired counter for `RDINSTRET`.
pub const INSTRET: u16 = 0xC02;

/// `mhartid` — hardware thread id (always zero in the single-core models).
pub const MHARTID: u16 = 0xF14;

/// Returns the canonical name of a CSR number, if known.
#[must_use]
pub fn name(csr: u16) -> Option<&'static str> {
    match csr {
        CYCLE => Some("cycle"),
        TIME => Some("time"),
        INSTRET => Some("instret"),
        MHARTID => Some("mhartid"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(name(CYCLE), Some("cycle"));
        assert_eq!(name(INSTRET), Some("instret"));
        assert_eq!(name(0x123), None);
    }
}
