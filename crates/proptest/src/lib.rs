//! A self-contained, offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the property-test suites link against this drop-in instead. It
//! implements the API subset the workspace actually uses — the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), `prop_assert*!`,
//! [`prop_assume!`], [`prop_oneof!`], integer-range and tuple strategies,
//! [`arbitrary::any`], [`strategy::Just`], `prop_map`, and
//! [`collection::vec`] — with deterministic generation: every test function
//! draws from a PRNG seeded from its own module path, so failures
//! reproduce exactly across runs.
//!
//! Unlike real proptest there is no shrinking and no failure persistence;
//! a failing case panics with the bound values interpolated by the
//! assertion message, which is enough to reproduce (generation is a pure
//! function of the test name).

#![forbid(unsafe_code)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    ///
    /// Only `cases` is honoured; the other fields exist so struct-update
    /// syntax against `ProptestConfig::default()` compiles unchanged.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Unused compatibility field.
        pub max_local_rejects: u32,
        /// Unused compatibility field.
        pub max_global_rejects: u32,
        /// Unused compatibility field.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_local_rejects: 65_536,
                max_global_rejects: 1024,
                max_shrink_iters: 0,
            }
        }
    }

    /// A small, fast, deterministic PRNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded directly.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// An RNG seeded from a test's fully qualified name, so each
        /// property gets its own reproducible stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform value in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u128) -> u128 {
            assert!(bound > 0, "empty sampling bound");
            if bound == 1 {
                return 0;
            }
            // Modulo reduction; the bias is irrelevant for test generation.
            self.next_u128() % bound
        }
    }
}

/// Strategies: composable value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u128) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = rng.below(span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = rng.below(span) as i128;
                    (start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // u128/i128 ranges need widening beyond i128 differences; handled
    // separately over the values this workspace actually samples.
    impl Strategy for std::ops::Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }
    impl Strategy for std::ops::RangeInclusive<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            if start == 0 && end == u128::MAX {
                return rng.next_u128();
            }
            start + rng.below(end - start + 1)
        }
    }

    macro_rules! tuple_strategies {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategies!(A);
    tuple_strategies!(A, B);
    tuple_strategies!(A, B, C);
    tuple_strategies!(A, B, C, D);
    tuple_strategies!(A, B, C, D, E);
    tuple_strategies!(A, B, C, D, E, F);
    tuple_strategies!(A, B, C, D, E, F, G);
    tuple_strategies!(A, B, C, D, E, F, G, H);
}

/// `proptest::sample` — uniform selection from a fixed set of values.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The result of [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u128) as usize;
            self.0[i].clone()
        }
    }

    /// Uniformly selects one of `values` (must be non-empty).
    #[must_use]
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select(values)
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical whole-domain strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as the size argument of [`vec`].
    pub trait IntoSizeRange {
        /// The inclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u128) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with a length drawn from
    /// `size` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Each `fn name(bindings) { body }` becomes a zero-argument test that
/// draws `cases` sets of bindings and runs the body on each. Bindings are
/// either `pat in strategy` or `name: Type` (shorthand for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_body! { (__rng) ($($params)*) $body }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    ( ($rng:ident) () $body:block ) => {
        $body
    };
    ( ($rng:ident) ($pat:pat in $strat:expr $(, $($rest:tt)*)?) $body:block ) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_body! { ($rng) ($($($rest)*)?) $body }
    }};
    ( ($rng:ident) ($id:ident : $ty:ty $(, $($rest:tt)*)?) $body:block ) => {{
        let $id: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_body! { ($rng) ($($($rest)*)?) $body }
    }};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        use crate::strategy::Strategy;
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (-5i32..=7).generate(&mut rng);
            assert!((-5..=7).contains(&v));
            let u = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_all_forms(
            (a, b) in (0u64..10, 0u64..10),
            c in prop_oneof![Just(1u8), Just(2u8)],
            d: bool,
            v in crate::collection::vec(0u8..=9, 0..=4),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(c == 1 || c == 2);
            prop_assume!(d || !d);
            prop_assert!(v.len() <= 4);
            for x in v {
                prop_assert!(x <= 9);
            }
        }
    }
}
