//! Classic register dataflow over the recovered CFG: may-initialized
//! registers (forward), live registers (backward), and an on-demand
//! reaching-definitions query used to enrich diagnostics.
//!
//! All facts are 32-bit masks indexed by core register number, solved with
//! a worklist to a fixpoint at instruction granularity.

use std::collections::VecDeque;

use riscv_isa::{Instr, Reg};

use crate::cfg::Cfg;

/// Registers with defined values before the program runs: `x0` and the
/// stack pointer the loader sets up.
pub const ENTRY_DEFINED: u32 = reg_bit(Reg::ZERO) | reg_bit(Reg::SP);

/// The bit for `reg` in a register mask.
#[must_use]
pub const fn reg_bit(reg: Reg) -> u32 {
    1 << reg.number()
}

fn dest_mask(instr: &Instr) -> u32 {
    instr.dest().map_or(0, reg_bit)
}

fn source_mask(instr: &Instr) -> u32 {
    instr
        .sources()
        .into_iter()
        .flatten()
        .map(reg_bit)
        .fold(0, |acc, bit| acc | bit)
}

/// Solved register dataflow facts.
pub struct RegFlow {
    /// Registers defined on *some* path reaching each instruction. A read
    /// of a register absent from this set is defined on *no* path — a
    /// definite uninitialized read.
    pub may_init_in: Vec<u32>,
    /// Registers whose value may still be read after each instruction.
    pub live_out: Vec<u32>,
}

impl RegFlow {
    /// Solves both analyses. `roots` carries the initial may-init mask per
    /// analysis root; secondary roots (trap handlers, address-taken code)
    /// conventionally start all-defined, since their callers are outside
    /// the recovered graph.
    #[must_use]
    pub fn solve(cfg: &Cfg, roots: &[(u32, u32)]) -> RegFlow {
        let n = cfg.len();

        // Forward may-init: in = ∪ out(preds) ∪ root mask.
        let mut may_init_in = vec![0u32; n];
        let mut queue: VecDeque<u32> = VecDeque::new();
        for &(root, mask) in roots {
            may_init_in[root as usize] |= mask;
            queue.push_back(root);
        }
        let mut on_queue = vec![false; n];
        for &(root, _) in roots {
            on_queue[root as usize] = true;
        }
        while let Some(i) = queue.pop_front() {
            on_queue[i as usize] = false;
            let out = may_init_in[i as usize]
                | cfg.instrs[i as usize].as_ref().map_or(0, dest_mask);
            for &t in &cfg.succs[i as usize] {
                let merged = may_init_in[t as usize] | out;
                if merged != may_init_in[t as usize] {
                    may_init_in[t as usize] = merged;
                    if !std::mem::replace(&mut on_queue[t as usize], true) {
                        queue.push_back(t);
                    }
                }
            }
        }

        // Backward liveness: out = ∪ in(succs); in = (out \ dest) ∪ sources.
        let mut live_in = vec![0u32; n];
        let mut live_out = vec![0u32; n];
        let mut queue: VecDeque<u32> = (0..n as u32).collect();
        let mut on_queue = vec![true; n];
        while let Some(i) = queue.pop_front() {
            on_queue[i as usize] = false;
            let Some(instr) = &cfg.instrs[i as usize] else {
                continue;
            };
            let out: u32 = cfg.succs[i as usize]
                .iter()
                .map(|&t| live_in[t as usize])
                .fold(0, |acc, m| acc | m);
            live_out[i as usize] = out;
            let new_in = (out & !dest_mask(instr)) | source_mask(instr);
            if new_in != live_in[i as usize] {
                live_in[i as usize] = new_in;
                for &p in &cfg.preds[i as usize] {
                    if !std::mem::replace(&mut on_queue[p as usize], true) {
                        queue.push_back(p);
                    }
                }
            }
        }

        RegFlow {
            may_init_in,
            live_out,
        }
    }
}

/// The definitions of `reg` that reach the use at `use_idx`: a backward
/// search over predecessors that stops at (and collects) each defining
/// instruction. Returns definition sites sorted by instruction index; an
/// empty result means no definition reaches the use on any path.
#[must_use]
pub fn reaching_defs(cfg: &Cfg, use_idx: u32, reg: Reg) -> Vec<u32> {
    let mut defs = Vec::new();
    let mut visited = vec![false; cfg.len()];
    let mut stack: Vec<u32> = cfg.preds[use_idx as usize].clone();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut visited[i as usize], true) {
            continue;
        }
        if cfg.instrs[i as usize].as_ref().and_then(Instr::dest) == Some(reg) {
            defs.push(i);
            continue;
        }
        stack.extend(&cfg.preds[i as usize]);
    }
    defs.sort_unstable();
    defs
}
