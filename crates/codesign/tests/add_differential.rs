//! Differential test for the addition co-design path: `method1_add` with
//! the real accelerator backend must match the decNumber-style reference —
//! bits and flags — across the Add-operation verification database and
//! random operand pairs.

use codesign::backend::ClaBackend;
use codesign::native::{method1_add, software_add};
use decnum::Status;
use dpd::Decimal64;
use proptest::prelude::*;
use testgen::{generate, CaseClass, Operation, TestConfig};

fn check(x: Decimal64, y: Decimal64) {
    let mut ref_status = Status::CLEAR;
    let expected = software_add(x, y, &mut ref_status);
    let mut got_status = Status::CLEAR;
    let got = method1_add(x, y, &mut ClaBackend::new(), &mut got_status);
    assert_eq!(
        got.to_bits(),
        expected.to_bits(),
        "{} + {}: got {} want {}",
        codesign::format_decimal64(x),
        codesign::format_decimal64(y),
        codesign::format_decimal64(got),
        codesign::format_decimal64(expected),
    );
    assert_eq!(
        got_status, ref_status,
        "{} + {} flags",
        codesign::format_decimal64(x),
        codesign::format_decimal64(y)
    );
}

fn check_str(xs: &str, ys: &str) {
    let x = codesign::parse_decimal64(xs).unwrap();
    let y = codesign::parse_decimal64(ys).unwrap();
    check(x, y);
    check(y, x);
}

#[test]
fn handpicked_addition_cases() {
    check_str("12", "7.00");
    check_str("1E+2", "1E+4");
    check_str("0.1", "0.2");
    check_str("1.3", "-1.07");
    check_str("1.3", "-1.30");
    check_str("1.3", "-2.07");
    check_str("1", "-1E-16");
    check_str("1", "-1E-30");
    check_str("1E+20", "1E-20");
    check_str("9999999999999999", "1");
    check_str("9999999999999999", "0.5");
    check_str("9999999999999999", "-0.5");
    check_str("0", "0");
    check_str("-0", "0");
    check_str("-0", "-0");
    check_str("0E+5", "0E-3");
    check_str("5", "0E+2");
    check_str("1E-398", "1E-398");
    check_str("1E-398", "-1E-398");
    check_str("9.999999999999999E+384", "1E+369");
    check_str("9.999999999999999E+384", "-1E+369");
    check_str("NaN", "5");
    check_str("NaN123", "Infinity");
    check_str("Infinity", "-Infinity");
    check_str("Infinity", "5");
    check_str("-Infinity", "-Infinity");
}

#[test]
fn addition_verification_database() {
    let config = TestConfig {
        operation: Operation::Add,
        count: 400,
        class_mix: vec![
            (CaseClass::Normal, 1),
            (CaseClass::Rounding, 1),
            (CaseClass::Overflow, 1),
            (CaseClass::Underflow, 1),
            (CaseClass::Clamping, 1),
        ],
        ..TestConfig::default()
    };
    for vector in generate(&config) {
        let (xb, yb) = vector.to_decimal64_bits();
        check(Decimal64::from_bits(xb), Decimal64::from_bits(yb));
    }
}

fn operand() -> impl Strategy<Value = Decimal64> {
    (
        0u64..=9_999_999_999_999_999,
        -398i32..=369,
        any::<bool>(),
    )
        .prop_map(|(coeff, exp, neg)| {
            let bcd = bcd::Bcd64::from_value(coeff).unwrap();
            Decimal64::from_parts(
                if neg {
                    dpd::Sign::Negative
                } else {
                    dpd::Sign::Positive
                },
                bcd,
                exp,
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 400, ..ProptestConfig::default() })]

    #[test]
    fn addition_matches_reference_on_random_operands(x in operand(), y in operand()) {
        check(x, y);
    }

    #[test]
    fn addition_near_cancellation(
        coeff in 0u64..=9_999_999_999_999_999,
        exp in -50i32..=50,
        delta in 0u64..=9,
    ) {
        // x and -y nearly equal: the catastrophic-cancellation corner.
        let x = Decimal64::from_parts(
            dpd::Sign::Positive,
            bcd::Bcd64::from_value(coeff).unwrap(),
            exp,
        )
        .unwrap();
        let y = Decimal64::from_parts(
            dpd::Sign::Negative,
            bcd::Bcd64::from_value(coeff.saturating_add(delta).min(9_999_999_999_999_999)).unwrap(),
            exp,
        )
        .unwrap();
        check(x, y);
    }
}

#[test]
fn addition_backend_call_shape() {
    use codesign::backend::AccelBackend;
    // Effective addition: exactly 2 wide-add backend calls; effective
    // subtraction: 4 (complement+1, then add), +2 more when sticky borrows,
    // +1 for a rounding increment.
    let x = codesign::parse_decimal64("1234.5").unwrap();
    let y = codesign::parse_decimal64("678.9").unwrap();
    let mut backend = ClaBackend::new();
    let mut s = Status::CLEAR;
    let _ = method1_add(x, y, &mut backend, &mut s);
    assert_eq!(backend.calls(), 2, "same-sign add is one wide CLA pass");

    let y_neg = codesign::parse_decimal64("-678.9").unwrap();
    let mut backend = ClaBackend::new();
    let _ = method1_add(x, y_neg, &mut backend, &mut s);
    assert_eq!(backend.calls(), 4, "effective subtract is two wide passes");
}
