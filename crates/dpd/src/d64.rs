//! The decimal64 interchange format ("double" decimal in the paper).

use bcd::Bcd64;

use crate::declet::{decode_declet_bcd, encode_declet_bcd};
use crate::{Class, DpdError, Sign};

/// An IEEE 754-2008 decimal64 value in its DPD interchange encoding.
///
/// Bit layout (MSB first): 1 sign bit, a 5-bit combination field (two high
/// exponent bits + most significant digit, or a special marker), an 8-bit
/// exponent continuation, and a 50-bit coefficient continuation holding five
/// declets.
///
/// # Example
///
/// ```
/// use bcd::Bcd64;
/// use dpd::{Decimal64, Sign};
///
/// # fn main() -> Result<(), dpd::DpdError> {
/// // 902.4 = 9024 × 10^-1
/// let x = Decimal64::from_parts(Sign::Positive, Bcd64::from_value(9024).unwrap(), -1)?;
/// let parts = x.to_parts()?;
/// assert_eq!(parts.coefficient.to_value(), 9024);
/// assert_eq!(parts.exponent, -1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal64(u64);

/// The sign, coefficient and exponent of a finite decimal64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parts64 {
    /// The sign.
    pub sign: Sign,
    /// The coefficient, at most sixteen digits.
    pub coefficient: Bcd64,
    /// The exponent of the least significant coefficient digit (`q`).
    pub exponent: i32,
}

impl Decimal64 {
    /// Precision in decimal digits.
    pub const PRECISION: u32 = 16;
    /// Exponent bias applied to `q`.
    pub const BIAS: i32 = 398;
    /// Smallest exponent `q`.
    pub const EMIN_Q: i32 = -398;
    /// Largest exponent `q`.
    pub const EMAX_Q: i32 = 369;
    /// Largest adjusted exponent (IEEE `emax`).
    pub const EMAX: i32 = 384;
    /// Smallest adjusted exponent of a normal number (IEEE `emin`).
    pub const EMIN: i32 = -383;

    /// Positive zero (coefficient 0, exponent 0).
    pub const ZERO: Decimal64 = Decimal64(0x2238_0000_0000_0000);
    /// Positive infinity.
    pub const INFINITY: Decimal64 = Decimal64(0x7800_0000_0000_0000);
    /// Negative infinity.
    pub const NEG_INFINITY: Decimal64 = Decimal64(0xF800_0000_0000_0000);
    /// A quiet NaN with zero payload.
    pub const NAN: Decimal64 = Decimal64(0x7C00_0000_0000_0000);
    /// A signaling NaN with zero payload.
    pub const SNAN: Decimal64 = Decimal64(0x7E00_0000_0000_0000);

    const COMBO_SHIFT: u32 = 58;
    const EXP_CONT_SHIFT: u32 = 50;
    const EXP_CONT_BITS: u32 = 8;
    const DECLETS: u32 = 5;

    /// Wraps raw interchange bits. Every bit pattern is a valid decimal64
    /// (possibly non-canonical), so this cannot fail.
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        Decimal64(bits)
    }

    /// The raw interchange bits.
    #[must_use]
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Builds a finite value from sign, coefficient and exponent.
    ///
    /// # Errors
    ///
    /// Returns [`DpdError::ExponentOutOfRange`] if `exponent` is outside
    /// `[-398, 369]`. (Any sixteen-digit coefficient fits by construction.)
    pub fn from_parts(sign: Sign, coefficient: Bcd64, exponent: i32) -> Result<Self, DpdError> {
        if !(Self::EMIN_Q..=Self::EMAX_Q).contains(&exponent) {
            return Err(DpdError::ExponentOutOfRange {
                min: Self::EMIN_Q,
                max: Self::EMAX_Q,
            });
        }
        let biased = (exponent + Self::BIAS) as u64;
        let exp_high = biased >> Self::EXP_CONT_BITS; // 0..=2
        let exp_cont = biased & ((1 << Self::EXP_CONT_BITS) - 1);
        let msd = coefficient.digit(15);
        let combo = if msd <= 7 {
            (exp_high << 3) | u64::from(msd)
        } else {
            0b11000 | (exp_high << 1) | u64::from(msd - 8)
        };
        let mut coeff_cont = 0u64;
        for i in 0..Self::DECLETS {
            // Declet i covers digits 3i..3i+2.
            let triple = ((coefficient.raw() >> (12 * i)) & 0xFFF) as u16;
            coeff_cont |= u64::from(encode_declet_bcd(triple)) << (10 * i);
        }
        let bits = (u64::from(sign == Sign::Negative) << 63)
            | (combo << Self::COMBO_SHIFT)
            | (exp_cont << Self::EXP_CONT_SHIFT)
            | coeff_cont;
        Ok(Decimal64(bits))
    }

    /// Classifies the value.
    #[must_use]
    pub fn classify(self) -> Class {
        let combo = (self.0 >> Self::COMBO_SHIFT) & 0x1F;
        if combo >> 1 == 0b1111 {
            if combo & 1 == 0 {
                Class::Infinity
            } else if self.0 & (1 << 57) != 0 {
                Class::SignalingNan
            } else {
                Class::QuietNan
            }
        } else {
            Class::Finite
        }
    }

    /// The sign bit (note IEEE NaNs also carry a sign).
    #[must_use]
    pub fn sign(self) -> Sign {
        if self.0 >> 63 == 1 {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// True for finite values.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.classify() == Class::Finite
    }

    /// True for quiet or signaling NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        matches!(self.classify(), Class::QuietNan | Class::SignalingNan)
    }

    /// True for positive or negative infinity.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.classify() == Class::Infinity
    }

    /// True for finite zero (any exponent).
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.is_finite()
            && self
                .to_parts()
                .map(|p| p.coefficient.is_zero())
                .unwrap_or(false)
    }

    /// Decomposes a finite value.
    ///
    /// # Errors
    ///
    /// Returns [`DpdError::NotFinite`] for infinities and NaNs.
    pub fn to_parts(self) -> Result<Parts64, DpdError> {
        if !self.is_finite() {
            return Err(DpdError::NotFinite);
        }
        let combo = (self.0 >> Self::COMBO_SHIFT) & 0x1F;
        let (exp_high, msd) = if combo >> 3 == 0b11 {
            ((combo >> 1) & 0b11, 8 + (combo & 1))
        } else {
            (combo >> 3, combo & 0b111)
        };
        let exp_cont = (self.0 >> Self::EXP_CONT_SHIFT) & ((1 << Self::EXP_CONT_BITS) - 1);
        let biased = (exp_high << Self::EXP_CONT_BITS) | exp_cont;
        let mut raw = msd << 60;
        for i in 0..Self::DECLETS {
            let declet = ((self.0 >> (10 * i)) & 0x3FF) as u16;
            raw |= u64::from(decode_declet_bcd(declet)) << (12 * i);
        }
        Ok(Parts64 {
            sign: self.sign(),
            coefficient: Bcd64::from_raw_unchecked(raw),
            exponent: biased as i32 - Self::BIAS,
        })
    }

    /// The NaN payload (low coefficient digits), for diagnostics.
    ///
    /// Returns `None` for non-NaN values.
    #[must_use]
    pub fn nan_payload(self) -> Option<Bcd64> {
        if !self.is_nan() {
            return None;
        }
        let mut raw = 0u64;
        for i in 0..Self::DECLETS {
            let declet = ((self.0 >> (10 * i)) & 0x3FF) as u16;
            raw |= u64::from(decode_declet_bcd(declet)) << (12 * i);
        }
        Some(Bcd64::from_raw_unchecked(raw))
    }

    /// True if the encoding is canonical: special values have zeroed unused
    /// fields and every declet uses its canonical pattern.
    #[must_use]
    pub fn is_canonical(self) -> bool {
        match self.classify() {
            Class::Finite => {
                let parts = self.to_parts().expect("finite");
                Decimal64::from_parts(parts.sign, parts.coefficient, parts.exponent)
                    .expect("decoded parts are in range")
                    == self
            }
            Class::Infinity => self.0 & 0x03FF_FFFF_FFFF_FFFF == 0,
            Class::QuietNan | Class::SignalingNan => {
                let payload = self.nan_payload().expect("nan");
                let mut canonical = 0u64;
                for i in 0..Self::DECLETS {
                    let triple = ((payload.raw() >> (12 * i)) & 0xFFF) as u16;
                    canonical |= u64::from(encode_declet_bcd(triple)) << (10 * i);
                }
                // Exponent continuation below the signaling bit must be zero.
                self.0 & 0x01FF_FFFF_FFFF_FFFF == canonical
            }
        }
    }
}

impl Default for Decimal64 {
    fn default() -> Self {
        Decimal64::ZERO
    }
}

impl std::fmt::Display for Decimal64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.classify() {
            Class::Infinity => {
                write!(f, "{}Infinity", if self.sign() == Sign::Negative { "-" } else { "" })
            }
            Class::QuietNan => write!(f, "NaN"),
            Class::SignalingNan => write!(f, "sNaN"),
            Class::Finite => {
                let p = self.to_parts().expect("finite");
                if p.sign == Sign::Negative {
                    write!(f, "-")?;
                }
                if p.exponent == 0 {
                    write!(f, "{}", p.coefficient.to_value())
                } else {
                    write!(f, "{}E{:+}", p.coefficient.to_value(), p.exponent)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_constant_decodes() {
        let p = Decimal64::ZERO.to_parts().unwrap();
        assert_eq!(p.coefficient, Bcd64::ZERO);
        assert_eq!(p.exponent, 0);
        assert_eq!(p.sign, Sign::Positive);
        assert!(Decimal64::ZERO.is_zero());
    }

    #[test]
    fn one_encodes_to_known_bits() {
        // decimal64 1 = 0x2238000000000001 (a standard interchange vector).
        let one = Decimal64::from_parts(Sign::Positive, Bcd64::ONE, 0).unwrap();
        assert_eq!(one.to_bits(), 0x2238_0000_0000_0001);
    }

    #[test]
    fn minus_7_50_encodes_to_known_bits() {
        // -7.50 = -750e-2 = 0xA2300000000003D0 (IEEE 754-2008 example vector).
        let v = Decimal64::from_parts(Sign::Negative, Bcd64::from_value(750).unwrap(), -2)
            .unwrap();
        assert_eq!(v.to_bits(), 0xA230_0000_0000_03D0);
    }

    #[test]
    fn specials_classify() {
        assert_eq!(Decimal64::INFINITY.classify(), Class::Infinity);
        assert_eq!(Decimal64::NEG_INFINITY.classify(), Class::Infinity);
        assert_eq!(Decimal64::NEG_INFINITY.sign(), Sign::Negative);
        assert_eq!(Decimal64::NAN.classify(), Class::QuietNan);
        assert_eq!(Decimal64::SNAN.classify(), Class::SignalingNan);
        assert!(Decimal64::NAN.is_nan());
        assert!(!Decimal64::NAN.is_finite());
        assert!(Decimal64::INFINITY.is_infinite());
    }

    #[test]
    fn parts_roundtrip_extremes() {
        let cases = [
            (Sign::Positive, 0u64, Decimal64::EMIN_Q),
            (Sign::Negative, 9_999_999_999_999_999, Decimal64::EMAX_Q),
            (Sign::Positive, 1, 0),
            (Sign::Negative, 8_000_000_000_000_000, 100), // MSD 8 exercises the large-digit combo
        ];
        for (sign, coeff, exp) in cases {
            let c = Bcd64::from_value(coeff).unwrap();
            let v = Decimal64::from_parts(sign, c, exp).unwrap();
            let p = v.to_parts().unwrap();
            assert_eq!((p.sign, p.coefficient, p.exponent), (sign, c, exp));
        }
    }

    #[test]
    fn exponent_range_enforced() {
        assert!(Decimal64::from_parts(Sign::Positive, Bcd64::ONE, -399).is_err());
        assert!(Decimal64::from_parts(Sign::Positive, Bcd64::ONE, 370).is_err());
    }

    #[test]
    fn canonical_checks() {
        assert!(Decimal64::INFINITY.is_canonical());
        assert!(Decimal64::NAN.is_canonical());
        // Infinity with trailing garbage is non-canonical.
        assert!(!Decimal64::from_bits(Decimal64::INFINITY.to_bits() | 1).is_canonical());
        let v = Decimal64::from_parts(Sign::Positive, Bcd64::from_value(42).unwrap(), 5).unwrap();
        assert!(v.is_canonical());
    }

    #[test]
    fn nan_payload_roundtrip() {
        let payload = 0x0000_0000_0012_3456u64; // packed BCD digits
        let bits = Decimal64::NAN.to_bits()
            | {
                let mut cont = 0u64;
                for i in 0..5 {
                    let triple = ((payload >> (12 * i)) & 0xFFF) as u16;
                    cont |= u64::from(crate::declet::encode_declet_bcd(triple)) << (10 * i);
                }
                cont
            };
        let v = Decimal64::from_bits(bits);
        assert_eq!(v.nan_payload().unwrap().raw(), payload);
        assert!(v.is_canonical());
    }

    #[test]
    fn display_formats() {
        let v = Decimal64::from_parts(Sign::Negative, Bcd64::from_value(9024).unwrap(), -1)
            .unwrap();
        assert_eq!(v.to_string(), "-9024E-1");
        assert_eq!(Decimal64::NEG_INFINITY.to_string(), "-Infinity");
        assert_eq!(Decimal64::NAN.to_string(), "NaN");
    }
}
