//! A self-contained, offline stand-in for the `rand` crate (0.8 API
//! subset).
//!
//! The workspace builds in a container with no crates.io access, so this
//! drop-in provides the pieces actually used — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`/`gen_range`/`gen_bool` — backed by a deterministic
//! xoshiro256**-style generator. Streams are stable across runs and
//! platforms (the test database in `testgen` is a pure function of its
//! seed), though they differ from the real crate's.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws an unconstrained value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                wide as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

fn below(rng: &mut dyn RngCore, bound: u128) -> u128 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound == 1 {
        return 0;
    }
    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    wide % bound
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws an unconstrained value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53-bit uniform in [0, 1).
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(2019);
        let mut b = StdRng::seed_from_u64(2019);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(7);
        let first: Vec<u64> = (0..8).map(|_| a.gen_range(0..100)).collect();
        let other: Vec<u64> = (0..8).map(|_| c.gen_range(0..100)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-17..=42);
            assert!((-17..=42).contains(&v));
            let d: u8 = rng.gen_range(0..=9);
            assert!(d <= 9);
            let _: bool = rng.gen();
        }
    }
}
