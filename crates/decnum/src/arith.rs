//! Arithmetic operations: add, subtract, multiply, divide, compare,
//! quantize.
//!
//! Each operation follows the General Decimal Arithmetic specification:
//! handle special operands, compute an exact (or sticky-preserving)
//! intermediate, then round through [`DecNumber::finish`].

use std::cmp::Ordering;

use dpd::Sign;

use crate::context::{Context, Rounding, Status};
use crate::number::{DecNumber, Kind};

/// NaN handling shared by every unary operation: returns `Some(result)` if
/// the operand is a NaN (propagated quiet, with invalid-operation raised for
/// a signaling NaN).
pub(crate) fn handle_nan_unary(a: &DecNumber, ctx: &mut Context) -> Option<DecNumber> {
    match a.kind {
        Kind::Nan { signaling } => {
            if signaling {
                ctx.raise(Status::INVALID_OPERATION);
            }
            let mut out = a.clone();
            out.kind = Kind::Nan { signaling: false };
            Some(out)
        }
        _ => None,
    }
}

/// NaN handling shared by every binary operation.
pub(crate) fn handle_nan_binary(
    a: &DecNumber,
    b: &DecNumber,
    ctx: &mut Context,
) -> Option<DecNumber> {
    let a_nan = a.is_nan();
    let b_nan = b.is_nan();
    if !a_nan && !b_nan {
        return None;
    }
    if a.is_snan() || b.is_snan() {
        ctx.raise(Status::INVALID_OPERATION);
    }
    // Propagate the first NaN operand's payload (decNumber rule), made quiet.
    let source = if a_nan { a } else { b };
    let mut out = source.clone();
    out.kind = Kind::Nan { signaling: false };
    Some(out)
}

/// Compares coefficient magnitudes of two aligned digit vectors.
fn cmp_digits(a: &[u8], b: &[u8]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Adds two LSD-first digit vectors.
fn add_digits(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
    let mut carry = 0u8;
    for i in 0..a.len().max(b.len()) {
        let s = a.get(i).copied().unwrap_or(0) + b.get(i).copied().unwrap_or(0) + carry;
        out.push(s % 10);
        carry = s / 10;
    }
    if carry != 0 {
        out.push(carry);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Subtracts `b` from `a` (requires `a >= b`), LSD-first.
fn sub_digits(a: &[u8], b: &[u8]) -> Vec<u8> {
    debug_assert!(cmp_digits(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i8;
    for (i, &ad) in a.iter().enumerate() {
        let mut d = ad as i8 - b.get(i).copied().unwrap_or(0) as i8 - borrow;
        if d < 0 {
            d += 10;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.push(d as u8);
    }
    debug_assert_eq!(borrow, 0);
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Schoolbook multiplication of LSD-first digit vectors.
fn mul_digits(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut acc = vec![0u32; a.len() + b.len()];
    for (i, &da) in a.iter().enumerate() {
        if da == 0 {
            continue;
        }
        for (j, &db) in b.iter().enumerate() {
            acc[i + j] += u32::from(da) * u32::from(db);
        }
    }
    let mut out = Vec::with_capacity(acc.len());
    let mut carry = 0u32;
    for v in acc {
        let s = v + carry;
        out.push((s % 10) as u8);
        carry = s / 10;
    }
    while carry != 0 {
        out.push((carry % 10) as u8);
        carry /= 10;
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

impl DecNumber {
    /// Adds two numbers, rounding into `ctx`.
    #[must_use]
    pub fn add(&self, other: &DecNumber, ctx: &mut Context) -> DecNumber {
        self.add_inner(other, ctx, false)
    }

    /// Subtracts `other` from `self`, rounding into `ctx`.
    #[must_use]
    pub fn sub(&self, other: &DecNumber, ctx: &mut Context) -> DecNumber {
        self.add_inner(other, ctx, true)
    }

    fn add_inner(&self, other: &DecNumber, ctx: &mut Context, negate_other: bool) -> DecNumber {
        if let Some(n) = handle_nan_binary(self, other, ctx) {
            return n;
        }
        let other_sign = if negate_other {
            other.sign.negate()
        } else {
            other.sign
        };
        // Infinity handling.
        match (self.kind, other.kind) {
            (Kind::Infinity, Kind::Infinity) => {
                return if self.sign == other_sign {
                    DecNumber::infinity(self.sign)
                } else {
                    ctx.raise(Status::INVALID_OPERATION);
                    DecNumber::nan()
                };
            }
            (Kind::Infinity, _) => return DecNumber::infinity(self.sign),
            (_, Kind::Infinity) => return DecNumber::infinity(other_sign),
            _ => {}
        }

        // Align exponents: `hi` has the larger exponent.
        let (hi_digits, hi_sign, hi_exp, lo_digits, lo_sign, lo_exp) =
            if self.exponent >= other.exponent {
                (&self.digits, self.sign, self.exponent, &other.digits, other_sign, other.exponent)
            } else {
                (&other.digits, other_sign, other.exponent, &self.digits, self.sign, self.exponent)
            };
        let diff = (hi_exp - lo_exp) as usize;
        // Bound the alignment: beyond precision + a few guard digits the low
        // operand only contributes stickiness, so replace it by an epsilon
        // digit just below the window.
        let window = ctx.precision as usize + lo_digits.len() + 2;
        let (diff, lo_digits, lo_exp): (usize, Vec<u8>, i32) =
            if diff > window && !lo_digits.is_empty() && !hi_digits.is_empty() {
                (window, vec![1], hi_exp - window as i32)
            } else {
                (diff, lo_digits.clone(), lo_exp)
            };
        let mut hi_aligned = vec![0u8; diff];
        hi_aligned.extend_from_slice(hi_digits);

        let (digits, sign) = if hi_sign == lo_sign {
            (add_digits(&hi_aligned, &lo_digits), hi_sign)
        } else {
            match cmp_digits(&hi_aligned, &lo_digits) {
                Ordering::Greater => (sub_digits(&hi_aligned, &lo_digits), hi_sign),
                Ordering::Less => (sub_digits(&lo_digits, &hi_aligned), lo_sign),
                Ordering::Equal => {
                    // Exact cancellation: sign is positive except under
                    // floor rounding.
                    let sign = if ctx.rounding == Rounding::Floor {
                        Sign::Negative
                    } else {
                        Sign::Positive
                    };
                    (Vec::new(), sign)
                }
            }
        };
        // An exact zero sum of two zeros keeps the common sign if both share it.
        let sign = if digits.is_empty() && hi_sign == lo_sign {
            hi_sign
        } else {
            sign
        };
        DecNumber {
            sign,
            kind: Kind::Finite,
            digits,
            exponent: lo_exp,
        }
        .finish(ctx)
    }

    /// Multiplies two numbers, rounding into `ctx`. This is the operation
    /// the paper's co-design targets.
    #[must_use]
    pub fn mul(&self, other: &DecNumber, ctx: &mut Context) -> DecNumber {
        if let Some(n) = handle_nan_binary(self, other, ctx) {
            return n;
        }
        let sign = self.sign.xor(other.sign);
        match (self.kind, other.kind) {
            (Kind::Infinity, _) | (_, Kind::Infinity) => {
                // 0 × ∞ is invalid.
                return if self.is_zero() || other.is_zero() {
                    ctx.raise(Status::INVALID_OPERATION);
                    DecNumber::nan()
                } else {
                    DecNumber::infinity(sign)
                };
            }
            _ => {}
        }
        let digits = mul_digits(&self.digits, &other.digits);
        DecNumber {
            sign,
            kind: Kind::Finite,
            digits,
            exponent: self.exponent.saturating_add(other.exponent),
        }
        .finish(ctx)
    }

    /// Divides `self` by `other`, rounding into `ctx`.
    #[must_use]
    pub fn div(&self, other: &DecNumber, ctx: &mut Context) -> DecNumber {
        if let Some(n) = handle_nan_binary(self, other, ctx) {
            return n;
        }
        let sign = self.sign.xor(other.sign);
        match (self.kind, other.kind) {
            (Kind::Infinity, Kind::Infinity) => {
                ctx.raise(Status::INVALID_OPERATION);
                return DecNumber::nan();
            }
            (Kind::Infinity, _) => return DecNumber::infinity(sign),
            (_, Kind::Infinity) => {
                return DecNumber {
                    sign,
                    kind: Kind::Finite,
                    digits: Vec::new(),
                    exponent: ctx.etiny(),
                }
                .finish(ctx);
            }
            _ => {}
        }
        if other.is_zero() {
            return if self.is_zero() {
                ctx.raise(Status::INVALID_OPERATION);
                DecNumber::nan()
            } else {
                ctx.raise(Status::DIVISION_BY_ZERO);
                DecNumber::infinity(sign)
            };
        }
        let ideal_exponent = self.exponent.saturating_sub(other.exponent);
        if self.is_zero() {
            return DecNumber {
                sign,
                kind: Kind::Finite,
                digits: Vec::new(),
                exponent: ideal_exponent,
            }
            .finish(ctx);
        }
        // Scale the dividend so the integer quotient carries at least
        // precision + 2 digits, then long-divide.
        let scale = (other.digits.len() + ctx.precision as usize + 2)
            .saturating_sub(self.digits.len());
        let mut dividend = vec![0u8; scale];
        dividend.extend_from_slice(&self.digits);
        let (quotient, remainder) = long_divide(&dividend, &other.digits);
        let mut digits = quotient;
        let exact = remainder.is_empty();
        if !exact {
            // Fold the remainder into stickiness: the two guard digits above
            // the lowest position protect the round digit.
            if digits.first() == Some(&0) || digits.is_empty() {
                if digits.is_empty() {
                    digits.push(1);
                } else {
                    digits[0] = 1;
                }
            } else if digits[0] % 5 == 0 {
                digits[0] += 1;
            }
        }
        let mut result = DecNumber {
            sign,
            kind: Kind::Finite,
            digits,
            exponent: ideal_exponent - scale as i32,
        };
        if exact {
            // Prefer the ideal exponent: strip trailing zeros up to it.
            while result.exponent < ideal_exponent && result.digits.first() == Some(&0) {
                result.digits.remove(0);
                result.exponent += 1;
            }
            if result.digits.is_empty() {
                result.exponent = ideal_exponent;
            }
        }
        result.finish(ctx)
    }

    /// Numeric comparison ignoring signs of zero; `None` for NaN operands
    /// (a signaling NaN raises invalid-operation).
    #[must_use]
    pub fn partial_cmp_num(&self, other: &DecNumber, ctx: &mut Context) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            if self.is_snan() || other.is_snan() {
                ctx.raise(Status::INVALID_OPERATION);
            }
            return None;
        }
        // Infinities order directly (the subtraction below would be invalid).
        match (self.kind, other.kind) {
            (Kind::Infinity, Kind::Infinity) => {
                return Some(match (self.sign, other.sign) {
                    (a, b) if a == b => Ordering::Equal,
                    (Sign::Negative, _) => Ordering::Less,
                    _ => Ordering::Greater,
                });
            }
            (Kind::Infinity, _) => {
                return Some(if self.sign == Sign::Negative {
                    Ordering::Less
                } else {
                    Ordering::Greater
                });
            }
            (_, Kind::Infinity) => {
                return Some(if other.sign == Sign::Negative {
                    Ordering::Greater
                } else {
                    Ordering::Less
                });
            }
            _ => {}
        }
        // Compare by computing self - other exactly (no rounding).
        let mut wide = Context::with_precision(
            (self.digits.len() + other.digits.len() + 2).max(32) as u32,
        );
        let diff = self.sub(other, &mut wide);
        Some(if diff.is_zero() {
            Ordering::Equal
        } else if diff.is_negative() {
            Ordering::Less
        } else {
            Ordering::Greater
        })
    }

    /// The `compare` operation: −1, 0 or 1 as a number, NaN for unordered.
    #[must_use]
    pub fn compare(&self, other: &DecNumber, ctx: &mut Context) -> DecNumber {
        match self.partial_cmp_num(other, ctx) {
            None => DecNumber::nan(),
            Some(Ordering::Less) => DecNumber::from_i64(-1),
            Some(Ordering::Equal) => DecNumber::zero(),
            Some(Ordering::Greater) => DecNumber::one(),
        }
    }

    /// Rescales `self` to have the exponent of `other` (IEEE `quantize`).
    #[must_use]
    pub fn quantize(&self, other: &DecNumber, ctx: &mut Context) -> DecNumber {
        if let Some(n) = handle_nan_binary(self, other, ctx) {
            return n;
        }
        match (self.kind, other.kind) {
            (Kind::Infinity, Kind::Infinity) => return self.clone(),
            (Kind::Infinity, _) | (_, Kind::Infinity) => {
                ctx.raise(Status::INVALID_OPERATION);
                return DecNumber::nan();
            }
            _ => {}
        }
        let target = other.exponent;
        if self.is_zero() {
            return DecNumber {
                sign: self.sign,
                kind: Kind::Finite,
                digits: Vec::new(),
                exponent: target,
            }
            .finish(ctx);
        }
        let mut digits = self.digits.clone();
        let mut inexact = false;
        let mut rounded = false;
        if target > self.exponent {
            let discard = (target - self.exponent) as usize;
            let (r, i) = crate::round::round_off(&mut digits, discard, ctx.rounding, self.sign);
            rounded = r;
            inexact = i;
        } else if target < self.exponent {
            let pad = (self.exponent - target) as usize;
            if digits.len() + pad > ctx.precision as usize {
                ctx.raise(Status::INVALID_OPERATION);
                return DecNumber::nan();
            }
            let mut padded = vec![0u8; pad];
            padded.extend_from_slice(&digits);
            digits = padded;
        }
        if digits.len() > ctx.precision as usize {
            ctx.raise(Status::INVALID_OPERATION);
            return DecNumber::nan();
        }
        let result = DecNumber {
            sign: self.sign,
            kind: Kind::Finite,
            digits,
            exponent: target,
        };
        if result.is_finite() && !result.is_zero() && result.adjusted_exponent() > ctx.emax {
            ctx.raise(Status::INVALID_OPERATION);
            return DecNumber::nan();
        }
        if rounded {
            ctx.raise(Status::ROUNDED);
        }
        if inexact {
            ctx.raise(Status::INEXACT);
        }
        result
    }

    /// Fused multiply of sign/exponent only — exposed for the co-design
    /// methods, which compute the "easy" parts in software: returns
    /// `(result_sign, preliminary_exponent)` for `self × other`.
    #[must_use]
    pub fn mul_sign_exponent(&self, other: &DecNumber) -> (Sign, i32) {
        (
            self.sign.xor(other.sign),
            self.exponent.saturating_add(other.exponent),
        )
    }
}

/// Long division of LSD-first digit vectors: returns `(quotient, remainder)`.
fn long_divide(dividend: &[u8], divisor: &[u8]) -> (Vec<u8>, Vec<u8>) {
    debug_assert!(!divisor.is_empty());
    let mut quotient = vec![0u8; dividend.len()];
    let mut rem: Vec<u8> = Vec::with_capacity(divisor.len() + 1);
    for i in (0..dividend.len()).rev() {
        // rem = rem * 10 + dividend[i]
        rem.insert(0, dividend[i]);
        while rem.last() == Some(&0) {
            rem.pop();
        }
        let mut q = 0u8;
        while cmp_digits(&rem, divisor) != Ordering::Less {
            rem = sub_digits(&rem, divisor);
            q += 1;
        }
        quotient[i] = q;
    }
    while quotient.last() == Some(&0) {
        quotient.pop();
    }
    (quotient, rem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DecNumber {
        s.parse().unwrap()
    }

    fn c64() -> Context {
        Context::decimal64()
    }

    #[test]
    fn add_basic() {
        let mut ctx = c64();
        assert_eq!(n("12").add(&n("7.00"), &mut ctx).to_string(), "19.00");
        assert_eq!(n("1E+2").add(&n("1E+4"), &mut ctx).to_string(), "1.01E+4");
        assert_eq!(n("0.1").add(&n("0.2"), &mut ctx).to_string(), "0.3");
        assert!(ctx.status().is_clear());
    }

    #[test]
    fn sub_and_cancellation() {
        let mut ctx = c64();
        assert_eq!(n("1.3").sub(&n("1.07"), &mut ctx).to_string(), "0.23");
        assert_eq!(n("1.3").sub(&n("1.30"), &mut ctx).to_string(), "0.00");
        assert_eq!(n("1.3").sub(&n("2.07"), &mut ctx).to_string(), "-0.77");
    }

    #[test]
    fn cancellation_sign_under_floor() {
        let mut ctx = c64().with_rounding(Rounding::Floor);
        let z = n("1").sub(&n("1"), &mut ctx);
        assert!(z.is_zero());
        assert!(z.is_negative());
        let mut ctx2 = c64();
        assert!(!n("1").sub(&n("1"), &mut ctx2).is_negative());
    }

    #[test]
    fn add_far_apart_exponents() {
        let mut ctx = c64();
        let r = n("1E+20").add(&n("1E-20"), &mut ctx);
        assert_eq!(r.to_string(), "1.000000000000000E+20");
        assert!(ctx.status().contains(Status::INEXACT));

        let mut ctx2 = c64();
        // 1 - 1E-30 is within 1E-30 of 1, so it rounds back up to 1.
        let r2 = n("1").sub(&n("1E-30"), &mut ctx2);
        assert_eq!(r2.to_string(), "1.000000000000000");
        assert!(ctx2.status().contains(Status::INEXACT));

        let mut ctx3 = c64();
        // 1 - 1E-16 really does yield sixteen nines.
        let r3 = n("1").sub(&n("1E-16"), &mut ctx3);
        assert_eq!(r3.to_string(), "0.9999999999999999");
    }

    #[test]
    fn add_infinities() {
        let mut ctx = c64();
        assert!(n("Infinity").add(&n("1"), &mut ctx).is_infinite());
        assert!(n("Infinity").add(&n("Infinity"), &mut ctx).is_infinite());
        let r = n("Infinity").sub(&n("Infinity"), &mut ctx);
        assert!(r.is_nan());
        assert!(ctx.status().contains(Status::INVALID_OPERATION));
    }

    #[test]
    fn mul_basic() {
        let mut ctx = c64();
        assert_eq!(n("1.20").mul(&n("3"), &mut ctx).to_string(), "3.60");
        assert_eq!(n("7").mul(&n("3"), &mut ctx).to_string(), "21");
        assert_eq!(n("0.9").mul(&n("0.8"), &mut ctx).to_string(), "0.72");
        assert_eq!(n("-5").mul(&n("3"), &mut ctx).to_string(), "-15");
        assert_eq!(n("-5").mul(&n("-3"), &mut ctx).to_string(), "15");
    }

    #[test]
    fn mul_rounding_and_flags() {
        let mut ctx = c64();
        let r = n("9999999999999999").mul(&n("9999999999999999"), &mut ctx);
        assert_eq!(r.to_string(), "9.999999999999998E+31");
        assert!(ctx.status().contains(Status::ROUNDED.union(Status::INEXACT)));
    }

    #[test]
    fn mul_specials() {
        let mut ctx = c64();
        assert!(n("Infinity").mul(&n("-2"), &mut ctx).is_negative());
        let invalid = n("0").mul(&n("Infinity"), &mut ctx);
        assert!(invalid.is_nan());
        assert!(ctx.status().contains(Status::INVALID_OPERATION));
    }

    #[test]
    fn mul_overflow_underflow() {
        let mut ctx = c64();
        assert!(n("1E+300").mul(&n("1E+300"), &mut ctx).is_infinite());
        assert!(ctx.status().contains(Status::OVERFLOW));
        let mut ctx2 = c64();
        let tiny = n("1E-300").mul(&n("1E-300"), &mut ctx2);
        assert!(tiny.is_zero());
        assert!(ctx2.status().contains(Status::UNDERFLOW));
    }

    #[test]
    fn nan_propagation() {
        let mut ctx = c64();
        let r = n("NaN123").mul(&n("7"), &mut ctx);
        assert!(r.is_nan());
        assert_eq!(r.coefficient_digits(), &[3, 2, 1]);
        assert!(!ctx.status().contains(Status::INVALID_OPERATION));
        let r2 = n("sNaN5").add(&n("7"), &mut ctx);
        assert!(r2.is_nan());
        assert!(!r2.is_snan(), "result NaN must be quiet");
        assert!(ctx.status().contains(Status::INVALID_OPERATION));
    }

    #[test]
    fn div_basic() {
        let mut ctx = c64();
        assert_eq!(n("1").div(&n("3"), &mut ctx).to_string(), "0.3333333333333333");
        assert_eq!(n("2").div(&n("3"), &mut ctx).to_string(), "0.6666666666666667");
        assert_eq!(n("5").div(&n("2"), &mut ctx).to_string(), "2.5");
        assert_eq!(n("1").div(&n("10"), &mut ctx).to_string(), "0.1");
        assert_eq!(n("12").div(&n("12"), &mut ctx).to_string(), "1");
        assert_eq!(n("8.00").div(&n("2"), &mut ctx).to_string(), "4.00");
    }

    #[test]
    fn div_exact_prefers_ideal_exponent() {
        let mut ctx = c64();
        // 2.400 / 2 = 1.200 (ideal exponent -3).
        assert_eq!(n("2.400").div(&n("2"), &mut ctx).to_string(), "1.200");
        // 1000 / 10 = 100 (ideal exponent 0 -> "100").
        assert_eq!(n("1000").div(&n("10"), &mut ctx).to_string(), "100");
    }

    #[test]
    fn div_specials() {
        let mut ctx = c64();
        let dbz = n("1").div(&n("0"), &mut ctx);
        assert!(dbz.is_infinite());
        assert!(ctx.status().contains(Status::DIVISION_BY_ZERO));
        let mut ctx2 = c64();
        assert!(n("0").div(&n("0"), &mut ctx2).is_nan());
        assert!(ctx2.status().contains(Status::INVALID_OPERATION));
        let mut ctx3 = c64();
        let z = n("5").div(&n("Infinity"), &mut ctx3);
        assert!(z.is_zero());
        let neg = n("-1").div(&n("0"), &mut ctx3);
        assert!(neg.is_infinite() && neg.is_negative());
    }

    #[test]
    fn compare_ops() {
        let mut ctx = c64();
        assert_eq!(
            n("2.1").partial_cmp_num(&n("3"), &mut ctx),
            Some(Ordering::Less)
        );
        assert_eq!(
            n("2.1").partial_cmp_num(&n("2.10"), &mut ctx),
            Some(Ordering::Equal)
        );
        assert_eq!(
            n("3").partial_cmp_num(&n("2.1"), &mut ctx),
            Some(Ordering::Greater)
        );
        assert_eq!(
            n("-0").partial_cmp_num(&n("0"), &mut ctx),
            Some(Ordering::Equal)
        );
        assert_eq!(n("NaN").partial_cmp_num(&n("1"), &mut ctx), None);
        assert_eq!(n("2.1").compare(&n("3"), &mut ctx).to_string(), "-1");
        assert_eq!(
            n("-Infinity").partial_cmp_num(&n("1E+300"), &mut ctx),
            Some(Ordering::Less)
        );
        assert_eq!(
            n("Infinity").partial_cmp_num(&n("Infinity"), &mut ctx),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn quantize_basic() {
        let mut ctx = c64();
        assert_eq!(n("2.17").quantize(&n("0.001"), &mut ctx).to_string(), "2.170");
        assert_eq!(n("2.17").quantize(&n("0.1"), &mut ctx).to_string(), "2.2");
        assert_eq!(n("2.17").quantize(&n("1e+1"), &mut ctx).to_string(), "0E+1");
        assert_eq!(n("-0.1").quantize(&n("1"), &mut ctx).to_string(), "-0");
    }

    #[test]
    fn quantize_invalid_cases() {
        let mut ctx = c64();
        let r = n("9999999999999999E+10").quantize(&n("1"), &mut ctx);
        assert!(r.is_nan());
        assert!(ctx.status().contains(Status::INVALID_OPERATION));
        let mut ctx2 = c64();
        assert!(n("Infinity").quantize(&n("1"), &mut ctx2).is_nan());
    }

    #[test]
    fn digit_helpers() {
        assert_eq!(add_digits(&[9, 9], &[1]), vec![0, 0, 1]);
        assert_eq!(sub_digits(&[0, 0, 1], &[1]), vec![9, 9]);
        assert_eq!(mul_digits(&[2, 1], &[3]), vec![6, 3]); // 12 * 3 = 36
        assert_eq!(mul_digits(&[], &[3]), Vec::<u8>::new());
        let (q, r) = long_divide(&[7, 3, 1], &[4]); // 137 / 4
        assert_eq!(q, vec![4, 3]); // 34
        assert_eq!(r, vec![1]);
    }
}
