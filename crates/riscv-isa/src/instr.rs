//! Instruction definitions for RV64IM plus the RoCC custom opcodes.

use std::fmt;

use crate::rocc::RoccInstruction;
use crate::Reg;

/// Conditional branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if less than (signed).
    Blt,
    /// Branch if greater or equal (signed).
    Bge,
    /// Branch if less than (unsigned).
    Bltu,
    /// Branch if greater or equal (unsigned).
    Bgeu,
}

impl BranchOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            BranchOp::Beq => 0b000,
            BranchOp::Bne => 0b001,
            BranchOp::Blt => 0b100,
            BranchOp::Bge => 0b101,
            BranchOp::Bltu => 0b110,
            BranchOp::Bgeu => 0b111,
        }
    }

    pub(crate) fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Bge => "bge",
            BranchOp::Bltu => "bltu",
            BranchOp::Bgeu => "bgeu",
        }
    }
}

/// Load widths and signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load byte, sign-extended.
    Lb,
    /// Load halfword, sign-extended.
    Lh,
    /// Load word, sign-extended.
    Lw,
    /// Load doubleword.
    Ld,
    /// Load byte, zero-extended.
    Lbu,
    /// Load halfword, zero-extended.
    Lhu,
    /// Load word, zero-extended.
    Lwu,
}

impl LoadOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            LoadOp::Lb => 0b000,
            LoadOp::Lh => 0b001,
            LoadOp::Lw => 0b010,
            LoadOp::Ld => 0b011,
            LoadOp::Lbu => 0b100,
            LoadOp::Lhu => 0b101,
            LoadOp::Lwu => 0b110,
        }
    }

    /// Access size in bytes.
    #[must_use]
    pub fn size(self) -> u64 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }

    pub(crate) fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Ld => "ld",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
            LoadOp::Lwu => "lwu",
        }
    }
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store halfword.
    Sh,
    /// Store word.
    Sw,
    /// Store doubleword.
    Sd,
}

impl StoreOp {
    pub(crate) fn funct3(self) -> u32 {
        match self {
            StoreOp::Sb => 0b000,
            StoreOp::Sh => 0b001,
            StoreOp::Sw => 0b010,
            StoreOp::Sd => 0b011,
        }
    }

    /// Access size in bytes.
    #[must_use]
    pub fn size(self) -> u64 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }

    pub(crate) fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
            StoreOp::Sd => "sd",
        }
    }
}

/// Register-immediate ALU operations (OP-IMM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpImmOp {
    /// Add immediate.
    Addi,
    /// Set if less than immediate (signed).
    Slti,
    /// Set if less than immediate (unsigned).
    Sltiu,
    /// XOR immediate.
    Xori,
    /// OR immediate.
    Ori,
    /// AND immediate.
    Andi,
    /// Shift left logical immediate (6-bit shamt).
    Slli,
    /// Shift right logical immediate.
    Srli,
    /// Shift right arithmetic immediate.
    Srai,
}

impl OpImmOp {
    pub(crate) fn mnemonic(self) -> &'static str {
        match self {
            OpImmOp::Addi => "addi",
            OpImmOp::Slti => "slti",
            OpImmOp::Sltiu => "sltiu",
            OpImmOp::Xori => "xori",
            OpImmOp::Ori => "ori",
            OpImmOp::Andi => "andi",
            OpImmOp::Slli => "slli",
            OpImmOp::Srli => "srli",
            OpImmOp::Srai => "srai",
        }
    }
}

/// 32-bit register-immediate ALU operations (OP-IMM-32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpImm32Op {
    /// Add word immediate.
    Addiw,
    /// Shift left logical word immediate (5-bit shamt).
    Slliw,
    /// Shift right logical word immediate.
    Srliw,
    /// Shift right arithmetic word immediate.
    Sraiw,
}

impl OpImm32Op {
    pub(crate) fn mnemonic(self) -> &'static str {
        match self {
            OpImm32Op::Addiw => "addiw",
            OpImm32Op::Slliw => "slliw",
            OpImm32Op::Srliw => "srliw",
            OpImm32Op::Sraiw => "sraiw",
        }
    }
}

/// Register-register ALU operations (OP), including the M extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Shift left logical.
    Sll,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Inclusive or.
    Or,
    /// Bitwise and.
    And,
    /// Multiply (low 64 bits).
    Mul,
    /// Multiply high, signed × signed.
    Mulh,
    /// Multiply high, signed × unsigned.
    Mulhsu,
    /// Multiply high, unsigned × unsigned.
    Mulhu,
    /// Divide, signed.
    Div,
    /// Divide, unsigned.
    Divu,
    /// Remainder, signed.
    Rem,
    /// Remainder, unsigned.
    Remu,
}

impl OpOp {
    /// True for M-extension operations.
    #[must_use]
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            OpOp::Mul
                | OpOp::Mulh
                | OpOp::Mulhsu
                | OpOp::Mulhu
                | OpOp::Div
                | OpOp::Divu
                | OpOp::Rem
                | OpOp::Remu
        )
    }

    pub(crate) fn mnemonic(self) -> &'static str {
        match self {
            OpOp::Add => "add",
            OpOp::Sub => "sub",
            OpOp::Sll => "sll",
            OpOp::Slt => "slt",
            OpOp::Sltu => "sltu",
            OpOp::Xor => "xor",
            OpOp::Srl => "srl",
            OpOp::Sra => "sra",
            OpOp::Or => "or",
            OpOp::And => "and",
            OpOp::Mul => "mul",
            OpOp::Mulh => "mulh",
            OpOp::Mulhsu => "mulhsu",
            OpOp::Mulhu => "mulhu",
            OpOp::Div => "div",
            OpOp::Divu => "divu",
            OpOp::Rem => "rem",
            OpOp::Remu => "remu",
        }
    }
}

/// 32-bit register-register ALU operations (OP-32), including M.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op32Op {
    /// Add word.
    Addw,
    /// Subtract word.
    Subw,
    /// Shift left logical word.
    Sllw,
    /// Shift right logical word.
    Srlw,
    /// Shift right arithmetic word.
    Sraw,
    /// Multiply word.
    Mulw,
    /// Divide word, signed.
    Divw,
    /// Divide word, unsigned.
    Divuw,
    /// Remainder word, signed.
    Remw,
    /// Remainder word, unsigned.
    Remuw,
}

impl Op32Op {
    /// True for M-extension operations.
    #[must_use]
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            Op32Op::Mulw | Op32Op::Divw | Op32Op::Divuw | Op32Op::Remw | Op32Op::Remuw
        )
    }

    pub(crate) fn mnemonic(self) -> &'static str {
        match self {
            Op32Op::Addw => "addw",
            Op32Op::Subw => "subw",
            Op32Op::Sllw => "sllw",
            Op32Op::Srlw => "srlw",
            Op32Op::Sraw => "sraw",
            Op32Op::Mulw => "mulw",
            Op32Op::Divw => "divw",
            Op32Op::Divuw => "divuw",
            Op32Op::Remw => "remw",
            Op32Op::Remuw => "remuw",
        }
    }
}

/// Zicsr operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Atomic read/write.
    Csrrw,
    /// Atomic read and set bits.
    Csrrs,
    /// Atomic read and clear bits.
    Csrrc,
}

impl CsrOp {
    pub(crate) fn funct3(self, imm_form: bool) -> u32 {
        let base = match self {
            CsrOp::Csrrw => 0b001,
            CsrOp::Csrrs => 0b010,
            CsrOp::Csrrc => 0b011,
        };
        if imm_form {
            base | 0b100
        } else {
            base
        }
    }

    pub(crate) fn mnemonic(self, imm_form: bool) -> &'static str {
        match (self, imm_form) {
            (CsrOp::Csrrw, false) => "csrrw",
            (CsrOp::Csrrs, false) => "csrrs",
            (CsrOp::Csrrc, false) => "csrrc",
            (CsrOp::Csrrw, true) => "csrrwi",
            (CsrOp::Csrrs, true) => "csrrsi",
            (CsrOp::Csrrc, true) => "csrrci",
        }
    }
}

/// A decoded RV64IM (plus RoCC custom) instruction.
///
/// Immediates hold their semantic, sign-extended values: branch and jump
/// offsets are byte offsets from the instruction's own address, and `Lui`
/// holds the raw 20-bit immediate (the value placed in bits 31:12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings are standard RISC-V
pub enum Instr {
    /// Load upper immediate: `rd = sign_extend(imm20 << 12)`.
    Lui { rd: Reg, imm20: i32 },
    /// Add upper immediate to PC.
    Auipc { rd: Reg, imm20: i32 },
    /// Jump and link.
    Jal { rd: Reg, offset: i32 },
    /// Jump and link register.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch.
    Branch { op: BranchOp, rs1: Reg, rs2: Reg, offset: i32 },
    /// Memory load.
    Load { op: LoadOp, rd: Reg, rs1: Reg, offset: i32 },
    /// Memory store.
    Store { op: StoreOp, rs2: Reg, rs1: Reg, offset: i32 },
    /// Register-immediate ALU operation.
    OpImm { op: OpImmOp, rd: Reg, rs1: Reg, imm: i32 },
    /// 32-bit register-immediate ALU operation.
    OpImm32 { op: OpImm32Op, rd: Reg, rs1: Reg, imm: i32 },
    /// Register-register ALU operation.
    Op { op: OpOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// 32-bit register-register ALU operation.
    Op32 { op: Op32Op, rd: Reg, rs1: Reg, rs2: Reg },
    /// Memory ordering fence (a no-op in the in-order models).
    Fence,
    /// Environment call.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Machine trap return (`mret`): jumps to `mepc`.
    Mret,
    /// CSR access, register form.
    Csr { op: CsrOp, rd: Reg, csr: u16, rs1: Reg },
    /// CSR access, immediate form (5-bit zero-extended immediate).
    CsrImm { op: CsrOp, rd: Reg, csr: u16, imm: u8 },
    /// A RoCC custom instruction (custom-0..custom-3).
    Custom(RoccInstruction),
}

impl Instr {
    /// A canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Instr = Instr::OpImm {
        op: OpImmOp::Addi,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// True if this instruction can change control flow.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }

    /// True if execution can continue at the next sequential instruction:
    /// everything except unconditional jumps and trap returns. (`Ecall` is
    /// sequential at the ISA level; an exit-syscall convention is the
    /// caller's knowledge, not the decoder's.)
    #[must_use]
    pub fn falls_through(&self) -> bool {
        !matches!(self, Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Mret)
    }

    /// The statically-known control-flow target of a jump or branch at
    /// `pc`: `pc + offset` for `Jal`/`Branch`, `None` for everything else
    /// (including `Jalr`, whose target is a register value).
    #[must_use]
    pub fn branch_target(&self, pc: u64) -> Option<u64> {
        match *self {
            Instr::Jal { offset, .. } | Instr::Branch { offset, .. } => {
                Some(pc.wrapping_add(offset as i64 as u64))
            }
            _ => None,
        }
    }

    /// True for the conventional call forms: `jal`/`jalr` linking through
    /// `ra` (`x1`).
    #[must_use]
    pub fn is_call(&self) -> bool {
        matches!(
            *self,
            Instr::Jal { rd: Reg::RA, .. } | Instr::Jalr { rd: Reg::RA, .. }
        )
    }

    /// True for the conventional return: `jalr zero, 0(ra)`.
    #[must_use]
    pub fn is_return(&self) -> bool {
        matches!(
            *self,
            Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            }
        )
    }

    /// The destination register, if the instruction writes one.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::OpImm32 { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::Op32 { rd, .. }
            | Instr::Csr { rd, .. }
            | Instr::CsrImm { rd, .. } => rd,
            Instr::Custom(rocc) if rocc.xd => rocc.rd,
            _ => return None,
        };
        (rd != Reg::ZERO).then_some(rd)
    }

    /// Source registers read by this instruction (up to two).
    #[must_use]
    pub fn sources(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Jalr { rs1, .. }
            | Instr::Load { rs1, .. }
            | Instr::OpImm { rs1, .. }
            | Instr::OpImm32 { rs1, .. }
            | Instr::Csr { rs1, .. } => [Some(rs1), None],
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs2, rs1, .. }
            | Instr::Op { rs1, rs2, .. }
            | Instr::Op32 { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::Custom(rocc) => [
                rocc.xs1.then_some(rocc.rs1),
                rocc.xs2.then_some(rocc.rs2),
            ],
            _ => [None, None],
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm20 } => write!(f, "lui {rd}, {:#x}", imm20 & 0xFFFFF),
            Instr::Auipc { rd, imm20 } => write!(f, "auipc {rd}, {:#x}", imm20 & 0xFFFFF),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch { op, rs1, rs2, offset } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic())
            }
            Instr::Load { op, rd, rs1, offset } => {
                write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic())
            }
            Instr::Store { op, rs2, rs1, offset } => {
                write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic())
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instr::OpImm32 { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Op32 { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Fence => write!(f, "fence"),
            Instr::Ecall => write!(f, "ecall"),
            Instr::Ebreak => write!(f, "ebreak"),
            Instr::Mret => write!(f, "mret"),
            Instr::Csr { op, rd, csr, rs1 } => {
                write!(f, "{} {rd}, {:#x}, {rs1}", op.mnemonic(false), csr)
            }
            Instr::CsrImm { op, rd, csr, imm } => {
                write!(f, "{} {rd}, {:#x}, {imm}", op.mnemonic(true), csr)
            }
            Instr::Custom(rocc) => write!(f, "{rocc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_shape() {
        assert_eq!(Instr::NOP.dest(), None);
        assert_eq!(Instr::NOP.sources(), [Some(Reg::ZERO), None]);
        assert!(!Instr::NOP.is_control_flow());
    }

    #[test]
    fn dest_hides_x0() {
        let i = Instr::Op {
            op: OpOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        assert_eq!(i.dest(), None);
        let j = Instr::Op {
            op: OpOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(j.dest(), Some(Reg::A0));
    }

    #[test]
    fn display_forms() {
        let i = Instr::Load {
            op: LoadOp::Ld,
            rd: Reg::A0,
            rs1: Reg::SP,
            offset: 16,
        };
        assert_eq!(i.to_string(), "ld a0, 16(sp)");
        let b = Instr::Branch {
            op: BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            offset: -8,
        };
        assert_eq!(b.to_string(), "bne a0, zero, -8");
    }

    #[test]
    fn control_flow_detection() {
        assert!(Instr::Jal { rd: Reg::RA, offset: 0 }.is_control_flow());
        assert!(!Instr::Ecall.is_control_flow());
    }

    #[test]
    fn cfg_helpers() {
        let call = Instr::Jal { rd: Reg::RA, offset: 16 };
        assert!(call.is_call());
        assert!(!call.falls_through());
        assert_eq!(call.branch_target(0x100), Some(0x110));

        let jump = Instr::Jal { rd: Reg::ZERO, offset: -8 };
        assert!(!jump.is_call());
        assert_eq!(jump.branch_target(0x100), Some(0xF8));

        let ret = Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 };
        assert!(ret.is_return());
        assert!(!ret.falls_through());
        assert!(!Instr::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 }.is_return());

        let branch = Instr::Branch {
            op: BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            offset: 12,
        };
        assert!(branch.falls_through());
        assert_eq!(branch.branch_target(0x100), Some(0x10C));

        assert!(!Instr::Mret.falls_through());
        assert!(Instr::Ecall.falls_through());
        assert_eq!(Instr::Ecall.branch_target(0x100), None);
    }

    #[test]
    fn load_store_sizes() {
        assert_eq!(LoadOp::Lb.size(), 1);
        assert_eq!(LoadOp::Lwu.size(), 4);
        assert_eq!(StoreOp::Sd.size(), 8);
    }
}
