//! Property tests pinning decnum arithmetic to exact integer references.

use decnum::{Context, DecNumber, Rounding, Status};
use proptest::prelude::*;
use std::cmp::Ordering;

/// A random finite decimal64-ish operand: coefficient up to 16 digits,
/// modest exponent.
fn operand() -> impl Strategy<Value = (u64, i32, bool)> {
    // Exponents stay within ±10 so exact i128 cross-checks cannot overflow.
    (0u64..=9_999_999_999_999_999, -10i32..=10, any::<bool>())
}

fn make(coeff: u64, exp: i32, neg: bool) -> DecNumber {
    let n = DecNumber::from_u64(coeff);
    DecNumber::from_parts(
        if neg {
            decnum::Sign::Negative
        } else {
            decnum::Sign::Positive
        },
        n.coefficient_digits(),
        exp,
    )
}

/// Exact value comparison via i128 scaling (valid when exponents are small).
fn exact_cmp(a: &DecNumber, b: &DecNumber) -> Ordering {
    let av = to_scaled_i128(a);
    let bv = to_scaled_i128(b);
    // Scale to common exponent.
    let (mut av, ae) = av;
    let (mut bv, be) = bv;
    let common = ae.min(be);
    for _ in common..ae {
        av *= 10;
    }
    for _ in common..be {
        bv *= 10;
    }
    av.cmp(&bv)
}

fn to_scaled_i128(n: &DecNumber) -> (i128, i32) {
    let mut v: i128 = 0;
    for &d in n.coefficient_digits().iter().rev() {
        v = v * 10 + i128::from(d);
    }
    if n.is_negative() {
        v = -v;
    }
    (v, n.exponent())
}

proptest! {
    #[test]
    fn mul_matches_exact_when_it_fits((ca, ea, na) in operand(), (cb, eb, nb) in operand()) {
        // Restrict to products that fit in 16 digits so no rounding happens.
        let a = make(ca % 100_000_000, ea, na);
        let b = make(cb % 100_000_000, eb, nb);
        let mut ctx = Context::decimal64();
        let p = a.mul(&b, &mut ctx);
        prop_assert!(!ctx.status().contains(Status::INEXACT));
        let expect = (ca % 100_000_000) as i128 * (cb % 100_000_000) as i128
            * if na != nb { -1 } else { 1 };
        let (got, gexp) = to_scaled_i128(&p);
        let mut scaled = got;
        for _ in (ea + eb)..gexp {
            scaled *= 10;
        }
        prop_assert_eq!(scaled, expect);
    }

    #[test]
    fn mul_commutes((ca, ea, na) in operand(), (cb, eb, nb) in operand()) {
        let a = make(ca, ea, na);
        let b = make(cb, eb, nb);
        let mut c1 = Context::decimal64();
        let mut c2 = Context::decimal64();
        prop_assert_eq!(a.mul(&b, &mut c1), b.mul(&a, &mut c2));
        prop_assert_eq!(c1.status(), c2.status());
    }

    #[test]
    fn add_commutes((ca, ea, na) in operand(), (cb, eb, nb) in operand()) {
        let a = make(ca, ea, na);
        let b = make(cb, eb, nb);
        let mut c1 = Context::decimal64();
        let mut c2 = Context::decimal64();
        prop_assert_eq!(a.add(&b, &mut c1), b.add(&a, &mut c2));
    }

    #[test]
    fn add_matches_i128(ca in 0u64..=9_999_999_999_999_999, cb in 0u64..=9_999_999_999_999_999, na: bool, nb: bool) {
        // Same exponent, result <= 17 digits: compare after one rounding.
        let a = make(ca, 0, na);
        let b = make(cb, 0, nb);
        let mut ctx = Context::with_precision(40);
        let s = a.add(&b, &mut ctx);
        let expect = (ca as i128) * if na {-1} else {1} + (cb as i128) * if nb {-1} else {1};
        let (got, gexp) = to_scaled_i128(&s);
        prop_assert_eq!(gexp, 0);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sub_self_is_zero((ca, ea, na) in operand()) {
        let a = make(ca, ea, na);
        let mut ctx = Context::decimal64();
        let z = a.sub(&a, &mut ctx);
        prop_assert!(z.is_zero());
    }

    #[test]
    fn mul_by_one_is_identity_up_to_rounding((ca, ea, na) in operand()) {
        let a = make(ca, ea, na);
        let mut ctx = Context::decimal64();
        let p = a.mul(&DecNumber::one(), &mut ctx);
        prop_assert_eq!(exact_cmp(&p, &a), Ordering::Equal);
    }

    #[test]
    fn compare_is_antisymmetric((ca, ea, na) in operand(), (cb, eb, nb) in operand()) {
        let a = make(ca, ea, na);
        let b = make(cb, eb, nb);
        let mut ctx = Context::decimal64();
        let ab = a.partial_cmp_num(&b, &mut ctx).unwrap();
        let ba = b.partial_cmp_num(&a, &mut ctx).unwrap();
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab, exact_cmp(&a, &b));
    }

    #[test]
    fn div_then_mul_round_trips(ca in 1u64..=9_999_999, cb in 1u64..=9_999_999) {
        let a = DecNumber::from_u64(ca);
        let b = DecNumber::from_u64(cb);
        let mut ctx = Context::decimal64();
        let q = a.div(&b, &mut ctx);
        let back = q.mul(&b, &mut ctx);
        // |back - a| <= one ulp-ish of a: verify relative error is tiny by
        // checking the first 14 digits agree.
        let mut wide = Context::with_precision(40);
        let diff = back.sub(&a, &mut wide).abs();
        let tolerance: DecNumber = format!("{ca}E-13").parse().unwrap();
        prop_assert_eq!(
            diff.partial_cmp_num(&tolerance, &mut wide),
            Some(Ordering::Less),
            "a={} b={} q={} back={}", a, b, q, back
        );
    }

    #[test]
    fn string_roundtrip((ca, ea, na) in operand()) {
        let a = make(ca, ea, na);
        let s = a.to_sci_string();
        let back: DecNumber = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn interchange_roundtrip((ca, ea, na) in operand()) {
        let a = make(ca, ea, na);
        let mut ctx = Context::decimal64();
        let d = a.to_decimal64(&mut ctx);
        let back = DecNumber::from_decimal64(d);
        // Encoding is exact for these operands.
        prop_assert!(!ctx.status().contains(Status::INEXACT));
        prop_assert_eq!(exact_cmp(&back, &a), Ordering::Equal);
    }

    #[test]
    fn rounding_modes_bracket_the_exact_value(
        (ca, ea, na) in operand(),
        (cb, eb, nb) in operand(),
    ) {
        // floor(x*y) <= x*y <= ceil(x*y) in every case.
        let a = make(ca, ea, na);
        let b = make(cb, eb, nb);
        let mut cf = Context::decimal64().with_rounding(Rounding::Floor);
        let mut cc = Context::decimal64().with_rounding(Rounding::Ceiling);
        let lo = a.mul(&b, &mut cf);
        let hi = a.mul(&b, &mut cc);
        if lo.is_finite() && hi.is_finite() {
            let mut ctx = Context::with_precision(80);
            prop_assert_ne!(
                lo.partial_cmp_num(&hi, &mut ctx),
                Some(Ordering::Greater),
                "floor result must not exceed ceiling result"
            );
        }
    }
}
