//! The functional RV64IM core.

use riscv_isa::instr::{BranchOp, CsrOp, Instr, LoadOp, Op32Op, OpImm32Op, OpImmOp, OpOp, StoreOp};
use riscv_isa::{csr, Reg};

use crate::coproc::{Coprocessor, NoCoprocessor, RoccCommand, RoccResponse};
use crate::snapshot::{CpuSnapshot, SnapshotError};
use crate::{CpuError, Memory};

/// Syscall numbers understood by the host interface (`a7` at `ecall`).
pub mod syscall {
    /// `exit(code)` — end the program.
    pub const EXIT: u64 = 93;
    /// `write(fd, buf, len)` — bytes are captured into the console buffer.
    pub const WRITE: u64 = 64;
    /// `mark(id)` — framework extension: records `(id, cycle, instret)` so
    /// harnesses can delimit measurement regions.
    pub const MARK: u64 = 0x700;
}

/// A memory access performed by a retired instruction, for the cache models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub store: bool,
}

/// Everything a timing model needs to know about one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// The instruction's own address.
    pub pc: u64,
    /// The decoded instruction.
    pub instr: Instr,
    /// Address of the next instruction to execute.
    pub next_pc: u64,
    /// Data-memory access, if any.
    pub mem_access: Option<MemAccess>,
    /// Accelerator response, if the instruction was a RoCC command.
    pub rocc: Option<RoccResponse>,
}

impl Retired {
    /// True if control transferred away from the fall-through path.
    #[must_use]
    pub fn redirected(&self) -> bool {
        self.next_pc != self.pc.wrapping_add(4)
    }
}

/// One step's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An instruction retired.
    Retired(Retired),
    /// The program called `exit`.
    Exited {
        /// The exit code passed in `a0`.
        code: i64,
    },
    /// A fault was delivered to the guest's M-mode trap handler (armed by
    /// writing a nonzero `mtvec`). The faulting instruction did not retire;
    /// the next fetch is from the handler.
    Trapped {
        /// The `mcause` code (see [`riscv_isa::csr::cause`]).
        cause: u64,
        /// The faulting pc, as written to `mepc`.
        epc: u64,
    },
}

/// One delivered guest trap, recorded for harnesses (fault-injection
/// classification, conformance checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapRecord {
    /// The `mcause` code.
    pub cause: u64,
    /// The faulting pc (`mepc`).
    pub epc: u64,
    /// The trap value (`mtval`): faulting address, CSR number, or 0.
    pub tval: u64,
}

/// A data-memory effect of one retired instruction, with the transferred
/// value — unlike [`MemAccess`] (which the cache models consume and which
/// only carries the address), this is the architectural view the
/// differential checker compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEffect {
    /// Effective address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub store: bool,
    /// The value now held at `addr` (the stored value for stores, the raw
    /// bytes that were loaded for loads), zero-extended to 64 bits.
    pub value: u64,
}

/// The canonical record of one retired instruction: the architectural
/// effects every simulator must agree on, independent of its timing model.
///
/// Records are identical across the functional, Rocket-like and atomic
/// simulators for the same program, with one documented exception: the
/// destination value of a `rdcycle`/`rdtime` CSR read reflects each timing
/// model's own cycle count (lockstep comparators mask it). `rdinstret`
/// values are identical everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetirementRecord {
    /// Retirement sequence number (the value of `instret` after this
    /// instruction, i.e. 1 for the first retirement).
    pub seq: u64,
    /// Address of the retired instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub instr: Instr,
    /// Address of the next instruction to execute.
    pub next_pc: u64,
    /// Destination-register writeback, if any: `(register, value after)`.
    pub rd_write: Option<(Reg, u64)>,
    /// Data-memory effect, if any.
    pub mem: Option<MemEffect>,
    /// The accelerator's `rd` value, if the instruction was a RoCC command
    /// with `xd` set. Timing fields of the response (busy cycles, memory
    /// traffic) are deliberately excluded — they are not architectural.
    pub rocc_rd: Option<u64>,
}

impl RetirementRecord {
    /// Builds the canonical record for `retired`, reading the post-step
    /// architectural state out of `cpu`. Must be called after the step that
    /// produced `retired` and before the next one.
    #[must_use]
    pub fn capture(cpu: &Cpu, retired: &Retired) -> RetirementRecord {
        let mem = retired.mem_access.map(|access| MemEffect {
            addr: access.addr,
            size: access.size,
            store: access.store,
            value: read_sized(&cpu.memory, access.addr, access.size),
        });
        RetirementRecord {
            seq: cpu.instret,
            pc: retired.pc,
            instr: retired.instr,
            next_pc: retired.next_pc,
            rd_write: retired.instr.dest().map(|reg| (reg, cpu.reg(reg))),
            mem,
            rocc_rd: retired.rocc.and_then(|resp| resp.rd_value),
        }
    }
}

impl std::fmt::Display for RetirementRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{:<6} {:#010x}  {:<32}", self.seq, self.pc, self.instr)?;
        if let Some((reg, value)) = self.rd_write {
            write!(f, "  {reg} <- {value:#x}")?;
        }
        if let Some(mem) = self.mem {
            let dir = if mem.store { "<-" } else { "->" };
            write!(f, "  [{:#x}] {dir} {:#x}", mem.addr, mem.value)?;
        }
        if let Some(rocc_rd) = self.rocc_rd {
            write!(f, "  rocc {rocc_rd:#x}")?;
        }
        Ok(())
    }
}

/// Maps a [`CpuError`] to its guest-visible `(mcause, mtval)`, or `None`
/// for host-level conditions that never trap (unknown syscalls, budget
/// exhaustion — those are simulation-harness concerns, not architecture).
#[must_use]
pub fn trap_cause(error: &CpuError) -> Option<(u64, u64)> {
    use riscv_isa::csr::cause;
    match *error {
        CpuError::MisalignedPc(a) => Some((cause::MISALIGNED_FETCH, a)),
        CpuError::FetchFault(a) => Some((cause::FETCH_FAULT, a)),
        CpuError::Decode(_) => Some((cause::ILLEGAL_INSTRUCTION, 0)),
        CpuError::Breakpoint(a) => Some((cause::BREAKPOINT, a)),
        CpuError::ReadOnlyCsr(c) => Some((cause::ILLEGAL_INSTRUCTION, u64::from(c))),
        CpuError::UnmappedAddress(a) => Some((cause::LOAD_FAULT, a)),
        CpuError::NoCoprocessor { .. }
        | CpuError::UnknownRoccFunction { .. }
        | CpuError::RoccProtocol(_)
        | CpuError::MissingRoccResponse { .. } => Some((cause::ILLEGAL_INSTRUCTION, 0)),
        CpuError::RoccTimeout { .. } => Some((cause::ROCC_TIMEOUT, 0)),
        CpuError::UnknownSyscall(_) | CpuError::InstructionLimit(_) => None,
    }
}

/// Reads `size` bytes at `addr` zero-extended to 64 bits; the access was
/// just performed by the instruction being recorded, so faults cannot occur.
fn read_sized(memory: &Memory, addr: u64, size: u64) -> u64 {
    let value = match size {
        1 => memory.read_u8(addr).map(u64::from),
        2 => memory.read_u16(addr).map(u64::from),
        4 => memory.read_u32(addr).map(u64::from),
        _ => memory.read_u64(addr),
    };
    value.unwrap_or(0)
}

/// An observer invoked on every retirement (the canonical stream).
pub type RetireObserver = Box<dyn FnMut(&RetirementRecord)>;

/// A `(marker id, cycle, instret)` triple recorded by the `mark` syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Marker {
    /// The marker id from `a0`.
    pub id: u64,
    /// The core cycle counter at the marker.
    pub cycle: u64,
    /// Instructions retired at the marker.
    pub instret: u64,
}

/// The functional RV64IM core with host interface and RoCC port.
///
/// The functional core advances [`Cpu::cycle`] by one per instruction; a
/// timing model (like `rocket-sim`) drives the field itself so guest
/// `rdcycle` reads observe modelled time.
///
/// # Example
///
/// ```
/// use riscv_sim::{Cpu, Memory};
/// use riscv_isa::{Instr, Reg};
/// use riscv_isa::instr::OpImmOp;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cpu = Cpu::new();
/// // addi a0, zero, 42 ; addi a7, zero, 93 ; ecall
/// let prog = [
///     Instr::OpImm { op: OpImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 42 },
///     Instr::OpImm { op: OpImmOp::Addi, rd: Reg::A7, rs1: Reg::ZERO, imm: 93 },
///     Instr::Ecall,
/// ];
/// for (i, instr) in prog.iter().enumerate() {
///     cpu.memory.write_u32(0x1000 + 4 * i as u64, instr.encode()?)?;
/// }
/// cpu.set_pc(0x1000);
/// let exit = cpu.run(1_000)?;
/// assert_eq!(exit, 42);
/// # Ok(())
/// # }
/// ```
pub struct Cpu {
    regs: [u64; 32],
    pc: u64,
    /// The cycle counter backing `rdcycle`. The functional core increments
    /// it once per instruction; timing models overwrite it.
    pub cycle: u64,
    /// Instructions retired (backs `rdinstret`).
    pub instret: u64,
    /// Guest-visible memory.
    pub memory: Memory,
    /// Captured `write` syscall output.
    pub console: Vec<u8>,
    /// Markers recorded by the `mark` syscall.
    pub markers: Vec<Marker>,
    /// Guest traps delivered so far (empty unless the guest armed `mtvec`).
    pub trap_log: Vec<TrapRecord>,
    /// RoCC busy-watchdog bound in cycles: if an accelerator response
    /// claims this many busy cycles or more (including the
    /// [`crate::ROCC_HANG`] hang sentinel), the core aborts the handshake
    /// instead of waiting forever.
    pub rocc_watchdog: u32,
    coprocessor: Box<dyn Coprocessor>,
    scratch_csrs: std::collections::BTreeMap<u16, u64>,
    retire_observer: Option<RetireObserver>,
}

/// Default RoCC busy-watchdog bound. Far above any legitimate command
/// (the slowest, `DEC_CNV`, stays under 70 cycles) and far below any
/// simulation budget.
pub const DEFAULT_ROCC_WATCHDOG: u32 = 10_000;

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &format_args!("{:#x}", self.pc))
            .field("cycle", &self.cycle)
            .field("instret", &self.instret)
            .finish_non_exhaustive()
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// A core with empty memory and no coprocessor attached.
    #[must_use]
    pub fn new() -> Self {
        Cpu {
            regs: [0; 32],
            pc: 0,
            cycle: 0,
            instret: 0,
            memory: Memory::new(),
            console: Vec::new(),
            markers: Vec::new(),
            trap_log: Vec::new(),
            rocc_watchdog: DEFAULT_ROCC_WATCHDOG,
            coprocessor: Box::new(NoCoprocessor),
            scratch_csrs: std::collections::BTreeMap::new(),
            retire_observer: None,
        }
    }

    /// Attaches an accelerator to the RoCC port.
    pub fn attach_coprocessor(&mut self, coprocessor: Box<dyn Coprocessor>) {
        self.coprocessor = coprocessor;
    }

    /// Installs an observer called with the canonical [`RetirementRecord`]
    /// of every retired instruction. The observer is harness state, not
    /// architectural state: [`Cpu::reset`] keeps it installed.
    ///
    /// Timing wrappers (`rocket-sim`, `atomic-sim`) execute through this
    /// core, so an observer installed here sees their streams too.
    pub fn set_retire_observer(&mut self, observer: impl FnMut(&RetirementRecord) + 'static) {
        self.retire_observer = Some(Box::new(observer));
    }

    /// Removes the retirement observer, if one is installed.
    pub fn clear_retire_observer(&mut self) {
        self.retire_observer = None;
    }

    /// A snapshot of the full integer register file, indexed by register
    /// number (`x0` is always zero).
    #[must_use]
    pub fn registers(&self) -> [u64; 32] {
        self.regs
    }

    /// Reads a register (x0 reads as zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    /// Writes a register (writes to x0 are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize] = value;
        }
    }

    /// The program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter (e.g. to a program's entry point).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Captures the complete architectural state — registers, pc,
    /// counters, scratch CSRs, all mapped memory pages, console/marker/
    /// trap logs, and (if the attached coprocessor supports it) the
    /// accelerator state. Restoring the snapshot into a fresh core
    /// continues the run bit-for-bit.
    ///
    /// The retirement observer is harness state, not machine state, and
    /// is not part of the snapshot.
    #[must_use]
    pub fn snapshot(&self) -> CpuSnapshot {
        CpuSnapshot {
            regs: self.regs,
            pc: self.pc,
            cycle: self.cycle,
            instret: self.instret,
            rocc_watchdog: self.rocc_watchdog,
            csrs: self.scratch_csrs.iter().map(|(&k, &v)| (k, v)).collect(),
            pages: self.memory.dump_pages(),
            console: self.console.clone(),
            markers: self.markers.clone(),
            trap_log: self.trap_log.clone(),
            coproc: self.coprocessor.snapshot_state(),
        }
    }

    /// Restores a previously captured snapshot, replacing all
    /// architectural state (the attached coprocessor and the retirement
    /// observer stay attached; the coprocessor is handed its own snapshot
    /// state, or reset if the snapshot carries none).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] if the snapshot's coprocessor state does
    /// not belong to the attached coprocessor, or a memory page is
    /// malformed. Validation happens before any state is overwritten
    /// except the coprocessor's own restore.
    pub fn restore(&mut self, snapshot: &CpuSnapshot) -> Result<(), SnapshotError> {
        match &snapshot.coproc {
            Some(coproc) => self.coprocessor.restore_state(coproc)?,
            None => self.coprocessor.reset(),
        }
        self.memory
            .restore_pages(&snapshot.pages)
            .map_err(SnapshotError::Malformed)?;
        self.regs = snapshot.regs;
        self.regs[0] = 0;
        self.pc = snapshot.pc;
        self.cycle = snapshot.cycle;
        self.instret = snapshot.instret;
        self.rocc_watchdog = snapshot.rocc_watchdog;
        self.scratch_csrs = snapshot.csrs.iter().copied().collect();
        self.console = snapshot.console.clone();
        self.markers = snapshot.markers.clone();
        self.trap_log = snapshot.trap_log.clone();
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// If the guest has armed M-mode trap delivery (nonzero `mtvec`),
    /// architectural faults — illegal instructions, access faults,
    /// accelerator timeouts — are delivered as [`Event::Trapped`] instead
    /// of erroring: `mepc`/`mcause`/`mtval` are written, the pc moves to
    /// the handler, and the faulting instruction does not retire. With
    /// `mtvec` zero (the reset value) faults surface to the host as
    /// before.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on fetch/load/store faults, undecodable
    /// instructions, unknown syscalls, `ebreak`, or coprocessor faults,
    /// when trap delivery is unarmed or the fault is host-level
    /// (unknown syscalls never trap).
    pub fn step(&mut self) -> Result<Event, CpuError> {
        let pc = self.pc;
        match self.step_inner() {
            Ok(event) => Ok(event),
            Err(error) => {
                let mtvec = self.scratch_csrs.get(&csr::MTVEC).copied().unwrap_or(0);
                let Some((cause, tval)) = trap_cause(&error) else {
                    return Err(error);
                };
                if mtvec == 0 {
                    return Err(error);
                }
                // Precise trap: step_inner leaves no partial architectural
                // state on any error path, so mepc points at an instruction
                // that can be re-executed or skipped by the handler.
                self.scratch_csrs.insert(csr::MEPC, pc);
                self.scratch_csrs.insert(csr::MCAUSE, cause);
                self.scratch_csrs.insert(csr::MTVAL, tval);
                self.pc = mtvec & !0x3;
                self.cycle += 1;
                self.trap_log.push(TrapRecord { cause, epc: pc, tval });
                Ok(Event::Trapped { cause, epc: pc })
            }
        }
    }

    fn step_inner(&mut self) -> Result<Event, CpuError> {
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            return Err(CpuError::MisalignedPc(pc));
        }
        let word = self
            .memory
            .read_u32(pc)
            .map_err(|_| CpuError::FetchFault(pc))?;
        let instr = Instr::decode(word).map_err(CpuError::Decode)?;
        let mut next_pc = pc.wrapping_add(4);
        let mut mem_access = None;
        let mut rocc = None;

        match instr {
            Instr::Lui { rd, imm20 } => {
                self.set_reg(rd, ((imm20 as i64) << 12) as u64);
            }
            Instr::Auipc { rd, imm20 } => {
                self.set_reg(rd, pc.wrapping_add(((imm20 as i64) << 12) as u64));
            }
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as i64 as u64);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as i64 as u64) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
            }
            Instr::Branch { op, rs1, rs2, offset } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match op {
                    BranchOp::Beq => a == b,
                    BranchOp::Bne => a != b,
                    BranchOp::Blt => (a as i64) < (b as i64),
                    BranchOp::Bge => (a as i64) >= (b as i64),
                    BranchOp::Bltu => a < b,
                    BranchOp::Bgeu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                }
            }
            Instr::Load { op, rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as i64 as u64);
                let value = match op {
                    LoadOp::Lb => self.memory.read_u8(addr)? as i8 as i64 as u64,
                    LoadOp::Lbu => self.memory.read_u8(addr)?.into(),
                    LoadOp::Lh => self.memory.read_u16(addr)? as i16 as i64 as u64,
                    LoadOp::Lhu => self.memory.read_u16(addr)?.into(),
                    LoadOp::Lw => self.memory.read_u32(addr)? as i32 as i64 as u64,
                    LoadOp::Lwu => self.memory.read_u32(addr)?.into(),
                    LoadOp::Ld => self.memory.read_u64(addr)?,
                };
                self.set_reg(rd, value);
                mem_access = Some(MemAccess {
                    addr,
                    size: op.size(),
                    store: false,
                });
            }
            Instr::Store { op, rs2, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as i64 as u64);
                let value = self.reg(rs2);
                match op {
                    StoreOp::Sb => self.memory.write_u8(addr, value as u8)?,
                    StoreOp::Sh => self.memory.write_u16(addr, value as u16)?,
                    StoreOp::Sw => self.memory.write_u32(addr, value as u32)?,
                    StoreOp::Sd => self.memory.write_u64(addr, value)?,
                }
                mem_access = Some(MemAccess {
                    addr,
                    size: op.size(),
                    store: true,
                });
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let imm_u = imm as i64 as u64;
                let value = match op {
                    OpImmOp::Addi => a.wrapping_add(imm_u),
                    OpImmOp::Slti => u64::from((a as i64) < imm as i64),
                    OpImmOp::Sltiu => u64::from(a < imm_u),
                    OpImmOp::Xori => a ^ imm_u,
                    OpImmOp::Ori => a | imm_u,
                    OpImmOp::Andi => a & imm_u,
                    OpImmOp::Slli => a << (imm & 0x3F),
                    OpImmOp::Srli => a >> (imm & 0x3F),
                    OpImmOp::Srai => ((a as i64) >> (imm & 0x3F)) as u64,
                };
                self.set_reg(rd, value);
            }
            Instr::OpImm32 { op, rd, rs1, imm } => {
                let a = self.reg(rs1) as u32;
                let value = match op {
                    OpImm32Op::Addiw => a.wrapping_add(imm as u32) as i32,
                    OpImm32Op::Slliw => (a << (imm & 0x1F)) as i32,
                    OpImm32Op::Srliw => (a >> (imm & 0x1F)) as i32,
                    OpImm32Op::Sraiw => (a as i32) >> (imm & 0x1F),
                };
                self.set_reg(rd, value as i64 as u64);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let value = match op {
                    OpOp::Add => a.wrapping_add(b),
                    OpOp::Sub => a.wrapping_sub(b),
                    OpOp::Sll => a << (b & 0x3F),
                    OpOp::Slt => u64::from((a as i64) < (b as i64)),
                    OpOp::Sltu => u64::from(a < b),
                    OpOp::Xor => a ^ b,
                    OpOp::Srl => a >> (b & 0x3F),
                    OpOp::Sra => ((a as i64) >> (b & 0x3F)) as u64,
                    OpOp::Or => a | b,
                    OpOp::And => a & b,
                    OpOp::Mul => a.wrapping_mul(b),
                    OpOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
                    OpOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
                    OpOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
                    OpOp::Div => {
                        if b == 0 {
                            u64::MAX
                        } else {
                            (a as i64).wrapping_div(b as i64) as u64
                        }
                    }
                    OpOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
                    OpOp::Rem => {
                        if b == 0 {
                            a
                        } else {
                            (a as i64).wrapping_rem(b as i64) as u64
                        }
                    }
                    OpOp::Remu => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                };
                self.set_reg(rd, value);
            }
            Instr::Op32 { op, rd, rs1, rs2 } => {
                let (a, b) = (self.reg(rs1) as u32, self.reg(rs2) as u32);
                let value: i32 = match op {
                    Op32Op::Addw => a.wrapping_add(b) as i32,
                    Op32Op::Subw => a.wrapping_sub(b) as i32,
                    Op32Op::Sllw => (a << (b & 0x1F)) as i32,
                    Op32Op::Srlw => (a >> (b & 0x1F)) as i32,
                    Op32Op::Sraw => (a as i32) >> (b & 0x1F),
                    Op32Op::Mulw => a.wrapping_mul(b) as i32,
                    Op32Op::Divw => {
                        if b == 0 {
                            -1
                        } else {
                            (a as i32).wrapping_div(b as i32)
                        }
                    }
                    Op32Op::Divuw => a.checked_div(b).map_or(-1, |q| q as i32),
                    Op32Op::Remw => {
                        if b == 0 {
                            a as i32
                        } else {
                            (a as i32).wrapping_rem(b as i32)
                        }
                    }
                    Op32Op::Remuw => {
                        if b == 0 {
                            a as i32
                        } else {
                            (a % b) as i32
                        }
                    }
                };
                self.set_reg(rd, value as i64 as u64);
            }
            Instr::Fence => {}
            Instr::Ebreak => return Err(CpuError::Breakpoint(pc)),
            Instr::Mret => {
                next_pc = self.scratch_csrs.get(&csr::MEPC).copied().unwrap_or(0);
            }
            Instr::Ecall => {
                let nr = self.reg(Reg::A7);
                match nr {
                    syscall::EXIT => {
                        self.instret += 1;
                        self.cycle += 1;
                        return Ok(Event::Exited {
                            code: self.reg(Reg::A0) as i64,
                        });
                    }
                    syscall::WRITE => {
                        let buf = self.reg(Reg::A1);
                        let len = self.reg(Reg::A2);
                        let bytes = self.memory.read_bytes(buf, len as usize)?;
                        self.console.extend_from_slice(&bytes);
                        self.set_reg(Reg::A0, len);
                    }
                    syscall::MARK => {
                        self.markers.push(Marker {
                            id: self.reg(Reg::A0),
                            cycle: self.cycle,
                            instret: self.instret,
                        });
                    }
                    _ => return Err(CpuError::UnknownSyscall(nr)),
                }
            }
            Instr::Csr { op, rd, csr, rs1 } => {
                let old = self.read_csr(csr)?;
                let src = self.reg(rs1);
                self.write_csr_op(op, csr, old, src, rs1 != Reg::ZERO)?;
                self.set_reg(rd, old);
            }
            Instr::CsrImm { op, rd, csr, imm } => {
                let old = self.read_csr(csr)?;
                self.write_csr_op(op, csr, old, u64::from(imm), imm != 0)?;
                self.set_reg(rd, old);
            }
            Instr::Custom(rocc_instr) => {
                let cmd = RoccCommand {
                    instruction: rocc_instr,
                    rs1_value: if rocc_instr.xs1 {
                        self.reg(rocc_instr.rs1)
                    } else {
                        0
                    },
                    rs2_value: if rocc_instr.xs2 {
                        self.reg(rocc_instr.rs2)
                    } else {
                        0
                    },
                };
                let resp = self.coprocessor.execute(&cmd, &mut self.memory)?;
                if resp.busy_cycles >= self.rocc_watchdog {
                    // The response will never arrive (or not within the
                    // bound): abort the handshake instead of hanging the
                    // core, and tell the accelerator so it can recover.
                    self.coprocessor.watchdog_abort();
                    return Err(CpuError::RoccTimeout {
                        funct7: rocc_instr.funct7,
                        watchdog: self.rocc_watchdog,
                    });
                }
                if rocc_instr.xd {
                    let value = resp.rd_value.ok_or(CpuError::MissingRoccResponse {
                        funct7: rocc_instr.funct7,
                    })?;
                    self.set_reg(rocc_instr.rd, value);
                }
                rocc = Some(resp);
            }
        }

        self.pc = next_pc;
        self.instret += 1;
        self.cycle += 1;
        let retired = Retired {
            pc,
            instr,
            next_pc,
            mem_access,
            rocc,
        };
        // Take the observer out so it can borrow the post-step state; it
        // cannot reach the Cpu, so it cannot install a replacement meanwhile.
        if let Some(mut observer) = self.retire_observer.take() {
            observer(&RetirementRecord::capture(self, &retired));
            self.retire_observer = Some(observer);
        }
        Ok(Event::Retired(retired))
    }

    fn read_csr(&self, number: u16) -> Result<u64, CpuError> {
        Ok(match number {
            csr::CYCLE | csr::TIME => self.cycle,
            csr::INSTRET => self.instret,
            csr::MHARTID => 0,
            _ => self.scratch_csrs.get(&number).copied().unwrap_or(0),
        })
    }

    fn write_csr_op(
        &mut self,
        op: CsrOp,
        number: u16,
        old: u64,
        src: u64,
        writes: bool,
    ) -> Result<(), CpuError> {
        // csrrs/csrrc with a zero source are pure reads and never trap.
        if !writes && matches!(op, CsrOp::Csrrs | CsrOp::Csrrc) {
            return Ok(());
        }
        match number {
            csr::CYCLE | csr::TIME | csr::INSTRET | csr::MHARTID => {
                Err(CpuError::ReadOnlyCsr(number))
            }
            _ => {
                let new = match op {
                    CsrOp::Csrrw => src,
                    CsrOp::Csrrs => old | src,
                    CsrOp::Csrrc => old & !src,
                };
                self.scratch_csrs.insert(number, new);
                Ok(())
            }
        }
    }

    /// Runs until exit or `max_instructions` retirements.
    ///
    /// # Errors
    ///
    /// Propagates any [`CpuError`] from [`Cpu::step`], or
    /// [`CpuError::InstructionLimit`] if the program did not exit in time.
    pub fn run(&mut self, max_instructions: u64) -> Result<i64, CpuError> {
        for _ in 0..max_instructions {
            if let Event::Exited { code } = self.step()? {
                return Ok(code);
            }
        }
        Err(CpuError::InstructionLimit(max_instructions))
    }

    /// Resets architectural state (registers, pc, counters, coprocessor)
    /// while keeping memory contents.
    pub fn reset(&mut self) {
        self.regs = [0; 32];
        self.pc = 0;
        self.cycle = 0;
        self.instret = 0;
        self.console.clear();
        self.markers.clear();
        self.trap_log.clear();
        self.scratch_csrs.clear();
        self.coprocessor.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(cpu: &mut Cpu, base: u64, prog: &[Instr]) {
        for (i, instr) in prog.iter().enumerate() {
            cpu.memory
                .write_u32(base + 4 * i as u64, instr.encode().unwrap())
                .unwrap();
        }
        cpu.set_pc(base);
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::OpImm {
            op: OpImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    fn exit_seq() -> [Instr; 2] {
        [addi(Reg::A7, Reg::ZERO, 93), Instr::Ecall]
    }

    #[test]
    fn arithmetic_loop_sums() {
        // Sum 1..=10 with a branch loop.
        let mut cpu = Cpu::new();
        let prog = vec![
            addi(Reg::T0, Reg::ZERO, 0),  // sum
            addi(Reg::T1, Reg::ZERO, 1),  // i
            addi(Reg::T2, Reg::ZERO, 10), // limit
            // loop:
            Instr::Op { op: OpOp::Add, rd: Reg::T0, rs1: Reg::T0, rs2: Reg::T1 },
            addi(Reg::T1, Reg::T1, 1),
            Instr::Branch { op: BranchOp::Bge, rs1: Reg::T2, rs2: Reg::T1, offset: -8 },
            addi(Reg::A0, Reg::T0, 0),
            addi(Reg::A7, Reg::ZERO, 93),
            Instr::Ecall,
        ];
        load(&mut cpu, 0x1000, &prog);
        assert_eq!(cpu.run(1000).unwrap(), 55);
    }

    #[test]
    fn memory_and_jal() {
        let mut cpu = Cpu::new();
        let mut prog = vec![
            Instr::Lui { rd: Reg::T0, imm20: 0x2 }, // t0 = 0x2000
            addi(Reg::T1, Reg::ZERO, 0x7F),
            Instr::Store { op: StoreOp::Sd, rs2: Reg::T1, rs1: Reg::T0, offset: 8 },
            Instr::Load { op: LoadOp::Ld, rd: Reg::A0, rs1: Reg::T0, offset: 8 },
        ];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        assert_eq!(cpu.run(100).unwrap(), 0x7F);
    }

    #[test]
    fn signed_div_edge_cases() {
        let mut cpu = Cpu::new();
        // i64::MIN / -1 must wrap, not fault.
        cpu.set_reg(Reg::A1, i64::MIN as u64);
        cpu.set_reg(Reg::A2, -1i64 as u64);
        let mut prog = vec![Instr::Op {
            op: OpOp::Div,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        }];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        assert_eq!(cpu.run(100).unwrap(), i64::MIN);
    }

    #[test]
    fn div_by_zero_semantics() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::A1, 42);
        let mut prog = vec![
            Instr::Op { op: OpOp::Divu, rd: Reg::T0, rs1: Reg::A1, rs2: Reg::ZERO },
            Instr::Op { op: OpOp::Remu, rd: Reg::T1, rs1: Reg::A1, rs2: Reg::ZERO },
            // a0 = (t0 == all-ones && t1 == 42) ? 1 : 0, computed branchlessly:
            addi(Reg::T2, Reg::ZERO, -1),
            Instr::Op { op: OpOp::Xor, rd: Reg::T0, rs1: Reg::T0, rs2: Reg::T2 },
            Instr::Op { op: OpOp::Sltu, rd: Reg::T0, rs1: Reg::ZERO, rs2: Reg::T0 },
            addi(Reg::A0, Reg::T1, 0),
        ];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        assert_eq!(cpu.run(100).unwrap(), 42);
    }

    #[test]
    fn word_ops_sign_extend() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::A1, 0x7FFF_FFFF);
        let mut prog = vec![Instr::OpImm32 {
            op: OpImm32Op::Addiw,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: 1,
        }];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        // 0x7FFFFFFF + 1 wraps to i32::MIN and sign-extends.
        assert_eq!(cpu.run(100).unwrap(), i32::MIN as i64);
    }

    #[test]
    fn write_syscall_captures_console() {
        let mut cpu = Cpu::new();
        cpu.memory.load_bytes(0x3000, b"hi!").unwrap();
        let mut prog = vec![
            addi(Reg::A0, Reg::ZERO, 1),
            Instr::Lui { rd: Reg::A1, imm20: 0x3 },
            addi(Reg::A2, Reg::ZERO, 3),
            addi(Reg::A7, Reg::ZERO, 64),
            Instr::Ecall,
        ];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        cpu.run(100).unwrap();
        assert_eq!(cpu.console, b"hi!");
    }

    #[test]
    fn markers_record_counters() {
        let mut cpu = Cpu::new();
        let mut prog = vec![
            addi(Reg::A0, Reg::ZERO, 7),
            addi(Reg::A7, Reg::ZERO, 0x700),
            Instr::Ecall,
        ];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        cpu.run(100).unwrap();
        assert_eq!(cpu.markers.len(), 1);
        assert_eq!(cpu.markers[0].id, 7);
        assert_eq!(cpu.markers[0].instret, 2);
    }

    #[test]
    fn rdcycle_reads_counter() {
        let mut cpu = Cpu::new();
        let mut prog = vec![
            Instr::NOP,
            Instr::NOP,
            Instr::Csr {
                op: CsrOp::Csrrs,
                rd: Reg::A0,
                csr: csr::CYCLE,
                rs1: Reg::ZERO,
            },
        ];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        assert_eq!(cpu.run(100).unwrap(), 2);
    }

    #[test]
    fn csr_write_to_cycle_traps() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::A1, 5);
        let prog = vec![Instr::Csr {
            op: CsrOp::Csrrw,
            rd: Reg::A0,
            csr: csr::CYCLE,
            rs1: Reg::A1,
        }];
        load(&mut cpu, 0x1000, &prog);
        assert!(matches!(cpu.step(), Err(CpuError::ReadOnlyCsr(0xC00))));
    }

    #[test]
    fn scratch_csr_set_clear() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::A1, 0b1100);
        cpu.set_reg(Reg::A2, 0b0100);
        let mut prog = vec![
            Instr::Csr { op: CsrOp::Csrrw, rd: Reg::ZERO, csr: 0x800, rs1: Reg::A1 },
            Instr::Csr { op: CsrOp::Csrrc, rd: Reg::ZERO, csr: 0x800, rs1: Reg::A2 },
            Instr::Csr { op: CsrOp::Csrrs, rd: Reg::A0, csr: 0x800, rs1: Reg::ZERO },
        ];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        assert_eq!(cpu.run(100).unwrap(), 0b1000);
    }

    #[test]
    fn ebreak_reports_breakpoint() {
        let mut cpu = Cpu::new();
        load(&mut cpu, 0x1000, &[Instr::Ebreak]);
        assert!(matches!(cpu.step(), Err(CpuError::Breakpoint(0x1000))));
    }

    #[test]
    fn unknown_syscall_faults() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::A7, 999);
        load(&mut cpu, 0x1000, &[Instr::Ecall]);
        assert!(matches!(cpu.step(), Err(CpuError::UnknownSyscall(999))));
    }

    #[test]
    fn instruction_limit_enforced() {
        let mut cpu = Cpu::new();
        // Infinite loop: jal zero, 0.
        load(&mut cpu, 0x1000, &[Instr::Jal { rd: Reg::ZERO, offset: 0 }]);
        assert!(matches!(
            cpu.run(10),
            Err(CpuError::InstructionLimit(10))
        ));
    }

    #[test]
    fn retire_observer_sees_canonical_stream() {
        let mut cpu = Cpu::new();
        let mut prog = vec![
            addi(Reg::T0, Reg::ZERO, 7),
            Instr::Lui { rd: Reg::T1, imm20: 0x2 }, // t1 = 0x2000
            Instr::Store { op: StoreOp::Sd, rs2: Reg::T0, rs1: Reg::T1, offset: 0 },
            Instr::Load { op: LoadOp::Ld, rd: Reg::A0, rs1: Reg::T1, offset: 0 },
        ];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        let stream = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = stream.clone();
        cpu.set_retire_observer(move |record| sink.borrow_mut().push(*record));
        assert_eq!(cpu.run(100).unwrap(), 7);
        let stream = stream.borrow();
        // The exiting ecall retires without a record; everything else streams.
        assert_eq!(stream.len(), prog.len() - 1);
        assert_eq!(stream[0].seq, 1);
        assert_eq!(stream[0].pc, 0x1000);
        assert_eq!(stream[0].rd_write, Some((Reg::T0, 7)));
        let store = &stream[2];
        assert_eq!(
            store.mem,
            Some(MemEffect { addr: 0x2000, size: 8, store: true, value: 7 })
        );
        let load_rec = &stream[3];
        assert_eq!(load_rec.rd_write, Some((Reg::A0, 7)));
        assert_eq!(
            load_rec.mem,
            Some(MemEffect { addr: 0x2000, size: 8, store: false, value: 7 })
        );
    }

    #[test]
    fn armed_mtvec_turns_faults_into_guest_traps() {
        let mut cpu = Cpu::new();
        // Handler at 0x2000: just exit with code 77.
        let handler = [addi(Reg::A0, Reg::ZERO, 77), addi(Reg::A7, Reg::ZERO, 93), Instr::Ecall];
        load(&mut cpu, 0x2000, &handler);
        // Main at 0x1000: arm mtvec, then execute an undecodable word.
        cpu.set_reg(Reg::T0, 0x2000);
        let main = [Instr::Csr { op: CsrOp::Csrrw, rd: Reg::ZERO, csr: csr::MTVEC, rs1: Reg::T0 }];
        load(&mut cpu, 0x1000, &main);
        cpu.memory.write_u32(0x1004, 0xFFFF_FFFF).unwrap();
        cpu.set_pc(0x1000);

        assert!(matches!(cpu.step(), Ok(Event::Retired(_))));
        let trapped = cpu.step().unwrap();
        assert_eq!(
            trapped,
            Event::Trapped { cause: riscv_isa::csr::cause::ILLEGAL_INSTRUCTION, epc: 0x1004 }
        );
        assert_eq!(cpu.pc(), 0x2000);
        assert_eq!(cpu.trap_log.len(), 1);
        assert_eq!(cpu.trap_log[0].epc, 0x1004);
        // The faulting instruction did not retire.
        assert_eq!(cpu.instret, 1);
        assert_eq!(cpu.run(100).unwrap(), 77);
    }

    #[test]
    fn mret_returns_to_mepc() {
        let mut cpu = Cpu::new();
        // Handler at 0x2000: skip the faulting instruction and return.
        cpu.set_reg(Reg::T0, 0x2000);
        let main = [
            Instr::Csr { op: CsrOp::Csrrw, rd: Reg::ZERO, csr: csr::MTVEC, rs1: Reg::T0 },
            Instr::Ebreak, // traps (cause 3)
            addi(Reg::A0, Reg::ZERO, 5),
            addi(Reg::A7, Reg::ZERO, 93),
            Instr::Ecall,
        ];
        load(&mut cpu, 0x1000, &main);
        let handler = [
            // t1 = mepc + 4; mepc = t1; mret
            Instr::Csr { op: CsrOp::Csrrs, rd: Reg::T1, csr: csr::MEPC, rs1: Reg::ZERO },
            addi(Reg::T1, Reg::T1, 4),
            Instr::Csr { op: CsrOp::Csrrw, rd: Reg::ZERO, csr: csr::MEPC, rs1: Reg::T1 },
            Instr::Mret,
        ];
        for (i, instr) in handler.iter().enumerate() {
            cpu.memory
                .write_u32(0x2000 + 4 * i as u64, instr.encode().unwrap())
                .unwrap();
        }
        cpu.set_pc(0x1000);
        assert_eq!(cpu.run(100).unwrap(), 5);
        assert_eq!(cpu.trap_log.len(), 1);
        assert_eq!(cpu.trap_log[0].cause, riscv_isa::csr::cause::BREAKPOINT);
    }

    #[test]
    fn unknown_syscall_never_traps() {
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::T0, 0x2000);
        cpu.set_reg(Reg::A7, 999);
        let main = [
            Instr::Csr { op: CsrOp::Csrrw, rd: Reg::ZERO, csr: csr::MTVEC, rs1: Reg::T0 },
            Instr::Ecall,
        ];
        load(&mut cpu, 0x1000, &main);
        cpu.step().unwrap();
        assert!(matches!(cpu.step(), Err(CpuError::UnknownSyscall(999))));
    }

    /// A coprocessor whose interface FSM is permanently wedged.
    struct WedgedCoproc {
        aborted: std::rc::Rc<std::cell::Cell<bool>>,
    }

    impl Coprocessor for WedgedCoproc {
        fn execute(
            &mut self,
            _cmd: &RoccCommand,
            _mem: &mut Memory,
        ) -> Result<RoccResponse, CpuError> {
            Ok(RoccResponse::hung())
        }
        fn watchdog_abort(&mut self) {
            self.aborted.set(true);
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn rocc_watchdog_bounds_a_hung_handshake() {
        use riscv_isa::rocc::{CustomOpcode, RoccInstruction};
        let aborted = std::rc::Rc::new(std::cell::Cell::new(false));
        let mut cpu = Cpu::new();
        cpu.attach_coprocessor(Box::new(WedgedCoproc { aborted: aborted.clone() }));
        let custom = Instr::Custom(RoccInstruction::reg_reg(
            CustomOpcode::Custom0,
            4,
            Reg::T2,
            Reg::T0,
            Reg::T1,
        ));
        load(&mut cpu, 0x1000, &[custom]);
        let result = cpu.step();
        assert!(
            matches!(result, Err(CpuError::RoccTimeout { funct7: 4, .. })),
            "got {result:?}"
        );
        assert!(aborted.get(), "watchdog must notify the accelerator");
        // With mtvec armed the same timeout becomes a guest trap.
        let aborted2 = std::rc::Rc::new(std::cell::Cell::new(false));
        let mut cpu = Cpu::new();
        cpu.attach_coprocessor(Box::new(WedgedCoproc { aborted: aborted2 }));
        cpu.set_reg(Reg::T0, 0x2000);
        let main = [
            Instr::Csr { op: CsrOp::Csrrw, rd: Reg::ZERO, csr: csr::MTVEC, rs1: Reg::T0 },
            custom,
        ];
        load(&mut cpu, 0x1000, &main);
        cpu.step().unwrap();
        assert_eq!(
            cpu.step().unwrap(),
            Event::Trapped { cause: riscv_isa::csr::cause::ROCC_TIMEOUT, epc: 0x1004 }
        );
    }

    #[test]
    fn x0_stays_zero() {
        let mut cpu = Cpu::new();
        let mut prog = vec![
            addi(Reg::ZERO, Reg::ZERO, 5),
            addi(Reg::A0, Reg::ZERO, 0),
        ];
        prog.extend(exit_seq());
        load(&mut cpu, 0x1000, &prog);
        assert_eq!(cpu.run(100).unwrap(), 0);
    }
}
