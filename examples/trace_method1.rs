//! Fig. 1 walk-through: traces Method-1's flow for one multiplication —
//! special check, sign/exponent, multiplicand multiples out of the BCD-CLA,
//! partial-product accumulation, rounding, and repacking.
//!
//! ```text
//! cargo run --release --example trace_method1 -- 9024 3.07
//! ```

use decimalarith::bcd::Bcd64;
use decimalarith::codesign::backend::{AccelBackend, ClaBackend};
use decimalarith::codesign::native::method1_multiply;
use decimalarith::codesign::{format_decimal64, parse_decimal64};
use decimalarith::decnum::Status;

fn main() {
    let mut args = std::env::args().skip(1);
    let xs = args.next().unwrap_or_else(|| "902.4".to_string());
    let ys = args.next().unwrap_or_else(|| "11.1".to_string());
    let x = parse_decimal64(&xs).expect("first operand parses");
    let y = parse_decimal64(&ys).expect("second operand parses");

    println!("Method-1 flow (paper Fig. 1) for {xs} x {ys}\n");
    println!("input X = {} (bits {:#018x})", format_decimal64(x), x.to_bits());
    println!("input Y = {} (bits {:#018x})", format_decimal64(y), y.to_bits());

    if !x.is_finite() || !y.is_finite() {
        println!("Special? yes -> special-value rules apply");
    } else {
        println!("Special? no");
        let xp = x.to_parts().expect("finite");
        let yp = y.to_parts().expect("finite");
        println!(
            "sign: {} xor {} = {}",
            xp.sign,
            yp.sign,
            xp.sign.xor(yp.sign)
        );
        println!(
            "temp exponent: {} + {} = {}",
            xp.exponent,
            yp.exponent,
            xp.exponent + yp.exponent
        );
        println!(
            "coefficients (DPD converted to BCD): Xc = {:#x}, Yc = {:#x}",
            xp.coefficient.raw(),
            yp.coefficient.raw()
        );

        // Reproduce the multiples table out of the accelerator, with trace.
        println!("\nmultiplicand multiples via the BCD-CLA (pp[i+1] = pp[i] + pp[1]):");
        let mut backend = ClaBackend::new();
        let mut mm = [(0u64, 0u64); 10];
        mm[1] = (0, xp.coefficient.raw());
        for i in 1..9 {
            let lo = backend.dec_add(mm[i].1, mm[1].1);
            let hi = backend.dec_adc(mm[i].0, mm[1].0);
            mm[i + 1] = (hi, lo);
        }
        for (i, (hi, lo)) in mm.iter().enumerate() {
            println!(
                "  {}X = {}{lo:016x}",
                i,
                if *hi != 0 {
                    format!("{:x}", Bcd64::from_raw_unchecked(*hi))
                } else {
                    String::new()
                },
            );
        }

        println!("\naccumulation (result = result*10 + pp[digit of Yc], msd first):");
        let (mut hi, mut lo) = (0u64, 0u64);
        for j in (0..16).rev() {
            let d = yp.coefficient.digit(j) as usize;
            hi = (hi << 4) | (lo >> 60);
            lo <<= 4;
            lo = backend.dec_add(lo, mm[d].1);
            hi = backend.dec_adc(hi, mm[d].0);
            if d != 0 || hi != 0 || lo != 0 {
                println!("  digit {d}: product = {hi:016x}{lo:016x}");
            }
        }
        println!("\naccelerator calls so far: {}", backend.calls());
    }

    let mut backend = ClaBackend::new();
    let mut status = Status::CLEAR;
    let result = method1_multiply(x, y, &mut backend, &mut status);
    println!(
        "\nfinal result after rounding/packing: {} (bits {:#018x})",
        format_decimal64(result),
        result.to_bits()
    );
    println!("status flags: {status}");
    println!("total accelerator invocations: {}", backend.calls());
    println!(
        "accelerator execution-unit busy cycles: {}",
        backend.accelerator().total_busy_cycles()
    );
}
