//! Shared assembly subroutines: DPD decode/encode, specials handling, and
//! the rounding/packing epilogue — the "software part" every method shares.
//!
//! Internal calling conventions (custom, leaf-friendly):
//!
//! * `decode64`: a0 = bits → a0 = BCD coefficient, a1 = biased exponent,
//!   a2 = sign; clobbers t0–t6. Finite operands only.
//! * `encode64`: a0 = BCD coefficient, a1 = biased exponent, a2 = sign →
//!   a0 = bits; clobbers t0–t6.
//! * `is_zero64`: a0 = bits (finite) → a0 = 1 if the coefficient is zero.
//! * `round_pack`: a0 = product lo, a1 = product hi (packed BCD), a2 =
//!   biased exponent of the product LSD (signed), a3 = sign → a0 = result
//!   bits. Uses `DEC_ADD`/`DEC_ADC` (or dummy calls) for the rounding
//!   increment; clobbers t0–t6, a6, a7.
//!
//! Registers `a4`/`a5` are reserved for the dummy-function marshalling and
//! never used by these routines.

/// How a kernel realises one BCD add step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AddStyle {
    /// Real `DEC_ADD`/`DEC_ADC` RoCC custom instructions.
    Hw,
    /// Calls to the prior art's dummy functions (estimation runs).
    Dummy,
    /// Calls to the digit-serial software routines — the fault-tolerant
    /// kernel's fallback datapath, correct without any accelerator.
    Soft,
}

impl AddStyle {
    pub(crate) fn from_dummy(dummy: bool) -> Self {
        if dummy {
            AddStyle::Dummy
        } else {
            AddStyle::Hw
        }
    }
}

/// Emits a `rd = BCD_ADD(rs1, rs2)` step: a real `DEC_ADD` custom
/// instruction, or a call to the dummy/software function.
pub(crate) fn dec_add(rd: &str, rs1: &str, rs2: &str, style: AddStyle) -> String {
    match style {
        AddStyle::Hw => format!("    custom0 4, {rd}, {rs1}, {rs2}, 1, 1, 1\n"),
        AddStyle::Dummy => {
            format!("    mv a4, {rs1}\n    mv a5, {rs2}\n    call dummy_dec_add\n    mv {rd}, a4\n")
        }
        AddStyle::Soft => {
            format!("    mv a4, {rs1}\n    mv a5, {rs2}\n    call soft_dec_add\n    mv {rd}, a4\n")
        }
    }
}

/// Emits a `rd = BCD_ADC(rs1, rs2)` step (add with the latched carry).
pub(crate) fn dec_adc(rd: &str, rs1: &str, rs2: &str, style: AddStyle) -> String {
    match style {
        AddStyle::Hw => format!("    custom0 9, {rd}, {rs1}, {rs2}, 1, 1, 1\n"),
        AddStyle::Dummy => {
            format!("    mv a4, {rs1}\n    mv a5, {rs2}\n    call dummy_dec_adc\n    mv {rd}, a4\n")
        }
        AddStyle::Soft => {
            format!("    mv a4, {rs1}\n    mv a5, {rs2}\n    call soft_dec_adc\n    mv {rd}, a4\n")
        }
    }
}

/// The dummy functions of the prior art's evaluation: fixed return (the
/// first operand comes back unchanged), no decimal work.
pub(crate) const DUMMY_FUNCTIONS: &str = "
dummy_dec_add:
    ret
dummy_dec_adc:
    ret
";

/// Digit-serial software BCD add/adc — the fault-tolerant kernel's fallback
/// datapath. Same marshalling as the dummy functions (operands in `a4`/`a5`,
/// sum back in `a4`); the carry latch lives in the `soft_carry` scratch
/// dword so an add/adc pair chains exactly like the hardware latch.
/// Clobbers t0–t4 only: `round_pack` relies on `t5` surviving the rounding
/// increment.
pub(crate) const SOFT_BCD_ADD: &str = "
soft_dec_add:
    la   t0, soft_carry
    sd   zero, 0(t0)
soft_dec_adc:
    la   t0, soft_carry
    ld   t1, 0(t0)             # carry in
    li   t2, 0                 # packed result
    li   t3, 16                # digit counter
sda_loop:
    srli t2, t2, 4
    andi t4, a4, 15
    add  t1, t1, t4
    andi t4, a5, 15
    add  t1, t1, t4            # carry + digit + digit  (0..19)
    li   t4, 10
    bltu t1, t4, sda_store
    addi t1, t1, -10
    slli t4, t1, 60
    or   t2, t2, t4
    li   t1, 1
    j    sda_next
sda_store:
    slli t4, t1, 60
    or   t2, t2, t4
    li   t1, 0
sda_next:
    srli a4, a4, 4
    srli a5, a5, 4
    addi t3, t3, -1
    bnez t3, sda_loop
    sd   t1, 0(t0)             # carry out
    mv   a4, t2
    ret
";

/// BCD-flavoured shared subroutines (Method-1..4).
pub(crate) fn subroutines_bcd(style: AddStyle) -> String {
    let mut out = String::new();
    out += DECODE64_BCD;
    out += ENCODE64_BCD;
    out += IS_ZERO64;
    out += &round_pack_bcd(style);
    out
}

/// Binary-flavoured shared subroutines (software baseline).
pub(crate) fn subroutines_binary() -> String {
    let mut out = String::new();
    out += DECODE64_BIN;
    out += ENCODE64_BIN;
    out += IS_ZERO64;
    out += ROUND_PACK_BIN;
    out
}

/// DPD → packed-BCD decode (Method-1's cheap conversion: table per declet).
const DECODE64_BCD: &str = "
decode64:
    srli a2, a0, 63
    srli t0, a0, 58
    andi t0, t0, 31            # combination field
    srli t1, t0, 3
    li   t2, 3
    bne  t1, t2, dec64_small_msd
    srli t1, t0, 1
    andi t1, t1, 3             # exponent high bits
    andi t3, t0, 1
    addi t3, t3, 8             # msd = 8 or 9
    j    dec64_have_msd
dec64_small_msd:
    andi t3, t0, 7             # msd 0..7 (t1 = exponent high bits)
dec64_have_msd:
    srli t2, a0, 50
    andi t2, t2, 255
    slli a1, t1, 8
    or   a1, a1, t2            # biased exponent
    la   t4, dpd2bcd
    slli t5, t3, 60            # msd at digit 15
    andi t0, a0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    or   t5, t5, t1
    srli t0, a0, 10
    andi t0, t0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    slli t1, t1, 12
    or   t5, t5, t1
    srli t0, a0, 20
    andi t0, t0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    slli t1, t1, 24
    or   t5, t5, t1
    srli t0, a0, 30
    andi t0, t0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    slli t1, t1, 36
    or   t5, t5, t1
    srli t0, a0, 40
    andi t0, t0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    slli t1, t1, 48
    or   t5, t5, t1
    mv   a0, t5
    ret
";

/// Packed-BCD → DPD encode.
const ENCODE64_BCD: &str = "
encode64:
    srli t3, a0, 60            # msd
    srli t1, a1, 8             # exponent high bits
    andi t2, a1, 255           # exponent continuation
    li   t0, 8
    blt  t3, t0, enc64_small
    addi t3, t3, -8
    slli t1, t1, 1
    or   t3, t3, t1
    ori  t3, t3, 24            # 0b11000 | eh<<1 | (msd-8)
    j    enc64_have
enc64_small:
    slli t1, t1, 3
    or   t3, t3, t1
enc64_have:
    slli t4, a2, 63
    slli t3, t3, 58
    or   t4, t4, t3
    slli t2, t2, 50
    or   t4, t4, t2
    la   t5, bcd2dpd
    li   t6, 0xFFF
    and  t0, a0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    or   t4, t4, t1
    srli t0, a0, 12
    and  t0, t0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    slli t1, t1, 10
    or   t4, t4, t1
    srli t0, a0, 24
    and  t0, t0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    slli t1, t1, 20
    or   t4, t4, t1
    srli t0, a0, 36
    and  t0, t0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    slli t1, t1, 30
    or   t4, t4, t1
    srli t0, a0, 48
    and  t0, t0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    slli t1, t1, 40
    or   t4, t4, t1
    mv   a0, t4
    ret
";

/// Finite-operand zero test on the interchange bits (canonical inputs).
const IS_ZERO64: &str = "
is_zero64:
    srli t0, a0, 58
    andi t0, t0, 31
    srli t1, t0, 3
    li   t2, 3
    bne  t1, t2, iz_small
    andi t3, t0, 1
    addi t3, t3, 8
    j    iz_msd
iz_small:
    andi t3, t0, 7
iz_msd:
    bnez t3, iz_nonzero
    slli t0, a0, 14            # keep the 50 coefficient-continuation bits
    bnez t0, iz_nonzero
    li   a0, 1
    ret
iz_nonzero:
    li   a0, 0
    ret
";

/// The BCD rounding/packing epilogue. One rounding of the exact product at
/// the precision (or at Etiny for subnormal results), overflow to infinity
/// (round-half-even), exponent clamping, then DPD encode.
fn round_pack_bcd(style: AddStyle) -> String {
    let inc_add = dec_add("a0", "a0", "t0", style);
    let carry_read = dec_adc("t0", "zero", "zero", style);
    format!(
        "
round_pack:
    addi sp, sp, -16
    sd   ra, 8(sp)
    # significant digits n -> t1
    mv   t0, a1
    li   t2, 16
    bnez t0, rp_count
    mv   t0, a0
    li   t2, 0
rp_count:
    li   t1, 0
rp_count_loop:
    beqz t0, rp_counted
    srli t0, t0, 4
    addi t1, t1, 1
    j    rp_count_loop
rp_counted:
    add  t1, t1, t2
    # early overflow: value != 0 and eb + n - 1 > 782
    or   t0, a0, a1
    beqz t0, rp_skip_early
    add  t3, a2, t1
    addi t3, t3, -1
    li   t0, 782
    ble  t3, t0, rp_skip_early
    j    rp_infinity
rp_skip_early:
    # subnormal_before = eb + n - 1 < 15 -> t4
    add  t3, a2, t1
    addi t3, t3, -1
    slti t4, t3, 15
    # discard = max(n - 16, 0) -> t5
    addi t5, t1, -16
    bgez t5, rp_disc_nonneg
    li   t5, 0
rp_disc_nonneg:
    beqz t4, rp_have_discard
    bgez a2, rp_have_discard
    neg  t6, a2
    bge  t5, t6, rp_have_discard
    mv   t5, t6
rp_have_discard:
    beqz t5, rp_round_done
    # everything discarded? discard > n -> zero result
    bgt  t5, t1, rp_all_gone
    addi t6, t5, -1            # idx of the round digit
    li   t0, 16
    bgeu t6, t0, rp_rd_in_hi
    slli t2, t6, 2
    srl  a6, a0, t2
    andi a6, a6, 15            # round digit
    li   t3, 1
    sll  t3, t3, t2
    addi t3, t3, -1
    and  t3, a0, t3
    snez a7, t3                # sticky
    j    rp_do_shift
rp_rd_in_hi:
    addi t2, t6, -16
    slli t2, t2, 2
    srl  a6, a1, t2
    andi a6, a6, 15
    li   t3, 1
    sll  t3, t3, t2
    addi t3, t3, -1
    and  t3, a1, t3
    or   t3, t3, a0
    snez a7, t3
rp_do_shift:
    slli t2, t5, 2             # bit shift = 4 * discard
    li   t0, 64
    bgeu t2, t0, rp_shift_wide
    srl  a0, a0, t2
    sub  t3, t0, t2
    sll  t3, a1, t3
    or   a0, a0, t3
    srl  a1, a1, t2
    j    rp_rounddigit
rp_shift_wide:
    sub  t2, t2, t0            # s - 64 (0..=64)
    bgeu t2, t0, rp_shift_all  # s >= 128: every digit shifted out
    srl  a0, a1, t2
    li   a1, 0
    j    rp_rounddigit
rp_shift_all:
    li   a0, 0
    li   a1, 0
rp_rounddigit:
    # increment if rd > 5 or (rd == 5 and (sticky or odd lsd))
    li   t0, 5
    bltu a6, t0, rp_inc_done
    bne  a6, t0, rp_increment
    bnez a7, rp_increment
    andi t0, a0, 1
    beqz t0, rp_inc_done
rp_increment:
    li   t0, 1
{inc_add}{carry_read}    beqz t0, rp_inc_done
    # 16 nines + 1: coefficient becomes 10^15, exponent rises
    li   a0, 0x1000000000000000
    addi a2, a2, 1
rp_inc_done:
    add  a2, a2, t5            # eb += discard
    j    rp_round_done
rp_all_gone:
    li   a0, 0
    li   a1, 0
    add  a2, a2, t5
rp_round_done:
    # recount digits of the (now <= 16 digit) coefficient
    mv   t0, a0
    li   t1, 0
rp_recount:
    beqz t0, rp_recounted
    srli t0, t0, 4
    addi t1, t1, 1
    j    rp_recount
rp_recounted:
    beqz a0, rp_zero
    # overflow check: eb + n' - 1 > 782
    add  t2, a2, t1
    addi t2, t2, -1
    li   t3, 782
    bgt  t2, t3, rp_infinity
    # clamping: eb > 767 pads the coefficient
    li   t3, 767
    ble  a2, t3, rp_encode
    sub  t2, a2, t3
    slli t2, t2, 2
    sll  a0, a0, t2
    li   a2, 767
    j    rp_encode
rp_zero:
    bgez a2, rp_zero_hi
    li   a2, 0
rp_zero_hi:
    li   t3, 767
    ble  a2, t3, rp_encode
    li   a2, 767
rp_encode:
    mv   a1, a2
    mv   a2, a3
    ld   ra, 8(sp)
    addi sp, sp, 16
    j    encode64              # tail call returns to round_pack's caller
rp_infinity:
    li   a0, 0x7800000000000000
    slli t0, a3, 63
    or   a0, a0, t0
    ld   ra, 8(sp)
    addi sp, sp, 16
    ret
"
    )
}

/// DPD → binary-coefficient decode (the software baseline's path: declet
/// tables to base-1000 units, then Horner into one binary integer —
/// "decimal arithmetic realized with binary hardware units").
const DECODE64_BIN: &str = "
decode64:
    srli a2, a0, 63
    srli t0, a0, 58
    andi t0, t0, 31
    srli t1, t0, 3
    li   t2, 3
    bne  t1, t2, dbin_small
    srli t1, t0, 1
    andi t1, t1, 3
    andi t3, t0, 1
    addi t3, t3, 8
    j    dbin_msd
dbin_small:
    andi t3, t0, 7
dbin_msd:
    srli t2, a0, 50
    andi t2, t2, 255
    slli a1, t1, 8
    or   a1, a1, t2
    la   t4, dpd2bin
    li   t6, 1000
    mv   t5, t3                # c = msd
    srli t0, a0, 40
    andi t0, t0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    mul  t5, t5, t6
    add  t5, t5, t1
    srli t0, a0, 30
    andi t0, t0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    mul  t5, t5, t6
    add  t5, t5, t1
    srli t0, a0, 20
    andi t0, t0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    mul  t5, t5, t6
    add  t5, t5, t1
    srli t0, a0, 10
    andi t0, t0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    mul  t5, t5, t6
    add  t5, t5, t1
    andi t0, a0, 1023
    slli t0, t0, 1
    add  t0, t0, t4
    lhu  t1, 0(t0)
    mul  t5, t5, t6
    add  t5, t5, t1
    mv   a0, t5
    ret
";

/// Binary coefficient → DPD encode (divide by 1000 per declet — the
/// expensive binary→decimal conversion Method-1 avoids).
const ENCODE64_BIN: &str = "
encode64:
    la   t5, bin2dpd
    li   t6, 1000
    slli t4, a2, 63            # assemble sign/combination later into t4
    # declet 0
    remu t0, a0, t6
    divu a0, a0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    or   t4, t4, t1
    # declet 1
    remu t0, a0, t6
    divu a0, a0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    slli t1, t1, 10
    or   t4, t4, t1
    # declet 2
    remu t0, a0, t6
    divu a0, a0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    slli t1, t1, 20
    or   t4, t4, t1
    # declet 3
    remu t0, a0, t6
    divu a0, a0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    slli t1, t1, 30
    or   t4, t4, t1
    # declet 4
    remu t0, a0, t6
    divu a0, a0, t6
    slli t0, t0, 1
    add  t0, t0, t5
    lhu  t1, 0(t0)
    slli t1, t1, 40
    or   t4, t4, t1
    # a0 now holds the msd
    srli t1, a1, 8
    andi t2, a1, 255
    li   t0, 8
    blt  a0, t0, ebin_small
    addi a0, a0, -8
    slli t1, t1, 1
    or   a0, a0, t1
    ori  a0, a0, 24
    j    ebin_have
ebin_small:
    slli t1, t1, 3
    or   a0, a0, t1
ebin_have:
    slli a0, a0, 58
    or   t4, t4, a0
    slli t2, t2, 50
    or   t4, t4, t2
    mv   a0, t4
    ret
";

/// Binary rounding/packing epilogue for the software baseline: digit count
/// by power-of-ten table scan, 128->64-bit reduction by repeated division by
/// ten (carry-safe), one combined division for the remaining discard, then
/// binary encode.
const ROUND_PACK_BIN: &str = "
round_pack:
    addi sp, sp, -16
    sd   ra, 8(sp)
    # ---- significant digits n -> t1 (binary 128-bit value in a1:a0) ----
    li   t1, 0
    bnez a1, rpb_count_wide
    la   t2, pow10
rpb_count64:
    slli t3, t1, 3
    add  t3, t3, t2
    ld   t3, 0(t3)
    bltu a0, t3, rpb_counted   # a0 < 10^t1 -> n = t1
    addi t1, t1, 1
    li   t0, 20
    blt  t1, t0, rpb_count64
    j    rpb_counted
rpb_count_wide:
    # scan the 128-bit table (10^17 .. 10^33), entries are (lo, hi) pairs
    la   t2, pow10w
    li   t1, 17
rpb_countw_loop:
    addi t0, t1, -17
    slli t0, t0, 4
    add  t0, t0, t2
    ld   t3, 8(t0)             # table hi
    ld   t0, 0(t0)             # table lo
    bltu a1, t3, rpb_counted   # value hi < table hi -> value < 10^t1
    bne  a1, t3, rpb_countw_ge
    bltu a0, t0, rpb_counted
rpb_countw_ge:
    addi t1, t1, 1
    li   t0, 34
    blt  t1, t0, rpb_countw_loop
rpb_counted:
    # early overflow: value != 0 and eb + n - 1 > 782
    or   t0, a0, a1
    beqz t0, rpb_skip_early
    add  t3, a2, t1
    addi t3, t3, -1
    li   t0, 782
    bgt  t3, t0, rpb_infinity
rpb_skip_early:
    # subnormal_before -> t4 ; discard -> t5
    add  t3, a2, t1
    addi t3, t3, -1
    slti t4, t3, 15
    addi t5, t1, -16
    bgez t5, rpb_disc_nonneg
    li   t5, 0
rpb_disc_nonneg:
    beqz t4, rpb_have_discard
    bgez a2, rpb_have_discard
    neg  t6, a2
    bge  t5, t6, rpb_have_discard
    mv   t5, t6
rpb_have_discard:
    beqz t5, rpb_round_done
    bgt  t5, t1, rpb_all_gone
    add  a2, a2, t5            # eb += discard up front
    li   a6, 0                 # most recently removed digit
    li   a7, 0                 # sticky
rpb_reduce:
    beqz t5, rpb_round_decide
    bnez a1, rpb_reduce_step   # wide value: must reduce digit by digit
    li   t0, 16
    ble  t5, t0, rpb_fast      # fits 64 bits and D = 10^t5 fits the table
rpb_reduce_step:
    # one digit: (a1:a0) = (a1:a0) / 10, remainder -> t3
    snez t0, a6
    or   a7, a7, t0            # previous removed digit joins the sticky
    li   t0, 10
    divu t2, a1, t0            # qh
    remu t3, a1, t0            # r = hi % 10
    divu t6, a0, t0            # ql
    remu a0, a0, t0            # rl
    slli t1, t3, 2
    slli t0, t3, 1
    add  t1, t1, t0            # 6r
    add  t1, t1, a0            # 6r + rl  (<= 63)
    li   t0, 10
    divu a1, t1, t0            # (6r + rl) / 10 (reuse a1 briefly)
    remu a6, t1, t0            # removed digit
    # new_lo = r*K + ql + (6r+rl)/10 with carries into new_hi
    li   t0, 1844674407370955161
    mul  t3, t3, t0            # r*K
    add  t3, t3, t6
    sltu t0, t3, t6            # carry 1
    add  t3, t3, a1
    sltu t1, t3, a1            # carry 2
    add  t2, t2, t0
    add  t2, t2, t1
    mv   a0, t3
    mv   a1, t2
    addi t5, t5, -1
    j    rpb_reduce
rpb_fast:
    snez t0, a6
    or   a7, a7, t0            # last loop-removed digit is below: sticky
    la   t0, pow10
    slli t2, t5, 3
    add  t2, t2, t0
    ld   t2, 0(t2)             # D = 10^discard_remaining
    remu t3, a0, t2            # removed part
    divu a0, a0, t2            # kept
    addi t6, t5, -1
    slli t6, t6, 3
    add  t6, t6, t0
    ld   t6, 0(t6)             # D/10
    divu a6, t3, t6            # round digit
    remu t0, t3, t6
    snez t0, t0
    or   a7, a7, t0
rpb_round_decide:
    li   t0, 5
    bltu a6, t0, rpb_inc_done
    bne  a6, t0, rpb_increment
    bnez a7, rpb_increment
    andi t0, a0, 1
    beqz t0, rpb_inc_done
rpb_increment:
    addi a0, a0, 1
    li   t0, 0x2386F26FC10000  # 10^16
    bne  a0, t0, rpb_inc_done
    li   t0, 0x38D7EA4C68000   # 10^15
    mv   a0, t0
    addi a2, a2, 1
rpb_inc_done:
    j    rpb_round_done
rpb_all_gone:
    li   a0, 0
    li   a1, 0
    add  a2, a2, t5
rpb_round_done:
    # recount digits of the kept coefficient
    li   t1, 0
    la   t2, pow10
rpb_recount:
    slli t3, t1, 3
    add  t3, t3, t2
    ld   t3, 0(t3)
    bltu a0, t3, rpb_recounted
    addi t1, t1, 1
    li   t0, 20
    blt  t1, t0, rpb_recount
rpb_recounted:
    beqz a0, rpb_zero
    add  t2, a2, t1
    addi t2, t2, -1
    li   t3, 782
    bgt  t2, t3, rpb_infinity
    li   t3, 767
    ble  a2, t3, rpb_encode
    sub  t2, a2, t3
    la   t0, pow10
    slli t2, t2, 3
    add  t2, t2, t0
    ld   t2, 0(t2)
    mul  a0, a0, t2
    li   a2, 767
    j    rpb_encode
rpb_zero:
    bgez a2, rpb_zero_hi
    li   a2, 0
rpb_zero_hi:
    li   t3, 767
    ble  a2, t3, rpb_encode
    li   a2, 767
rpb_encode:
    mv   a1, a2
    mv   a2, a3
    ld   ra, 8(sp)
    addi sp, sp, 16
    j    encode64
rpb_infinity:
    li   a0, 0x7800000000000000
    slli t0, a3, 63
    or   a0, a0, t0
    ld   ra, 8(sp)
    addi sp, sp, 16
    ret
";
