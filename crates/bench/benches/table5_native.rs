//! Table V bench: host wall-clock of the native implementations — the
//! paper's "real implementation" comparison (decNumber-style software vs
//! Method-1 with dummy functions), measured properly with Criterion.

use codesign::framework::{time_native, NativeMethod};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use decimal_bench::workload;

fn bench(c: &mut Criterion) {
    let vectors = workload(2_000, 2019);
    let mut group = c.benchmark_group("table5_native");
    group.bench_function("software_decnumber_style", |b| {
        b.iter(|| black_box(time_native(NativeMethod::Software, &vectors, 1)))
    });
    group.bench_function("method1_dummy_functions", |b| {
        b.iter(|| black_box(time_native(NativeMethod::Method1Dummy, &vectors, 1)))
    });
    group.finish();

    // Print the two-row table once with a larger repetition count.
    let software = time_native(NativeMethod::Software, &vectors, 10);
    let dummy = time_native(NativeMethod::Method1Dummy, &vectors, 10);
    println!(
        "\nTable V (sampled): software {:.6} s, dummy {:.6} s, speedup {:.2}x\n",
        software.as_secs_f64(),
        dummy.as_secs_f64(),
        software.as_secs_f64() / dummy.as_secs_f64()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
