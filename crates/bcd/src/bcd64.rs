use std::fmt;
use std::str::FromStr;

use crate::{is_valid_packed64, nines_complement64, raw_add64, Bcd128, BcdError, BCD64_DIGITS};

/// Sixteen packed BCD-8421 digits in a `u64`.
///
/// This is the word the RoCC decimal accelerator exchanges with the Rocket
/// core over `rs1`/`rs2`/`rd`: digit *i* lives in bits `4i..4i+4`, least
/// significant digit at bit 0. All sixteen nibbles are guaranteed to be
/// decimal digits (`0..=9`).
///
/// # Example
///
/// ```
/// use bcd::Bcd64;
///
/// # fn main() -> Result<(), bcd::BcdError> {
/// let x: Bcd64 = "902".parse()?;
/// assert_eq!(x.raw(), 0x902);
/// assert_eq!(x.digit(2), 9);
/// assert_eq!(x.significant_digits(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bcd64(u64);

impl Bcd64 {
    /// The zero value.
    pub const ZERO: Bcd64 = Bcd64(0);
    /// The one value.
    pub const ONE: Bcd64 = Bcd64(1);
    /// The largest representable value, 9,999,999,999,999,999 (sixteen nines).
    pub const MAX: Bcd64 = Bcd64(0x9999_9999_9999_9999);

    /// Wraps a raw packed-BCD word, validating every nibble.
    ///
    /// # Errors
    ///
    /// Returns [`BcdError::InvalidNibble`] if any nibble is `0xA..=0xF`.
    pub fn new(raw: u64) -> Result<Self, BcdError> {
        if is_valid_packed64(raw) {
            Ok(Bcd64(raw))
        } else {
            let position = (0..16)
                .find(|&i| (raw >> (4 * i)) & 0xF > 9)
                .expect("invalid word must contain an invalid nibble");
            Err(BcdError::InvalidNibble {
                position,
                nibble: ((raw >> (4 * position)) & 0xF) as u8,
            })
        }
    }

    /// Wraps a raw packed-BCD word the caller already knows is valid.
    ///
    /// Invalid nibbles produce garbage results from subsequent arithmetic but
    /// no undefined behaviour. Prefer [`Bcd64::new`].
    #[must_use]
    pub const fn from_raw_unchecked(raw: u64) -> Self {
        Bcd64(raw)
    }

    /// Converts a binary integer (e.g. `1234`) to its BCD representation.
    ///
    /// # Errors
    ///
    /// Returns [`BcdError::ValueTooLarge`] if `value >= 10^16`.
    pub fn from_value(value: u64) -> Result<Self, BcdError> {
        if value > 9_999_999_999_999_999 {
            return Err(BcdError::ValueTooLarge {
                capacity: BCD64_DIGITS,
            });
        }
        let mut raw = 0u64;
        let mut v = value;
        let mut shift = 0;
        while v != 0 {
            raw |= (v % 10) << shift;
            v /= 10;
            shift += 4;
        }
        Ok(Bcd64(raw))
    }

    /// Builds a value from decimal digits given most-significant first.
    ///
    /// # Errors
    ///
    /// Returns [`BcdError::InvalidDigit`] for digits outside `0..=9` and
    /// [`BcdError::ValueTooLarge`] for more than sixteen digits.
    pub fn from_digits(digits: &[u8]) -> Result<Self, BcdError> {
        if digits.len() > BCD64_DIGITS as usize {
            return Err(BcdError::ValueTooLarge {
                capacity: BCD64_DIGITS,
            });
        }
        let mut raw = 0u64;
        for &d in digits {
            if d > 9 {
                return Err(BcdError::InvalidDigit { digit: d });
            }
            raw = (raw << 4) | u64::from(d);
        }
        Ok(Bcd64(raw))
    }

    /// The raw packed representation (digit *i* in bits `4i..4i+4`).
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts back to a binary integer.
    #[must_use]
    pub fn to_value(self) -> u64 {
        let mut v = 0u64;
        for i in (0..16).rev() {
            v = v * 10 + ((self.0 >> (4 * i)) & 0xF);
        }
        v
    }

    /// Returns digit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[must_use]
    pub fn digit(self, i: u32) -> u8 {
        assert!(i < BCD64_DIGITS, "digit index {i} out of range");
        ((self.0 >> (4 * i)) & 0xF) as u8
    }

    /// Returns a copy with digit `i` replaced by `d`.
    ///
    /// # Errors
    ///
    /// Returns [`BcdError::InvalidDigit`] if `d > 9`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn with_digit(self, i: u32, d: u8) -> Result<Self, BcdError> {
        assert!(i < BCD64_DIGITS, "digit index {i} out of range");
        if d > 9 {
            return Err(BcdError::InvalidDigit { digit: d });
        }
        let mask = 0xFu64 << (4 * i);
        Ok(Bcd64((self.0 & !mask) | (u64::from(d) << (4 * i))))
    }

    /// Number of significant decimal digits (zero has zero).
    #[must_use]
    pub fn significant_digits(self) -> u32 {
        if self.0 == 0 {
            0
        } else {
            16 - self.0.leading_zeros() / 4
        }
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Decimal addition. Returns `(sum, carry_out)`.
    // Not `std::ops`: decimal add/sub also return the carry/borrow.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Bcd64) -> (Bcd64, bool) {
        let (s, c) = raw_add64(self.0, other.0, false);
        (Bcd64(s), c)
    }

    /// Decimal addition with carry-in. Returns `(sum, carry_out)`.
    #[must_use]
    pub fn adc(self, other: Bcd64, carry_in: bool) -> (Bcd64, bool) {
        let (s, c) = raw_add64(self.0, other.0, carry_in);
        (Bcd64(s), c)
    }

    /// Decimal subtraction via ten's complement. Returns `(difference, borrow)`.
    ///
    /// When `borrow` is true the result wrapped modulo 10^16.
    // Not `std::ops`: decimal add/sub also return the carry/borrow.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(self, other: Bcd64) -> (Bcd64, bool) {
        let (s, carry) = raw_add64(self.0, nines_complement64(other.0), true);
        (Bcd64(s), !carry)
    }

    /// Shifts left by `digits` decimal digits, filling with zeros.
    /// Digits shifted past the top are lost.
    #[must_use]
    pub fn shl_digits(self, digits: u32) -> Bcd64 {
        if digits >= BCD64_DIGITS {
            Bcd64(0)
        } else {
            Bcd64(self.0 << (4 * digits))
        }
    }

    /// Shifts right by `digits` decimal digits (discarding low digits).
    #[must_use]
    pub fn shr_digits(self, digits: u32) -> Bcd64 {
        if digits >= BCD64_DIGITS {
            Bcd64(0)
        } else {
            Bcd64(self.0 >> (4 * digits))
        }
    }

    /// Multiplies by a single decimal digit, returning a wide result
    /// (a 16-digit value times 9 needs up to 17 digits).
    ///
    /// # Panics
    ///
    /// Panics if `d > 9`.
    #[must_use]
    pub fn mul_digit(self, d: u8) -> Bcd128 {
        assert!(d <= 9, "multiplier digit {d} out of range");
        // Double-and-add keeps the model decimal end to end, mirroring how
        // the accelerator's digit multiplier is built from BCD adders.
        let wide = Bcd128::from_bcd64(self);
        let mut acc = Bcd128::ZERO;
        for bit in (0..4).rev() {
            acc = acc.add(acc).0;
            if d & (1 << bit) != 0 {
                acc = acc.add(wide).0;
            }
        }
        acc
    }

    /// Full 16×16-digit multiplication producing up to 32 digits.
    #[must_use]
    pub fn full_mul(self, other: Bcd64) -> Bcd128 {
        let mut acc = Bcd128::ZERO;
        for i in (0..other.significant_digits().max(1)).rev() {
            acc = acc.shl_digits(1);
            let d = other.digit(i);
            if d != 0 {
                let (sum, overflow) = acc.add(self.mul_digit(d));
                debug_assert!(!overflow, "32-digit product cannot overflow");
                acc = sum;
            }
        }
        acc
    }

    /// Iterates over all sixteen digit positions, least significant first.
    pub fn iter_digits(self) -> impl Iterator<Item = u8> {
        (0..BCD64_DIGITS).map(move |i| self.digit(i))
    }
}

impl fmt::Debug for Bcd64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bcd64({:#018x})", self.0)
    }
}

impl fmt::Display for Bcd64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_value())
    }
}

impl fmt::LowerHex for Bcd64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl FromStr for Bcd64 {
    type Err = BcdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(BcdError::ParseError);
        }
        let digits: Vec<u8> = s.bytes().map(|b| b - b'0').collect();
        Bcd64::from_digits(&digits)
    }
}

impl From<Bcd64> for u64 {
    fn from(b: Bcd64) -> u64 {
        b.raw()
    }
}

impl TryFrom<u64> for Bcd64 {
    type Error = BcdError;

    /// Interprets `raw` as packed BCD (not as a binary value).
    fn try_from(raw: u64) -> Result<Self, Self::Error> {
        Bcd64::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        for v in [0u64, 1, 9, 10, 12345, 9_999_999_999_999_999] {
            let b = Bcd64::from_value(v).unwrap();
            assert_eq!(b.to_value(), v);
        }
        assert_eq!(
            Bcd64::from_value(10_000_000_000_000_000),
            Err(BcdError::ValueTooLarge { capacity: 16 })
        );
    }

    #[test]
    fn new_rejects_bad_nibbles() {
        assert!(Bcd64::new(0x1234).is_ok());
        assert_eq!(
            Bcd64::new(0x12A4),
            Err(BcdError::InvalidNibble {
                position: 1,
                nibble: 0xA
            })
        );
    }

    #[test]
    fn from_digits_msd_first() {
        let b = Bcd64::from_digits(&[1, 2, 3]).unwrap();
        assert_eq!(b.raw(), 0x123);
        assert_eq!(
            Bcd64::from_digits(&[1, 10]),
            Err(BcdError::InvalidDigit { digit: 10 })
        );
        assert_eq!(
            Bcd64::from_digits(&[1; 17]),
            Err(BcdError::ValueTooLarge { capacity: 16 })
        );
    }

    #[test]
    fn digit_access() {
        let b: Bcd64 = "9024".parse().unwrap();
        assert_eq!(b.digit(0), 4);
        assert_eq!(b.digit(3), 9);
        assert_eq!(b.digit(15), 0);
        let b2 = b.with_digit(0, 7).unwrap();
        assert_eq!(b2.to_value(), 9027);
    }

    #[test]
    fn significant_digits_counts() {
        assert_eq!(Bcd64::ZERO.significant_digits(), 0);
        assert_eq!(Bcd64::ONE.significant_digits(), 1);
        assert_eq!(Bcd64::from_value(1000).unwrap().significant_digits(), 4);
        assert_eq!(Bcd64::MAX.significant_digits(), 16);
    }

    #[test]
    fn add_matches_binary() {
        let a = Bcd64::from_value(123_456_789).unwrap();
        let b = Bcd64::from_value(987_654_321).unwrap();
        let (s, c) = a.add(b);
        assert_eq!(s.to_value(), 1_111_111_110);
        assert!(!c);
    }

    #[test]
    fn sub_basic() {
        let a = Bcd64::from_value(1000).unwrap();
        let b = Bcd64::from_value(1).unwrap();
        let (d, borrow) = a.sub(b);
        assert_eq!(d.to_value(), 999);
        assert!(!borrow);
        let (d2, borrow2) = b.sub(a);
        assert!(borrow2);
        // Ten's complement wraparound: 1 - 1000 mod 10^16.
        assert_eq!(d2.to_value(), 10_000_000_000_000_000 - 999);
    }

    #[test]
    fn shifts() {
        let b: Bcd64 = "1234".parse().unwrap();
        assert_eq!(b.shl_digits(2).to_value(), 123_400);
        assert_eq!(b.shr_digits(2).to_value(), 12);
        assert_eq!(b.shl_digits(16), Bcd64::ZERO);
        assert_eq!(b.shr_digits(16), Bcd64::ZERO);
        // Top digits fall off.
        assert_eq!(Bcd64::MAX.shl_digits(1).significant_digits(), 16);
    }

    #[test]
    fn mul_digit_small() {
        let b = Bcd64::from_value(123).unwrap();
        assert_eq!(b.mul_digit(0).to_value(), 0);
        assert_eq!(b.mul_digit(1).to_value(), 123);
        assert_eq!(b.mul_digit(9).to_value(), 1107);
    }

    #[test]
    fn mul_digit_needs_seventeenth_digit() {
        let b = Bcd64::MAX;
        assert_eq!(b.mul_digit(9).to_value(), 9_999_999_999_999_999u128 * 9);
    }

    #[test]
    fn full_mul_exact() {
        let a = Bcd64::from_value(9_999_999_999_999_999).unwrap();
        let b = Bcd64::from_value(9_999_999_999_999_999).unwrap();
        assert_eq!(
            a.full_mul(b).to_value(),
            9_999_999_999_999_999u128 * 9_999_999_999_999_999u128
        );
        assert_eq!(a.full_mul(Bcd64::ZERO).to_value(), 0);
        assert_eq!(Bcd64::ZERO.full_mul(b).to_value(), 0);
    }

    #[test]
    fn ordering_matches_numeric_order() {
        let a = Bcd64::from_value(123).unwrap();
        let b = Bcd64::from_value(124).unwrap();
        assert!(a < b);
        assert!(Bcd64::MAX > b);
    }

    #[test]
    fn display_and_parse() {
        let b: Bcd64 = "9024000000".parse().unwrap();
        assert_eq!(b.to_string(), "9024000000");
        assert_eq!("".parse::<Bcd64>(), Err(BcdError::ParseError));
        assert_eq!("12x".parse::<Bcd64>(), Err(BcdError::ParseError));
    }
}
