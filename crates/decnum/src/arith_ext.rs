//! Extended operations: fused multiply-add, min/max, integral rounding,
//! exponent manipulation — the remainder of the General Decimal Arithmetic
//! operation set a decNumber replacement is expected to provide.

use std::cmp::Ordering;

use dpd::Sign;

use crate::arith::{handle_nan_binary, handle_nan_unary};
use crate::context::{Context, Status};
use crate::number::{DecNumber, Kind};

/// NaN handling across three operands (for fma).
fn handle_nan_ternary(
    a: &DecNumber,
    b: &DecNumber,
    c: &DecNumber,
    ctx: &mut Context,
) -> Option<DecNumber> {
    if !(a.is_nan() || b.is_nan() || c.is_nan()) {
        return None;
    }
    if a.is_snan() || b.is_snan() || c.is_snan() {
        ctx.raise(Status::INVALID_OPERATION);
    }
    let source = [a, b, c].into_iter().find(|n| n.is_nan()).expect("a nan");
    let mut out = source.clone();
    out.kind = Kind::Nan { signaling: false };
    Some(out)
}

impl DecNumber {
    /// Fused multiply-add: `self × other + addend` with a single rounding.
    #[must_use]
    pub fn fma(&self, other: &DecNumber, addend: &DecNumber, ctx: &mut Context) -> DecNumber {
        if let Some(n) = handle_nan_ternary(self, other, addend, ctx) {
            return n;
        }
        // Compute the product exactly: a working context wide enough that
        // the coefficient product cannot round.
        let product_digits = (self.ndigits() + other.ndigits()).max(1);
        let mut exact = Context::with_precision(product_digits + 2);
        let product = self.mul(other, &mut exact);
        if exact.status().contains(Status::INVALID_OPERATION) {
            ctx.raise(Status::INVALID_OPERATION);
            return DecNumber::nan();
        }
        debug_assert!(
            !exact.status().contains(Status::INEXACT),
            "product must be exact"
        );
        product.add(addend, ctx)
    }

    /// IEEE `maxNum`: the larger operand; a quiet NaN loses to a number.
    #[must_use]
    pub fn max(&self, other: &DecNumber, ctx: &mut Context) -> DecNumber {
        min_max(self, other, ctx, true)
    }

    /// IEEE `minNum`: the smaller operand; a quiet NaN loses to a number.
    #[must_use]
    pub fn min(&self, other: &DecNumber, ctx: &mut Context) -> DecNumber {
        min_max(self, other, ctx, false)
    }

    /// Rounds to an integral value using the context rounding mode, without
    /// raising inexact/rounded (IEEE `round-to-integral-value`).
    #[must_use]
    pub fn to_integral_value(&self, ctx: &mut Context) -> DecNumber {
        let mut quiet = ctx.clone();
        quiet.clear_status();
        let result = self.to_integral_exact(&mut quiet);
        // Propagate only invalid-operation (from sNaN), not rounding flags.
        if quiet.status().contains(Status::INVALID_OPERATION) {
            ctx.raise(Status::INVALID_OPERATION);
        }
        result
    }

    /// Rounds to an integral value, raising `ROUNDED`/`INEXACT` as
    /// appropriate (IEEE `round-to-integral-exact`).
    #[must_use]
    pub fn to_integral_exact(&self, ctx: &mut Context) -> DecNumber {
        if let Some(n) = handle_nan_unary(self, ctx) {
            return n;
        }
        if self.is_infinite() {
            return self.clone();
        }
        if self.exponent >= 0 {
            return self.clone();
        }
        let mut digits = self.digits.clone();
        let discard = (-self.exponent) as usize;
        let (rounded, inexact) =
            crate::round::round_off(&mut digits, discard, ctx.rounding, self.sign);
        if rounded {
            ctx.raise(Status::ROUNDED);
        }
        if inexact {
            ctx.raise(Status::INEXACT);
        }
        DecNumber {
            sign: self.sign,
            kind: Kind::Finite,
            digits,
            exponent: 0,
        }
    }

    /// Adds an integer to the exponent (IEEE `scaleB`).
    #[must_use]
    pub fn scaleb(&self, scale: &DecNumber, ctx: &mut Context) -> DecNumber {
        if let Some(n) = handle_nan_binary(self, scale, ctx) {
            return n;
        }
        // The scale operand must be a finite integer within ±2(emax+p).
        let limit = 2 * (i64::from(ctx.emax) + i64::from(ctx.precision));
        let scale_int = match integer_value(scale) {
            Some(v) if v.abs() <= limit && scale.is_finite() => v,
            _ => {
                ctx.raise(Status::INVALID_OPERATION);
                return DecNumber::nan();
            }
        };
        if self.is_infinite() {
            return self.clone();
        }
        let mut out = self.clone();
        out.exponent = (i64::from(out.exponent) + scale_int)
            .clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
        out.finish(ctx)
    }

    /// The adjusted exponent as a number (IEEE `logB`): `+Inf` for
    /// infinities; `-Inf` with division-by-zero for zeros.
    #[must_use]
    pub fn logb(&self, ctx: &mut Context) -> DecNumber {
        if let Some(n) = handle_nan_unary(self, ctx) {
            return n;
        }
        if self.is_infinite() {
            return DecNumber::infinity(Sign::Positive);
        }
        if self.is_zero() {
            ctx.raise(Status::DIVISION_BY_ZERO);
            return DecNumber::infinity(Sign::Negative);
        }
        DecNumber::from_i64(i64::from(self.adjusted_exponent()))
    }

    /// True if both operands have the same exponent (or are both infinite,
    /// or both NaN) — IEEE `sameQuantum`, never signalling.
    #[must_use]
    pub fn same_quantum(&self, other: &DecNumber) -> bool {
        match (self.kind, other.kind) {
            (Kind::Finite, Kind::Finite) => self.exponent == other.exponent,
            (Kind::Infinity, Kind::Infinity) => true,
            (Kind::Nan { .. }, Kind::Nan { .. }) => true,
            _ => false,
        }
    }

    /// Returns `self` with the sign of `other` (IEEE `copySign`; quiet).
    #[must_use]
    pub fn copy_sign(&self, other: &DecNumber) -> DecNumber {
        let mut out = self.clone();
        out.sign = other.sign;
        out
    }
}

fn integer_value(n: &DecNumber) -> Option<i64> {
    if !n.is_finite() {
        return None;
    }
    let mut value: i64 = 0;
    for &d in n.coefficient_digits().iter().rev() {
        value = value.checked_mul(10)?.checked_add(i64::from(d))?;
    }
    for _ in 0..n.exponent() {
        value = value.checked_mul(10)?;
    }
    if n.exponent() < 0 {
        // Must still be an integer: trailing digits below the point must be
        // zero.
        let mut v = value;
        for _ in 0..(-n.exponent()) {
            if v % 10 != 0 {
                return None;
            }
            v /= 10;
        }
        value = v;
    }
    Some(if n.is_negative() { -value } else { value })
}

fn min_max(a: &DecNumber, b: &DecNumber, ctx: &mut Context, want_max: bool) -> DecNumber {
    // minNum/maxNum: a single quiet NaN loses to the number.
    match (a.is_nan(), b.is_nan()) {
        (true, true) | (false, false) => {}
        (true, false) => {
            if a.is_snan() {
                ctx.raise(Status::INVALID_OPERATION);
                return DecNumber::nan();
            }
            return b.plus(ctx);
        }
        (false, true) => {
            if b.is_snan() {
                ctx.raise(Status::INVALID_OPERATION);
                return DecNumber::nan();
            }
            return a.plus(ctx);
        }
    }
    if let Some(n) = handle_nan_binary(a, b, ctx) {
        return n;
    }
    let ordering = a.partial_cmp_num(b, ctx).expect("both numeric");
    let pick_a = match ordering {
        Ordering::Greater => want_max,
        Ordering::Less => !want_max,
        Ordering::Equal => {
            // Tie rules from the General Decimal Arithmetic spec: prefer by
            // sign, then by exponent.
            match (a.sign(), b.sign()) {
                (Sign::Positive, Sign::Negative) => want_max,
                (Sign::Negative, Sign::Positive) => !want_max,
                (Sign::Positive, Sign::Positive) => {
                    (a.exponent() > b.exponent()) == want_max
                }
                (Sign::Negative, Sign::Negative) => {
                    (a.exponent() < b.exponent()) == want_max
                }
            }
        }
    };
    if pick_a {
        a.plus(ctx)
    } else {
        b.plus(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DecNumber {
        s.parse().unwrap()
    }

    fn c64() -> Context {
        Context::decimal64()
    }

    #[test]
    fn fma_single_rounding() {
        let mut ctx = c64();
        // 3 × 5 + 7 = 22
        assert_eq!(n("3").fma(&n("5"), &n("7"), &mut ctx).to_string(), "22");
        // A true double-rounding case: 100000001^2 + 45.
        // Exact: 10000000200000046 -> single rounding gives ...005E+16;
        // rounding the product first loses the trailing 1, and the second
        // rounding then resolves the resulting exact tie downward.
        let r = n("100000001").fma(&n("100000001"), &n("45"), &mut ctx);
        assert_eq!(r.to_string(), "1.000000020000005E+16");
        let mut ctx2 = c64();
        let two_step = n("100000001")
            .mul(&n("100000001"), &mut ctx2)
            .add(&n("45"), &mut ctx2);
        assert_eq!(two_step.to_string(), "1.000000020000004E+16");
    }

    #[test]
    fn fma_specials() {
        let mut ctx = c64();
        assert!(n("0").fma(&n("Infinity"), &n("1"), &mut ctx).is_nan());
        assert!(ctx.status().contains(Status::INVALID_OPERATION));
        let mut ctx2 = c64();
        let r = n("2").fma(&n("3"), &n("NaN5"), &mut ctx2);
        assert!(r.is_nan());
        assert_eq!(r.coefficient_digits(), &[5]);
    }

    #[test]
    fn min_max_numeric() {
        let mut ctx = c64();
        assert_eq!(n("3").max(&n("2"), &mut ctx).to_string(), "3");
        assert_eq!(n("3").min(&n("2"), &mut ctx).to_string(), "2");
        assert_eq!(n("-3").min(&n("2"), &mut ctx).to_string(), "-3");
        // Quiet NaN loses to a number (minNum/maxNum).
        assert_eq!(n("NaN").max(&n("2"), &mut ctx).to_string(), "2");
        assert_eq!(n("2").min(&n("NaN"), &mut ctx).to_string(), "2");
        assert!(n("NaN").max(&n("NaN"), &mut ctx).is_nan());
    }

    #[test]
    fn min_max_tie_rules() {
        let mut ctx = c64();
        // 1.0 == 1 but max prefers the larger exponent for positives.
        assert_eq!(n("1.0").max(&n("1"), &mut ctx).to_string(), "1");
        assert_eq!(n("1.0").min(&n("1"), &mut ctx).to_string(), "1.0");
        // Signed zeros: +0 > -0 for max.
        assert!(!n("0").max(&n("-0"), &mut ctx).is_negative());
        assert!(n("0").min(&n("-0"), &mut ctx).is_negative());
    }

    #[test]
    fn to_integral_modes() {
        let mut ctx = c64();
        assert_eq!(n("2.5").to_integral_exact(&mut ctx).to_string(), "2");
        assert!(ctx.status().contains(Status::INEXACT));
        assert_eq!(n("3.5").to_integral_exact(&mut ctx).to_string(), "4");
        assert_eq!(n("-1.7").to_integral_exact(&mut ctx).to_string(), "-2");
        assert_eq!(n("7E+3").to_integral_exact(&mut ctx).to_string(), "7E+3");
        assert_eq!(n("Infinity").to_integral_exact(&mut ctx).to_string(), "Infinity");

        let mut quiet = c64();
        let r = n("2.5").to_integral_value(&mut quiet);
        assert_eq!(r.to_string(), "2");
        assert!(!quiet.status().contains(Status::INEXACT), "value form is quiet");
    }

    #[test]
    fn scaleb_moves_the_exponent() {
        let mut ctx = c64();
        assert_eq!(n("7.50").scaleb(&n("2"), &mut ctx).to_string(), "750");
        assert_eq!(n("7.50").scaleb(&n("-2"), &mut ctx).to_string(), "0.0750");
        assert!(n("1").scaleb(&n("0.5"), &mut ctx).is_nan());
        assert!(ctx.status().contains(Status::INVALID_OPERATION));
        let mut ctx2 = c64();
        assert!(n("1").scaleb(&n("1000000"), &mut ctx2).is_nan());
    }

    #[test]
    fn scaleb_can_overflow_the_format() {
        let mut ctx = c64();
        let r = n("9E+384").scaleb(&n("1"), &mut ctx);
        assert!(r.is_infinite());
        assert!(ctx.status().contains(Status::OVERFLOW));
    }

    #[test]
    fn logb_cases() {
        let mut ctx = c64();
        assert_eq!(n("250").logb(&mut ctx).to_string(), "2");
        assert_eq!(n("0.03").logb(&mut ctx).to_string(), "-2");
        assert_eq!(n("Infinity").logb(&mut ctx).to_string(), "Infinity");
        let r = n("0").logb(&mut ctx);
        assert!(r.is_infinite() && r.is_negative());
        assert!(ctx.status().contains(Status::DIVISION_BY_ZERO));
    }

    #[test]
    fn same_quantum_and_copy_sign() {
        assert!(n("2.17").same_quantum(&n("0.01")));
        assert!(!n("2.17").same_quantum(&n("0.1")));
        assert!(n("Infinity").same_quantum(&n("-Infinity")));
        assert!(n("NaN").same_quantum(&n("NaN")));
        assert!(!n("NaN").same_quantum(&n("1")));
        assert_eq!(n("1.5").copy_sign(&n("-7")).to_string(), "-1.5");
        assert_eq!(n("-1.5").copy_sign(&n("7")).to_string(), "1.5");
    }
}
