//! Integer register names and ABI aliases.

use std::fmt;
use std::str::FromStr;

/// One of the thirty-two RV64 integer registers.
///
/// # Example
///
/// ```
/// use riscv_isa::Reg;
///
/// let a0: Reg = "a0".parse().unwrap();
/// assert_eq!(a0, Reg::A0);
/// assert_eq!(a0.number(), 10);
/// assert_eq!(a0.to_string(), "a0");
/// assert_eq!("x10".parse::<Reg>().unwrap(), a0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

/// ABI names indexed by register number.
const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`.
    pub const SP: Reg = Reg(2);
    /// Global pointer `x3`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer `x4`.
    pub const TP: Reg = Reg(4);
    /// Temporary `x5`.
    pub const T0: Reg = Reg(5);
    /// Temporary `x6`.
    pub const T1: Reg = Reg(6);
    /// Temporary `x7`.
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer `x8`.
    pub const S0: Reg = Reg(8);
    /// Saved register `x9`.
    pub const S1: Reg = Reg(9);
    /// Argument/return `x10`.
    pub const A0: Reg = Reg(10);
    /// Argument/return `x11`.
    pub const A1: Reg = Reg(11);
    /// Argument `x12`.
    pub const A2: Reg = Reg(12);
    /// Argument `x13`.
    pub const A3: Reg = Reg(13);
    /// Argument `x14`.
    pub const A4: Reg = Reg(14);
    /// Argument `x15`.
    pub const A5: Reg = Reg(15);
    /// Argument `x16`.
    pub const A6: Reg = Reg(16);
    /// Argument `x17`.
    pub const A7: Reg = Reg(17);
    /// Saved register `x18`.
    pub const S2: Reg = Reg(18);
    /// Saved register `x19`.
    pub const S3: Reg = Reg(19);
    /// Saved register `x20`.
    pub const S4: Reg = Reg(20);
    /// Saved register `x21`.
    pub const S5: Reg = Reg(21);
    /// Saved register `x22`.
    pub const S6: Reg = Reg(22);
    /// Saved register `x23`.
    pub const S7: Reg = Reg(23);
    /// Saved register `x24`.
    pub const S8: Reg = Reg(24);
    /// Saved register `x25`.
    pub const S9: Reg = Reg(25);
    /// Saved register `x26`.
    pub const S10: Reg = Reg(26);
    /// Saved register `x27`.
    pub const S11: Reg = Reg(27);
    /// Temporary `x28`.
    pub const T3: Reg = Reg(28);
    /// Temporary `x29`.
    pub const T4: Reg = Reg(29);
    /// Temporary `x30`.
    pub const T5: Reg = Reg(30);
    /// Temporary `x31`.
    pub const T6: Reg = Reg(31);

    /// Builds a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    #[must_use]
    pub fn new(n: u8) -> Reg {
        assert!(n < 32, "register number {n} out of range");
        Reg(n)
    }

    /// The register number (0..=31).
    #[must_use]
    pub const fn number(self) -> u8 {
        self.0
    }

    /// The ABI name (`zero`, `ra`, `a0`, …).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// All thirty-two registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl From<Reg> for u32 {
    fn from(r: Reg) -> u32 {
        u32::from(r.0)
    }
}

/// Error returned when a string names no register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(pub String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register {:?}", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                if n < 32 && (num.len() == 1 || !num.starts_with('0')) {
                    return Ok(Reg(n));
                }
            }
        }
        if s == "fp" {
            return Ok(Reg::S0);
        }
        ABI_NAMES
            .iter()
            .position(|&name| name == s)
            .map(|i| Reg(i as u8))
            .ok_or_else(|| ParseRegError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_numbers() {
        assert_eq!(Reg::ZERO.number(), 0);
        assert_eq!(Reg::A0.number(), 10);
        assert_eq!(Reg::T6.number(), 31);
        assert_eq!(Reg::S0.abi_name(), "s0");
    }

    #[test]
    fn parse_both_syntaxes() {
        for r in Reg::all() {
            assert_eq!(r.abi_name().parse::<Reg>().unwrap(), r);
            assert_eq!(format!("x{}", r.number()).parse::<Reg>().unwrap(), r);
        }
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::S0);
        assert!("x32".parse::<Reg>().is_err());
        assert!("x01".parse::<Reg>().is_err());
        assert!("q3".parse::<Reg>().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_large() {
        let _ = Reg::new(32);
    }
}
