//! Systematic fault-injection campaign over the accelerator's
//! architectural state.
//!
//! A campaign runs one guest program to completion on a healthy
//! accelerator (the *golden* run), then replays it once per planned fault,
//! flipping a single bit of accelerator state — a register-file entry, the
//! carry latch, or the interface FSM — immediately before a sampled
//! command index. Every replay is classified into exactly one of four
//! outcomes:
//!
//! * [`FaultOutcome::Masked`] — the run finished with the golden results
//!   and nothing noticed; the flipped state was dead (e.g. a register-file
//!   bit Method-1 never reads).
//! * [`FaultOutcome::Detected`] — the guest's detection net saw the fault
//!   in-band: a nonzero `STAT` readback, or a fault-tolerant kernel's
//!   degradation counter advancing. Results still match the golden run.
//! * [`FaultOutcome::CaughtByWatchdog`] — the core's busy-watchdog aborted
//!   a wedged handshake: either delivered as an M-mode trap the guest
//!   handled, or surfaced as [`riscv_sim::CpuError::RoccTimeout`] when no
//!   trap vector was armed. Bounded in time either way.
//! * [`FaultOutcome::SilentDataCorruption`] — the run finished cleanly but
//!   the results differ from the golden run: the worst class, the one
//!   fault tolerance exists to eliminate.
//!
//! The plan is drawn deterministically from a [`SplitMix64`] seed, so a
//! campaign is exactly reproducible from `(program, seed, faults)`.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use riscv_asm::Program;
use riscv_isa::csr::cause;
use riscv_sim::{Coprocessor, Cpu, CpuError, Memory, RoccCommand, RoccResponse};
use rocc::{DecimalAccelerator, DecimalFunct};

use crate::fuzz::SplitMix64;
use crate::guest::load_program;
use crate::journal::{Fingerprint, Journal, JournalError, JournalSpec, Progress};
use crate::supervisor::{run_case, supervise, CaseBudget, RetryPolicy, RunOutcome, WedgeReason};

/// One single-bit (or single-latch) fault in accelerator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Flip one bit of a register-file entry (`regfile[15]` is the
    /// accumulator, so the sweep covers it too).
    RegisterBit {
        /// Register-file index (0..16).
        index: usize,
        /// Bit position (0..128).
        bit: u32,
    },
    /// Flip the latched decimal carry.
    CarryFlip,
    /// Wedge the interface FSM mid-command: the handshake never completes
    /// until the core's busy-watchdog aborts it.
    FsmWedge,
    /// Force the FSM state register into `Error` without a latched cause.
    FsmError,
}

impl FaultTarget {
    /// Space-free stable token (journal format).
    #[must_use]
    pub fn token(self) -> String {
        match self {
            FaultTarget::RegisterBit { index, bit } => format!("reg:{index}:{bit}"),
            FaultTarget::CarryFlip => "carry".to_string(),
            FaultTarget::FsmWedge => "wedge".to_string(),
            FaultTarget::FsmError => "fsmerr".to_string(),
        }
    }

    /// Parses a [`FaultTarget::token`] back.
    #[must_use]
    pub fn from_token(token: &str) -> Option<FaultTarget> {
        match token {
            "carry" => Some(FaultTarget::CarryFlip),
            "wedge" => Some(FaultTarget::FsmWedge),
            "fsmerr" => Some(FaultTarget::FsmError),
            reg => {
                let rest = reg.strip_prefix("reg:")?;
                let (index, bit) = rest.split_once(':')?;
                Some(FaultTarget::RegisterBit {
                    index: index.parse().ok()?,
                    bit: bit.parse().ok()?,
                })
            }
        }
    }
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTarget::RegisterBit { index, bit } => write!(f, "regfile[{index}] bit {bit}"),
            FaultTarget::CarryFlip => write!(f, "carry flip"),
            FaultTarget::FsmWedge => write!(f, "FSM wedge"),
            FaultTarget::FsmError => write!(f, "FSM error-state flip"),
        }
    }
}

#[derive(Debug, Default)]
struct ProbeState {
    commands_seen: Cell<u64>,
    fired: Cell<bool>,
    stat_detected: Cell<bool>,
}

/// Shared observation handle for a [`FaultInjectingAccelerator`]: the
/// campaign keeps one end while the core owns the accelerator.
#[derive(Debug, Clone, Default)]
pub struct FaultProbe(Rc<ProbeState>);

impl FaultProbe {
    /// RoCC commands the accelerator has received so far.
    #[must_use]
    pub fn commands_seen(&self) -> u64 {
        self.0.commands_seen.get()
    }

    /// True once the planned fault has been injected.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.0.fired.get()
    }

    /// True if the guest read a nonzero `STAT` word after the injection —
    /// the in-band detection signal.
    #[must_use]
    pub fn stat_detected(&self) -> bool {
        self.0.stat_detected.get()
    }
}

/// A [`DecimalAccelerator`] that injects one planned fault into its own
/// architectural state immediately before the command at `fire_at`, and
/// records (through a [`FaultProbe`]) whether the guest later observed a
/// nonzero `STAT`.
#[derive(Debug)]
pub struct FaultInjectingAccelerator {
    inner: DecimalAccelerator,
    fire_at: Option<u64>,
    fault: Option<FaultTarget>,
    probe: Rc<ProbeState>,
}

impl FaultInjectingAccelerator {
    /// An accelerator that injects `fault` before command `fire_at`
    /// (0-based). Returns the accelerator and its observation probe.
    #[must_use]
    pub fn new(fault: FaultTarget, fire_at: u64) -> (Self, FaultProbe) {
        let probe = Rc::new(ProbeState::default());
        (
            FaultInjectingAccelerator {
                inner: DecimalAccelerator::new(),
                fire_at: Some(fire_at),
                fault: Some(fault),
                probe: Rc::clone(&probe),
            },
            FaultProbe(probe),
        )
    }

    /// A healthy accelerator that only counts commands — the golden run.
    #[must_use]
    pub fn golden() -> (Self, FaultProbe) {
        let probe = Rc::new(ProbeState::default());
        (
            FaultInjectingAccelerator {
                inner: DecimalAccelerator::new(),
                fire_at: None,
                fault: None,
                probe: Rc::clone(&probe),
            },
            FaultProbe(probe),
        )
    }

    fn apply(&mut self, fault: FaultTarget) {
        match fault {
            FaultTarget::RegisterBit { index, bit } => {
                self.inner.inject_register_bit_flip(index, bit);
            }
            FaultTarget::CarryFlip => self.inner.inject_carry_flip(),
            FaultTarget::FsmWedge => self.inner.inject_fsm_wedge(),
            FaultTarget::FsmError => self.inner.inject_fsm_error(),
        }
    }
}

impl Coprocessor for FaultInjectingAccelerator {
    fn execute(&mut self, cmd: &RoccCommand, mem: &mut Memory) -> Result<RoccResponse, CpuError> {
        let index = self.probe.commands_seen.get();
        self.probe.commands_seen.set(index + 1);
        if !self.probe.fired.get() && self.fire_at == Some(index) {
            if let Some(fault) = self.fault {
                self.apply(fault);
            }
            self.probe.fired.set(true);
        }
        let response = self.inner.execute(cmd, mem)?;
        if self.probe.fired.get()
            && cmd.instruction.funct7 == DecimalFunct::Stat.funct7()
            && response.rd_value.is_some_and(|v| v != 0)
        {
            self.probe.stat_detected.set(true);
        }
        Ok(response)
    }

    fn watchdog_abort(&mut self) {
        self.inner.watchdog_abort();
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Classification of one fault replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Golden results, no detection signal: the fault hit dead state.
    Masked,
    /// The guest observed the fault in-band (STAT or its degradation
    /// counter) and the results still match the golden run.
    Detected,
    /// The busy-watchdog bounded a wedged handshake (trap or
    /// `RoccTimeout`).
    CaughtByWatchdog,
    /// Clean completion with wrong results.
    SilentDataCorruption,
}

impl FaultOutcome {
    /// Parses the [`Display`](std::fmt::Display) token back (the journal
    /// stores outcomes in display form).
    #[must_use]
    pub fn from_token(token: &str) -> Option<FaultOutcome> {
        match token {
            "masked" => Some(FaultOutcome::Masked),
            "detected" => Some(FaultOutcome::Detected),
            "caught-by-watchdog" => Some(FaultOutcome::CaughtByWatchdog),
            "silent-data-corruption" => Some(FaultOutcome::SilentDataCorruption),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::Detected => "detected",
            FaultOutcome::CaughtByWatchdog => "caught-by-watchdog",
            FaultOutcome::SilentDataCorruption => "silent-data-corruption",
        })
    }
}

/// One planned fault and what came of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Command index the fault preceded.
    pub at_command: u64,
    /// What was flipped.
    pub target: FaultTarget,
    /// How the replay ended.
    pub outcome: FaultOutcome,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Plan seed: same seed, same program — same campaign, fault for
    /// fault.
    pub seed: u64,
    /// Number of faults to inject.
    pub faults: usize,
    /// Instruction budget per replay (a replay must never hang the host).
    pub instruction_budget: u64,
    /// Data symbol holding the guest's results, compared word-for-word
    /// against the golden run to tell masked from corrupted.
    pub results_symbol: Option<String>,
    /// Number of 64-bit words under `results_symbol`.
    pub result_words: usize,
    /// Data symbol of a degradation counter (fault-tolerant kernels); an
    /// advance past the golden value counts as in-band detection.
    pub degraded_symbol: Option<String>,
    /// Cap on mapped guest pages per replay (a fault can turn a store
    /// loop into a memory hog).
    pub memory_page_cap: Option<usize>,
    /// Wall-clock budget per replay attempt, if any.
    pub wall_clock: Option<Duration>,
    /// Attempts (first run included) granted to a replay that wedges
    /// before it is quarantined.
    pub max_wedge_attempts: u32,
    /// Backoff before the first wedge retry (doubling); zero disables
    /// sleeping.
    pub retry_backoff: Duration,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2019,
            faults: 500,
            instruction_budget: 2_000_000,
            results_symbol: Some("results".to_string()),
            result_words: 0,
            degraded_symbol: Some("ft_degraded".to_string()),
            memory_page_cap: Some(4096),
            wall_clock: None,
            max_wedge_attempts: 3,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// A planned fault whose replay never produced a classifiable completion:
/// it stayed wedged through every granted attempt, exhausted a budget, or
/// died on an unhandled fault. The campaign logs it and moves on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCase {
    /// Position in the campaign plan.
    pub index: usize,
    /// Command index the fault preceded.
    pub at_command: u64,
    /// What was flipped.
    pub target: FaultTarget,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// The final attempt's [`RunOutcome`] token.
    pub outcome: String,
}

impl std::fmt::Display for QuarantinedCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault {} before command {} quarantined after {} attempt(s): {}",
            self.target, self.at_command, self.attempts, self.outcome
        )
    }
}

/// The campaign's result: the golden baseline, every classified record,
/// the quarantined cases, and any setup failure (must be empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// RoCC commands the golden run issued (the samplable index space).
    pub total_commands: u64,
    /// The golden run's exit code.
    pub golden_exit: i64,
    /// One record per classified fault, in plan order.
    pub records: Vec<FaultRecord>,
    /// Faults whose replays never completed: wedged past the retry bound,
    /// over a budget, or dead on an unhandled fault. Each is a logged
    /// skip — the campaign still completes and classifies the rest.
    pub quarantined: Vec<QuarantinedCase>,
    /// Campaign-level failures (golden run failed, no commands to inject
    /// into). A sound setup leaves this empty.
    pub errors: Vec<String>,
}

/// Per-class totals of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignTally {
    /// Faults with no architectural effect.
    pub masked: u64,
    /// Faults the guest observed in-band.
    pub detected: u64,
    /// Wedges bounded by the busy-watchdog.
    pub caught_by_watchdog: u64,
    /// Faults that silently corrupted results.
    pub silent_data_corruption: u64,
}

impl CampaignReport {
    /// Per-class totals.
    #[must_use]
    pub fn tally(&self) -> CampaignTally {
        let mut tally = CampaignTally::default();
        for record in &self.records {
            match record.outcome {
                FaultOutcome::Masked => tally.masked += 1,
                FaultOutcome::Detected => tally.detected += 1,
                FaultOutcome::CaughtByWatchdog => tally.caught_by_watchdog += 1,
                FaultOutcome::SilentDataCorruption => tally.silent_data_corruption += 1,
            }
        }
        tally
    }

    /// True when every replay landed in one of the four classes.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

fn read_words(memory: &Memory, program: &Program, symbol: &str, words: usize) -> Option<Vec<u64>> {
    let base = program.symbol(symbol)?;
    (0..words)
        .map(|i| memory.read_u64(base + 8 * i as u64).ok())
        .collect()
}

fn read_counter(memory: &Memory, program: &Program, symbol: &str) -> Option<u64> {
    memory.read_u64(program.symbol(symbol)?).ok()
}

fn sample_target(rng: &mut SplitMix64) -> FaultTarget {
    // Register-file bits dominate the real state space; weight them so.
    match rng.below(8) {
        0..=4 => FaultTarget::RegisterBit {
            index: rng.below(16) as usize,
            bit: rng.below(128) as u32,
        },
        5 => FaultTarget::CarryFlip,
        6 => FaultTarget::FsmWedge,
        _ => FaultTarget::FsmError,
    }
}

/// The golden run's observables, against which every replay is judged.
struct GoldenBaseline {
    exit: i64,
    results: Option<Vec<u64>>,
    degraded: Option<u64>,
}

/// How one supervised replay ended.
enum CaseResult {
    /// The replay completed (or was watchdog-bounded) and was classified.
    Classified(FaultOutcome),
    /// The replay never completed; logged and skipped.
    Quarantined {
        attempts: u32,
        outcome: RunOutcome,
    },
    /// A quarantine decision reconstructed from the journal: only the
    /// stable outcome token survives the round trip.
    QuarantinedReplayed {
        attempts: u32,
        token: String,
    },
}

/// Runs one fault replay under the supervisor and classifies it.
fn replay_case(
    program: &Program,
    config: &CampaignConfig,
    golden: &GoldenBaseline,
    at_command: u64,
    target: FaultTarget,
) -> CaseResult {
    let budget = CaseBudget {
        instruction_fuel: config.instruction_budget,
        memory_pages: config.memory_page_cap,
        wall_clock: config.wall_clock,
    };
    let policy = RetryPolicy {
        max_attempts: config.max_wedge_attempts,
        backoff: config.retry_backoff,
    };
    // Each attempt builds a fresh core and accelerator, so a wedge cannot
    // leak state into its own retry; the last attempt's machine is kept
    // for classification.
    let mut last: Option<(Cpu, FaultProbe)> = None;
    let run = supervise(&policy, || {
        let (accelerator, probe) = FaultInjectingAccelerator::new(target, at_command);
        let mut cpu = Cpu::new();
        cpu.attach_coprocessor(Box::new(accelerator));
        load_program(&mut cpu, program);
        let outcome = run_case(&mut cpu, &budget);
        last = Some((cpu, probe));
        outcome
    });
    let (cpu, probe) = last.expect("supervise runs the attempt at least once");
    match run.outcome {
        RunOutcome::Completed { exit_code } => {
            let watchdog_trapped = cpu.trap_log.iter().any(|t| t.cause == cause::ROCC_TIMEOUT);
            let results = config
                .results_symbol
                .as_deref()
                .and_then(|s| read_words(&cpu.memory, program, s, config.result_words));
            let degraded = config
                .degraded_symbol
                .as_deref()
                .and_then(|s| read_counter(&cpu.memory, program, s));
            let corrupted = exit_code != golden.exit || results != golden.results;
            let in_band = probe.stat_detected()
                || matches!((golden.degraded, degraded), (Some(g), Some(d)) if d > g);
            CaseResult::Classified(if watchdog_trapped {
                FaultOutcome::CaughtByWatchdog
            } else if corrupted {
                FaultOutcome::SilentDataCorruption
            } else if in_band {
                FaultOutcome::Detected
            } else {
                FaultOutcome::Masked
            })
        }
        // Watchdog surfaced as a hard fault: no trap vector was armed.
        // Bounded in time, so it is a classification, not a skip.
        RunOutcome::Wedged {
            reason: WedgeReason::WatchdogAbort,
        } => CaseResult::Classified(FaultOutcome::CaughtByWatchdog),
        outcome => CaseResult::Quarantined {
            attempts: run.attempts,
            outcome,
        },
    }
}

/// Binds a journal to everything that shapes the campaign's case stream:
/// the plan parameters, the classification symbols, the quarantine bounds,
/// and the program itself.
fn campaign_fingerprint(program: &Program, config: &CampaignConfig) -> u64 {
    let mut fp = Fingerprint::new("faults");
    fp.u64(config.seed)
        .u64(config.faults as u64)
        .u64(config.instruction_budget)
        .u64(config.result_words as u64)
        .bytes(config.results_symbol.as_deref().unwrap_or("").as_bytes())
        .bytes(config.degraded_symbol.as_deref().unwrap_or("").as_bytes())
        .u64(config.memory_page_cap.map_or(u64::MAX, |c| c as u64))
        .u64(u64::from(config.max_wedge_attempts))
        .u64(program.entry);
    for segment in program.segments() {
        fp.u64(segment.base).bytes(&segment.data);
    }
    fp.finish()
}

/// One parsed journal line: `(at_command, target token, outcome field)`.
type JournaledCase = (u64, String, String);

fn parse_journaled_cases(lines: &[String]) -> HashMap<usize, JournaledCase> {
    let mut cases = HashMap::new();
    for line in lines {
        let fields: Vec<&str> = line.split(' ').collect();
        if let [index, at_command, target, outcome] = fields[..] {
            if let (Ok(index), Ok(at_command)) = (index.parse(), at_command.parse()) {
                // Later lines win: a re-run after a rejected replay
                // supersedes the stale record.
                cases.insert(index, (at_command, target.to_string(), outcome.to_string()));
            }
        }
    }
    cases
}

/// Reconstructs the in-memory result of a journaled case, if its plan
/// coordinates still match and its outcome field parses.
fn replay_from_journal(
    entry: &JournaledCase,
    at_command: u64,
    target: FaultTarget,
) -> Option<CaseResult> {
    let (journaled_at, journaled_target, outcome) = entry;
    if *journaled_at != at_command || *journaled_target != target.token() {
        return None;
    }
    if let Some(rest) = outcome.strip_prefix("quarantined:") {
        let (attempts, token) = rest.split_once(':')?;
        Some(CaseResult::QuarantinedReplayed {
            attempts: attempts.parse().ok()?,
            token: token.to_string(),
        })
    } else {
        FaultOutcome::from_token(outcome).map(CaseResult::Classified)
    }
}

/// Runs a full campaign over `program` (unjournaled convenience wrapper
/// around [`run_campaign_journaled`]).
///
/// The golden run must complete within the budget; otherwise the report
/// carries a single error and no records. Replays never panic the host:
/// every replay is either classified or quarantined.
#[must_use]
pub fn run_campaign(program: &Program, config: &CampaignConfig) -> CampaignReport {
    run_campaign_journaled(program, config, None, &mut |_| {})
        .expect("a campaign without a journal performs no fallible I/O")
}

/// Runs a campaign with an optional write-ahead journal and progress
/// callback.
///
/// With a [`JournalSpec`], every completed case is appended (and flushed)
/// before the next one starts; with `resume` set, cases already covered by
/// an intact journal prefix are reconstructed from it instead of re-run.
/// The per-fault plan is always re-drawn from the seed — journal entries
/// only short-circuit the expensive replays — so a resumed campaign's
/// report is byte-identical to an uninterrupted one.
///
/// # Errors
///
/// Journal I/O failures and header mismatches ([`JournalError`]). A
/// journal-less run never fails.
pub fn run_campaign_journaled(
    program: &Program,
    config: &CampaignConfig,
    journal: Option<&JournalSpec>,
    progress: &mut dyn FnMut(Progress),
) -> Result<CampaignReport, JournalError> {
    // ---- golden run (always performed: cheap, deterministic, and the
    // baseline every journaled classification was judged against) ----
    let (accelerator, probe) = FaultInjectingAccelerator::golden();
    let mut cpu = Cpu::new();
    cpu.attach_coprocessor(Box::new(accelerator));
    load_program(&mut cpu, program);
    let golden_exit = match cpu.run(config.instruction_budget) {
        Ok(code) => code,
        Err(e) => {
            return Ok(CampaignReport {
                total_commands: probe.commands_seen(),
                golden_exit: -1,
                records: Vec::new(),
                quarantined: Vec::new(),
                errors: vec![format!("golden run failed: {e}")],
            })
        }
    };
    let total_commands = probe.commands_seen();
    let golden = GoldenBaseline {
        exit: golden_exit,
        results: config
            .results_symbol
            .as_deref()
            .and_then(|s| read_words(&cpu.memory, program, s, config.result_words)),
        degraded: config
            .degraded_symbol
            .as_deref()
            .and_then(|s| read_counter(&cpu.memory, program, s)),
    };
    if total_commands == 0 {
        return Ok(CampaignReport {
            total_commands,
            golden_exit,
            records: Vec::new(),
            quarantined: Vec::new(),
            errors: vec!["guest issued no RoCC commands; nothing to inject into".to_string()],
        });
    }

    // ---- journal recovery ----
    let fingerprint = campaign_fingerprint(program, config);
    let mut journaled = HashMap::new();
    let mut journal_file = match journal {
        None => None,
        Some(spec) if spec.resume => {
            let (recovered, file) = Journal::resume(&spec.path, "faults", fingerprint)?;
            journaled = parse_journaled_cases(&recovered.cases);
            Some(file)
        }
        Some(spec) => Some(Journal::create(&spec.path, "faults", fingerprint)?),
    };

    // ---- planned replays ----
    let mut rng = SplitMix64::new(config.seed);
    let mut records = Vec::with_capacity(config.faults);
    let mut quarantined = Vec::new();
    for index in 0..config.faults {
        // The plan is always drawn, journaled case or not, so the rng
        // stream stays aligned with the uninterrupted run.
        let at_command = rng.below(total_commands);
        let target = sample_target(&mut rng);
        let (result, from_journal) = match journaled
            .get(&index)
            .and_then(|entry| replay_from_journal(entry, at_command, target))
        {
            Some(result) => (result, true),
            None => (
                replay_case(program, config, &golden, at_command, target),
                false,
            ),
        };
        let outcome_field = match result {
            CaseResult::Classified(outcome) => {
                records.push(FaultRecord {
                    at_command,
                    target,
                    outcome,
                });
                outcome.to_string()
            }
            CaseResult::Quarantined { attempts, outcome } => {
                let token = outcome.token();
                quarantined.push(QuarantinedCase {
                    index,
                    at_command,
                    target,
                    attempts,
                    outcome: token.clone(),
                });
                format!("quarantined:{attempts}:{token}")
            }
            CaseResult::QuarantinedReplayed { attempts, token } => {
                quarantined.push(QuarantinedCase {
                    index,
                    at_command,
                    target,
                    attempts,
                    outcome: token.clone(),
                });
                format!("quarantined:{attempts}:{token}")
            }
        };
        if let Some(j) = journal_file.as_mut() {
            if !from_journal {
                j.append_case(&[
                    &index.to_string(),
                    &at_command.to_string(),
                    &target.token(),
                    &outcome_field,
                ])?;
            }
        }
        let done = index + 1;
        if let Some(spec) = journal {
            if spec.checkpoint_every > 0 && done.is_multiple_of(spec.checkpoint_every) {
                if let (Some(j), false) = (journal_file.as_mut(), from_journal) {
                    j.checkpoint(done)?;
                }
                progress(Progress {
                    done,
                    total: config.faults,
                    quarantined: quarantined.len(),
                });
            }
        }
    }
    progress(Progress {
        done: config.faults,
        total: config.faults,
        quarantined: quarantined.len(),
    });
    Ok(CampaignReport {
        total_commands,
        golden_exit,
        records,
        quarantined,
        errors: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_asm::assemble;

    fn add_guest() -> Program {
        // Four DEC_ADD/DEC_ADC pairs, results summed into a0.
        assemble(
            "
            start:
                li   s1, 0
                li   s2, 4
            loop:
                li   t0, 0x15
                li   t1, 0x27
                custom0 4, t2, t0, t1, 1, 1, 1
                custom0 9, t3, zero, zero, 1, 1, 1
                add  s1, s1, t2
                add  s1, s1, t3
                addi s2, s2, -1
                bnez s2, loop
                la   t0, results
                sd   s1, 0(t0)
                li   a0, 0
                li   a7, 93
                ecall
                .data
            .align 3
            results:
                .space 8
            ",
        )
        .unwrap()
    }

    #[test]
    fn campaign_is_deterministic_in_the_seed() {
        let program = add_guest();
        let config = CampaignConfig {
            faults: 60,
            result_words: 1,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&program, &config);
        let b = run_campaign(&program, &config);
        assert_eq!(a.records, b.records);
        assert!(a.ok(), "{:?}", a.errors);
        assert_eq!(a.total_commands, 8);
    }

    /// A guest that retries a DEC_ADD until it yields the expected sum,
    /// with a trap handler that restarts the retry loop. Against a healthy
    /// accelerator it exits first try; against a wedged one it livelocks
    /// (the sticky Error state answers every retry with a benign zero), so
    /// the supervisor must quarantine it for the campaign to finish.
    fn retrying_guest() -> Program {
        assemble(
            "
            start:
                la   t0, handler
                csrrw zero, 0x305, t0
            retry:
                li   t0, 0x15
                li   t1, 0x27
                custom0 4, t2, t0, t1, 1, 1, 1
                li   t3, 0x42
                bne  t2, t3, retry
                la   t0, results
                sd   t2, 0(t0)
                li   a0, 0
                li   a7, 93
                ecall
            handler:
                la   t4, retry
                csrrw zero, 0x341, t4
                mret
                .data
            .align 3
            results:
                .space 8
            ",
        )
        .unwrap()
    }

    #[test]
    fn wedged_case_is_quarantined_and_the_campaign_completes() {
        let program = retrying_guest();
        let config = CampaignConfig {
            faults: 40,
            result_words: 1,
            instruction_budget: 20_000,
            max_wedge_attempts: 3,
            retry_backoff: Duration::ZERO,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&program, &config);
        assert!(report.ok(), "{:?}", report.errors);
        // Every planned fault is accounted for: classified or quarantined.
        assert_eq!(report.records.len() + report.quarantined.len(), 40);
        assert!(
            !report.quarantined.is_empty(),
            "FSM wedges against a retrying guest must quarantine"
        );
        // A wedge livelocks the retry loop: the supervisor burns all its
        // attempts before giving up.
        assert!(
            report
                .quarantined
                .iter()
                .any(|q| q.attempts == 3 && q.outcome == "wedged:livelock"),
            "{:?}",
            report.quarantined
        );
        // The quarantine did not eat the ordinary classes.
        assert!(report.tally().masked > 0);
        // Deterministic: an identical run reproduces the report exactly.
        assert_eq!(run_campaign(&program, &config), report);
    }

    #[test]
    fn journaled_campaign_resumes_to_an_identical_report() {
        let program = add_guest();
        let config = CampaignConfig {
            faults: 30,
            result_words: 1,
            ..CampaignConfig::default()
        };
        let mut path = std::env::temp_dir();
        path.push(format!("campaign-unit-{}.journal", std::process::id()));
        let spec = JournalSpec {
            path: path.clone(),
            resume: false,
            checkpoint_every: 7,
        };
        let full = run_campaign_journaled(&program, &config, Some(&spec), &mut |_| {}).unwrap();
        // Truncate the journal to a prefix (simulating a crash), then
        // resume: the report must come out identical.
        let bytes = std::fs::read(&path).unwrap();
        let cut: usize = bytes.len() / 2;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let resume = JournalSpec {
            path: path.clone(),
            resume: true,
            checkpoint_every: 7,
        };
        let mut progress_calls = 0;
        let resumed =
            run_campaign_journaled(&program, &config, Some(&resume), &mut |_| progress_calls += 1)
                .unwrap();
        assert_eq!(resumed, full);
        assert!(progress_calls > 0);
        // A second resume over the now-complete journal is pure replay.
        let replayed =
            run_campaign_journaled(&program, &config, Some(&resume), &mut |_| {}).unwrap();
        assert_eq!(replayed, full);
        // A different seed must refuse the journal.
        let other = CampaignConfig {
            seed: 7,
            ..config.clone()
        };
        assert!(matches!(
            run_campaign_journaled(&program, &other, Some(&resume), &mut |_| {}),
            Err(JournalError::Fingerprint { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unprotected_guest_shows_corruption_and_watchdog_classes() {
        let program = add_guest();
        let report = run_campaign(
            &program,
            &CampaignConfig {
                faults: 120,
                result_words: 1,
                ..CampaignConfig::default()
            },
        );
        assert!(report.ok(), "{:?}", report.errors);
        let tally = report.tally();
        // No trap vector and no STAT reads: wedges die on RoccTimeout and
        // carry flips corrupt silently.
        assert!(tally.caught_by_watchdog > 0, "{tally:?}");
        assert!(tally.silent_data_corruption > 0, "{tally:?}");
        assert!(tally.masked > 0, "{tally:?}");
    }
}
