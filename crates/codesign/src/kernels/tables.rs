//! Guest-side lookup tables and scratch memory.
//!
//! The kernels use the same in-memory tables decNumber does: declet ⇄
//! packed-BCD for the BCD path, declet ⇄ binary and powers of ten for the
//! binary (software-baseline) path.

use std::fmt::Write as _;

use super::KernelKind;

fn emit_u16_table(out: &mut String, label: &str, values: impl Iterator<Item = u16>) {
    let _ = writeln!(out, ".align 3\n{label}:");
    let values: Vec<u16> = values.collect();
    for chunk in values.chunks(8) {
        let row: Vec<String> = chunk.iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(out, "    .half {}", row.join(", "));
    }
}

/// Emits the `.data` tables and scratch space kernel `kind` requires.
#[must_use]
pub fn data_tables(kind: KernelKind) -> String {
    let mut out = String::from("\n    .data\n");
    match kind {
        KernelKind::Software | KernelKind::SoftwareBid => {
            emit_u16_table(
                &mut out,
                "dpd2bin",
                (0..1024u16).map(dpd::declet::decode_declet_bin),
            );
            emit_u16_table(
                &mut out,
                "bin2dpd",
                (0..1000u16).map(dpd::declet::encode_declet_bin),
            );
            // 10^0 .. 10^19 as u64.
            out += ".align 3\npow10:\n";
            let mut p: u128 = 1;
            for _ in 0..20 {
                let _ = writeln!(out, "    .dword {}", p as u64);
                p *= 10;
            }
            // 10^17 .. 10^33 as (lo, hi) u64 pairs.
            out += ".align 3\npow10w:\n";
            let mut p: u128 = 10u128.pow(17);
            for _ in 17..34 {
                let _ = writeln!(out, "    .dword {}, {}", p as u64, (p >> 64) as u64);
                p *= 10;
            }
            if kind == KernelKind::Software {
                // decNumber-style unit arrays: 6 + 6 + 12 dword units.
                out += ".align 3\nx_units:\n    .space 48\ny_units:\n    .space 48\nacc_units:\n    .space 96\n";
            }
        }
        _ => {
            emit_u16_table(
                &mut out,
                "dpd2bcd",
                (0..1024u16).map(dpd::declet::decode_declet_bcd),
            );
            // Indexed by twelve packed-BCD bits; invalid nibble combinations
            // map to zero and are never consulted.
            emit_u16_table(
                &mut out,
                "bcd2dpd",
                (0..4096u16).map(|bcd| {
                    let (d2, d1, d0) = ((bcd >> 8) & 0xF, (bcd >> 4) & 0xF, bcd & 0xF);
                    if d2 <= 9 && d1 <= 9 && d0 <= 9 {
                        dpd::declet::encode_declet(d2 as u8, d1 as u8, d0 as u8)
                    } else {
                        0
                    }
                }),
            );
            if matches!(
                kind,
                KernelKind::Method1 | KernelKind::Method1Dummy | KernelKind::Method1Ft
            ) {
                // Multiplicand-multiples table: MM[0..9] as (lo, hi) pairs.
                out += ".align 3\nmm_table:\n    .space 160\n";
            }
            if kind == KernelKind::Method1Ft {
                // Fault-tolerance scratch: the software adder's carry
                // latch, the watchdog-trap flag, and the degradation
                // counter the framework reads back.
                out += ".align 3\nsoft_carry:\n    .space 8\n";
                out += "hw_fault:\n    .space 8\nft_degraded:\n    .space 8\n";
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_assemble() {
        for kind in KernelKind::ALL {
            let src = format!("start:\n    nop\n{}", data_tables(kind));
            riscv_asm::assemble(&src).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn software_tables_have_expected_sizes() {
        let src = format!("start:\n    nop\n{}", data_tables(KernelKind::Software));
        let program = riscv_asm::assemble(&src).unwrap();
        let base = program.symbol("dpd2bin").unwrap();
        assert_eq!(program.symbol("bin2dpd").unwrap() - base, 2048);
        // Check one declet entry via memory contents.
        let off = (base - program.data.base) as usize;
        // declet for 999 is 0b0011111111 = 255? verify against the library.
        let declet999 = dpd::declet::encode_declet_bin(999);
        let bin_off = (program.symbol("bin2dpd").unwrap() - program.data.base) as usize
            + 999 * 2;
        let stored = u16::from_le_bytes([
            program.data.data[bin_off],
            program.data.data[bin_off + 1],
        ]);
        assert_eq!(stored, declet999);
        let _ = off;
    }

    #[test]
    fn bcd_tables_roundtrip_in_memory() {
        let src = format!("start:\n    nop\n{}", data_tables(KernelKind::Method1));
        let program = riscv_asm::assemble(&src).unwrap();
        let d2b = program.symbol("dpd2bcd").unwrap();
        let b2d = program.symbol("bcd2dpd").unwrap();
        let read16 = |addr: u64| {
            let off = (addr - program.data.base) as usize;
            u16::from_le_bytes([program.data.data[off], program.data.data[off + 1]])
        };
        for declet in [0u16, 5, 0x3FF, 0x2A5] {
            let bcd = read16(d2b + u64::from(declet) * 2);
            let back = read16(b2d + u64::from(bcd) * 2);
            assert_eq!(
                dpd::declet::decode_declet_bcd(back),
                dpd::declet::decode_declet_bcd(declet),
                "declet {declet:#x}"
            );
        }
    }
}
