//! Versioned, checksummed snapshots of complete machine state.
//!
//! A snapshot captures everything a simulator needs to continue a run
//! bit-for-bit: integer registers, pc, scratch CSRs (mtvec/mepc/mcause/
//! mtval live there), every mapped memory page, the console and marker
//! logs, the trap log, the cycle/retirement counters, and — through the
//! [`crate::Coprocessor`] snapshot hooks — the attached accelerator's
//! architectural state (register file, FSM state including the sticky
//! `Error` state, latched status word).
//!
//! The wire format is a little-endian byte stream wrapped in a common
//! envelope (magic, format version, a per-simulator *kind* tag, body
//! length, FNV-1a-64 checksum). The envelope is shared by all three
//! simulators — `rocket-sim` and `atomic-sim` embed a serialized
//! [`CpuSnapshot`] inside their own sealed bodies — so version and
//! corruption checks behave identically everywhere: a snapshot from a
//! different format version fails with a clear
//! [`SnapshotError::Version`], never garbage state.

use crate::cpu::{Marker, TrapRecord};

/// Current snapshot format version. Bump on any wire-format change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Envelope magic: `"RVSN"` little-endian.
const SNAPSHOT_MAGIC: u32 = 0x4E53_5652;

/// Why a snapshot could not be decoded or restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The bytes do not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by a different format version.
    Version {
        /// Version recorded in the snapshot.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The snapshot is of a different simulator kind than the target.
    WrongKind {
        /// Kind tag recorded in the snapshot.
        found: u32,
        /// Kind tag the decoder expected.
        expected: u32,
    },
    /// The stored checksum does not match the content.
    Checksum {
        /// Checksum recorded in the snapshot.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// The byte stream ended before the structure was complete.
    Truncated,
    /// A field decoded to an impossible value.
    Malformed(&'static str),
    /// The snapshot carries coprocessor state the attached coprocessor
    /// cannot restore (wrong accelerator, or none attached).
    Coprocessor {
        /// Coprocessor tag recorded in the snapshot.
        found: u32,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::Version { found, supported } => write!(
                f,
                "snapshot version {found} is not supported (this build reads version {supported})"
            ),
            SnapshotError::WrongKind { found, expected } => write!(
                f,
                "snapshot kind {found:#010x} does not match the target simulator \
                 (expected {expected:#010x})"
            ),
            SnapshotError::Checksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::Coprocessor { found } => write!(
                f,
                "snapshot carries coprocessor state (tag {found:#010x}) the attached \
                 coprocessor cannot restore"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash — the envelope checksum.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Little-endian byte-stream writer for snapshot bodies.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn u128(&mut self, value: u128) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, value: bool) {
        self.u8(u8::from(value));
    }

    /// Appends a length-prefixed byte blob.
    pub fn blob(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte-stream reader matching [`ByteWriter`]. Every read
/// fails with [`SnapshotError::Truncated`] past the end of the stream.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.data.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a boolean byte (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("boolean byte out of range")),
        }
    }

    /// Reads a length-prefixed byte blob.
    pub fn blob(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
        self.take(len)
    }

    /// True once the stream is fully consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Fails unless the stream is fully consumed — decoders call this last
    /// so trailing junk is rejected rather than silently ignored.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing bytes after snapshot"))
        }
    }
}

/// Wraps `body` in the common snapshot envelope:
/// `magic | version | kind | body-length | body | fnv1a64-checksum`.
#[must_use]
pub fn seal(kind: u32, body: &[u8]) -> Vec<u8> {
    let mut writer = ByteWriter::new();
    writer.u32(SNAPSHOT_MAGIC);
    writer.u32(SNAPSHOT_VERSION);
    writer.u32(kind);
    writer.u64(body.len() as u64);
    let mut bytes = writer.finish();
    bytes.extend_from_slice(body);
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Opens a sealed envelope, verifying magic, version, kind, length and
/// checksum; returns the body slice.
pub fn unseal(bytes: &[u8], expected_kind: u32) -> Result<&[u8], SnapshotError> {
    let mut reader = ByteReader::new(bytes);
    let magic = reader.u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = reader.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Version {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let kind = reader.u32()?;
    if kind != expected_kind {
        return Err(SnapshotError::WrongKind {
            found: kind,
            expected: expected_kind,
        });
    }
    let body_len = usize::try_from(reader.u64()?).map_err(|_| SnapshotError::Truncated)?;
    let header_len = 4 + 4 + 4 + 8;
    let expected_total = header_len + body_len + 8;
    if bytes.len() < expected_total {
        return Err(SnapshotError::Truncated);
    }
    if bytes.len() > expected_total {
        return Err(SnapshotError::Malformed("trailing bytes after snapshot"));
    }
    let stored = u64::from_le_bytes(bytes[expected_total - 8..].try_into().unwrap());
    let computed = fnv1a64(&bytes[..expected_total - 8]);
    if stored != computed {
        return Err(SnapshotError::Checksum { stored, computed });
    }
    Ok(&bytes[header_len..header_len + body_len])
}

/// Opaque serialized coprocessor state. The `tag` identifies the
/// coprocessor implementation that produced it; a restore into a
/// different implementation fails with [`SnapshotError::Coprocessor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoprocSnapshot {
    /// Implementation tag (e.g. `"DECA"` for the decimal accelerator).
    pub tag: u32,
    /// Implementation-defined state bytes.
    pub data: Vec<u8>,
}

/// Envelope kind tag of a functional-core snapshot.
pub const KIND_CPU: u32 = 0x5543_5046; // "FPCU"

/// Complete architectural state of the functional core — everything
/// [`crate::Cpu::restore`] needs to continue a run bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuSnapshot {
    /// The 32 integer registers.
    pub regs: [u64; 32],
    /// The program counter.
    pub pc: u64,
    /// The cycle counter.
    pub cycle: u64,
    /// Instructions retired.
    pub instret: u64,
    /// The RoCC busy-watchdog threshold.
    pub rocc_watchdog: u32,
    /// Scratch CSR file (mtvec/mepc/mcause/mtval and friends), sorted by
    /// CSR number.
    pub csrs: Vec<(u16, u64)>,
    /// Every mapped memory page as `(base address, page bytes)`.
    pub pages: Vec<(u64, Vec<u8>)>,
    /// Console output so far.
    pub console: Vec<u8>,
    /// Markers recorded so far.
    pub markers: Vec<Marker>,
    /// Traps delivered so far.
    pub trap_log: Vec<TrapRecord>,
    /// Attached coprocessor state, if the coprocessor supports snapshots.
    pub coproc: Option<CoprocSnapshot>,
}

impl CpuSnapshot {
    /// Serializes into the sealed envelope format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for reg in self.regs {
            w.u64(reg);
        }
        w.u64(self.pc);
        w.u64(self.cycle);
        w.u64(self.instret);
        w.u32(self.rocc_watchdog);
        w.u64(self.csrs.len() as u64);
        for &(csr, value) in &self.csrs {
            w.u16(csr);
            w.u64(value);
        }
        w.u64(self.pages.len() as u64);
        for (base, data) in &self.pages {
            w.u64(*base);
            w.blob(data);
        }
        w.blob(&self.console);
        w.u64(self.markers.len() as u64);
        for marker in &self.markers {
            w.u64(marker.id);
            w.u64(marker.cycle);
            w.u64(marker.instret);
        }
        w.u64(self.trap_log.len() as u64);
        for trap in &self.trap_log {
            w.u64(trap.cause);
            w.u64(trap.epc);
            w.u64(trap.tval);
        }
        match &self.coproc {
            None => w.bool(false),
            Some(coproc) => {
                w.bool(true);
                w.u32(coproc.tag);
                w.blob(&coproc.data);
            }
        }
        seal(KIND_CPU, &w.finish())
    }

    /// Deserializes from the sealed envelope format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let body = unseal(bytes, KIND_CPU)?;
        let mut r = ByteReader::new(body);
        let mut regs = [0u64; 32];
        for reg in &mut regs {
            *reg = r.u64()?;
        }
        let pc = r.u64()?;
        let cycle = r.u64()?;
        let instret = r.u64()?;
        let rocc_watchdog = r.u32()?;
        let csr_count = r.u64()?;
        let mut csrs = Vec::new();
        for _ in 0..csr_count {
            let csr = r.u16()?;
            let value = r.u64()?;
            csrs.push((csr, value));
        }
        let page_count = r.u64()?;
        let mut pages = Vec::new();
        for _ in 0..page_count {
            let base = r.u64()?;
            let data = r.blob()?.to_vec();
            pages.push((base, data));
        }
        let console = r.blob()?.to_vec();
        let marker_count = r.u64()?;
        let mut markers = Vec::new();
        for _ in 0..marker_count {
            markers.push(Marker {
                id: r.u64()?,
                cycle: r.u64()?,
                instret: r.u64()?,
            });
        }
        let trap_count = r.u64()?;
        let mut trap_log = Vec::new();
        for _ in 0..trap_count {
            trap_log.push(TrapRecord {
                cause: r.u64()?,
                epc: r.u64()?,
                tval: r.u64()?,
            });
        }
        let coproc = if r.bool()? {
            let tag = r.u32()?;
            let data = r.blob()?.to_vec();
            Some(CoprocSnapshot { tag, data })
        } else {
            None
        };
        r.expect_end()?;
        Ok(CpuSnapshot {
            regs,
            pc,
            cycle,
            instret,
            rocc_watchdog,
            csrs,
            pages,
            console,
            markers,
            trap_log,
            coproc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        let body = b"decimal computation".to_vec();
        let sealed = seal(0x1234, &body);
        assert_eq!(unseal(&sealed, 0x1234).unwrap(), &body[..]);
    }

    #[test]
    fn unseal_rejects_wrong_kind_version_checksum_and_truncation() {
        let sealed = seal(0x1234, b"body");
        assert_eq!(
            unseal(&sealed, 0x9999),
            Err(SnapshotError::WrongKind {
                found: 0x1234,
                expected: 0x9999
            })
        );
        let mut versioned = sealed.clone();
        versioned[4] = 0x7F; // low byte of the version field
        assert!(matches!(
            unseal(&versioned, 0x1234),
            Err(SnapshotError::Version { found: 0x7F, .. })
        ));
        let mut corrupted = sealed.clone();
        let body_offset = 4 + 4 + 4 + 8;
        corrupted[body_offset] ^= 0x01;
        assert!(matches!(
            unseal(&corrupted, 0x1234),
            Err(SnapshotError::Checksum { .. })
        ));
        assert_eq!(
            unseal(&sealed[..sealed.len() - 1], 0x1234),
            Err(SnapshotError::Truncated)
        );
        assert_eq!(unseal(b"nonsense????????????????", 0x1234), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn cpu_snapshot_bytes_roundtrip() {
        let snapshot = CpuSnapshot {
            regs: std::array::from_fn(|i| i as u64 * 3),
            pc: 0x8000_0010,
            cycle: 42,
            instret: 40,
            rocc_watchdog: 10_000,
            csrs: vec![(0x305, 0x8000_1000), (0x342, 24)],
            pages: vec![(0x8000_0000, vec![0xAB; 4096])],
            console: b"hello".to_vec(),
            markers: vec![Marker {
                id: 7,
                cycle: 9,
                instret: 8,
            }],
            trap_log: vec![TrapRecord {
                cause: 24,
                epc: 0x8000_0004,
                tval: 4,
            }],
            coproc: Some(CoprocSnapshot {
                tag: 0x4445_4341,
                data: vec![1, 2, 3],
            }),
        };
        let decoded = CpuSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(decoded, snapshot);
    }
}
