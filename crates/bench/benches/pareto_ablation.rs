//! Pareto ablation: cycles vs hardware cost across the four co-design
//! methods (the "several Pareto points" the paper's introduction motivates),
//! plus timing-parameter ablations for the design choices DESIGN.md calls
//! out (RoCC response latency, cache miss penalty).

use codesign::kernels::KernelKind;
use codesign::report;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use decimal_bench::{evaluate_cycles, rocket_timing, workload};
use rocket_sim::TimingConfig;

fn print_pareto_once() {
    let vectors = workload(300, 2019);
    let timing = rocket_timing(2019);
    let costs = report::method_costs();
    let mut entries = Vec::new();
    for (kind, (name, gates)) in [
        KernelKind::Method1,
        KernelKind::Method2,
        KernelKind::Method3,
        KernelKind::Method4,
    ]
    .into_iter()
    .zip(costs)
    {
        let eval = evaluate_cycles(kind, &vectors, timing);
        entries.push((name, gates, eval.avg_total_cycles));
    }
    println!("\n{}", report::pareto_table(&entries));

    // Ablation: how sensitive is Method-1 to the RoCC response latency the
    // paper's §V discusses ("such an interface imposes a latency overhead")?
    println!("Ablation: Method-1 avg cycles vs RoCC response latency");
    for resp in [0u32, 2, 4, 8] {
        let timing = TimingConfig {
            rocc_resp_latency: resp,
            ..rocket_timing(2019)
        };
        let eval = evaluate_cycles(KernelKind::Method1, &vectors, timing);
        println!("  resp latency {resp:>2} cycles -> avg total {:>6.0}", eval.avg_total_cycles);
    }

    // Ablation: cache miss penalty (affects both configurations).
    println!("Ablation: avg cycles vs L1 miss penalty");
    for miss in [10u32, 20, 40] {
        let timing = TimingConfig {
            miss_penalty: miss,
            ..rocket_timing(2019)
        };
        let sw = evaluate_cycles(KernelKind::Software, &vectors, timing);
        let m1 = evaluate_cycles(KernelKind::Method1, &vectors, timing);
        println!(
            "  miss {miss:>2} -> software {:>6.0}, method-1 {:>6.0}, speedup {:.2}x",
            sw.avg_total_cycles,
            m1.avg_total_cycles,
            sw.avg_total_cycles / m1.avg_total_cycles
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_pareto_once();
    let vectors = workload(50, 11);
    let timing = rocket_timing(11);
    let mut group = c.benchmark_group("pareto_methods");
    group.sample_size(10);
    for kind in [
        KernelKind::Method1,
        KernelKind::Method2,
        KernelKind::Method3,
        KernelKind::Method4,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(evaluate_cycles(kind, &vectors, timing)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
