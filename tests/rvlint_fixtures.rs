//! `rvlint` fixture suite: deliberately-broken guests must trip exactly
//! the seeded violation class with pc + path-witness diagnostics, and
//! every shipped kernel guest must lint clean.

use codesign::kernels::KernelKind;
use rvlint::{Lint, Severity};
use testgen::TestConfig;

fn lint(source: &str) -> rvlint::Report {
    let program = riscv_asm::assemble(source).expect("fixture assembles");
    rvlint::analyze(&program)
}

fn findings(report: &rvlint::Report, lint: Lint) -> Vec<&rvlint::Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.lint == lint)
        .collect()
}

#[test]
fn uninitialized_read_is_detected_with_witness() {
    let report = lint(
        "start:\n\
         \tli a0, 3\n\
         \tbeqz a0, skip\n\
         \tli a1, 4\n\
         skip:\n\
         \tadd a2, a0, a1\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    // `a1` is defined on the fall-through path only; `rvlint` flags
    // definite bugs, so a may-uninit merge must NOT be reported …
    assert!(
        findings(&report, Lint::UninitializedRead).is_empty(),
        "{report}"
    );

    // … while a register defined on *no* path must be.
    let report = lint(
        "start:\n\
         \tadd a2, a0, a1\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let uninit = findings(&report, Lint::UninitializedRead);
    assert_eq!(uninit.len(), 2, "{report}");
    let first = uninit[0];
    assert_eq!(first.severity, Severity::Error);
    assert!(first.message.contains("a0"), "{report}");
    assert!(first.instruction.contains("add"), "{report}");
    assert!(!first.witness.is_empty(), "witness required: {report}");
    assert!(first.location.contains("line 2"), "{report}");
}

#[test]
fn unreachable_block_is_detected() {
    let report = lint(
        "start:\n\
         \tli a7, 93\n\
         \tecall\n\
         \tli a0, 1\n\
         \tli a1, 2\n\
         \tli a2, 3\n",
    );
    let dead = findings(&report, Lint::UnreachableCode);
    assert_eq!(dead.len(), 1, "{report}");
    assert_eq!(dead[0].severity, Severity::Error);
    assert!(dead[0].message.contains("3 unlabeled"), "{report}");
}

#[test]
fn dec_mul_without_wr_setup_is_detected() {
    // CLR_ALL initializes every internal register, but DEC_MUL multiplies
    // two registers nothing ever deposited data into.
    let report = lint(
        "start:\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tcustom0 7, x15, x1, x2, 0, 0, 0\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let missing = findings(&report, Lint::MissingAccelSetup);
    assert_eq!(missing.len(), 1, "{report}");
    assert!(missing[0].message.contains("WR/LD"), "{report}");
    assert!(missing[0].message.contains("r1, r2"), "{report}");
    assert!(missing[0].message.contains("DEC_MUL"), "{report}");
    assert!(missing[0].instruction.contains("custom0"), "{report}");
    assert!(!missing[0].witness.is_empty(), "{report}");
}

#[test]
fn dec_accum_without_clr_all_is_detected() {
    // No CLR_ALL ever runs: the accumulator and addend registers are
    // completely undefined when DEC_ACCUM reads them.
    let report = lint(
        "start:\n\
         \tli t0, 3\n\
         \tcustom0 8, a2, t0, zero, 1, 1, 0\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let missing = findings(&report, Lint::MissingAccelSetup);
    assert_eq!(missing.len(), 1, "{report}");
    assert!(missing[0].message.contains("no CLR_ALL"), "{report}");
    assert!(missing[0].message.contains("acc"), "{report}");
}

#[test]
fn dec_adc_with_undefined_carry_is_detected() {
    let report = lint(
        "start:\n\
         \tli a0, 0x12\n\
         \tli a1, 0x34\n\
         \tcustom0 9, a2, a0, a1, 1, 1, 1\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let carry = findings(&report, Lint::UndefinedCarry);
    assert_eq!(carry.len(), 1, "{report}");
    assert!(carry[0].message.contains("carry"), "{report}");
    assert!(carry[0].message.contains("DEC_ADC"), "{report}");
}

#[test]
fn missing_clr_all_on_error_path_is_detected() {
    // The guest reads STAT, branches on it — and then issues DEC_ADD on
    // the error path without the CLR_ALL recovery the protocol requires.
    let report = lint(
        "start:\n\
         \tli a0, 0x12\n\
         \tli a1, 0x34\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tcustom0 4, a2, a0, a1, 1, 1, 1\n\
         \tcustom0 12, t0, zero, zero, 1, 0, 0\n\
         \tbnez t0, onerror\n\
         \tj finish\n\
         onerror:\n\
         \tcustom0 4, a3, a0, a1, 1, 1, 1\n\
         \tj finish\n\
         finish:\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let reuse = findings(&report, Lint::ReuseAfterError);
    assert_eq!(reuse.len(), 1, "{report}");
    assert!(reuse[0].message.contains("CLR_ALL"), "{report}");
    assert!(reuse[0].message.contains("DEC_ADD"), "{report}");
    // The witness must route through the error-observing branch.
    assert!(!reuse[0].witness.is_empty(), "{report}");

    // The same shape with the CLR_ALL recovery in place is clean.
    let repaired = lint(
        "start:\n\
         \tli a0, 0x12\n\
         \tli a1, 0x34\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tcustom0 4, a2, a0, a1, 1, 1, 1\n\
         \tcustom0 12, t0, zero, zero, 1, 0, 0\n\
         \tbnez t0, onerror\n\
         \tj finish\n\
         onerror:\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tcustom0 4, a3, a0, a1, 1, 1, 1\n\
         \tj finish\n\
         finish:\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    assert!(
        findings(&repaired, Lint::ReuseAfterError).is_empty(),
        "{repaired}"
    );
}

#[test]
fn non_bcd_immediate_operand_is_detected() {
    let report = lint(
        "start:\n\
         \tli t0, 0xAB\n\
         \tli t1, 0x12\n\
         \tcustom0 4, a2, t0, t1, 1, 1, 1\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let bcd = findings(&report, Lint::NonBcdOperand);
    assert_eq!(bcd.len(), 1, "{report}");
    assert!(bcd[0].message.contains("0xab"), "{report}");
    assert!(bcd[0].message.contains("t0"), "{report}");
    // The reaching-definitions query points at the defining `li`.
    assert!(bcd[0].message.contains("defined at"), "{report}");
}

#[test]
fn non_digit_operand_is_detected() {
    // DEC_ACCUM's rs1 must be a single digit 0-9; 12 is not.
    let report = lint(
        "start:\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tli t0, 12\n\
         \tcustom0 8, a2, t0, zero, 1, 1, 0\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let bcd = findings(&report, Lint::NonBcdOperand);
    assert_eq!(bcd.len(), 1, "{report}");
    assert!(bcd[0].message.contains("digit"), "{report}");

    // The masked digit-extraction idiom (`andi x, 15`) must NOT flag.
    let idiom = lint(
        "start:\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tld t0, 0(sp)\n\
         \tandi t0, t0, 15\n\
         \tcustom0 8, a2, t0, zero, 1, 1, 0\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    assert!(findings(&idiom, Lint::NonBcdOperand).is_empty(), "{idiom}");
}

#[test]
fn redundant_clr_all_is_detected() {
    let report = lint(
        "start:\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let clr = findings(&report, Lint::RedundantClrAll);
    assert_eq!(clr.len(), 1, "{report}");
    assert!(clr[0].message.contains("dead command"), "{report}");
}

#[test]
fn dead_stat_is_detected() {
    let report = lint(
        "start:\n\
         \tcustom0 5, zero, zero, zero, 0, 0, 0\n\
         \tcustom0 12, t0, zero, zero, 1, 0, 0\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let dead = findings(&report, Lint::DeadStat);
    assert_eq!(dead.len(), 1, "{report}");
    assert!(dead[0].message.contains("never consumed"), "{report}");
}

#[test]
fn every_shipped_kernel_lints_clean() {
    let vectors = testgen::generate(&TestConfig {
        count: 4,
        seed: 2019,
        ..TestConfig::default()
    });
    for kind in KernelKind::ALL {
        let guest = codesign::framework::build_guest(kind, &vectors, 1)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let report = rvlint::analyze(&guest.program);
        assert!(
            report.is_clean(),
            "{kind} has gating findings:\n{report}"
        );
        if kind.uses_accelerator() {
            assert!(
                report.stats.accel_commands > 0,
                "{kind}: no accelerator commands found — CFG recovery broke"
            );
        }
    }
}

#[test]
fn diagnostics_are_machine_consumable() {
    let report = lint(
        "start:\n\
         \tadd a2, a0, a1\n\
         \tli a7, 93\n\
         \tecall\n",
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.code(), "uninitialized-read");
    // pc anchors to the text base; witness steps carry pcs too.
    assert_eq!(d.pc % 4, 0);
    assert!(d.witness.iter().all(|s| s.pc % 4 == 0));
    assert!(d.location.starts_with("0x"), "{}", d.location);
}
