//! Software-hardware co-design of decimal multiplication, and the
//! cycle-accurate evaluation framework around it.
//!
//! This is the paper's contribution crate. It contains:
//!
//! * [`backend`] — the accelerator abstraction (real BCD-CLA model, software
//!   stand-in, and the prior art's *dummy functions*);
//! * [`native`] — host-speed implementations: the decNumber-style software
//!   baseline, Method-1 of the co-design (paper Fig. 1), and a
//!   Method-1-style *addition* (`method1_add`) showing the same split
//!   serves the other operation class the test generator offers;
//! * [`kernels`] — RISC-V guest kernels for every configuration, generated
//!   as assembly and built with the in-tree assembler: the software
//!   baseline, Method-1 with real RoCC instructions, Method-1 with dummy
//!   functions, and the deeper-offload Methods 2–4;
//! * [`framework`] — the evaluation framework: builds guest programs from
//!   the test generator's vectors, runs them on the cycle-accurate
//!   Rocket-like core (SW/HW cycle split — Table IV), on the Gem5-like
//!   atomic CPU (Table VI), and natively on the host (Table V), verifying
//!   results against the `decnum` oracle;
//! * [`report`] — table formatters that regenerate the paper's tables.
//!
//! # Example
//!
//! ```
//! use codesign::native::{method1_multiply_accel, software_multiply};
//! use decnum::Status;
//!
//! let x = codesign::parse_decimal64("902.4").unwrap();
//! let y = codesign::parse_decimal64("11.1").unwrap();
//! let mut s1 = Status::CLEAR;
//! let mut s2 = Status::CLEAR;
//! assert_eq!(
//!     method1_multiply_accel(x, y, &mut s1).to_bits(),
//!     software_multiply(x, y, &mut s2).to_bits(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod framework;
pub mod kernels;
pub mod native;
pub mod report;

use decnum::{Context, DecNumber};
use dpd::Decimal64;

/// Parses a decimal literal into a decimal64 interchange value
/// (context-rounded with the format's defaults).
///
/// # Errors
///
/// Returns the underlying parse error for malformed input.
pub fn parse_decimal64(s: &str) -> Result<Decimal64, decnum::ParseDecError> {
    let n: DecNumber = s.parse()?;
    let mut ctx = Context::decimal64();
    Ok(n.to_decimal64(&mut ctx))
}

/// Formats a decimal64 interchange value as a scientific string.
#[must_use]
pub fn format_decimal64(d: Decimal64) -> String {
    DecNumber::from_decimal64(d).to_sci_string()
}
