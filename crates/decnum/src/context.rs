//! Arithmetic contexts: precision, exponent range, rounding and status.

use std::fmt;

/// IEEE 754-2008 decimal rounding modes (decNumber's full set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round to nearest, ties to even — the IEEE default.
    #[default]
    HalfEven,
    /// Round to nearest, ties away from zero.
    HalfUp,
    /// Round to nearest, ties toward zero.
    HalfDown,
    /// Truncate (round toward zero).
    Down,
    /// Round away from zero.
    Up,
    /// Round toward positive infinity.
    Ceiling,
    /// Round toward negative infinity.
    Floor,
    /// Truncate, but round up when the discarded digits would leave a final
    /// digit of 0 or 5 (used when re-rounding must be safe).
    ZeroFiveUp,
}

impl Rounding {
    /// All modes, for exhaustive sweeps.
    pub const ALL: [Rounding; 8] = [
        Rounding::HalfEven,
        Rounding::HalfUp,
        Rounding::HalfDown,
        Rounding::Down,
        Rounding::Up,
        Rounding::Ceiling,
        Rounding::Floor,
        Rounding::ZeroFiveUp,
    ];
}

/// Exception status flags accumulated in a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Status(u32);

impl Status {
    /// No flags set.
    pub const CLEAR: Status = Status(0);
    /// The result was rounded (digits may have been discarded).
    pub const ROUNDED: Status = Status(1 << 0);
    /// Discarded digits were non-zero.
    pub const INEXACT: Status = Status(1 << 1);
    /// The result overflowed the exponent range.
    pub const OVERFLOW: Status = Status(1 << 2);
    /// The result underflowed and lost accuracy.
    pub const UNDERFLOW: Status = Status(1 << 3);
    /// The result is subnormal (before any rounding).
    pub const SUBNORMAL: Status = Status(1 << 4);
    /// The exponent was clamped to fit the format.
    pub const CLAMPED: Status = Status(1 << 5);
    /// An invalid operation (e.g. `0 × ∞`, signaling NaN operand).
    pub const INVALID_OPERATION: Status = Status(1 << 6);
    /// Division of a finite number by zero.
    pub const DIVISION_BY_ZERO: Status = Status(1 << 7);
    /// A string could not be parsed as a decimal number.
    pub const CONVERSION_SYNTAX: Status = Status(1 << 8);

    /// Returns true if every flag in `other` is set in `self`.
    #[must_use]
    pub fn contains(self, other: Status) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns true if any flag in `other` is set in `self`.
    #[must_use]
    pub fn intersects(self, other: Status) -> bool {
        self.0 & other.0 != 0
    }

    /// Sets the flags in `other`.
    pub fn set(&mut self, other: Status) {
        self.0 |= other.0;
    }

    /// Clears all flags.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// True if no flags are set.
    #[must_use]
    pub fn is_clear(self) -> bool {
        self.0 == 0
    }

    /// Union of two flag sets.
    #[must_use]
    pub fn union(self, other: Status) -> Status {
        Status(self.0 | other.0)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clear() {
            return write!(f, "(clear)");
        }
        let names = [
            (Status::ROUNDED, "rounded"),
            (Status::INEXACT, "inexact"),
            (Status::OVERFLOW, "overflow"),
            (Status::UNDERFLOW, "underflow"),
            (Status::SUBNORMAL, "subnormal"),
            (Status::CLAMPED, "clamped"),
            (Status::INVALID_OPERATION, "invalid-operation"),
            (Status::DIVISION_BY_ZERO, "division-by-zero"),
            (Status::CONVERSION_SYNTAX, "conversion-syntax"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// An arithmetic context: working precision, exponent range, rounding mode
/// and accumulated status, mirroring decNumber's `decContext`.
///
/// # Example
///
/// ```
/// use decnum::{Context, DecNumber, Status};
///
/// let mut ctx = Context::decimal64();
/// let a: DecNumber = "9E+384".parse().unwrap();
/// let two: DecNumber = "2".parse().unwrap();
/// let product = a.mul(&two, &mut ctx);
/// assert!(product.is_infinite());
/// assert!(ctx.status().contains(Status::OVERFLOW));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    /// Working precision in significant digits.
    pub precision: u32,
    /// Largest adjusted exponent of a rounded result.
    pub emax: i32,
    /// Smallest adjusted exponent of a normal result.
    pub emin: i32,
    /// Rounding mode.
    pub rounding: Rounding,
    /// IEEE-style exponent clamping (pad coefficients rather than keep large
    /// exponents), as interchange formats require.
    pub clamp: bool,
    status: Status,
}

impl Context {
    /// A context with the IEEE decimal32 parameters (7 digits).
    #[must_use]
    pub fn decimal32() -> Self {
        Context {
            precision: 7,
            emax: 96,
            emin: -95,
            rounding: Rounding::HalfEven,
            clamp: true,
            status: Status::CLEAR,
        }
    }

    /// A context with the IEEE decimal64 parameters (16 digits) — the
    /// "double" precision evaluated in the paper's Table IV.
    #[must_use]
    pub fn decimal64() -> Self {
        Context {
            precision: 16,
            emax: 384,
            emin: -383,
            rounding: Rounding::HalfEven,
            clamp: true,
            status: Status::CLEAR,
        }
    }

    /// A context with the IEEE decimal128 parameters (34 digits) — the
    /// "quad" precision option of the test-program generator.
    #[must_use]
    pub fn decimal128() -> Self {
        Context {
            precision: 34,
            emax: 6144,
            emin: -6143,
            rounding: Rounding::HalfEven,
            clamp: true,
            status: Status::CLEAR,
        }
    }

    /// An unclamped working context with arbitrary precision and a huge
    /// exponent range, useful for intermediate computation.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is zero.
    #[must_use]
    pub fn with_precision(precision: u32) -> Self {
        assert!(precision > 0, "precision must be at least one digit");
        Context {
            precision,
            emax: 999_999_999,
            emin: -999_999_999,
            rounding: Rounding::HalfEven,
            clamp: false,
            status: Status::CLEAR,
        }
    }

    /// Sets the rounding mode, builder style.
    #[must_use]
    pub fn with_rounding(mut self, rounding: Rounding) -> Self {
        self.rounding = rounding;
        self
    }

    /// The accumulated status flags.
    #[must_use]
    pub fn status(&self) -> Status {
        self.status
    }

    /// Raises status flags.
    pub fn raise(&mut self, flags: Status) {
        self.status.set(flags);
    }

    /// Clears the accumulated status.
    pub fn clear_status(&mut self) {
        self.status.clear();
    }

    /// The exponent of the least significant digit of the smallest subnormal
    /// (`Etiny = emin - (precision - 1)`).
    #[must_use]
    pub fn etiny(&self) -> i32 {
        self.emin - (self.precision as i32 - 1)
    }

    /// The largest exponent `q` a coefficient of full precision may carry
    /// (`Etop = emax - (precision - 1)`).
    #[must_use]
    pub fn etop(&self) -> i32 {
        self.emax - (self.precision as i32 - 1)
    }
}

impl Default for Context {
    /// [`Context::decimal64`], the precision the paper evaluates.
    fn default() -> Self {
        Context::decimal64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parameters() {
        let c64 = Context::decimal64();
        assert_eq!(c64.precision, 16);
        assert_eq!(c64.etiny(), -398);
        assert_eq!(c64.etop(), 369);
        let c128 = Context::decimal128();
        assert_eq!(c128.etiny(), -6176);
        assert_eq!(c128.etop(), 6111);
        let c32 = Context::decimal32();
        assert_eq!(c32.etiny(), -101);
        assert_eq!(c32.etop(), 90);
    }

    #[test]
    fn status_flag_algebra() {
        let mut s = Status::CLEAR;
        assert!(s.is_clear());
        s.set(Status::INEXACT);
        s.set(Status::ROUNDED);
        assert!(s.contains(Status::INEXACT));
        assert!(s.contains(Status::INEXACT.union(Status::ROUNDED)));
        assert!(!s.contains(Status::OVERFLOW));
        assert!(s.intersects(Status::OVERFLOW.union(Status::ROUNDED)));
        s.clear();
        assert!(s.is_clear());
    }

    #[test]
    fn status_display() {
        assert_eq!(Status::CLEAR.to_string(), "(clear)");
        assert_eq!(
            Status::INEXACT.union(Status::ROUNDED).to_string(),
            "rounded inexact"
        );
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn zero_precision_rejected() {
        let _ = Context::with_precision(0);
    }
}
