//! Accelerator backends for the native Method-1 implementation.
//!
//! The co-design methods call a small set of decimal-hardware operations.
//! [`AccelBackend`] abstracts who actually performs them:
//!
//! * [`ClaBackend`] — the real accelerator model (`rocc`), the configuration
//!   the paper's framework evaluates cycle-accurately;
//! * [`SoftwareBackend`] — direct `bcd` software arithmetic, for
//!   differential testing of the flow itself;
//! * [`DummyBackend`] — the prior art's estimation device: "the dummy
//!   functions have a fixed return type" (paper §V), so results are wrong
//!   and data-dependent paths may not be taken — exactly the inaccuracy the
//!   paper's framework exposes.

use bcd::Bcd64;
use rocc::{DecimalAccelerator, DecimalFunct};

/// The decimal-hardware operations Method-1 requires (one BCD-CLA).
pub trait AccelBackend {
    /// BCD addition; the carry out is latched for a following
    /// [`AccelBackend::dec_adc`].
    fn dec_add(&mut self, a: u64, b: u64) -> u64;

    /// BCD addition including the latched carry-in; latches carry out.
    fn dec_adc(&mut self, a: u64, b: u64) -> u64;

    /// The latched carry flag.
    fn carry(&self) -> bool;

    /// Number of backend calls so far (the hardware-invocation count).
    fn calls(&self) -> u64;
}

/// The real accelerator model: commands go through the same
/// [`DecimalAccelerator`] the simulated cores attach over RoCC.
#[derive(Debug, Default)]
pub struct ClaBackend {
    accelerator: DecimalAccelerator,
    calls: u64,
}

impl ClaBackend {
    /// A fresh accelerator.
    #[must_use]
    pub fn new() -> Self {
        ClaBackend::default()
    }

    /// The wrapped accelerator (e.g. for cost/statistics queries).
    #[must_use]
    pub fn accelerator(&self) -> &DecimalAccelerator {
        &self.accelerator
    }
}

impl AccelBackend for ClaBackend {
    fn dec_add(&mut self, a: u64, b: u64) -> u64 {
        self.calls += 1;
        self.accelerator
            .command(DecimalFunct::DecAdd, a, b, 0, 0, 0)
            .expect("valid BCD operands")
            .rd_value
            .expect("DEC_ADD responds")
    }

    fn dec_adc(&mut self, a: u64, b: u64) -> u64 {
        self.calls += 1;
        self.accelerator
            .command(DecimalFunct::DecAdc, a, b, 0, 0, 0)
            .expect("valid BCD operands")
            .rd_value
            .expect("DEC_ADC responds")
    }

    fn carry(&self) -> bool {
        self.accelerator.carry()
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

/// Pure-software BCD arithmetic (no hardware model in the loop).
#[derive(Debug, Default)]
pub struct SoftwareBackend {
    carry: bool,
    calls: u64,
}

impl SoftwareBackend {
    /// A fresh backend with a clear carry latch.
    #[must_use]
    pub fn new() -> Self {
        SoftwareBackend::default()
    }
}

impl AccelBackend for SoftwareBackend {
    fn dec_add(&mut self, a: u64, b: u64) -> u64 {
        self.calls += 1;
        let (sum, carry) = Bcd64::from_raw_unchecked(a).add(Bcd64::from_raw_unchecked(b));
        self.carry = carry;
        sum.raw()
    }

    fn dec_adc(&mut self, a: u64, b: u64) -> u64 {
        self.calls += 1;
        let (sum, carry) =
            Bcd64::from_raw_unchecked(a).adc(Bcd64::from_raw_unchecked(b), self.carry);
        self.carry = carry;
        sum.raw()
    }

    fn carry(&self) -> bool {
        self.carry
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

/// The paper's dummy functions: every call returns its first operand
/// unchanged (`return a;` in the paper's listing) and the carry is stuck at
/// zero. Results are deliberately wrong; only the call pattern and timing
/// matter.
#[derive(Debug, Default)]
pub struct DummyBackend {
    calls: u64,
}

impl DummyBackend {
    /// A fresh dummy backend.
    #[must_use]
    pub fn new() -> Self {
        DummyBackend::default()
    }
}

impl AccelBackend for DummyBackend {
    fn dec_add(&mut self, a: u64, _b: u64) -> u64 {
        self.calls += 1;
        a
    }

    fn dec_adc(&mut self, a: u64, _b: u64) -> u64 {
        self.calls += 1;
        a
    }

    fn carry(&self) -> bool {
        false
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &mut dyn AccelBackend) -> (u64, u64, bool) {
        let lo = backend.dec_add(0x9999_9999_9999_9999, 0x1);
        let hi = backend.dec_adc(0x0, 0x0);
        (lo, hi, backend.carry())
    }

    #[test]
    fn cla_and_software_agree() {
        let mut cla = ClaBackend::new();
        let mut sw = SoftwareBackend::new();
        assert_eq!(exercise(&mut cla), exercise(&mut sw));
        assert_eq!(cla.calls(), 2);
        assert_eq!(sw.calls(), 2);
    }

    #[test]
    fn carry_chains_through_adc() {
        let mut sw = SoftwareBackend::new();
        let (lo, hi, _) = exercise(&mut sw);
        assert_eq!(lo, 0);
        assert_eq!(hi, 1, "carry from the low half lands in the high half");
    }

    #[test]
    fn dummy_returns_first_operand() {
        let mut dummy = DummyBackend::new();
        assert_eq!(dummy.dec_add(0x42, 0x999), 0x42);
        assert_eq!(dummy.dec_adc(0x7, 0x1), 0x7);
        assert!(!dummy.carry());
        assert_eq!(dummy.calls(), 2);
    }
}
