//! Snapshot/restore equivalence: running a guest to an arbitrary point,
//! serializing the machine, and restoring the bytes into a *fresh*
//! simulator must continue the run bit-for-bit — the retirement stream,
//! the exit code, and the final architectural snapshot all match an
//! uninterrupted reference run. This holds on all three simulators for
//! every registered kernel, which is what makes crash-safe campaign
//! resumption trustworthy.
//!
//! The serialized format itself is also checked: a snapshot with a bumped
//! version byte, a corrupted payload, the wrong simulator kind, or
//! coprocessor state restored into an accelerator-less core must each
//! fail with the matching typed [`SnapshotError`], never garbage state.

use std::cell::RefCell;
use std::rc::Rc;

use decimalarith::atomic_sim::{AtomicConfig, AtomicSim, AtomicSnapshot};
use decimalarith::codesign::framework::build_guest;
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::lockstep::{guest_budget, load_program, LockstepSim, SimKind};
use decimalarith::riscv_sim::{Cpu, CpuSnapshot, Event, SnapshotError};
use decimalarith::rocc::DecimalAccelerator;
use decimalarith::rocket_sim::{RocketSim, RocketSnapshot, TimingConfig};
use decimalarith::testgen::{generate, TestConfig};
use proptest::prelude::*;

/// One of the three simulators, with the decimal accelerator attached,
/// behind a uniform snapshot interface for the tests below.
enum Sim {
    Functional(Box<Cpu>),
    Rocket(Box<RocketSim>),
    Atomic(Box<AtomicSim>),
}

impl Sim {
    fn new(kind: SimKind) -> Sim {
        match kind {
            SimKind::Functional => {
                let mut cpu = Cpu::new();
                cpu.attach_coprocessor(Box::new(DecimalAccelerator::new()));
                Sim::Functional(Box::new(cpu))
            }
            SimKind::Rocket => {
                let mut sim = RocketSim::new(TimingConfig::default());
                sim.attach_coprocessor(Box::new(DecimalAccelerator::new()));
                Sim::Rocket(Box::new(sim))
            }
            SimKind::Atomic => {
                let mut sim = AtomicSim::new(AtomicConfig::default());
                sim.attach_coprocessor(Box::new(DecimalAccelerator::new()));
                Sim::Atomic(Box::new(sim))
            }
        }
    }

    fn dynamic(&mut self) -> &mut dyn LockstepSim {
        match self {
            Sim::Functional(cpu) => &mut **cpu,
            Sim::Rocket(sim) => &mut **sim,
            Sim::Atomic(sim) => &mut **sim,
        }
    }

    fn snapshot_bytes(&self) -> Vec<u8> {
        match self {
            Sim::Functional(cpu) => cpu.snapshot().to_bytes(),
            Sim::Rocket(sim) => sim.snapshot().to_bytes(),
            Sim::Atomic(sim) => sim.snapshot().to_bytes(),
        }
    }

    fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        match self {
            Sim::Functional(cpu) => cpu.restore(&CpuSnapshot::from_bytes(bytes)?),
            Sim::Rocket(sim) => sim.restore(&RocketSnapshot::from_bytes(bytes)?),
            Sim::Atomic(sim) => sim.restore(&AtomicSnapshot::from_bytes(bytes)?),
        }
    }

    fn observe(&mut self, stream: &Rc<RefCell<Vec<String>>>) {
        let stream = Rc::clone(stream);
        self.dynamic()
            .cpu_mut()
            .set_retire_observer(move |record| stream.borrow_mut().push(record.to_string()));
    }
}

/// Steps until the guest exits, returning the exit code and step count.
fn run_to_exit(sim: &mut Sim, budget: u64) -> (i64, u64) {
    let mut steps = 0;
    loop {
        assert!(steps < budget, "guest did not exit within the step budget");
        steps += 1;
        match sim.dynamic().step_sim() {
            Ok(Event::Exited { code }) => return (code, steps),
            Ok(_) => {}
            Err(e) => panic!("unexpected fault after {steps} steps: {e}"),
        }
    }
}

/// Steps exactly `n` times, asserting the guest does not exit early.
fn run_steps(sim: &mut Sim, n: u64) {
    for step in 0..n {
        match sim.dynamic().step_sim() {
            Ok(Event::Exited { .. }) => panic!("guest exited early at step {step}"),
            Ok(_) => {}
            Err(e) => panic!("unexpected fault at step {step}: {e}"),
        }
    }
}

/// The core equivalence check: reference run vs. snapshot at
/// `numer/denom` of the way through, serialized, restored into a fresh
/// simulator, and continued.
fn check_split(kernel: KernelKind, sim_kind: SimKind, numer: u64, denom: u64) {
    let vectors = generate(&TestConfig {
        count: 1,
        seed: 2019,
        ..TestConfig::default()
    });
    let guest = build_guest(kernel, &vectors, 1)
        .unwrap_or_else(|e| panic!("{kernel}: failed to build guest: {e}"));
    let budget = guest_budget(&guest);

    let reference_stream = Rc::new(RefCell::new(Vec::new()));
    let mut reference = Sim::new(sim_kind);
    reference.observe(&reference_stream);
    load_program(reference.dynamic().cpu_mut(), &guest.program);
    let (reference_exit, total_steps) = run_to_exit(&mut reference, budget);
    let reference_final = reference.snapshot_bytes();
    assert!(total_steps >= 2, "guest too short to split");

    let split = (total_steps * numer / denom).clamp(1, total_steps - 1);
    let prefix_stream = Rc::new(RefCell::new(Vec::new()));
    let mut first = Sim::new(sim_kind);
    first.observe(&prefix_stream);
    load_program(first.dynamic().cpu_mut(), &guest.program);
    run_steps(&mut first, split);
    let snapshot = first.snapshot_bytes();

    // The snapshot is restored into a *fresh* simulator — nothing carries
    // over except the serialized bytes.
    let suffix_stream = Rc::new(RefCell::new(Vec::new()));
    let mut second = Sim::new(sim_kind);
    second.observe(&suffix_stream);
    second
        .restore_bytes(&snapshot)
        .unwrap_or_else(|e| panic!("{kernel} on {sim_kind:?}: restore failed: {e}"));
    let (resumed_exit, suffix_steps) = run_to_exit(&mut second, budget);

    assert_eq!(resumed_exit, reference_exit, "{kernel} on {sim_kind:?}: exit code");
    assert_eq!(
        split + suffix_steps,
        total_steps,
        "{kernel} on {sim_kind:?}: step count"
    );
    let mut combined = prefix_stream.borrow().clone();
    combined.extend(suffix_stream.borrow().iter().cloned());
    assert_eq!(
        combined,
        *reference_stream.borrow(),
        "{kernel} on {sim_kind:?}: retirement stream"
    );
    assert_eq!(
        second.snapshot_bytes(),
        reference_final,
        "{kernel} on {sim_kind:?}: final architectural snapshot"
    );
}

#[test]
fn midpoint_snapshot_resumes_identically_on_every_sim_and_kernel() {
    for kernel in KernelKind::ALL {
        for sim_kind in SimKind::ALL {
            check_split(kernel, sim_kind, 1, 2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_snapshot_point_resumes_identically(
        kernel_index in 0..KernelKind::ALL.len(),
        sim_index in 0..SimKind::ALL.len(),
        numer in 1u64..100,
    ) {
        check_split(
            KernelKind::ALL[kernel_index],
            SimKind::ALL[sim_index],
            numer,
            100,
        );
    }
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let mut sim = Sim::new(SimKind::Functional);
    let mut bytes = sim.snapshot_bytes();
    // The envelope is `magic(4) | version(4) | ...`: byte 4 is the low
    // byte of the little-endian version word.
    bytes[4] ^= 0xFF;
    match sim.restore_bytes(&bytes) {
        Err(SnapshotError::Version { found, supported }) => {
            assert_ne!(found, supported);
        }
        other => panic!("expected SnapshotError::Version, got {other:?}"),
    }
}

#[test]
fn corrupted_payload_fails_the_checksum() {
    let mut sim = Sim::new(SimKind::Atomic);
    let mut bytes = sim.snapshot_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    match sim.restore_bytes(&bytes) {
        Err(SnapshotError::Checksum { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected SnapshotError::Checksum, got {other:?}"),
    }
}

#[test]
fn wrong_simulator_kind_is_rejected() {
    let rocket = Sim::new(SimKind::Rocket);
    let bytes = rocket.snapshot_bytes();
    let mut atomic = Sim::new(SimKind::Atomic);
    assert!(matches!(
        atomic.restore_bytes(&bytes),
        Err(SnapshotError::WrongKind { .. })
    ));
}

#[test]
fn coprocessor_state_needs_a_matching_coprocessor() {
    // A snapshot carrying accelerator state must not restore into a core
    // with no accelerator attached.
    let mut with_accel = Cpu::new();
    with_accel.attach_coprocessor(Box::new(DecimalAccelerator::new()));
    let snapshot = with_accel.snapshot();
    assert!(snapshot.coproc.is_some(), "accelerator state expected in the snapshot");
    let mut bare = Cpu::new();
    assert!(matches!(
        bare.restore(&snapshot),
        Err(SnapshotError::Coprocessor { .. })
    ));
}
