//! Control-flow-graph recovery from assembled machine code.
//!
//! The graph is built at instruction granularity (one node per 4-byte text
//! word) in four phases:
//!
//! 1. decode every word with [`riscv_isa::Instr::decode`];
//! 2. scan for constant pairs (`auipc`+`addi`, `lui`+`addi`) that
//!    materialize text addresses — these are *address-taken* entry points
//!    (e.g. a trap handler armed into `mtvec`) — and resolve
//!    `auipc ra`+`jalr ra` call pairs (the `call` pseudo-op);
//! 3. assign every instruction to the function entries that reach it
//!    *intra*-procedurally (calls step over the callee, `ret` stops), so a
//!    `ret` can be wired to exactly the return points of its function's
//!    call sites — tail-calls (`j f`) fold the jumped-to body into the
//!    jumping function, which routes its `ret` correctly;
//! 4. wire the interprocedural graph (call → callee entry, `ret` → return
//!    points) and compute reachability from the entry and the
//!    address-taken roots.
//!
//! The exit-syscall convention is peephole-recognized: an `ecall` whose
//! basic block loads `a7` with 93 (`exit`) is terminal, so the driver's
//! `finish` sequence does not fall through into the kernel body.

use riscv_asm::Program;
use riscv_isa::instr::OpImmOp;
use riscv_isa::{Instr, Reg};

/// The syscall number of `exit` in the guest ABI.
const SYS_EXIT: i32 = 93;

/// A resolved direct call site.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Instruction index of the call.
    pub site: u32,
    /// Instruction index of the callee entry.
    pub target: u32,
    /// Instruction index execution resumes at after the callee returns.
    pub return_idx: u32,
}

/// The recovered whole-program control-flow graph.
pub struct Cfg {
    /// Base address of the text segment.
    pub base: u64,
    /// Decoded instruction per text word (`None` for undecodable words).
    pub instrs: Vec<Option<Instr>>,
    /// Successor edges per instruction index.
    pub succs: Vec<Vec<u32>>,
    /// Predecessor edges per instruction index.
    pub preds: Vec<Vec<u32>>,
    /// Reachable from the entry or an address-taken root.
    pub reachable: Vec<bool>,
    /// Instruction index of the program entry.
    pub entry: u32,
    /// Address-taken text addresses (secondary roots, e.g. trap handlers).
    pub secondary_roots: Vec<u32>,
    /// All resolved direct call sites.
    pub call_sites: Vec<CallSite>,
    /// Function entry points: the entry, the secondary roots, and every
    /// call target.
    pub functions: Vec<u32>,
    /// `jalr` instructions whose target could not be resolved statically
    /// (none exist in the shipped kernels; reported as an info note).
    pub unresolved_indirect: Vec<u32>,
    /// Basic-block leaders (for block statistics and witness rendering).
    pub leaders: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG for `program`'s text segment.
    #[must_use]
    pub fn build(program: &Program) -> Cfg {
        let base = program.text.base;
        let instrs: Vec<Option<Instr>> = program
            .text
            .data
            .chunks_exact(4)
            .map(|chunk| {
                let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                Instr::decode(word).ok()
            })
            .collect();
        let n = instrs.len();
        let in_text = |addr: u64| -> Option<u32> {
            let offset = addr.checked_sub(base)?;
            (offset % 4 == 0 && (offset / 4) < n as u64).then_some((offset / 4) as u32)
        };

        // Phase 2: constant pairs — address-taken roots and call targets.
        let mut secondary_roots = Vec::new();
        let mut jalr_call_target = vec![None::<u32>; n];
        for i in 0..n.saturating_sub(1) {
            let pc = base + 4 * i as u64;
            match (&instrs[i], &instrs[i + 1]) {
                (
                    Some(Instr::Auipc { rd, imm20 }),
                    Some(Instr::OpImm {
                        op: OpImmOp::Addi,
                        rd: rd2,
                        rs1,
                        imm,
                    }),
                ) if rd2 == rs1 && rd == rd2 => {
                    let addr = pc
                        .wrapping_add(((i64::from(*imm20)) << 12) as u64)
                        .wrapping_add(*imm as i64 as u64);
                    if let Some(idx) = in_text(addr) {
                        secondary_roots.push(idx);
                    }
                }
                (
                    Some(Instr::Lui { rd, imm20 }),
                    Some(Instr::OpImm {
                        op: OpImmOp::Addi,
                        rd: rd2,
                        rs1,
                        imm,
                    }),
                ) if rd2 == rs1 && rd == rd2 => {
                    let addr = (((i64::from(*imm20)) << 12) + i64::from(*imm)) as u64;
                    if let Some(idx) = in_text(addr) {
                        secondary_roots.push(idx);
                    }
                }
                (
                    Some(Instr::Auipc { rd: Reg::RA, imm20 }),
                    Some(Instr::Jalr {
                        rd: Reg::RA,
                        rs1: Reg::RA,
                        offset,
                    }),
                ) => {
                    let addr = pc
                        .wrapping_add(((i64::from(*imm20)) << 12) as u64)
                        .wrapping_add(*offset as i64 as u64);
                    if let Some(idx) = in_text(addr) {
                        jalr_call_target[i + 1] = Some(idx);
                    }
                }
                _ => {}
            }
        }
        secondary_roots.sort_unstable();
        secondary_roots.dedup();

        // Phase 3a: raw control edges, call sites, returns.
        let mut call_sites = Vec::new();
        let mut rets = Vec::new();
        let mut unresolved_indirect = Vec::new();
        // Per-instruction control successors *excluding* return edges;
        // calls carry an edge to the callee (interprocedural view).
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Intra-function successors: calls step to their return point,
        // returns stop. Used only for function membership.
        let mut intra: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            let pc = base + 4 * i as u64;
            let next = (i + 1 < n).then_some((i + 1) as u32);
            let Some(instr) = &instrs[i] else { continue };
            match instr {
                Instr::Jal { rd, offset } => {
                    let target = in_text(pc.wrapping_add(*offset as i64 as u64));
                    match (target, *rd == Reg::RA, next) {
                        (Some(t), true, Some(ret_idx)) => {
                            call_sites.push(CallSite {
                                site: i as u32,
                                target: t,
                                return_idx: ret_idx,
                            });
                            succs[i].push(t);
                            intra[i].push(ret_idx);
                        }
                        (Some(t), _, _) => {
                            succs[i].push(t);
                            intra[i].push(t);
                        }
                        (None, _, _) => {}
                    }
                }
                Instr::Jalr { .. } if instr.is_return() => rets.push(i as u32),
                Instr::Jalr { rd, .. } => {
                    if let Some(t) = jalr_call_target[i] {
                        if *rd == Reg::RA {
                            if let Some(ret_idx) = next {
                                call_sites.push(CallSite {
                                    site: i as u32,
                                    target: t,
                                    return_idx: ret_idx,
                                });
                                succs[i].push(t);
                                intra[i].push(ret_idx);
                            }
                        } else {
                            succs[i].push(t);
                            intra[i].push(t);
                        }
                    } else {
                        unresolved_indirect.push(i as u32);
                    }
                }
                Instr::Branch { offset, .. } => {
                    if let Some(next_idx) = next {
                        succs[i].push(next_idx);
                        intra[i].push(next_idx);
                    }
                    if let Some(t) = in_text(pc.wrapping_add(*offset as i64 as u64)) {
                        succs[i].push(t);
                        intra[i].push(t);
                    }
                }
                Instr::Mret => {}
                Instr::Ecall if is_exit_ecall(&instrs, i) => {}
                _ => {
                    if let Some(next_idx) = next {
                        succs[i].push(next_idx);
                        intra[i].push(next_idx);
                    }
                }
            }
        }

        // Phase 3b: function entries and membership.
        let entry = in_text(program.entry).unwrap_or(0);
        let mut functions: Vec<u32> = Vec::new();
        functions.push(entry);
        functions.extend(&secondary_roots);
        functions.extend(call_sites.iter().map(|c| c.target));
        functions.sort_unstable();
        functions.dedup();
        let words = functions.len().div_ceil(64);
        let mut membership = vec![vec![0u64; words]; n];
        for (f_idx, &f) in functions.iter().enumerate() {
            let (word, bit) = (f_idx / 64, 1u64 << (f_idx % 64));
            let mut stack = vec![f];
            while let Some(i) = stack.pop() {
                let m = &mut membership[i as usize][word];
                if *m & bit != 0 {
                    continue;
                }
                *m |= bit;
                stack.extend(&intra[i as usize]);
            }
        }

        // Phase 4: return edges — a `ret` resumes at the return points of
        // every call site whose callee's body contains it.
        let entry_index = |target: u32| functions.binary_search(&target).ok();
        for &r in &rets {
            for call in &call_sites {
                let Some(f_idx) = entry_index(call.target) else {
                    continue;
                };
                if membership[r as usize][f_idx / 64] & (1u64 << (f_idx % 64)) != 0 {
                    succs[r as usize].push(call.return_idx);
                }
            }
            succs[r as usize].sort_unstable();
            succs[r as usize].dedup();
        }

        // Reachability from the entry and the address-taken roots.
        let mut reachable = vec![false; n];
        let mut stack: Vec<u32> = vec![entry];
        stack.extend(&secondary_roots);
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut reachable[i as usize], true) {
                continue;
            }
            stack.extend(&succs[i as usize]);
        }

        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, out) in succs.iter().enumerate() {
            for &t in out {
                preds[t as usize].push(i as u32);
            }
        }

        // Leaders: roots, join points, and jump/branch landing sites.
        let mut leaders = vec![false; n];
        if n > 0 {
            leaders[entry as usize] = true;
        }
        for &r in &secondary_roots {
            leaders[r as usize] = true;
        }
        for (i, out) in succs.iter().enumerate() {
            for &t in out {
                if t as usize != i + 1 {
                    leaders[t as usize] = true;
                }
            }
            if preds[i].len() > 1 {
                leaders[i] = true;
            }
        }

        Cfg {
            base,
            instrs,
            succs,
            preds,
            reachable,
            entry,
            secondary_roots,
            call_sites,
            functions,
            unresolved_indirect,
            leaders,
        }
    }

    /// Number of instruction slots (text words).
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the text segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The pc of instruction index `i`.
    #[must_use]
    pub fn pc(&self, i: u32) -> u64 {
        self.base + 4 * u64::from(i)
    }

    /// All analysis roots: the entry plus the address-taken roots.
    #[must_use]
    pub fn roots(&self) -> Vec<u32> {
        let mut roots = vec![self.entry];
        roots.extend(&self.secondary_roots);
        roots.dedup();
        roots
    }

    /// Number of basic blocks among reachable instructions.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.leaders
            .iter()
            .zip(&self.reachable)
            .filter(|&(&l, &r)| l && r)
            .count()
    }

    /// Shortest control-flow path from any of `sources` to `target`,
    /// avoiding instructions for which `avoid` is true (the target itself
    /// is never avoided). Returns instruction indices, source first.
    #[must_use]
    pub fn witness_path(
        &self,
        sources: &[u32],
        target: u32,
        avoid: &dyn Fn(u32) -> bool,
    ) -> Option<Vec<u32>> {
        let n = self.len();
        let mut parent = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            if s != target && avoid(s) {
                continue;
            }
            if parent[s as usize] == u32::MAX {
                parent[s as usize] = s;
                queue.push_back(s);
            }
        }
        while let Some(i) = queue.pop_front() {
            if i == target {
                let mut path = vec![i];
                let mut cur = i;
                while parent[cur as usize] != cur {
                    cur = parent[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &t in &self.succs[i as usize] {
                if t != target && avoid(t) {
                    continue;
                }
                if parent[t as usize] == u32::MAX {
                    parent[t as usize] = i;
                    queue.push_back(t);
                }
            }
        }
        None
    }
}

/// True if the `ecall` at index `i` is an exit syscall: the last in-block
/// write to `a7` before it loads the constant 93.
fn is_exit_ecall(instrs: &[Option<Instr>], i: usize) -> bool {
    for j in (i.saturating_sub(16)..i).rev() {
        let Some(instr) = &instrs[j] else { return false };
        if instr.is_control_flow() {
            return false;
        }
        if let Instr::OpImm {
            op: OpImmOp::Addi,
            rd: Reg::A7,
            rs1: Reg::ZERO,
            imm,
        } = instr
        {
            return *imm == SYS_EXIT;
        }
        if instr.dest() == Some(Reg::A7) {
            return false;
        }
    }
    false
}
