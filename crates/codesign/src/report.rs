//! Textual reports that regenerate the paper's tables.

use std::fmt::Write as _;

use rocc::{AcceleratorConfig, DecimalFunct};
use riscv_isa::rocc::{CustomOpcode, RoccInstruction};
use riscv_isa::Reg;

use crate::framework::CycleEvaluation;
use crate::kernels::KernelKind;

/// Renders Table II: the decimal instruction list with funct7 codes.
#[must_use]
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table II: List of instructions");
    let _ = writeln!(out, "{:<11} {:<9} {:<7} Description", "Function", "Funct7", "Paper?");
    for funct in DecimalFunct::ALL {
        let _ = writeln!(
            out,
            "{:<11} {:07b}   {:<7} {}",
            funct.name(),
            funct.funct7(),
            if funct.in_paper_table2() { "yes" } else { "ext" },
            funct.description(),
        );
    }
    out
}

/// Renders Table III: RoCC instruction encodings, including the paper's
/// `DEC_ADD` example with x10/x11 sources and x12 destination.
#[must_use]
pub fn table3() -> String {
    let rows: Vec<(&str, RoccInstruction)> = vec![
        (
            "CLR_ALL",
            RoccInstruction {
                opcode: CustomOpcode::Custom0,
                funct7: DecimalFunct::ClrAll.funct7(),
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                xd: false,
                xs1: false,
                xs2: false,
            },
        ),
        (
            "RD",
            RoccInstruction {
                opcode: CustomOpcode::Custom0,
                funct7: DecimalFunct::Rd.funct7(),
                rd: Reg::A0,
                rs1: Reg::A5, // accelerator register-file address in the field
                rs2: Reg::ZERO,
                xd: true,
                xs1: false,
                xs2: false,
            },
        ),
        (
            "WR",
            RoccInstruction {
                opcode: CustomOpcode::Custom0,
                funct7: DecimalFunct::Wr.funct7(),
                rd: Reg::ZERO,
                rs1: Reg::A1,
                rs2: Reg::T0,
                xd: false,
                xs1: true,
                xs2: false,
            },
        ),
        (
            "DEC_ADD",
            RoccInstruction::reg_reg(
                CustomOpcode::Custom0,
                DecimalFunct::DecAdd.funct7(),
                Reg::A2,
                Reg::A1,
                Reg::A0,
            ),
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Table III: RoCC instruction encodings (custom-0)");
    let _ = writeln!(
        out,
        "Note: the paper prints DEC_ADD as 0x08A5F617 using opcode 0010111,"
    );
    let _ = writeln!(
        out,
        "which is AUIPC's major opcode; with the architecturally correct"
    );
    let _ = writeln!(
        out,
        "custom-0 opcode (0001011) the same fields encode as shown here."
    );
    for (name, instr) in rows {
        let _ = writeln!(out, "{:<8} {:#010x}  {}", name, instr.encode(), instr.field_layout());
    }
    out
}

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Configuration name.
    pub name: String,
    /// Average software-part cycles.
    pub sw: f64,
    /// Average hardware-part cycles.
    pub hw: f64,
}

impl Table4Row {
    /// Builds a row from a cycle evaluation.
    #[must_use]
    pub fn from_eval(kind: KernelKind, eval: &CycleEvaluation) -> Table4Row {
        Table4Row {
            name: kind.name().to_string(),
            sw: eval.avg_sw_cycles,
            hw: eval.avg_hw_cycles,
        }
    }

    /// Total cycles.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.sw + self.hw
    }
}

/// Renders Table IV: average cycles with the SW/HW split and speedups
/// relative to `baseline` (the software row).
#[must_use]
pub fn table4(rows: &[Table4Row], baseline: &Table4Row) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table IV: Average number of cycles (cycle-accurate, {} baseline total {:.0})",
        baseline.name,
        baseline.total()
    );
    let _ = writeln!(
        out,
        "{:<28} {:>9} {:>9} {:>9} {:>9}",
        "Configuration", "SW part", "HW part", "Total", "Speedup"
    );
    for row in rows {
        let speedup = baseline.total() / row.total();
        let _ = writeln!(
            out,
            "{:<28} {:>9.0} {:>9.0} {:>9.0} {:>8.2}x",
            row.name,
            row.sw,
            row.hw,
            row.total(),
            speedup
        );
    }
    out
}

/// Renders a Table V / Table VI style two-row time comparison.
#[must_use]
pub fn time_table(
    title: &str,
    unit: &str,
    rows: &[(String, f64)],
    baseline_index: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:<32} {:>14} {:>9}", "Configuration", unit, "Speedup");
    let baseline = rows[baseline_index].1;
    for (name, time) in rows {
        let _ = writeln!(
            out,
            "{:<32} {:>14.6} {:>8.2}x",
            name,
            time,
            baseline / time
        );
    }
    out
}

/// Renders the per-input-class cycle breakdown: one column per
/// configuration, one row per class — the quantitative form of the paper's
/// "computing time highly dependent on the nature of the input" remark.
#[must_use]
pub fn class_table(
    configs: &[(String, crate::framework::ClassBreakdown)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Per-class average cycles per multiplication");
    let mut header = format!("{:<12}", "class");
    for (name, _) in configs {
        header += &format!(" {name:>28}");
    }
    let _ = writeln!(out, "{header}");
    if let Some((_, first)) = configs.first() {
        for (i, (class, _, n)) in first.rows.iter().enumerate() {
            let mut line = format!("{:<12}", format!("{class} ({n})"));
            for (_, breakdown) in configs {
                line += &format!(" {:>28.0}", breakdown.rows[i].1);
            }
            let _ = writeln!(out, "{line}");
        }
        let mut line = format!("{:<12}", "overall");
        for (_, breakdown) in configs {
            line += &format!(" {:>28.0}", breakdown.overall);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Renders the Pareto table: per-method hardware cost against cycles.
#[must_use]
pub fn pareto_table(entries: &[(String, u64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Pareto points: hardware cost vs. performance");
    let _ = writeln!(
        out,
        "{:<28} {:>14} {:>14}",
        "Configuration", "NAND2 gates", "Avg cycles"
    );
    for (name, gates, cycles) in entries {
        let _ = writeln!(out, "{:<28} {:>14} {:>14.0}", name, gates, cycles);
    }
    out
}

/// The hardware-cost inventory for the four methods.
#[must_use]
pub fn method_costs() -> Vec<(String, u64)> {
    AcceleratorConfig::all_methods()
        .into_iter()
        .map(|c| {
            let gates = c.cost().gates;
            (c.name, gates)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_functions() {
        let t = table2();
        for funct in DecimalFunct::ALL {
            assert!(t.contains(funct.name()), "{}", funct.name());
        }
    }

    #[test]
    fn table3_contains_corrected_dec_add() {
        let t = table3();
        assert!(t.contains("0x08a5f60b"));
        assert!(t.contains("AUIPC"));
    }

    #[test]
    fn table4_formats_speedups() {
        let baseline = Table4Row {
            name: "Software".into(),
            sw: 3000.0,
            hw: 0.0,
        };
        let rows = vec![
            baseline.clone(),
            Table4Row {
                name: "Method-1".into(),
                sw: 1000.0,
                hw: 200.0,
            },
        ];
        let t = table4(&rows, &baseline);
        assert!(t.contains("2.50x"));
        assert!(t.contains("1.00x"));
    }

    #[test]
    fn method_costs_monotonic() {
        let costs = method_costs();
        assert_eq!(costs.len(), 4);
        assert!(costs.windows(2).all(|w| w[0].1 < w[1].1));
    }
}
