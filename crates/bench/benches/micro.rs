//! Microbenchmarks of the decimal substrates: packed-BCD arithmetic, DPD
//! declets, the decNumber-style reference, and the accelerator model.

use bcd::cla::BcdCla;
use bcd::Bcd64;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use decnum::{Context, DecNumber};
use rocc::{DecimalAccelerator, DecimalFunct};

fn bench_bcd(c: &mut Criterion) {
    let a = Bcd64::from_value(9_876_543_210_123_456).unwrap();
    let b = Bcd64::from_value(1_234_567_890_654_321).unwrap();
    c.bench_function("bcd64_add", |bench| {
        bench.iter(|| black_box(black_box(a).add(black_box(b))))
    });
    c.bench_function("bcd64_full_mul", |bench| {
        bench.iter(|| black_box(black_box(a).full_mul(black_box(b))))
    });
    let cla = BcdCla::new(16);
    c.bench_function("bcd_cla_add", |bench| {
        bench.iter(|| black_box(cla.add(black_box(a), black_box(b), false)))
    });
}

fn bench_dpd(c: &mut Criterion) {
    c.bench_function("declet_encode", |bench| {
        bench.iter(|| {
            let mut acc = 0u16;
            for v in 0..1000u16 {
                acc ^= dpd::declet::encode_declet_bin(black_box(v));
            }
            black_box(acc)
        })
    });
    c.bench_function("declet_decode", |bench| {
        bench.iter(|| {
            let mut acc = 0u16;
            for v in 0..1024u16 {
                acc ^= dpd::declet::decode_declet_bin(black_box(v));
            }
            black_box(acc)
        })
    });
}

fn bench_decnum(c: &mut Criterion) {
    let x: DecNumber = "1234567890123456".parse().unwrap();
    let y: DecNumber = "9876543210987654".parse().unwrap();
    c.bench_function("decnum_mul", |bench| {
        bench.iter(|| {
            let mut ctx = Context::decimal64();
            black_box(black_box(&x).mul(black_box(&y), &mut ctx))
        })
    });
    c.bench_function("decnum_div", |bench| {
        bench.iter(|| {
            let mut ctx = Context::decimal64();
            black_box(black_box(&x).div(black_box(&y), &mut ctx))
        })
    });
}

fn bench_accelerator(c: &mut Criterion) {
    c.bench_function("accelerator_dec_add", |bench| {
        let mut acc = DecimalAccelerator::new();
        bench.iter(|| {
            black_box(
                acc.command(DecimalFunct::DecAdd, 0x1234_5678, 0x8765_4321, 0, 0, 0)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_bcd, bench_dpd, bench_decnum, bench_accelerator);
criterion_main!(benches);
