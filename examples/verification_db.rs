//! Verification-database run: the framework's functional-verification leg
//! (the role Spike and the arithmetic verification database [18] play in the
//! paper). Generates constrained-random operands for every input class,
//! executes the Method-1 guest kernel instruction-by-instruction, and
//! checks each result bit-for-bit against the decNumber-style oracle.
//!
//! ```text
//! cargo run --release --example verification_db
//! ```

use std::collections::BTreeMap;

use decimalarith::codesign::framework::{build_guest, run_functional, verify_results};
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::testgen::{generate, CaseClass, TestConfig};

fn main() {
    let config = TestConfig {
        count: 1_200,
        class_mix: vec![
            (CaseClass::Normal, 1),
            (CaseClass::Rounding, 1),
            (CaseClass::Overflow, 1),
            (CaseClass::Underflow, 1),
            (CaseClass::Clamping, 1),
            (CaseClass::Special, 1),
        ],
        ..TestConfig::default()
    };
    let vectors = generate(&config);
    println!(
        "verification database: {} vectors across {} classes (seed {})",
        vectors.len(),
        config.class_mix.len(),
        config.seed
    );

    for kind in [
        KernelKind::Software,
        KernelKind::SoftwareBid,
        KernelKind::Method1,
        KernelKind::Method2,
        KernelKind::Method3,
        KernelKind::Method4,
    ] {
        let guest = build_guest(kind, &vectors, 1).expect("kernel assembles");
        let run = run_functional(&guest);
        let mismatches = verify_results(&run.results, &vectors);
        // Tally pass/fail per class.
        let mut per_class: BTreeMap<CaseClass, (usize, usize)> = BTreeMap::new();
        for (i, v) in vectors.iter().enumerate() {
            let entry = per_class.entry(v.class).or_insert((0, 0));
            entry.1 += 1;
            if !mismatches.contains(&i) {
                entry.0 += 1;
            }
        }
        let summary: Vec<String> = per_class
            .iter()
            .map(|(class, (ok, total))| format!("{class}: {ok}/{total}"))
            .collect();
        println!(
            "{:<28} {:>8} instructions  [{}]",
            kind.name(),
            run.instret,
            summary.join(", ")
        );
        assert!(
            mismatches.is_empty(),
            "{kind}: verification failed on {} vectors",
            mismatches.len()
        );
    }
    println!("all kernels verified bit-exact against the reference.");
}
