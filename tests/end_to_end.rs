//! Cross-crate end-to-end tests: the whole framework pipeline, from operand
//! generation through assembly to all three evaluation platforms.

use decimalarith::atomic_sim::AtomicConfig;
use decimalarith::codesign::framework::{
    build_guest, run_atomic, run_functional, run_rocket, verify_results,
};
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::rocket_sim::TimingConfig;
use decimalarith::testgen::{generate, TestConfig};

fn vectors(count: usize, seed: u64) -> Vec<decimalarith::testgen::TestVector> {
    generate(&TestConfig {
        count,
        seed,
        ..TestConfig::default()
    })
}

#[test]
fn all_platforms_agree_on_results() {
    let vectors = vectors(60, 1);
    let guest = build_guest(KernelKind::Method1, &vectors, 1).unwrap();
    let functional = run_functional(&guest);
    let rocket = run_rocket(&guest, TimingConfig::default());
    let atomic = run_atomic(&guest, AtomicConfig::default());
    assert_eq!(functional.results, rocket.results);
    assert_eq!(functional.results, atomic.results);
    assert!(verify_results(&functional.results, &vectors).is_empty());
}

#[test]
fn method1_beats_software_and_dummy_lands_between() {
    let vectors = vectors(150, 2);
    let timing = TimingConfig::default();
    let cycles = |kind: KernelKind| {
        let guest = build_guest(kind, &vectors, 1).unwrap();
        run_rocket(&guest, timing).avg_total_cycles
    };
    let software = cycles(KernelKind::Software);
    let method1 = cycles(KernelKind::Method1);
    let dummy = cycles(KernelKind::Method1Dummy);
    // The paper's headline shape: the accelerator wins by >2x, and the
    // dummy-function estimate costs more than the real co-design (so the
    // dummy evaluation *underestimates* the speedup, 2.27x vs 2.73x).
    assert!(
        software / method1 > 2.0,
        "co-design speedup too small: {software:.0} vs {method1:.0}"
    );
    assert!(
        dummy > method1,
        "dummy estimate must be costlier than the real accelerator"
    );
    assert!(
        dummy < software,
        "dummy estimate must still beat pure software"
    );
}

#[test]
fn hw_part_is_a_small_fraction_of_method1() {
    let vectors = vectors(100, 3);
    let guest = build_guest(KernelKind::Method1, &vectors, 1).unwrap();
    let eval = run_rocket(&guest, TimingConfig::default());
    let share = eval.avg_hw_cycles / eval.avg_total_cycles;
    // Paper Table IV: 188 of 1201 cycles = 15.7%.
    assert!(
        (0.05..0.45).contains(&share),
        "HW share {share:.2} out of the expected band"
    );
}

#[test]
fn deeper_offload_methods_are_faster() {
    let vectors = vectors(80, 4);
    let timing = TimingConfig::default();
    let cycles = |kind: KernelKind| {
        let guest = build_guest(kind, &vectors, 1).unwrap();
        let eval = run_rocket(&guest, timing);
        assert!(verify_results(&eval.results, &vectors).is_empty(), "{kind}");
        eval.avg_total_cycles
    };
    let m1 = cycles(KernelKind::Method1);
    let m2 = cycles(KernelKind::Method2);
    let m4 = cycles(KernelKind::Method4);
    assert!(m2 < m1, "method-2 ({m2:.0}) must beat method-1 ({m1:.0})");
    assert!(m4 < m2, "method-4 ({m4:.0}) must beat method-2 ({m4:.0})");
}

#[test]
fn repetitions_scale_the_measurement_region() {
    let vectors = vectors(20, 5);
    let timing = TimingConfig::default();
    let run = |reps: u32| {
        let guest = build_guest(KernelKind::Method1, &vectors, reps).unwrap();
        run_rocket(&guest, timing)
    };
    let once = run(1);
    let thrice = run(3);
    // Per-call averages must stay comparable while total work triples.
    assert!(
        (thrice.avg_total_cycles - once.avg_total_cycles).abs() / once.avg_total_cycles < 0.3,
        "per-call cycles diverged: {} vs {}",
        once.avg_total_cycles,
        thrice.avg_total_cycles
    );
    assert!(thrice.stats.instret > 2 * once.stats.instret);
}

#[test]
fn atomic_and_rocket_rank_configurations_the_same_way() {
    let vectors = vectors(100, 6);
    let rank = |kind: KernelKind| {
        let guest = build_guest(kind, &vectors, 1).unwrap();
        let rocket = run_rocket(&guest, TimingConfig::default()).avg_total_cycles;
        let atomic = run_atomic(
            &guest,
            AtomicConfig {
                mul_cycles: 3,
                div_cycles: 12,
                ..AtomicConfig::default()
            },
        )
        .simulated_seconds;
        (rocket, atomic)
    };
    let (sw_r, sw_a) = rank(KernelKind::Software);
    let (m1_r, m1_a) = rank(KernelKind::Method1);
    assert!(sw_r > m1_r);
    assert!(sw_a > m1_a, "platforms must agree on the winner");
}

#[test]
fn dummy_functions_flatten_input_dependence() {
    // The paper's first criticism of dummy-function evaluation: "the dummy
    // function always return a fixed value and the execution may not follow
    // the expected flow". Quantified: real kernels' cycles vary strongly by
    // input class (rounding >> normal), while the dummy configuration is
    // nearly flat because the rounding path never triggers.
    use decimalarith::codesign::framework::{build_guest_with, run_rocket_per_class};
    use decimalarith::testgen::DriverLayout;
    let vectors = vectors(250, 9);
    let spread = |kind: KernelKind| {
        let guest = build_guest_with(
            kind,
            &vectors,
            DriverLayout {
                count: vectors.len(),
                repetitions: 1,
                per_sample_marks: true,
            },
        )
        .unwrap();
        let breakdown = run_rocket_per_class(&guest, &vectors, TimingConfig::default());
        let max = breakdown.rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
        let min = breakdown.rows.iter().map(|r| r.1).fold(f64::MAX, f64::min);
        max / min
    };
    let software_spread = spread(KernelKind::Software);
    let dummy_spread = spread(KernelKind::Method1Dummy);
    assert!(
        software_spread > 1.5,
        "software cycles must vary by class, spread {software_spread:.2}"
    );
    assert!(
        dummy_spread < 1.1,
        "dummy cycles must be nearly class-independent, spread {dummy_spread:.2}"
    );
}
