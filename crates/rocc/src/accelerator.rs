//! The decimal accelerator (paper Fig. 4): decode/interface FSM, a sixteen
//! entry × 128-bit register set, and a BCD-CLA-based execution unit.

use std::collections::BTreeMap;

use bcd::cla::BcdCla;
use bcd::convert::double_dabble;
use bcd::{Bcd128, Bcd64};
use riscv_sim::snapshot::{ByteReader, ByteWriter};
use riscv_sim::{Coprocessor, CoprocSnapshot, CpuError, Memory, RoccCommand, RoccResponse, SnapshotError};

use crate::fsm::{FsmState, InterfaceFsm};
use crate::isa::{decode_reg_address, DecimalFunct};
use crate::status::{AccelCause, AccelStatus};

/// Register-file index that serves as the wide accumulator (`ACC`).
pub const ACC_INDEX: usize = 15;

/// Snapshot tag identifying decimal-accelerator state (`"DECA"`).
pub const SNAPSHOT_TAG: u32 = 0x4143_4544;

/// Encodes an FSM state as `(state code, funct7 of Execute)`.
fn encode_fsm_state(state: FsmState) -> (u8, u8) {
    match state {
        FsmState::Idle => (0, 0),
        FsmState::Read => (1, 0),
        FsmState::Write => (2, 0),
        FsmState::Clear => (3, 0),
        FsmState::Accum => (4, 0),
        FsmState::Execute(funct) => (5, funct.funct7()),
        FsmState::RespondRead => (6, 0),
        FsmState::RespondWrite => (7, 0),
        FsmState::Error => (8, 0),
    }
}

fn decode_fsm_state(code: u8, funct7: u8) -> Result<FsmState, SnapshotError> {
    Ok(match code {
        0 => FsmState::Idle,
        1 => FsmState::Read,
        2 => FsmState::Write,
        3 => FsmState::Clear,
        4 => FsmState::Accum,
        5 => FsmState::Execute(
            DecimalFunct::from_funct7(funct7)
                .ok_or(SnapshotError::Malformed("unknown Execute funct7"))?,
        ),
        6 => FsmState::RespondRead,
        7 => FsmState::RespondWrite,
        8 => FsmState::Error,
        _ => return Err(SnapshotError::Malformed("unknown FSM state code")),
    })
}

/// Per-function execution-unit busy cycles (excluding the core-side
/// dispatch/response handshake, which the pipeline model charges).
#[must_use]
pub fn busy_cycles(funct: DecimalFunct, operand: u64) -> u32 {
    match funct {
        DecimalFunct::Wr
        | DecimalFunct::Rd
        | DecimalFunct::Accum
        | DecimalFunct::ClrAll
        | DecimalFunct::Stat => 1,
        DecimalFunct::Ld => 2,
        // One pass through the BCD-CLA.
        DecimalFunct::DecAdd | DecimalFunct::DecAdc => 1,
        // Two chained CLA passes over the 128-bit width.
        DecimalFunct::DecAccum | DecimalFunct::DecAddR => 2,
        // Digit multiply-accumulate: the parallel 2X/4X/8X generators (paid
        // for in area) compose the multiple in one pass, then the wide
        // accumulate takes the second cycle.
        DecimalFunct::DecMulD => 2,
        // Iterative over sixteen multiplier digits plus setup/drain.
        DecimalFunct::DecMul => 18,
        // Shift-and-add-3: one cycle per significant input bit.
        DecimalFunct::DecCnv => double_dabble(operand).cycles,
    }
}

/// The decimal accelerator. Implements [`Coprocessor`] so it can be attached
/// to any of the simulated cores, and can also be driven directly (the
/// native Method-1 implementation does) via [`DecimalAccelerator::command`].
///
/// # Example
///
/// ```
/// use rocc::{DecimalAccelerator, DecimalFunct};
///
/// # fn main() -> Result<(), riscv_sim::CpuError> {
/// let mut acc = DecimalAccelerator::new();
/// // 0x0905 + 0x0095 in BCD is 0x1000.
/// let resp = acc.command(DecimalFunct::DecAdd, 0x0905, 0x0095, 0, 0, 0)?;
/// assert_eq!(resp.rd_value, Some(0x1000));
/// # Ok(())
/// # }
/// ```
pub struct DecimalAccelerator {
    /// Raw register file; decimal functions validate BCD on use.
    regfile: [u128; 16],
    bin_scratch: u64,
    carry: bool,
    cla: BcdCla,
    fsm: InterfaceFsm,
    /// First latched fault: `(cause, funct7 of the command that faulted)`.
    /// Sticky until `CLR_ALL` — see [`AccelStatus`] for the wire format.
    latched: Option<(AccelCause, u8)>,
    command_counts: BTreeMap<DecimalFunct, u64>,
    total_busy: u64,
}

impl Default for DecimalAccelerator {
    fn default() -> Self {
        DecimalAccelerator::new()
    }
}

impl std::fmt::Debug for DecimalAccelerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecimalAccelerator")
            .field("carry", &self.carry)
            .field("total_busy", &self.total_busy)
            .finish_non_exhaustive()
    }
}

impl DecimalAccelerator {
    /// A cleared accelerator with a 16-digit BCD-CLA.
    #[must_use]
    pub fn new() -> Self {
        DecimalAccelerator {
            regfile: [0; 16],
            bin_scratch: 0,
            carry: false,
            cla: BcdCla::new(16),
            fsm: InterfaceFsm::new(),
            latched: None,
            command_counts: BTreeMap::new(),
            total_busy: 0,
        }
    }

    /// Enables interface-FSM transition tracing (see [`InterfaceFsm`]).
    pub fn set_fsm_tracing(&mut self, on: bool) {
        self.fsm.set_tracing(on);
    }

    /// The interface FSM (for inspecting the Fig. 5 trace).
    #[must_use]
    pub fn fsm(&self) -> &InterfaceFsm {
        &self.fsm
    }

    /// The latched carry flag.
    #[must_use]
    pub fn carry(&self) -> bool {
        self.carry
    }

    /// Raw contents of a register-file entry.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    #[must_use]
    pub fn register(&self, index: usize) -> u128 {
        self.regfile[index]
    }

    /// The wide accumulator (`regfile[15]`).
    #[must_use]
    pub fn acc(&self) -> u128 {
        self.regfile[ACC_INDEX]
    }

    /// Total execution-unit busy cycles since construction/clear.
    #[must_use]
    pub fn total_busy_cycles(&self) -> u64 {
        self.total_busy
    }

    /// Per-function command counts since construction.
    #[must_use]
    pub fn command_counts(&self) -> &BTreeMap<DecimalFunct, u64> {
        &self.command_counts
    }

    fn write_half(&mut self, field: u8, value: u64) {
        let (index, half) = decode_reg_address(field);
        let shift = 64 * half;
        let mask = (u128::from(u64::MAX)) << shift;
        self.regfile[index] = (self.regfile[index] & !mask) | (u128::from(value) << shift);
    }

    fn read_half(&self, field: u8) -> u64 {
        let (index, half) = decode_reg_address(field);
        (self.regfile[index] >> (64 * half)) as u64
    }

    fn bcd64_operand(value: u64) -> Result<Bcd64, AccelCause> {
        Bcd64::new(value).map_err(|_| AccelCause::InvalidBcdOperand)
    }

    fn bcd64_reg(&self, index: usize) -> Result<Bcd64, AccelCause> {
        Bcd64::new(self.regfile[index] as u64).map_err(|_| AccelCause::InvalidBcdRegister)
    }

    fn bcd128_reg(&self, index: usize) -> Result<Bcd128, AccelCause> {
        Bcd128::new(self.regfile[index]).map_err(|_| AccelCause::InvalidBcdRegister)
    }

    fn digit_operand(value: u64) -> Result<u8, AccelCause> {
        if value <= 9 {
            Ok(value as u8)
        } else {
            Err(AccelCause::DigitRange)
        }
    }

    /// The current status (error flag, first latched cause, offending
    /// funct7) — what `STAT` returns as [`AccelStatus::word`].
    #[must_use]
    pub fn status(&self) -> AccelStatus {
        AccelStatus {
            error: self.fsm.state() == FsmState::Error,
            cause: self.latched.map(|(cause, _)| cause),
            funct7: self.latched.map_or(0, |(_, funct7)| funct7),
        }
    }

    /// Latches `cause` (first fault wins) and moves the FSM to its sticky
    /// `Error` state.
    fn latch_error(&mut self, cause: AccelCause, funct7: u8) {
        if self.latched.is_none() {
            self.latched = Some((cause, funct7));
        }
        if self.fsm.state() != FsmState::Error {
            self.fsm.enter_error("exec.fault");
        }
    }

    /// Clears every architectural register, the carry, and the latched
    /// fault (the `CLR_ALL` datapath).
    fn clear_state(&mut self) {
        self.regfile = [0; 16];
        self.bin_scratch = 0;
        self.carry = false;
        self.latched = None;
    }

    /// Fault-injection port: flips one bit of a register-file entry
    /// (`index` mod 16, `bit` mod 128). `regfile[15]` is the accumulator.
    pub fn inject_register_bit_flip(&mut self, index: usize, bit: u32) {
        self.regfile[index % 16] ^= 1u128 << (bit % 128);
    }

    /// Fault-injection port: flips the latched carry.
    pub fn inject_carry_flip(&mut self) {
        self.carry = !self.carry;
    }

    /// Fault-injection port: wedges the interface FSM in a busy state, so
    /// the next command never gets a response (caught by the core's
    /// busy-watchdog, not by any in-band check).
    pub fn inject_fsm_wedge(&mut self) {
        self.fsm.force_state(FsmState::Execute(DecimalFunct::DecAdd));
    }

    /// Fault-injection port: forces the FSM into `Error` without latching a
    /// cause (a bit flip in the state register itself).
    pub fn inject_fsm_error(&mut self) {
        self.fsm.force_state(FsmState::Error);
    }

    /// Executes one function directly, without going through instruction
    /// decode or a memory bus (so `LD` is rejected here). Datapath faults
    /// are reported in-band: the response is benign and the status word
    /// (readable with [`DecimalFunct::Stat`]) carries the cause.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::RoccProtocol`] only for `LD`, which needs the
    /// memory interface this entry point does not have — a host-side API
    /// misuse, not a guest-visible fault.
    pub fn command(
        &mut self,
        funct: DecimalFunct,
        rs1_value: u64,
        rs2_value: u64,
        rd_field: u8,
        rs1_field: u8,
        rs2_field: u8,
    ) -> Result<RoccResponse, CpuError> {
        if funct == DecimalFunct::Ld {
            return Err(CpuError::RoccProtocol("LD requires the memory interface"));
        }
        Ok(self.dispatch(funct, rs1_value, rs2_value, rd_field, rs1_field, rs2_field, None))
    }

    fn account(&mut self, funct: DecimalFunct, busy: u32) {
        self.total_busy += u64::from(busy);
        *self.command_counts.entry(funct).or_insert(0) += 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        funct: DecimalFunct,
        rs1_value: u64,
        rs2_value: u64,
        rd_field: u8,
        rs1_field: u8,
        rs2_field: u8,
        mem: Option<&mut Memory>,
    ) -> RoccResponse {
        match self.fsm.state() {
            FsmState::Idle => {}
            FsmState::Error => {
                // Sticky error: only STAT and CLR_ALL are serviced; every
                // other command is ignored with a benign response so the
                // core's handshake still completes.
                return match funct {
                    DecimalFunct::Stat => {
                        self.account(funct, 1);
                        RoccResponse {
                            rd_value: Some(self.status().word()),
                            busy_cycles: 1,
                            mem_accesses: 0,
                        }
                    }
                    DecimalFunct::ClrAll => {
                        self.clear_state();
                        self.fsm.clear_error();
                        self.account(funct, 1);
                        RoccResponse {
                            rd_value: None,
                            busy_cycles: 1,
                            mem_accesses: 0,
                        }
                    }
                    _ => RoccResponse {
                        rd_value: Some(0),
                        busy_cycles: 1,
                        mem_accesses: 0,
                    },
                };
            }
            // Wedged mid-command (reachable only through fault injection):
            // the response never arrives; the core's watchdog must act.
            _ => return RoccResponse::hung(),
        }

        match self.execute_unit(funct, rs1_value, rs2_value, rd_field, rs1_field, rs2_field, mem) {
            Ok((rd_value, mem_accesses)) => {
                let busy = busy_cycles(funct, rs1_value);
                self.account(funct, busy);
                self.fsm.run_command(funct, rd_value.is_some());
                RoccResponse {
                    rd_value,
                    busy_cycles: busy,
                    mem_accesses,
                }
            }
            Err(cause) => {
                self.account(funct, 1);
                self.latch_error(cause, funct.funct7());
                // The command is dropped; a benign zero keeps an `xd`
                // handshake alive so the fault stays in-band.
                RoccResponse {
                    rd_value: Some(0),
                    busy_cycles: 1,
                    mem_accesses: 0,
                }
            }
        }
    }

    /// The execution unit proper: performs `funct` or reports the first
    /// datapath fault without touching any architectural state.
    #[allow(clippy::too_many_arguments)]
    fn execute_unit(
        &mut self,
        funct: DecimalFunct,
        rs1_value: u64,
        rs2_value: u64,
        rd_field: u8,
        rs1_field: u8,
        rs2_field: u8,
        mem: Option<&mut Memory>,
    ) -> Result<(Option<u64>, u32), AccelCause> {
        let mut rd_value = None;
        let mut mem_accesses = 0;

        match funct {
            DecimalFunct::Wr => {
                self.write_half(rs2_field, rs1_value);
            }
            DecimalFunct::Rd => {
                rd_value = Some(self.read_half(rs1_field));
            }
            DecimalFunct::Ld => {
                let mem = mem.ok_or(AccelCause::ProtocolViolation)?;
                let data = mem.read_u64(rs1_value).map_err(|_| AccelCause::MemoryFault)?;
                self.write_half(rs2_field, data);
                mem_accesses = 1;
            }
            DecimalFunct::Accum => {
                self.bin_scratch = self.bin_scratch.wrapping_add(rs1_value);
                rd_value = Some(self.bin_scratch);
            }
            DecimalFunct::DecAdd | DecimalFunct::DecAdc => {
                let a = Self::bcd64_operand(rs1_value)?;
                let b = Self::bcd64_operand(rs2_value)?;
                let carry_in = funct == DecimalFunct::DecAdc && self.carry;
                let (sum, carry_out) = self.cla.add(a, b, carry_in);
                self.carry = carry_out;
                rd_value = Some(sum.raw());
            }
            DecimalFunct::ClrAll => {
                self.clear_state();
            }
            DecimalFunct::DecCnv => {
                let hw = double_dabble(rs1_value);
                self.regfile[ACC_INDEX] = hw.bcd.raw();
                rd_value = Some(hw.bcd.raw() as u64);
            }
            DecimalFunct::DecMul => {
                let (i1, _) = decode_reg_address(rs1_field);
                let (i2, _) = decode_reg_address(rs2_field);
                let a = self.bcd64_reg(i1)?;
                let b = self.bcd64_reg(i2)?;
                let product = a.full_mul(b);
                self.regfile[ACC_INDEX] = product.raw();
                rd_value = Some(product.raw() as u64);
            }
            DecimalFunct::DecAccum => {
                let digit = Self::digit_operand(rs1_value)?;
                let acc = self.bcd128_reg(ACC_INDEX)?;
                let addend = self.bcd128_reg(usize::from(digit))?;
                let (sum, carry) = acc.shl_digits(1).add(addend);
                self.carry = carry;
                self.regfile[ACC_INDEX] = sum.raw();
            }
            DecimalFunct::DecAddR => {
                let (ia, _) = decode_reg_address(rs1_field);
                let (ib, _) = decode_reg_address(rs2_field);
                let (id, _) = decode_reg_address(rd_field);
                let a = self.bcd128_reg(ia)?;
                let b = self.bcd128_reg(ib)?;
                let (sum, carry) = a.add(b);
                self.carry = carry;
                self.regfile[id] = sum.raw();
            }
            DecimalFunct::DecMulD => {
                let digit = Self::digit_operand(rs1_value)?;
                let x = self.bcd64_reg(1)?;
                let acc = self.bcd128_reg(ACC_INDEX)?;
                let (sum, carry) = acc.shl_digits(1).add(x.mul_digit(digit));
                self.carry = carry;
                self.regfile[ACC_INDEX] = sum.raw();
            }
            DecimalFunct::Stat => {
                rd_value = Some(self.status().word());
            }
        }

        Ok((rd_value, mem_accesses))
    }
}

impl Coprocessor for DecimalAccelerator {
    fn execute(&mut self, cmd: &RoccCommand, mem: &mut Memory) -> Result<RoccResponse, CpuError> {
        let instr = cmd.instruction;
        let Some(funct) = DecimalFunct::from_funct7(instr.funct7) else {
            // Unimplemented functions are a guest fault, reported in-band
            // like any other: latch the cause, answer benignly.
            self.latch_error(AccelCause::UnknownFunction, instr.funct7);
            return Ok(RoccResponse {
                rd_value: instr.xd.then_some(0),
                busy_cycles: 1,
                mem_accesses: 0,
            });
        };
        let mut resp = self.dispatch(
            funct,
            cmd.rs1_value,
            cmd.rs2_value,
            instr.rd.number(),
            instr.rs1.number(),
            instr.rs2.number(),
            Some(mem),
        );
        // When xs-flags are clear, the field numbers double as accelerator
        // addresses; when set, the values travelled in rs1_value/rs2_value —
        // dispatch already received both forms. An `xd` command whose
        // function produces no value is a protocol violation; it, too,
        // stays in-band (unless the FSM is wedged and nothing responds).
        if instr.xd && resp.rd_value.is_none() && !resp.is_hung() {
            self.latch_error(AccelCause::ProtocolViolation, instr.funct7);
            resp.rd_value = Some(0);
        }
        Ok(resp)
    }

    fn watchdog_abort(&mut self) {
        // The core gave up on a wedged handshake: force the FSM into the
        // recoverable Error state and record the abort so STAT sees it.
        if self.latched.is_none() {
            self.latched = Some((AccelCause::WatchdogAbort, 0));
        }
        if self.fsm.state() != FsmState::Error {
            self.fsm.enter_error("watchdog");
        }
    }

    fn reset(&mut self) {
        self.clear_state();
        self.fsm.reset();
    }

    fn snapshot_state(&self) -> Option<CoprocSnapshot> {
        let mut w = ByteWriter::new();
        for reg in self.regfile {
            w.u128(reg);
        }
        w.u64(self.bin_scratch);
        w.bool(self.carry);
        let (state_code, state_funct7) = encode_fsm_state(self.fsm.state());
        w.u8(state_code);
        w.u8(state_funct7);
        match self.latched {
            None => w.bool(false),
            Some((cause, funct7)) => {
                w.bool(true);
                w.u8(cause.code());
                w.u8(funct7);
            }
        }
        w.u64(self.command_counts.len() as u64);
        for (&funct, &count) in &self.command_counts {
            w.u8(funct.funct7());
            w.u64(count);
        }
        w.u64(self.total_busy);
        Some(CoprocSnapshot {
            tag: SNAPSHOT_TAG,
            data: w.finish(),
        })
    }

    fn restore_state(&mut self, snapshot: &CoprocSnapshot) -> Result<(), SnapshotError> {
        if snapshot.tag != SNAPSHOT_TAG {
            return Err(SnapshotError::Coprocessor { found: snapshot.tag });
        }
        let mut r = ByteReader::new(&snapshot.data);
        let mut regfile = [0u128; 16];
        for reg in &mut regfile {
            *reg = r.u128()?;
        }
        let bin_scratch = r.u64()?;
        let carry = r.bool()?;
        let state = decode_fsm_state(r.u8()?, r.u8()?)?;
        let latched = if r.bool()? {
            let cause = AccelCause::from_code(r.u8()?)
                .ok_or(SnapshotError::Malformed("unknown accelerator fault cause"))?;
            let funct7 = r.u8()?;
            Some((cause, funct7))
        } else {
            None
        };
        let count_entries = r.u64()?;
        let mut command_counts = BTreeMap::new();
        for _ in 0..count_entries {
            let funct = DecimalFunct::from_funct7(r.u8()?)
                .ok_or(SnapshotError::Malformed("unknown counted funct7"))?;
            command_counts.insert(funct, r.u64()?);
        }
        let total_busy = r.u64()?;
        r.expect_end()?;
        self.regfile = regfile;
        self.bin_scratch = bin_scratch;
        self.carry = carry;
        self.fsm.restore_state(state);
        self.latched = latched;
        self.command_counts = command_counts;
        self.total_busy = total_busy;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> DecimalAccelerator {
        DecimalAccelerator::new()
    }

    #[test]
    fn dec_add_and_carry() {
        let mut a = acc();
        let r = a
            .command(DecimalFunct::DecAdd, 0x9999_9999_9999_9999, 0x1, 0, 0, 0)
            .unwrap();
        assert_eq!(r.rd_value, Some(0));
        assert!(a.carry());
        // Chain the carry into the high half.
        let r2 = a.command(DecimalFunct::DecAdc, 0x5, 0x5, 0, 0, 0).unwrap();
        assert_eq!(r2.rd_value, Some(0x11)); // 5 + 5 + 1 = 11 in BCD
        assert!(!a.carry());
    }

    #[test]
    fn dec_add_reports_invalid_bcd_in_band() {
        let mut a = acc();
        let resp = a.command(DecimalFunct::DecAdd, 0xA, 0x1, 0, 0, 0).unwrap();
        // Benign response, fault latched, FSM sticky in Error.
        assert_eq!(resp.rd_value, Some(0));
        let status = a.status();
        assert!(status.error);
        assert_eq!(status.cause, Some(AccelCause::InvalidBcdOperand));
        assert_eq!(status.funct7, DecimalFunct::DecAdd.funct7());
        assert_eq!(a.fsm().state(), FsmState::Error);
        assert!(!a.carry(), "faulting command must not touch the carry");
    }

    #[test]
    fn stat_reads_the_status_word_and_clr_all_recovers() {
        let mut a = acc();
        let clean = a.command(DecimalFunct::Stat, 0, 0, 0, 0, 0).unwrap();
        assert_eq!(clean.rd_value, Some(0));

        a.command(DecimalFunct::DecAdd, 0xA, 0x1, 0, 0, 0).unwrap();
        let stat = a.command(DecimalFunct::Stat, 0, 0, 0, 0, 0).unwrap();
        let word = stat.rd_value.unwrap();
        assert_ne!(word, 0);
        assert_eq!(AccelStatus::decode(word), a.status());

        // Commands other than STAT/CLR_ALL are ignored while in Error.
        let ignored = a.command(DecimalFunct::DecAdd, 0x1, 0x1, 0, 0, 0).unwrap();
        assert_eq!(ignored.rd_value, Some(0));
        assert!(a.status().error, "error stays sticky");

        a.command(DecimalFunct::ClrAll, 0, 0, 0, 0, 0).unwrap();
        assert!(a.status().is_clear());
        assert_eq!(a.fsm().state(), FsmState::Idle);
        let sum = a.command(DecimalFunct::DecAdd, 0x2, 0x3, 0, 0, 0).unwrap();
        assert_eq!(sum.rd_value, Some(0x5), "recovered accelerator computes again");
    }

    #[test]
    fn first_fault_wins_the_cause_field() {
        let mut a = acc();
        a.command(DecimalFunct::DecAdd, 0xA, 0x1, 0, 0, 0).unwrap();
        a.command(DecimalFunct::DecAccum, 10, 0, 0, 0, 0).unwrap();
        assert_eq!(a.status().cause, Some(AccelCause::InvalidBcdOperand));
    }

    #[test]
    fn wedged_fsm_never_responds() {
        let mut a = acc();
        a.inject_fsm_wedge();
        let resp = a.command(DecimalFunct::DecAdd, 0x1, 0x1, 0, 0, 0).unwrap();
        assert!(resp.is_hung());
    }

    #[test]
    fn watchdog_abort_lands_in_recoverable_error() {
        let mut a = acc();
        a.inject_fsm_wedge();
        a.watchdog_abort();
        let status = a.status();
        assert!(status.error);
        assert_eq!(status.cause, Some(AccelCause::WatchdogAbort));
        a.command(DecimalFunct::ClrAll, 0, 0, 0, 0, 0).unwrap();
        assert!(a.status().is_clear());
    }

    #[test]
    fn injected_fsm_error_is_visible_without_a_cause() {
        let mut a = acc();
        a.inject_fsm_error();
        let stat = a.command(DecimalFunct::Stat, 0, 0, 0, 0, 0).unwrap();
        let status = AccelStatus::decode(stat.rd_value.unwrap());
        assert!(status.error);
        assert_eq!(status.cause, None);
        assert_ne!(stat.rd_value, Some(0));
    }

    #[test]
    fn register_bit_flip_port_flips_one_bit() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 0x5, 0, 0, 0, 3).unwrap();
        a.inject_register_bit_flip(3, 1);
        assert_eq!(a.register(3), 0x7);
        a.inject_carry_flip();
        assert!(a.carry());
    }

    #[test]
    fn wr_rd_halves() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 0x1234, 0, 0, 0, 3).unwrap(); // reg3 lo
        a.command(DecimalFunct::Wr, 0x5678, 0, 0, 0, 0x13).unwrap(); // reg3 hi
        assert_eq!(a.register(3), (0x5678u128 << 64) | 0x1234);
        let lo = a.command(DecimalFunct::Rd, 0, 0, 0, 3, 0).unwrap();
        let hi = a.command(DecimalFunct::Rd, 0, 0, 0, 0x13, 0).unwrap();
        assert_eq!(lo.rd_value, Some(0x1234));
        assert_eq!(hi.rd_value, Some(0x5678));
    }

    #[test]
    fn binary_accumulator() {
        let mut a = acc();
        assert_eq!(
            a.command(DecimalFunct::Accum, 5, 0, 0, 0, 0).unwrap().rd_value,
            Some(5)
        );
        assert_eq!(
            a.command(DecimalFunct::Accum, 7, 0, 0, 0, 0).unwrap().rd_value,
            Some(12)
        );
    }

    #[test]
    fn clr_all_clears() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 42, 0, 0, 0, 1).unwrap();
        a.command(DecimalFunct::DecAdd, 0x9999_9999_9999_9999, 1, 0, 0, 0)
            .unwrap();
        a.command(DecimalFunct::ClrAll, 0, 0, 0, 0, 0).unwrap();
        assert_eq!(a.register(1), 0);
        assert!(!a.carry());
    }

    #[test]
    fn dec_cnv_converts_binary() {
        let mut a = acc();
        let r = a.command(DecimalFunct::DecCnv, 90_24, 0, 0, 0, 0).unwrap();
        assert_eq!(r.rd_value, Some(0x9024));
        assert!(r.busy_cycles >= 14, "9024 needs 14 bits");
    }

    #[test]
    fn dec_mul_full_product_in_acc() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 0x9999_9999_9999_9999, 0, 0, 0, 1)
            .unwrap();
        a.command(DecimalFunct::Wr, 0x9999_9999_9999_9999, 0, 0, 0, 2)
            .unwrap();
        a.command(DecimalFunct::DecMul, 0, 0, 0, 1, 2).unwrap();
        let product = bcd::Bcd128::new(a.acc()).unwrap();
        assert_eq!(
            product.to_value(),
            9_999_999_999_999_999u128 * 9_999_999_999_999_999u128
        );
    }

    #[test]
    fn dec_accum_horner_step() {
        let mut a = acc();
        // reg1 = 7, reg2 = 3.
        a.command(DecimalFunct::Wr, 0x7, 0, 0, 0, 1).unwrap();
        a.command(DecimalFunct::Wr, 0x3, 0, 0, 0, 2).unwrap();
        // acc = ((0*10)+7)*10 + 3 = 73
        a.command(DecimalFunct::DecAccum, 1, 0, 0, 0, 0).unwrap();
        a.command(DecimalFunct::DecAccum, 2, 0, 0, 0, 0).unwrap();
        assert_eq!(a.acc(), 0x73);
    }

    #[test]
    fn dec_accum_reports_wide_digit_in_band() {
        let mut a = acc();
        a.command(DecimalFunct::DecAccum, 10, 0, 0, 0, 0).unwrap();
        assert_eq!(a.status().cause, Some(AccelCause::DigitRange));
        assert_eq!(a.acc(), 0, "faulting command must not touch the accumulator");
    }

    #[test]
    fn dec_add_r_wide() {
        let mut a = acc();
        // reg1 = 16 nines in the low half, 1 in the high half ... build 17-digit value.
        a.command(DecimalFunct::Wr, 0x9999_9999_9999_9999, 0, 0, 0, 1).unwrap();
        a.command(DecimalFunct::Wr, 0x1, 0, 0, 0, 2).unwrap();
        // reg3 = reg1 + reg2 (wide): 10^16.
        a.command(DecimalFunct::DecAddR, 0, 0, 3, 1, 2).unwrap();
        assert_eq!(a.register(3), 1u128 << 64);
    }

    #[test]
    fn dec_muld_digit_multiply() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 0x123, 0, 0, 0, 1).unwrap();
        // acc = 0*10 + 123*9 = 1107
        a.command(DecimalFunct::DecMulD, 9, 0, 0, 0, 0).unwrap();
        assert_eq!(a.acc(), 0x1107);
    }

    #[test]
    fn snapshot_roundtrip_preserves_error_state_and_counters() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 0x123, 0, 0, 0, 1).unwrap();
        a.command(DecimalFunct::DecAdd, 0x9999_9999_9999_9999, 1, 0, 0, 0)
            .unwrap(); // sets the carry
        a.command(DecimalFunct::DecAdd, 0xA, 0x1, 0, 0, 0).unwrap(); // latches a fault
        let snapshot = a.snapshot_state().unwrap();
        let mut b = DecimalAccelerator::new();
        b.restore_state(&snapshot).unwrap();
        assert_eq!(b.register(1), 0x123);
        assert_eq!(b.carry(), a.carry());
        assert_eq!(b.status(), a.status());
        assert_eq!(b.fsm().state(), FsmState::Error, "sticky Error survives");
        assert_eq!(b.command_counts(), a.command_counts());
        assert_eq!(b.total_busy_cycles(), a.total_busy_cycles());
    }

    #[test]
    fn snapshot_with_foreign_tag_is_rejected() {
        let a = acc();
        let mut snapshot = a.snapshot_state().unwrap();
        snapshot.tag = 0xDEAD;
        let mut b = acc();
        assert_eq!(
            b.restore_state(&snapshot),
            Err(SnapshotError::Coprocessor { found: 0xDEAD })
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut a = acc();
        a.command(DecimalFunct::DecAdd, 1, 2, 0, 0, 0).unwrap();
        a.command(DecimalFunct::DecAdd, 3, 4, 0, 0, 0).unwrap();
        assert_eq!(a.command_counts()[&DecimalFunct::DecAdd], 2);
        assert_eq!(a.total_busy_cycles(), 2);
    }
}
