//! Quickstart: multiply two decimals three ways — reference software,
//! Method-1 with the accelerator model, and a real guest program running
//! cycle-accurately on the simulated Rocket-like SoC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use decimalarith::codesign::framework::{build_guest, run_rocket, verify_results};
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::codesign::native::{method1_multiply_accel, software_multiply};
use decimalarith::codesign::{format_decimal64, parse_decimal64};
use decimalarith::decnum::Status;
use decimalarith::rocket_sim::TimingConfig;
use decimalarith::testgen::{generate, TestConfig};

fn main() {
    // 1. Native: the decNumber-style reference.
    let x = parse_decimal64("902.4").expect("literal parses");
    let y = parse_decimal64("11.1").expect("literal parses");
    let mut status = Status::CLEAR;
    let reference = software_multiply(x, y, &mut status);
    println!(
        "software reference : {} x {} = {}   (flags: {})",
        format_decimal64(x),
        format_decimal64(y),
        format_decimal64(reference),
        status
    );

    // 2. Native: Method-1 of the co-design, through the BCD-CLA model.
    let mut status = Status::CLEAR;
    let codesign = method1_multiply_accel(x, y, &mut status);
    println!(
        "method-1 (co-design): {} x {} = {}   bit-identical: {}",
        format_decimal64(x),
        format_decimal64(y),
        format_decimal64(codesign),
        codesign.to_bits() == reference.to_bits()
    );

    // 3. Cycle-accurate: the same multiplication as a RISC-V guest program
    //    with the accelerator attached over RoCC.
    let vectors = generate(&TestConfig {
        count: 50,
        ..TestConfig::default()
    });
    for kind in [KernelKind::Software, KernelKind::Method1] {
        let guest = build_guest(kind, &vectors, 1).expect("kernel assembles");
        let eval = run_rocket(&guest, TimingConfig::default());
        let mismatches = verify_results(&eval.results, &vectors);
        println!(
            "{:<28} avg {:>6.0} cycles/multiply (SW {:>6.0} + HW {:>4.0}), {} of {} verified",
            kind.name(),
            eval.avg_total_cycles,
            eval.avg_sw_cycles,
            eval.avg_hw_cycles,
            vectors.len() - mismatches.len(),
            vectors.len(),
        );
    }
}
