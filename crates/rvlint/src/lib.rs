//! `rvlint` — static CFG/dataflow analysis and RoCC-protocol typestate
//! checking for assembled kernels.
//!
//! The analyzer works on [`riscv_asm::Program`] machine code (not source
//! text), so it checks exactly what the simulators execute:
//!
//! * **CFG recovery** ([`cfg`]) — instruction-granularity control flow
//!   with resolved calls, returns, address-taken roots (trap handlers),
//!   and the exit-syscall convention.
//! * **Classic dataflow** ([`dataflow`]) — may-initialized registers
//!   (definite uninitialized-read detection), liveness (dead `STAT`
//!   results), a reaching-definitions query, and unreachable-code
//!   detection from the CFG.
//! * **RoCC protocol typestate** ([`typestate`]) — walks every path
//!   through the accelerator-protocol lattice, flagging compute commands
//!   issued without their `CLR_ALL`/`WR`/`LD` setup, `DEC_ADC` with an
//!   undefined carry latch, accelerator reuse after an observed error
//!   without `CLR_ALL` recovery, dead `CLR_ALL`s, and unconsumed `STAT`
//!   reads.
//! * **BCD abstract-digit analysis** ([`bcd`]) — a per-nibble
//!   {valid-BCD, maybe-invalid, unknown} lattice over registers and data
//!   regions, flagging operands that are statically *not* packed BCD.
//!
//! Every diagnostic carries the pc, the decoded instruction, a
//! symbol+line location, and a path witness: a concrete control-flow path
//! from an entry point that exhibits the violation.

pub mod bcd;
pub mod cfg;
pub mod dataflow;
pub mod typestate;

use std::fmt;

use riscv_asm::Program;
use riscv_isa::instr::LoadOp;
use riscv_isa::{Instr, Reg};
use rocc::{DecimalFunct, ACC_INDEX};

use bcd::BcdValues;
use cfg::Cfg;
use dataflow::{reaching_defs, reg_bit, RegFlow, ENTRY_DEFINED};
use typestate::{accel_command, required_written, rocc_fields, Typestate};

/// What kind of defect a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// A register is read but initialized on no path from any entry.
    UninitializedRead,
    /// Code not reachable from the entry or any address-taken root.
    UnreachableCode,
    /// A custom-0 command with a funct7 the accelerator does not define.
    UnknownAccelFunct,
    /// A command reads accelerator state no path has set up.
    MissingAccelSetup,
    /// `DEC_ADC` consumes the carry latch before anything defined it.
    UndefinedCarry,
    /// A command is issued on a path that observed an error (nonzero
    /// `STAT`) without an intervening `CLR_ALL`.
    ReuseAfterError,
    /// A `STAT` result is written to a register that is never read.
    DeadStat,
    /// A `CLR_ALL` on an accelerator that is already freshly cleared.
    RedundantClrAll,
    /// An operand that must be packed BCD (or a digit) definitely is not.
    NonBcdOperand,
    /// An indirect jump whose target the analyzer cannot resolve.
    UnresolvedIndirectJump,
}

impl Lint {
    /// Stable machine-readable code.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Lint::UninitializedRead => "uninitialized-read",
            Lint::UnreachableCode => "unreachable-code",
            Lint::UnknownAccelFunct => "unknown-accel-funct",
            Lint::MissingAccelSetup => "missing-accel-setup",
            Lint::UndefinedCarry => "undefined-carry",
            Lint::ReuseAfterError => "reuse-after-error",
            Lint::DeadStat => "dead-stat",
            Lint::RedundantClrAll => "redundant-clr-all",
            Lint::NonBcdOperand => "non-bcd-operand",
            Lint::UnresolvedIndirectJump => "unresolved-indirect-jump",
        }
    }
}

/// Whether a finding gates (Error) or merely informs (Info — e.g. an
/// unreachable *labeled* routine, which is usually just unused library
/// code shipped with every kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A defect: the CI gate fails on these.
    Error,
    /// Informational only.
    Info,
}

/// One step of a path witness.
#[derive(Debug, Clone)]
pub struct WitnessStep {
    /// Program counter of the step.
    pub pc: u64,
    /// Human-readable `pc <symbol+off> (line N)` anchor.
    pub location: String,
}

/// A single finding with its machine-readable anchor and path witness.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The defect class.
    pub lint: Lint,
    /// Error (gating) or Info.
    pub severity: Severity,
    /// Program counter of the offending instruction.
    pub pc: u64,
    /// Disassembly of the offending instruction.
    pub instruction: String,
    /// `pc <symbol+off> (line N)` anchor.
    pub location: String,
    /// What is wrong, in one sentence.
    pub message: String,
    /// A concrete control-flow path from an entry point that exhibits the
    /// violation (control-transfer points only). Empty for findings that
    /// are path-free by nature (unreachable code).
    pub witness: Vec<WitnessStep>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Info => "info",
        };
        write!(
            f,
            "{tag}[{}] at {}: `{}` — {}",
            self.code(),
            self.location,
            self.instruction,
            self.message
        )?;
        if !self.witness.is_empty() {
            write!(f, "\n    path:")?;
            for step in &self.witness {
                write!(f, "\n      {}", step.location)?;
            }
        }
        Ok(())
    }
}

impl Diagnostic {
    /// The lint's stable code.
    #[must_use]
    pub fn code(&self) -> &'static str {
        self.lint.code()
    }
}

/// Aggregate counts for the analyzed program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Text words decoded.
    pub instructions: usize,
    /// Instructions reachable from an entry point.
    pub reachable_instructions: usize,
    /// Reachable basic blocks.
    pub basic_blocks: usize,
    /// Recovered function entry points.
    pub functions: usize,
    /// Reachable accelerator (custom-0) commands.
    pub accel_commands: usize,
}

/// The result of [`analyze`]: diagnostics (errors first, then by pc) plus
/// program statistics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, gating errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// Aggregate counts.
    pub stats: Stats,
}

impl Report {
    /// Gating (Error-severity) findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True if there are no gating findings.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} instructions ({} reachable), {} blocks, {} functions, {} accelerator commands",
            self.stats.instructions,
            self.stats.reachable_instructions,
            self.stats.basic_blocks,
            self.stats.functions,
            self.stats.accel_commands
        )?;
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        let errors = self.errors().count();
        write!(
            f,
            "{errors} error(s), {} note(s)",
            self.diagnostics.len() - errors
        )
    }
}

/// Names an internal accelerator register for messages.
fn internal_reg_name(index: usize) -> String {
    if index == ACC_INDEX {
        "acc".to_string()
    } else {
        format!("r{index}")
    }
}

fn internal_reg_list(mask: u16) -> String {
    (0..16)
        .filter(|&i| mask & (1 << i) != 0)
        .map(internal_reg_name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Compresses a full instruction-index path to its control-transfer
/// points and renders each as a located step.
fn render_witness(cfg: &Cfg, program: &Program, path: &[u32]) -> Vec<WitnessStep> {
    let mut kept: Vec<u32> = Vec::new();
    for (k, &idx) in path.iter().enumerate() {
        let is_edge = k == 0
            || k == path.len() - 1
            || path[k - 1] + 1 != idx
            || path.get(k + 1).is_some_and(|&next| idx + 1 != next);
        if is_edge && kept.last() != Some(&idx) {
            kept.push(idx);
        }
    }
    kept.iter()
        .map(|&idx| {
            let pc = cfg.pc(idx);
            WitnessStep {
                pc,
                location: program.location(pc),
            }
        })
        .collect()
}

/// A witness path from the analysis roots to `target` avoiding
/// `avoid`-instructions, falling back to any path if the avoiding search
/// fails (precision loss in a must-analysis).
fn witness_to(
    cfg: &Cfg,
    program: &Program,
    target: u32,
    avoid: &dyn Fn(u32) -> bool,
) -> Vec<WitnessStep> {
    let roots = cfg.roots();
    let path = cfg
        .witness_path(&roots, target, avoid)
        .or_else(|| cfg.witness_path(&roots, target, &|_| false))
        .unwrap_or_default();
    render_witness(cfg, program, &path)
}

/// Runs every analysis over `program` and collects the findings.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze(program: &Program) -> Report {
    let cfg = Cfg::build(program);
    let mut flow_roots = vec![(cfg.entry, ENTRY_DEFINED)];
    flow_roots.extend(cfg.secondary_roots.iter().map(|&r| (r, u32::MAX)));
    let flow = RegFlow::solve(&cfg, &flow_roots);
    let typestate = Typestate::solve(&cfg);
    let values = BcdValues::solve(&cfg, program);

    let mut diagnostics = Vec::new();
    let mut push = |lint: Lint, severity: Severity, idx: u32, message: String, witness| {
        let pc = cfg.pc(idx);
        diagnostics.push(Diagnostic {
            lint,
            severity,
            pc,
            instruction: cfg.instrs[idx as usize]
                .as_ref()
                .map_or_else(|| ".word".to_string(), ToString::to_string),
            location: program.location(pc),
            message,
            witness,
        });
    };

    // --- unreachable code -------------------------------------------------
    let mut i = 0usize;
    while i < cfg.len() {
        if cfg.reachable[i] || cfg.instrs[i].is_none() {
            i += 1;
            continue;
        }
        let start = i;
        while i < cfg.len() && !cfg.reachable[i] && cfg.instrs[i].is_some() {
            i += 1;
        }
        // Skip alignment padding; anchor the run at its first real
        // instruction.
        let Some(first) = (start..i).find(|&k| cfg.instrs[k] != Some(Instr::NOP)) else {
            continue;
        };
        let pc = cfg.pc(first as u32);
        let labeled = program.nearest_symbol(pc).is_some_and(|(_, off)| off == 0);
        let count = i - first;
        if labeled {
            push(
                Lint::UnreachableCode,
                Severity::Info,
                first as u32,
                format!(
                    "{count} instruction(s) of labeled code are unreachable — \
                     an unused library routine for this kernel configuration"
                ),
                Vec::new(),
            );
        } else {
            push(
                Lint::UnreachableCode,
                Severity::Error,
                first as u32,
                format!(
                    "{count} unlabeled instruction(s) cannot be reached from the entry \
                     or any address-taken root"
                ),
                Vec::new(),
            );
        }
    }

    // --- uninitialized register reads ------------------------------------
    for idx in 0..cfg.len() as u32 {
        if !cfg.reachable[idx as usize] {
            continue;
        }
        let Some(instr) = &cfg.instrs[idx as usize] else {
            continue;
        };
        let init = flow.may_init_in[idx as usize];
        for (slot, src) in instr.sources().into_iter().enumerate() {
            let Some(reg) = src else { continue };
            if reg == Reg::ZERO || init & reg_bit(reg) != 0 {
                continue;
            }
            // Spilling callee-saved registers to the stack on entry is
            // standard ABI traffic, not a use of the value.
            if slot == 1 && matches!(instr, Instr::Store { rs1: Reg::SP, .. }) {
                continue;
            }
            push(
                Lint::UninitializedRead,
                Severity::Error,
                idx,
                format!("reads {reg}, which no execution path has initialized"),
                witness_to(&cfg, program, idx, &|_| false),
            );
        }
    }

    // --- unresolved indirect jumps ----------------------------------------
    for &idx in &cfg.unresolved_indirect {
        if cfg.reachable[idx as usize] {
            push(
                Lint::UnresolvedIndirectJump,
                Severity::Info,
                idx,
                "indirect jump target is not statically resolvable; \
                 paths through it are not analyzed"
                    .to_string(),
                witness_to(&cfg, program, idx, &|_| false),
            );
        }
    }

    // --- protocol typestate + BCD operand checks --------------------------
    let mut accel_commands = 0usize;
    for idx in 0..cfg.len() as u32 {
        if !cfg.reachable[idx as usize] {
            continue;
        }
        let Some(instr) = &cfg.instrs[idx as usize] else {
            continue;
        };
        let Some(rocc) = accel_command(instr) else {
            continue;
        };
        accel_commands += 1;
        let Some(state) = typestate.states[idx as usize] else {
            continue;
        };
        let Some(funct) = DecimalFunct::from_funct7(rocc.funct7) else {
            push(
                Lint::UnknownAccelFunct,
                Severity::Error,
                idx,
                format!(
                    "funct7 {} names no accelerator command; \
                     the accelerator will latch a command error",
                    rocc.funct7
                ),
                witness_to(&cfg, program, idx, &|_| false),
            );
            continue;
        };
        let fields = rocc_fields(rocc);

        if state.error && !funct.serviced_in_error() {
            let avoid_clr = |k: u32| {
                cfg.instrs[k as usize]
                    .as_ref()
                    .and_then(accel_command)
                    .and_then(|r| DecimalFunct::from_funct7(r.funct7))
                    == Some(DecimalFunct::ClrAll)
            };
            push(
                Lint::ReuseAfterError,
                Severity::Error,
                idx,
                format!(
                    "{} is issued on a path that observed a nonzero STAT \
                     (accelerator error) without an intervening CLR_ALL; \
                     the sticky Error state will not service it",
                    funct.name()
                ),
                witness_to(&cfg, program, idx, &avoid_clr),
            );
        }

        let reads = funct.regs_read(fields);
        let missing_init = reads & !state.init;
        if missing_init != 0 {
            let avoid = |k: u32| {
                cfg.instrs[k as usize]
                    .as_ref()
                    .and_then(accel_command)
                    .and_then(|r| {
                        DecimalFunct::from_funct7(r.funct7)
                            .map(|f| f.regs_written(rocc_fields(r)) & missing_init != 0)
                    })
                    .unwrap_or(false)
            };
            push(
                Lint::MissingAccelSetup,
                Severity::Error,
                idx,
                format!(
                    "{} reads internal register(s) {} that no path has initialized \
                     (no CLR_ALL or write reaches this command)",
                    funct.name(),
                    internal_reg_list(missing_init)
                ),
                witness_to(&cfg, program, idx, &avoid),
            );
        }

        let missing_written = required_written(funct, fields) & !state.written & !missing_init;
        if missing_written != 0 {
            let avoid = |k: u32| {
                cfg.instrs[k as usize]
                    .as_ref()
                    .and_then(accel_command)
                    .and_then(|r| {
                        DecimalFunct::from_funct7(r.funct7).map(|f| {
                            f != DecimalFunct::ClrAll
                                && f.regs_written(rocc_fields(r)) & missing_written != 0
                        })
                    })
                    .unwrap_or(false)
            };
            push(
                Lint::MissingAccelSetup,
                Severity::Error,
                idx,
                format!(
                    "{} consumes operand register(s) {} that hold no deposited data \
                     since the last CLR_ALL (missing WR/LD setup)",
                    funct.name(),
                    internal_reg_list(missing_written)
                ),
                witness_to(&cfg, program, idx, &avoid),
            );
        }

        if funct.reads_carry() && !state.carry {
            let avoid = |k: u32| {
                cfg.instrs[k as usize]
                    .as_ref()
                    .and_then(accel_command)
                    .and_then(|r| {
                        DecimalFunct::from_funct7(r.funct7).map(DecimalFunct::defines_carry)
                    })
                    .unwrap_or(false)
            };
            push(
                Lint::UndefinedCarry,
                Severity::Error,
                idx,
                format!(
                    "{} consumes the carry latch, but a path reaches it on which \
                     no command has defined the carry",
                    funct.name()
                ),
                witness_to(&cfg, program, idx, &avoid),
            );
        }

        if funct == DecimalFunct::ClrAll && state.clean {
            push(
                Lint::RedundantClrAll,
                Severity::Error,
                idx,
                "CLR_ALL on an accelerator that every path leaves freshly cleared \
                 and untouched — dead command"
                    .to_string(),
                witness_to(&cfg, program, idx, &|_| false),
            );
        }

        if funct == DecimalFunct::Stat
            && rocc.xd
            && rocc.rd != Reg::ZERO
            && flow.live_out[idx as usize] & reg_bit(rocc.rd) == 0
        {
            push(
                Lint::DeadStat,
                Severity::Error,
                idx,
                format!(
                    "STAT result in {} is never consumed — the error check \
                     this read implies is missing",
                    rocc.rd
                ),
                witness_to(&cfg, program, idx, &|_| false),
            );
        }

        // BCD operand classification.
        let (bcd_rs1, bcd_rs2) = funct.bcd_operands();
        for (wanted, present, reg) in [
            (bcd_rs1, rocc.xs1, rocc.rs1),
            (bcd_rs2, rocc.xs2, rocc.rs2),
        ] {
            if !wanted || !present {
                continue;
            }
            let value = values.value_at(idx, reg);
            let bad = value.invalid_nibbles();
            if bad.is_empty() {
                continue;
            }
            let shown = value
                .as_const()
                .map_or_else(String::new, |c| format!(" (= {c:#x})"));
            let origin = reaching_defs(&cfg, idx, reg)
                .first()
                .map_or_else(String::new, |&d| {
                    format!("; defined at {}", program.location(cfg.pc(d)))
                });
            push(
                Lint::NonBcdOperand,
                Severity::Error,
                idx,
                format!(
                    "{} requires packed BCD in {reg}{shown}, but nibble(s) {bad:?} \
                     can never hold a decimal digit{origin}",
                    funct.name()
                ),
                witness_to(&cfg, program, idx, &|_| false),
            );
        }
        if funct.digit_operand() && rocc.xs1 {
            let value = values.value_at(idx, rocc.rs1);
            let nonzero_upper = value.nibs[1..]
                .iter()
                .any(|n| matches!(n, bcd::Nib::Known(v) if *v > 0));
            if value.nibs[0].definitely_invalid() || nonzero_upper {
                let shown = value
                    .as_const()
                    .map_or_else(String::new, |c| format!(" (= {c:#x})"));
                push(
                    Lint::NonBcdOperand,
                    Severity::Error,
                    idx,
                    format!(
                        "{} takes a single decimal digit in {}{shown}, \
                         which is statically not 0–9",
                        funct.name(),
                        rocc.rs1
                    ),
                    witness_to(&cfg, program, idx, &|_| false),
                );
            }
        }
        if funct == DecimalFunct::Ld && rocc.xs1 {
            if let Some(addr) = values.value_at(idx, rocc.rs1).as_const() {
                if let Some((region, value)) = values.region_load(program, addr, LoadOp::Ld) {
                    let bad = value.invalid_nibbles();
                    if !bad.is_empty() {
                        push(
                            Lint::NonBcdOperand,
                            Severity::Error,
                            idx,
                            format!(
                                "LD pulls an operand from data region `{region}`, \
                                 whose contents are statically not packed BCD \
                                 (nibble(s) {bad:?})"
                            ),
                            witness_to(&cfg, program, idx, &|_| false),
                        );
                    }
                }
            }
        }
    }

    diagnostics.sort_by_key(|d| (d.severity, d.pc));
    let stats = Stats {
        instructions: cfg.len(),
        reachable_instructions: cfg.reachable.iter().filter(|&&r| r).count(),
        basic_blocks: cfg.block_count(),
        functions: cfg.functions.len(),
        accel_commands,
    };
    Report { diagnostics, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(source: &str) -> Report {
        let program = riscv_asm::assemble(source).expect("fixture assembles");
        analyze(&program)
    }

    #[test]
    fn clean_straight_line_program() {
        let report = lint(
            "start:\n\
             \tli a0, 5\n\
             \tli a1, 7\n\
             \tadd a2, a0, a1\n\
             \tli a7, 93\n\
             \tecall\n",
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn detects_uninitialized_read() {
        let report = lint(
            "start:\n\
             \tadd a2, a0, a1\n\
             \tli a7, 93\n\
             \tecall\n",
        );
        let uninit: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::UninitializedRead)
            .collect();
        assert_eq!(uninit.len(), 2, "{report}");
        assert!(uninit[0].message.contains("a0"), "{report}");
    }

    #[test]
    fn detects_unreachable_code() {
        let report = lint(
            "start:\n\
             \tli a7, 93\n\
             \tecall\n\
             \tli a0, 1\n\
             \tli a1, 2\n",
        );
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::UnreachableCode)
            .collect();
        assert_eq!(dead.len(), 1, "{report}");
        assert_eq!(dead[0].severity, Severity::Error);
        assert!(dead[0].message.contains("2 unlabeled"), "{report}");
    }

    #[test]
    fn labeled_unreachable_code_is_info() {
        let report = lint(
            "start:\n\
             \tli a7, 93\n\
             \tecall\n\
             helper:\n\
             \tadd a0, a0, a0\n\
             \tret\n",
        );
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::UnreachableCode)
            .collect();
        assert_eq!(dead.len(), 1, "{report}");
        assert_eq!(dead[0].severity, Severity::Info);
        assert!(report.is_clean(), "{report}");
    }
}
