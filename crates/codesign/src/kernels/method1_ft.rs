//! The fault-tolerant Method-1 kernel: Method-1's hardware datapath wrapped
//! in a detection net, with graceful degradation to a pure-software
//! recompute when the accelerator misbehaves.
//!
//! Detection net (cheap, covers every fault class the accelerator can
//! raise in a Method-1 run — only the carry latch is exercised, not the
//! register file):
//!
//! 1. **In-band status.** `STAT` (funct7=12) after the hardware phase
//!    reads back any latched fault — invalid BCD, protocol violations, or
//!    a watchdog abort — without an out-of-band channel.
//! 2. **Watchdog trap.** `mtvec` is armed at `k_trap`; a wedged interface
//!    FSM is aborted by the core's busy-watchdog and delivered as an
//!    M-mode trap. The handler latches the `hw_fault` flag, advances
//!    `mepc` past the aborted command, and `mret`s — the run never hangs.
//! 3. **Mod-9 residues.** A decimal number is congruent to its digit sum
//!    mod 9, so a single flipped carry (a ±10^k delta with k ≤ 16 per use)
//!    moves the residue and is caught by
//!    `sum(X)·sum(Y) ≡ sum(product) (mod 9)`. A carry flip *during* the
//!    multiples-table build propagates into every later multiple, which
//!    can cancel in the final residue — so the table itself is checked
//!    first: `MM[9] = 9·X ≡ 0 (mod 9)` always.
//!
//! On any detection the kernel bumps `ft_degraded`, clears the accelerator
//! with `CLR_ALL`, and recomputes the whole product with the digit-serial
//! software adder. The rounding epilogue always uses the software adder,
//! so a fault latched after the checks cannot corrupt the rounding
//! increment. Result bits are therefore correct under every single fault,
//! at the cost the degradation counter makes visible.

use super::common::{dec_add, dec_adc, AddStyle};
use super::method1::{EPILOGUE, PROLOGUE};

/// One MM-table build loop (16 RoCC or software add/adc pairs).
fn mm_build(label: &str, style: AddStyle) -> String {
    let add = dec_add("a0", "a0", "s6", style);
    let adc = dec_adc("a1", "a1", "zero", style);
    format!(
        "
    la   s4, mm_table
    sd   zero, 0(s4)
    sd   zero, 8(s4)
    sd   s6, 16(s4)
    sd   zero, 24(s4)
    li   t5, 8
    addi t6, s4, 16
{label}:
    ld   a0, 0(t6)
    ld   a1, 8(t6)
{add}{adc}    sd   a0, 16(t6)
    sd   a1, 24(t6)
    addi t6, t6, 16
    addi t5, t5, -1
    bnez t5, {label}
"
    )
}

/// One Horner accumulation loop over the digits of Y.
fn accumulate(label: &str, style: AddStyle) -> String {
    let add = dec_add("s11", "s11", "a0", style);
    let adc = dec_adc("s9", "s9", "a1", style);
    format!(
        "
    li   s9, 0
    li   s11, 0
    li   s5, 60
{label}:
    srli t0, s11, 60
    slli s9, s9, 4
    or   s9, s9, t0
    slli s11, s11, 4
    srl  t0, s7, s5
    andi t0, t0, 15
    slli t0, t0, 4
    add  t0, t0, s4
    ld   a0, 0(t0)
    ld   a1, 8(t0)
{add}{adc}    addi s5, s5, -4
    bgez s5, {label}
"
    )
}

/// Emits the fault-tolerant Method-1 kernel.
#[must_use]
pub(crate) fn kernel_ft() -> String {
    let mut core = String::new();
    core += "
    # Arm the trap vector: a wedged RoCC command is aborted by the core's
    # busy-watchdog and delivered here as an M-mode trap, not a hang.
    la   t0, k_trap
    csrrw zero, 0x305, t0
    la   t0, hw_fault
    sd   zero, 0(t0)
    custom0 5, zero, zero, zero, 0, 0, 0   # CLR_ALL: start from known state
";
    // ---- hardware phase: MM table, integrity check, accumulate ----
    core += &mm_build("m1f_mm_loop", AddStyle::Hw);
    core += "
    # Wedge during the table build? The trap handler latched hw_fault.
    la   t0, hw_fault
    ld   t0, 0(t0)
    bnez t0, k_degrade
    # Table integrity: MM[9] = 9*X, so its digit sum is 0 mod 9. A carry
    # flip during the build corrupts every later multiple; this catches it
    # before the corruption fans out through the accumulation.
    ld   a0, 144(s4)
    call bcd_mod9
    mv   t3, a0
    ld   a0, 152(s4)
    call bcd_mod9
    add  t3, t3, a0
    li   t0, 9
    remu t3, t3, t0
    bnez t3, k_degrade
";
    core += &accumulate("m1f_acc_loop", AddStyle::Hw);
    core += "
    # ---- detection net over the finished hardware phase ----
    custom0 12, t0, zero, zero, 1, 0, 0    # STAT: any latched fault?
    bnez t0, k_degrade
    la   t0, hw_fault
    ld   t0, 0(t0)
    bnez t0, k_degrade
    # Product residue: sum(X)*sum(Y) == sum(hi)+sum(lo)  (mod 9).
    mv   a0, s6
    call bcd_mod9
    mv   t3, a0
    mv   a0, s7
    call bcd_mod9
    mul  t3, t3, a0
    mv   a0, s11
    call bcd_mod9
    mv   t4, a0
    mv   a0, s9
    call bcd_mod9
    add  t4, t4, a0
    li   t0, 9
    remu t3, t3, t0
    remu t4, t4, t0
    bne  t3, t4, k_degrade
    j    k_pack
k_degrade:
    # Graceful degradation: count it, quiesce the accelerator, recompute
    # the whole product in software from the preserved coefficients.
    la   t0, ft_degraded
    ld   t1, 0(t0)
    addi t1, t1, 1
    sd   t1, 0(t0)
    custom0 5, zero, zero, zero, 0, 0, 0   # CLR_ALL: recover the FSM
";
    core += &mm_build("m1f_soft_mm_loop", AddStyle::Soft);
    core += &accumulate("m1f_soft_acc_loop", AddStyle::Soft);
    core += "    j    k_pack\n";
    let helpers = "
k_trap:
    # M-mode trap handler: the busy-watchdog aborted a wedged accelerator
    # command. Latch the fault for the detection net and resume past the
    # aborted instruction.
    addi sp, sp, -16
    sd   t0, 0(sp)
    sd   t1, 8(sp)
    la   t0, hw_fault
    li   t1, 1
    sd   t1, 0(t0)
    csrrs t0, 0x341, zero      # mepc
    addi t0, t0, 4
    csrrw zero, 0x341, t0
    ld   t0, 0(sp)
    ld   t1, 8(sp)
    addi sp, sp, 16
    mret

bcd_mod9:
    # a0 = packed BCD -> a0 = digit sum mod 9. Clobbers t0-t2.
    li   t1, 0
    li   t2, 16
bm9_loop:
    andi t0, a0, 15
    add  t1, t1, t0
    srli a0, a0, 4
    addi t2, t2, -1
    bnez t2, bm9_loop
    li   t0, 9
    remu a0, t1, t0
    ret
";
    format!("{PROLOGUE}{core}{EPILOGUE}{helpers}")
}
