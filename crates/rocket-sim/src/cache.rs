//! Set-associative L1 cache model with random replacement.
//!
//! The paper notes that "due to cache random replacement policy, Rocket chip
//! computes the number of cycles nondeterministically" and argues that
//! averaging over many samples still yields statistically meaningful
//! results. This model reproduces that property deterministically: the
//! random victim choice comes from a seeded xorshift generator, so a given
//! seed replays exactly while different seeds exhibit the same spread the
//! paper describes.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Rocket's default 16 KiB, 4-way, 64-byte-line L1.
    #[must_use]
    pub fn rocket_l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    fn sets(&self) -> u64 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::rocket_l1()
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 1 for an untouched cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A tag-only set-associative cache with random replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    line_shift: u32,
    set_mask: u64,
    /// `tags[set * ways + way]`.
    tags: Vec<Option<u64>>,
    rng: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two split.
    #[must_use]
    pub fn new(config: CacheConfig, seed: u64) -> Self {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        Cache {
            config,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            tags: vec![None; (sets * config.ways) as usize],
            rng: seed | 1, // xorshift must not start at zero
            stats: CacheStats::default(),
        }
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64: deterministic, cheap, well-distributed enough for
        // victim selection.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Performs one access; returns true on hit. Misses fill the line
    /// (allocate-on-miss for both reads and writes).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = self.config.ways as usize;
        let base = set * ways;
        for way in 0..ways {
            if self.tags[base + way] == Some(tag) {
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Prefer an invalid way; otherwise evict a random victim.
        let victim = (0..ways)
            .find(|&w| self.tags[base + w].is_none())
            .unwrap_or_else(|| (self.next_random() % ways as u64) as usize);
        self.tags[base + victim] = Some(tag);
        false
    }

    /// The counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates all lines and clears statistics (seed preserved).
    pub fn reset(&mut self) {
        self.tags.fill(None);
        self.stats = CacheStats::default();
    }

    /// Captures tag array, generator state, and counters. Restoring the
    /// snapshot reproduces the exact future victim sequence, so a resumed
    /// run's `rdcycle` values match the uninterrupted run bit-for-bit.
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            tags: self.tags.clone(),
            rng: self.rng,
            stats: self.stats,
        }
    }

    /// Restores a snapshot taken from a cache of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a description if the snapshot's tag array does not fit this
    /// cache's geometry.
    pub fn restore(&mut self, snapshot: &CacheSnapshot) -> Result<(), &'static str> {
        if snapshot.tags.len() != self.tags.len() {
            return Err("cache snapshot geometry does not match");
        }
        self.tags.clone_from(&snapshot.tags);
        self.rng = snapshot.rng;
        self.stats = snapshot.stats;
        Ok(())
    }
}

/// Serializable state of a [`Cache`] (geometry excluded — a snapshot only
/// restores into a cache built with the same [`CacheConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// The tag array, `tags[set * ways + way]`.
    pub tags: Vec<Option<u64>>,
    /// Replacement-generator state.
    pub rng: u64,
    /// Hit/miss counters.
    pub stats: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = Cache::new(CacheConfig::rocket_l1(), 1);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1038), "same 64-byte line");
        assert!(!c.access(0x1040), "next line");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn associativity_holds_conflicting_lines() {
        let mut c = Cache::new(CacheConfig::rocket_l1(), 1);
        // 64 sets * 64-byte lines => same set every 4096 bytes.
        for i in 0..4u64 {
            assert!(!c.access(0x1000 + i * 4096));
        }
        for i in 0..4u64 {
            assert!(c.access(0x1000 + i * 4096), "all four ways resident");
        }
        // A fifth conflicting line must evict someone.
        assert!(!c.access(0x1000 + 4 * 4096));
        let survivors = (0..5u64)
            .filter(|i| {
                let mut probe = c.clone();
                probe.access(0x1000 + i * 4096)
            })
            .count();
        assert_eq!(survivors, 4);
    }

    #[test]
    fn replacement_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut c = Cache::new(CacheConfig::rocket_l1(), seed);
            // Thrash one set, then record the exact hit pattern.
            let pattern: Vec<bool> = (0..64u64)
                .map(|i| c.access(0x1000 + (i % 8) * 4096))
                .collect();
            pattern
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(1), run(99), "different seeds shuffle victims");
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = Cache::new(CacheConfig::rocket_l1(), 7);
        assert_eq!(c.stats().hit_rate(), 1.0);
        c.access(0);
        c.access(0);
        assert_eq!(c.stats().hit_rate(), 0.5);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(
            CacheConfig {
                size_bytes: 3000,
                ways: 3,
                line_bytes: 60,
            },
            1,
        );
    }
}
