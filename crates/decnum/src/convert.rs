//! Conversion between [`DecNumber`] and the DPD interchange formats.

use bcd::Bcd64;
use dpd::{Class, Decimal128, Decimal64, Sign};

use crate::context::Context;
use crate::number::{DecNumber, Kind};

impl DecNumber {
    /// Decodes a decimal64 exactly (interchange values always fit).
    #[must_use]
    pub fn from_decimal64(d: Decimal64) -> DecNumber {
        match d.classify() {
            Class::Infinity => DecNumber::infinity(d.sign()),
            Class::QuietNan | Class::SignalingNan => {
                let payload = d.nan_payload().expect("nan");
                let mut digits: Vec<u8> = payload.iter_digits().collect();
                while digits.last() == Some(&0) {
                    digits.pop();
                }
                DecNumber {
                    sign: d.sign(),
                    kind: Kind::Nan {
                        signaling: d.classify() == Class::SignalingNan,
                    },
                    digits,
                    exponent: 0,
                }
            }
            Class::Finite => {
                let parts = d.to_parts().expect("finite");
                let digits: Vec<u8> = parts
                    .coefficient
                    .iter_digits()
                    .take(parts.coefficient.significant_digits() as usize)
                    .collect();
                DecNumber::from_parts(parts.sign, &digits, parts.exponent)
            }
        }
    }

    /// Encodes into decimal64, rounding through a decimal64 context and
    /// merging any raised flags into `ctx`.
    #[must_use]
    pub fn to_decimal64(&self, ctx: &mut Context) -> Decimal64 {
        match self.kind {
            Kind::Infinity => {
                if self.sign == Sign::Negative {
                    Decimal64::NEG_INFINITY
                } else {
                    Decimal64::INFINITY
                }
            }
            Kind::Nan { signaling } => {
                // Keep at most 15 payload digits (the sixteenth is the MSD
                // position, which must stay zero for a canonical NaN).
                let mut raw = 0u64;
                for (i, &d) in self.digits.iter().take(15).enumerate() {
                    raw |= u64::from(d) << (4 * i);
                }
                let payload = Bcd64::from_raw_unchecked(raw);
                let base = if signaling {
                    Decimal64::SNAN.to_bits()
                } else {
                    Decimal64::NAN.to_bits()
                };
                let sign_bit = u64::from(self.sign == Sign::Negative) << 63;
                // Re-encode the payload declets.
                let mut cont = 0u64;
                for i in 0..5 {
                    let triple = ((payload.raw() >> (12 * i)) & 0xFFF) as u16;
                    cont |= u64::from(dpd::declet::encode_declet_bcd(triple)) << (10 * i);
                }
                Decimal64::from_bits(base | sign_bit | cont)
            }
            Kind::Finite => {
                let mut target = Context::decimal64();
                target.rounding = ctx.rounding;
                let rounded = self.clone().finish(&mut target);
                ctx.raise(target.status());
                match rounded.kind {
                    Kind::Infinity => {
                        if rounded.sign == Sign::Negative {
                            Decimal64::NEG_INFINITY
                        } else {
                            Decimal64::INFINITY
                        }
                    }
                    _ => {
                        let mut raw = 0u64;
                        for (i, &d) in rounded.digits.iter().enumerate() {
                            raw |= u64::from(d) << (4 * i);
                        }
                        Decimal64::from_parts(
                            rounded.sign,
                            Bcd64::from_raw_unchecked(raw),
                            rounded.exponent,
                        )
                        .expect("finished decimal64 value is in range")
                    }
                }
            }
        }
    }

    /// Decodes a decimal128 exactly.
    #[must_use]
    pub fn from_decimal128(d: Decimal128) -> DecNumber {
        match d.classify() {
            Class::Infinity => DecNumber::infinity(d.sign()),
            Class::QuietNan | Class::SignalingNan => DecNumber {
                sign: d.sign(),
                kind: Kind::Nan {
                    signaling: d.classify() == Class::SignalingNan,
                },
                digits: Vec::new(),
                exponent: 0,
            },
            Class::Finite => {
                let parts = d.to_parts().expect("finite");
                DecNumber::from_parts(parts.sign, &parts.digits, parts.exponent)
            }
        }
    }

    /// Encodes into decimal128, rounding through a decimal128 context and
    /// merging any raised flags into `ctx`.
    #[must_use]
    pub fn to_decimal128(&self, ctx: &mut Context) -> Decimal128 {
        match self.kind {
            Kind::Infinity => {
                if self.sign == Sign::Negative {
                    Decimal128::from_bits(Decimal128::INFINITY.to_bits() | (1 << 127))
                } else {
                    Decimal128::INFINITY
                }
            }
            Kind::Nan { .. } => Decimal128::NAN,
            Kind::Finite => {
                let mut target = Context::decimal128();
                target.rounding = ctx.rounding;
                let rounded = self.clone().finish(&mut target);
                ctx.raise(target.status());
                match rounded.kind {
                    Kind::Infinity => {
                        if rounded.sign == Sign::Negative {
                            Decimal128::from_bits(Decimal128::INFINITY.to_bits() | (1 << 127))
                        } else {
                            Decimal128::INFINITY
                        }
                    }
                    _ => Decimal128::from_parts(
                        rounded.sign,
                        &rounded.digits,
                        rounded.exponent,
                    )
                    .expect("finished decimal128 value is in range"),
                }
            }
        }
    }
}

/// Multiplies two decimal128 interchange values through a [`DecNumber`]
/// context — the "quad" precision option of the paper's test-program
/// generator.
#[must_use]
pub fn mul_decimal128(
    x: dpd::Decimal128,
    y: dpd::Decimal128,
    ctx: &mut Context,
) -> dpd::Decimal128 {
    let a = DecNumber::from_decimal128(x);
    let b = DecNumber::from_decimal128(y);
    a.mul(&b, ctx).to_decimal128(ctx)
}

/// Multiplies two decimal64 interchange values through a [`DecNumber`]
/// context — the reference semantics that every co-design implementation
/// must match, and the software baseline of Table IV.
#[must_use]
pub fn mul_decimal64(x: Decimal64, y: Decimal64, ctx: &mut Context) -> Decimal64 {
    let a = DecNumber::from_decimal64(x);
    let b = DecNumber::from_decimal64(y);
    a.mul(&b, ctx).to_decimal64(ctx)
}

/// Adds two decimal64 interchange values through a [`DecNumber`] context.
#[must_use]
pub fn add_decimal64(x: Decimal64, y: Decimal64, ctx: &mut Context) -> Decimal64 {
    let a = DecNumber::from_decimal64(x);
    let b = DecNumber::from_decimal64(y);
    a.add(&b, ctx).to_decimal64(ctx)
}

/// Subtracts two decimal64 interchange values through a [`DecNumber`] context.
#[must_use]
pub fn sub_decimal64(x: Decimal64, y: Decimal64, ctx: &mut Context) -> Decimal64 {
    let a = DecNumber::from_decimal64(x);
    let b = DecNumber::from_decimal64(y);
    a.sub(&b, ctx).to_decimal64(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Status;

    fn n(s: &str) -> DecNumber {
        s.parse().unwrap()
    }

    #[test]
    fn d64_roundtrip() {
        let mut ctx = Context::decimal64();
        for s in ["0", "1", "-1", "9024E-1", "9999999999999999E+369", "1E-398"] {
            let d = n(s).to_decimal64(&mut ctx);
            let back = DecNumber::from_decimal64(d);
            assert_eq!(back.to_string(), n(s).to_string(), "value {s}");
        }
    }

    #[test]
    fn d64_encoding_rounds() {
        let mut ctx = Context::decimal64();
        let d = n("12345678901234567").to_decimal64(&mut ctx);
        assert!(ctx.status().contains(Status::ROUNDED));
        assert_eq!(
            DecNumber::from_decimal64(d).to_string(),
            "1.234567890123457E+16"
        );
    }

    #[test]
    fn d64_encoding_overflows_to_infinity() {
        let mut ctx = Context::decimal64();
        let d = n("1E+999").to_decimal64(&mut ctx);
        assert!(d.is_infinite());
        assert!(ctx.status().contains(Status::OVERFLOW));
    }

    #[test]
    fn d64_specials_roundtrip() {
        let mut ctx = Context::decimal64();
        assert!(n("Infinity").to_decimal64(&mut ctx).is_infinite());
        let neg_inf = n("-Infinity").to_decimal64(&mut ctx);
        assert!(neg_inf.is_infinite());
        assert_eq!(neg_inf.sign(), Sign::Negative);
        let nan = n("NaN123").to_decimal64(&mut ctx);
        assert!(nan.is_nan());
        let back = DecNumber::from_decimal64(nan);
        assert_eq!(back.coefficient_digits(), &[3, 2, 1]);
        assert!(n("sNaN").to_decimal64(&mut ctx).classify() == Class::SignalingNan);
    }

    #[test]
    fn d128_roundtrip() {
        let mut ctx = Context::decimal128();
        for s in ["0", "-42", "1234567890123456789012345678901234", "1E-6176"] {
            let d = n(s).to_decimal128(&mut ctx);
            assert_eq!(DecNumber::from_decimal128(d).to_string(), n(s).to_string());
        }
        // 1E-6176 is subnormal (flagged) but exactly representable.
        assert!(!ctx.status().contains(Status::INEXACT));
    }

    #[test]
    fn reference_multiply_smoke() {
        let mut ctx = Context::decimal64();
        let x = n("1.20").to_decimal64(&mut ctx);
        let y = n("3").to_decimal64(&mut ctx);
        let p = mul_decimal64(x, y, &mut ctx);
        assert_eq!(DecNumber::from_decimal64(p).to_string(), "3.60");
    }
}

#[cfg(test)]
mod quad_tests {
    use super::*;
    use crate::context::Context;
    use crate::number::DecNumber;

    #[test]
    fn quad_multiply_full_precision() {
        let mut ctx = Context::decimal128();
        let x: DecNumber = "1234567890123456789012345678901234".parse().unwrap();
        let y: DecNumber = "2".parse().unwrap();
        let xd = x.to_decimal128(&mut ctx);
        let yd = y.to_decimal128(&mut ctx);
        let p = mul_decimal128(xd, yd, &mut ctx);
        assert_eq!(
            DecNumber::from_decimal128(p).to_string(),
            "2469135780246913578024691357802468"
        );
        assert!(!ctx.status().contains(crate::context::Status::INEXACT));
    }

    #[test]
    fn quad_multiply_rounds_at_34_digits() {
        let mut ctx = Context::decimal128();
        let x: DecNumber = "9999999999999999999999999999999999".parse().unwrap();
        let xd = x.to_decimal128(&mut ctx);
        let p = mul_decimal128(xd, xd, &mut ctx);
        let back = DecNumber::from_decimal128(p);
        assert_eq!(back.to_string(), "9.999999999999999999999999999999998E+67");
        assert!(ctx.status().contains(crate::context::Status::INEXACT));
    }
}
