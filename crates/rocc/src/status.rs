//! The accelerator's in-band error protocol: a sticky status/cause word
//! the guest reads with `STAT` and clears with `CLR_ALL`.
//!
//! The paper's design stops at Fig. 5's happy path; a production
//! coprocessor must also make faults architecturally observable, because a
//! RoCC accelerator cannot raise a precise exception on its own. This
//! module defines the status word that turns datapath and protocol faults
//! into values software can branch on (the documented Fig. 5 deviation,
//! see DESIGN.md §6.2).

use std::fmt;

/// Why the accelerator latched its `Error` state.
///
/// The discriminants are the architectural cause codes reported in the low
/// bits of the [`AccelStatus`] word — stable, guest-visible values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AccelCause {
    /// A `DEC_ADD`/`DEC_ADC`/`DEC_MUL` operand contained a nibble > 9.
    InvalidBcdOperand = 1,
    /// An internal register read by `DEC_ACCUM`/`DEC_ADD_R`/`DEC_MULD`
    /// contained a nibble > 9.
    InvalidBcdRegister = 2,
    /// A digit operand exceeded 9.
    DigitRange = 3,
    /// The funct7 field selected no implemented function.
    UnknownFunction = 4,
    /// The RoCC memory interface faulted (unmapped or misaligned address).
    MemoryFault = 5,
    /// The command needed a resource this invocation lacked (e.g. `LD`
    /// without the memory interface, or an `xd`/response mismatch).
    ProtocolViolation = 6,
    /// The core's busy-watchdog fired and forcibly aborted the command.
    WatchdogAbort = 7,
}

impl AccelCause {
    /// All causes, in code order.
    pub const ALL: [AccelCause; 7] = [
        AccelCause::InvalidBcdOperand,
        AccelCause::InvalidBcdRegister,
        AccelCause::DigitRange,
        AccelCause::UnknownFunction,
        AccelCause::MemoryFault,
        AccelCause::ProtocolViolation,
        AccelCause::WatchdogAbort,
    ];

    /// The architectural cause code.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a cause code.
    #[must_use]
    pub fn from_code(code: u8) -> Option<AccelCause> {
        AccelCause::ALL.into_iter().find(|c| c.code() == code)
    }

    /// A short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AccelCause::InvalidBcdOperand => "invalid-bcd-operand",
            AccelCause::InvalidBcdRegister => "invalid-bcd-register",
            AccelCause::DigitRange => "digit-range",
            AccelCause::UnknownFunction => "unknown-function",
            AccelCause::MemoryFault => "memory-fault",
            AccelCause::ProtocolViolation => "protocol-violation",
            AccelCause::WatchdogAbort => "watchdog-abort",
        }
    }
}

impl fmt::Display for AccelCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Bit 7 of the status word: the interface FSM is in its `Error` state.
pub const STATUS_ERROR_BIT: u64 = 1 << 7;

/// The decoded accelerator status.
///
/// The wire format (what `STAT` returns in `rd`):
///
/// ```text
///  bits 15:8   funct7 of the command that faulted (0 if none)
///  bit     7   FSM is in the Error state
///  bits  6:0   cause code (see AccelCause; 0 = none recorded)
/// ```
///
/// A healthy accelerator reads back exactly 0. The error flag is distinct
/// from the cause so that an `Error` state entered without a recorded
/// cause (only reachable through fault injection) is still nonzero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccelStatus {
    /// FSM is in the sticky `Error` state.
    pub error: bool,
    /// The first latched cause, if any.
    pub cause: Option<AccelCause>,
    /// funct7 of the command that latched the cause.
    pub funct7: u8,
}

impl AccelStatus {
    /// Encodes the guest-visible status word.
    #[must_use]
    pub fn word(self) -> u64 {
        let cause = self.cause.map_or(0, AccelCause::code);
        let error = if self.error { STATUS_ERROR_BIT } else { 0 };
        (u64::from(self.funct7) << 8) | error | u64::from(cause)
    }

    /// Decodes a status word (unknown cause codes decode to `None`).
    #[must_use]
    pub fn decode(word: u64) -> AccelStatus {
        AccelStatus {
            error: word & STATUS_ERROR_BIT != 0,
            cause: AccelCause::from_code((word & 0x7F) as u8),
            funct7: ((word >> 8) & 0xFF) as u8,
        }
    }

    /// True when nothing is latched (the healthy read-back).
    #[must_use]
    pub fn is_clear(self) -> bool {
        self == AccelStatus::default()
    }
}

impl fmt::Display for AccelStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clear() {
            return write!(f, "ok");
        }
        match self.cause {
            Some(cause) => write!(f, "error={} cause={cause} funct7={}", self.error, self.funct7),
            None => write!(f, "error={} cause=none funct7={}", self.error, self.funct7),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_codes_roundtrip() {
        for cause in AccelCause::ALL {
            assert_eq!(AccelCause::from_code(cause.code()), Some(cause));
        }
        assert_eq!(AccelCause::from_code(0), None);
        assert_eq!(AccelCause::from_code(0x7F), None);
    }

    #[test]
    fn status_word_roundtrip() {
        let status = AccelStatus {
            error: true,
            cause: Some(AccelCause::InvalidBcdOperand),
            funct7: 4,
        };
        assert_eq!(AccelStatus::decode(status.word()), status);
        assert_eq!(status.word(), (4 << 8) | 0x80 | 1);
    }

    #[test]
    fn clear_status_is_zero() {
        assert_eq!(AccelStatus::default().word(), 0);
        assert!(AccelStatus::decode(0).is_clear());
    }

    #[test]
    fn injected_error_without_cause_is_nonzero() {
        let status = AccelStatus {
            error: true,
            cause: None,
            funct7: 0,
        };
        assert_ne!(status.word(), 0);
        assert_eq!(AccelStatus::decode(status.word()), status);
    }
}
