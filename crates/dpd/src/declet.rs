//! Declet compression: three decimal digits ⇄ ten bits.
//!
//! Densely Packed Decimal (Cowlishaw, IEE Proc. 2002) packs three BCD digits
//! into ten bits. The paper's Method-1 relies on the property that "the DPD
//! coefficient encoding is very close to BCD and can be easily converted":
//! digits below 8 pass through almost unchanged, and only the rare
//! large-digit combinations shuffle bits.
//!
//! [`encode_declet`] and [`decode_declet`] implement the canonical
//! compression/decompression tables directly; `ENCODE_LUT`/`DECODE_LUT`
//! style lookups are available through [`declet_tables`] for the guest
//! kernels, which (like decNumber) use in-memory tables.

/// Compresses three decimal digits `(d2, d1, d0)` — most significant first —
/// into a ten-bit declet.
///
/// # Panics
///
/// Panics if any digit is greater than 9.
#[must_use]
pub fn encode_declet(d2: u8, d1: u8, d0: u8) -> u16 {
    assert!(d2 <= 9 && d1 <= 9 && d0 <= 9, "digits must be 0..=9");
    // Split each digit into its "large" indicator (value >= 8) and low bits.
    // Using Cowlishaw's names: d2 = (a,b,c,d), d1 = (e,f,g,h), d0 = (i,j,k,m).
    let (a, bcd) = (d2 >> 3, u16::from(d2 & 7));
    let (e, fgh) = (d1 >> 3, u16::from(d1 & 7));
    let (i, jkm) = (d0 >> 3, u16::from(d0 & 7));
    let d = bcd & 1;
    let h = fgh & 1;
    let m = jkm & 1;
    let jk = jkm >> 1;
    let fg = fgh >> 1;
    match (a, e, i) {
        (0, 0, 0) => (bcd << 7) | (fgh << 4) | jkm,
        (0, 0, 1) => (bcd << 7) | (fgh << 4) | 0b1_000 | m,
        (0, 1, 0) => (bcd << 7) | (jk << 5) | (h << 4) | 0b1_010 | m,
        (0, 1, 1) => (bcd << 7) | (0b10 << 5) | (h << 4) | 0b1_110 | m,
        (1, 0, 0) => (jk << 8) | (d << 7) | (fgh << 4) | 0b1_100 | m,
        (1, 0, 1) => (fg << 8) | (d << 7) | (0b01 << 5) | (h << 4) | 0b1_110 | m,
        (1, 1, 0) => (jk << 8) | (d << 7) | (h << 4) | 0b1_110 | m,
        (1, 1, 1) => (d << 7) | (0b11 << 5) | (h << 4) | 0b1_110 | m,
        _ => unreachable!("indicator bits are 0 or 1"),
    }
}

/// Decompresses a ten-bit declet into three decimal digits `(d2, d1, d0)`.
///
/// All 1024 bit patterns decode (IEEE 754-2008 defines the 24 non-canonical
/// patterns to decode like their canonical siblings); only the low ten bits
/// of `declet` are examined.
#[must_use]
pub fn decode_declet(declet: u16) -> (u8, u8, u8) {
    let bits = declet & 0x3FF;
    // Bit names, high to low: p q r s t u v w x y.
    let p = ((bits >> 9) & 1) as u8;
    let q = ((bits >> 8) & 1) as u8;
    let r = ((bits >> 7) & 1) as u8;
    let s = ((bits >> 6) & 1) as u8;
    let t = ((bits >> 5) & 1) as u8;
    let u = ((bits >> 4) & 1) as u8;
    let v = ((bits >> 3) & 1) as u8;
    let w = ((bits >> 2) & 1) as u8;
    let x = ((bits >> 1) & 1) as u8;
    let y = (bits & 1) as u8;
    let pqr = (p << 2) | (q << 1) | r;
    let stu = (s << 2) | (t << 1) | u;
    let wxy = (w << 2) | (x << 1) | y;
    if v == 0 {
        return (pqr, stu, wxy);
    }
    match (w, x) {
        (0, 0) => (pqr, stu, 8 + y),
        (0, 1) => (pqr, 8 + u, (s << 2) | (t << 1) | y),
        (1, 0) => (8 + r, stu, (p << 2) | (q << 1) | y),
        (1, 1) => match (s, t) {
            (0, 0) => (8 + r, 8 + u, (p << 2) | (q << 1) | y),
            (0, 1) => (8 + r, (p << 2) | (q << 1) | u, 8 + y),
            (1, 0) => (pqr, 8 + u, 8 + y),
            (1, 1) => (8 + r, 8 + u, 8 + y),
            _ => unreachable!("bits are 0 or 1"),
        },
        _ => unreachable!("bits are 0 or 1"),
    }
}

/// Encodes three digits packed as twelve BCD bits (`0xDDD`) into a declet.
///
/// This is the `BCD→DPD` direction the kernels use when repacking a result.
///
/// # Panics
///
/// Panics if any nibble is not a decimal digit.
#[must_use]
pub fn encode_declet_bcd(bcd: u16) -> u16 {
    encode_declet(((bcd >> 8) & 0xF) as u8, ((bcd >> 4) & 0xF) as u8, (bcd & 0xF) as u8)
}

/// Decodes a declet into twelve packed BCD bits (`0xDDD`).
#[must_use]
pub fn decode_declet_bcd(declet: u16) -> u16 {
    let (d2, d1, d0) = decode_declet(declet);
    (u16::from(d2) << 8) | (u16::from(d1) << 4) | u16::from(d0)
}

/// Decodes a declet into a binary value in `0..=999`.
#[must_use]
pub fn decode_declet_bin(declet: u16) -> u16 {
    let (d2, d1, d0) = decode_declet(declet);
    u16::from(d2) * 100 + u16::from(d1) * 10 + u16::from(d0)
}

/// Encodes a binary value in `0..=999` into a declet.
///
/// # Panics
///
/// Panics if `value > 999`.
#[must_use]
pub fn encode_declet_bin(value: u16) -> u16 {
    assert!(value <= 999, "declet value {value} out of range");
    encode_declet((value / 100) as u8, ((value / 10) % 10) as u8, (value % 10) as u8)
}

/// The in-memory lookup tables the guest kernels (and decNumber) use:
/// `dpd_to_bcd[d]` maps each of the 1024 declets to twelve BCD bits, and
/// `bcd_to_dpd[b]` maps each packed-BCD triple (index `0x000..=0x999`, with
/// gaps for invalid nibbles) to its declet.
#[derive(Debug, Clone)]
pub struct DecletTables {
    /// 1024-entry declet → packed-BCD table.
    pub dpd_to_bcd: Vec<u16>,
    /// 4096-entry packed-BCD → declet table (entries at invalid BCD indices
    /// are zero and must not be consulted).
    pub bcd_to_dpd: Vec<u16>,
}

/// Builds both lookup tables.
#[must_use]
pub fn declet_tables() -> DecletTables {
    let dpd_to_bcd = (0..1024u16).map(decode_declet_bcd).collect();
    let mut bcd_to_dpd = vec![0u16; 4096];
    for d2 in 0..10u16 {
        for d1 in 0..10u16 {
            for d0 in 0..10u16 {
                let idx = ((d2 << 8) | (d1 << 4) | d0) as usize;
                bcd_to_dpd[idx] = encode_declet(d2 as u8, d1 as u8, d0 as u8);
            }
        }
    }
    DecletTables { dpd_to_bcd, bcd_to_dpd }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_digits_pass_through() {
        // All digits <= 7: declet is just the three 3-bit values.
        assert_eq!(encode_declet(1, 2, 3), 0b001_010_0_011);
        assert_eq!(decode_declet(0b001_010_0_011), (1, 2, 3));
        assert_eq!(encode_declet(0, 0, 0), 0);
        assert_eq!(decode_declet(0), (0, 0, 0));
        assert_eq!(encode_declet(7, 7, 7), 0b111_111_0_111);
    }

    #[test]
    fn known_vectors() {
        // Vectors from Cowlishaw's DPD summary.
        assert_eq!(encode_declet(0, 0, 9), 0b000_000_1001);
        assert_eq!(encode_declet(0, 5, 5), 0b000_101_0101);
        assert_eq!(encode_declet(0, 7, 9), 0b000_111_1001);
        assert_eq!(encode_declet(0, 8, 0), 0b000_000_1010);
        assert_eq!(encode_declet(0, 9, 9), 0b000_101_1111);
        assert_eq!(encode_declet(5, 5, 5), 0b101_101_0101);
        assert_eq!(encode_declet(9, 9, 9), 0b001_111_1111);
    }

    #[test]
    fn roundtrip_all_thousand() {
        for v in 0..1000u16 {
            let d = encode_declet_bin(v);
            assert!(d < 1024);
            assert_eq!(decode_declet_bin(d), v, "declet value {v}");
        }
    }

    #[test]
    fn all_1024_patterns_decode_to_digits() {
        for bits in 0..1024u16 {
            let (d2, d1, d0) = decode_declet(bits);
            assert!(d2 <= 9 && d1 <= 9 && d0 <= 9, "pattern {bits:#012b}");
        }
    }

    #[test]
    fn noncanonical_patterns_alias_canonical() {
        // Patterns with v=1, wx=11, st=11 ignore p,q: all four settings of
        // (p,q) decode identically.
        for r in 0..2u16 {
            for u in 0..2u16 {
                for y in 0..2u16 {
                    let base = (r << 7) | (0b11 << 5) | (u << 4) | 0b1110 | y;
                    let canonical = decode_declet(base);
                    for pq in 1..4u16 {
                        let alias = base | (pq << 8);
                        assert_eq!(decode_declet(alias), canonical);
                    }
                }
            }
        }
    }

    #[test]
    fn exactly_24_noncanonical_patterns() {
        let canonical: std::collections::HashSet<u16> =
            (0..1000).map(encode_declet_bin).collect();
        assert_eq!(canonical.len(), 1000);
        let noncanonical = (0..1024u16).filter(|b| !canonical.contains(b)).count();
        assert_eq!(noncanonical, 24);
    }

    #[test]
    fn tables_match_functions() {
        let tables = declet_tables();
        for bits in 0..1024u16 {
            assert_eq!(tables.dpd_to_bcd[bits as usize], decode_declet_bcd(bits));
        }
        for v in 0..1000u16 {
            let bcd = (v / 100) << 8 | ((v / 10) % 10) << 4 | (v % 10);
            assert_eq!(tables.bcd_to_dpd[bcd as usize], encode_declet_bin(v));
        }
    }

    #[test]
    #[should_panic(expected = "digits must be 0..=9")]
    fn encode_rejects_large_digit() {
        let _ = encode_declet(10, 0, 0);
    }
}
