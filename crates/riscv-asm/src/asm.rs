//! The two-pass assembler core.

use std::collections::BTreeMap;
use std::fmt;

use riscv_isa::instr::{BranchOp, CsrOp, Instr, LoadOp, Op32Op, OpImm32Op, OpImmOp, OpOp, StoreOp};
use riscv_isa::rocc::{CustomOpcode, RoccInstruction};
use riscv_isa::{csr, Reg};

use crate::{DATA_BASE, TEXT_BASE};

/// Assembly error with the 1-based source line that caused it and, when
/// available, the offending source text itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// The trimmed source text of the offending line, when available.
    pub source: Option<String>,
}

impl AsmError {
    /// Builds an error without source context.
    #[must_use]
    pub fn new(line: usize, message: String) -> AsmError {
        AsmError {
            line,
            message,
            source: None,
        }
    }

    /// Attaches the offending line's text, looked up from the full source.
    #[must_use]
    pub fn with_source_context(mut self, source: &str) -> AsmError {
        self.source = source
            .lines()
            .nth(self.line.saturating_sub(1))
            .map(|text| text.trim().to_string())
            .filter(|text| !text.is_empty());
        self
    }

    /// A `file:line`-style location string (the assembler has no file
    /// names, so the "file" is the conventional `<asm>`).
    #[must_use]
    pub fn location(&self) -> String {
        format!("<asm>:{}", self.line)
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if let Some(source) = &self.source {
            write!(f, "\n  {} | {}", self.line, source)?;
        }
        Ok(())
    }
}

impl std::error::Error for AsmError {}

/// Section base addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsmOptions {
    /// Where `.text` starts.
    pub text_base: u64,
    /// Where `.data` starts.
    pub data_base: u64,
}

impl Default for AsmOptions {
    fn default() -> Self {
        AsmOptions {
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
        }
    }
}

/// A contiguous loadable region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Load address of the first byte.
    pub base: u64,
    /// The bytes.
    pub data: Vec<u8>,
}

/// An assembled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Entry point: the `start`, `_start` or `main` symbol, or the text base.
    pub entry: u64,
    /// The `.text` segment.
    pub text: Segment,
    /// The `.data` segment.
    pub data: Segment,
    /// All defined symbols.
    pub symbols: BTreeMap<String, u64>,
    /// 1-based source line per text word: `line_map[i]` is the line that
    /// produced the word at `text.base + 4*i` (0 for alignment padding).
    pub line_map: Vec<u32>,
}

impl Program {
    /// The 1-based source line that produced the instruction at `pc`, if
    /// `pc` lies inside the text segment and isn't alignment padding.
    #[must_use]
    pub fn source_line(&self, pc: u64) -> Option<u32> {
        let offset = pc.checked_sub(self.text.base)?;
        let line = *self.line_map.get((offset / 4) as usize)?;
        (line != 0).then_some(line)
    }

    /// The nearest symbol at or below `pc` in the text segment, with the
    /// byte offset from it: the conventional `name+0x10` anchor.
    #[must_use]
    pub fn nearest_symbol(&self, pc: u64) -> Option<(&str, u64)> {
        let text_end = self.text.base + self.text.data.len() as u64;
        if pc < self.text.base || pc >= text_end {
            return None;
        }
        self.symbols
            .iter()
            .filter(|&(_, &addr)| addr >= self.text.base && addr < text_end && addr <= pc)
            .max_by_key(|&(_, &addr)| addr)
            .map(|(name, &addr)| (name.as_str(), pc - addr))
    }

    /// A human-readable location for `pc`: symbol+offset and source line
    /// when known, always including the raw pc.
    #[must_use]
    pub fn location(&self, pc: u64) -> String {
        let mut out = format!("{pc:#x}");
        if let Some((name, offset)) = self.nearest_symbol(pc) {
            if offset == 0 {
                out.push_str(&format!(" <{name}>"));
            } else {
                out.push_str(&format!(" <{name}+{offset:#x}>"));
            }
        }
        if let Some(line) = self.source_line(pc) {
            out.push_str(&format!(" (line {line})"));
        }
        out
    }
    /// Both segments, text first.
    #[must_use]
    pub fn segments(&self) -> [&Segment; 2] {
        [&self.text, &self.data]
    }

    /// Looks up a symbol's address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Total size in bytes across segments.
    #[must_use]
    pub fn size(&self) -> usize {
        self.text.data.len() + self.data.data.len()
    }

    /// Disassembles the text segment: `(address, word, text)` per
    /// instruction, with symbol names where an address carries a label.
    /// Undecodable words (there should be none in assembled output) are
    /// rendered as `.word 0x...`.
    #[must_use]
    pub fn disassemble(&self) -> Vec<(u64, u32, String)> {
        use std::collections::BTreeMap;
        let labels: BTreeMap<u64, Vec<&str>> = {
            let mut m: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
            for (name, &addr) in &self.symbols {
                m.entry(addr).or_default().push(name);
            }
            m
        };
        let mut out = Vec::with_capacity(self.text.data.len() / 4);
        for (i, chunk) in self.text.data.chunks_exact(4).enumerate() {
            let addr = self.text.base + 4 * i as u64;
            let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            let mut line = String::new();
            if let Some(names) = labels.get(&addr) {
                for name in names {
                    line.push_str(&format!("{name}: "));
                }
            }
            match riscv_isa::Instr::decode(word) {
                Ok(instr) => line.push_str(&instr.to_string()),
                Err(_) => line.push_str(&format!(".word {word:#010x}")),
            }
            out.push((addr, word, line));
        }
        out
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(Reg),
    Imm(i64),
    Sym(String),
    Mem { offset: i64, base: Reg },
}

impl Operand {
    fn describe(&self) -> &'static str {
        match self {
            Operand::Reg(_) => "register",
            Operand::Imm(_) => "immediate",
            Operand::Sym(_) => "symbol",
            Operand::Mem { .. } => "memory operand",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Debug)]
struct PendingInstr {
    line: usize,
    mnemonic: String,
    operands: Vec<Operand>,
    addr: u64,
    size: u64,
}

#[derive(Debug)]
enum DataItem {
    Bytes(Vec<u8>),
    SymValue { size: u8, sym: String, line: usize },
}

/// Assembles `source` with default section bases.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (syntax, unknown mnemonic,
/// undefined symbol, out-of-range immediate, …).
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_with(source, &AsmOptions::default())
}

/// Assembles `source` with explicit section bases.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_with(source: &str, options: &AsmOptions) -> Result<Program, AsmError> {
    Assembler::new(options)
        .run(source)
        .map_err(|e| e.with_source_context(source))
}

struct Assembler {
    options: AsmOptions,
    symbols: BTreeMap<String, u64>,
    text_len: u64,
    data_len: u64,
    section: Section,
    instrs: Vec<PendingInstr>,
    data_items: Vec<(u64, DataItem)>,
}

impl Assembler {
    fn new(options: &AsmOptions) -> Self {
        Assembler {
            options: *options,
            symbols: BTreeMap::new(),
            text_len: 0,
            data_len: 0,
            section: Section::Text,
            instrs: Vec::new(),
            data_items: Vec::new(),
        }
    }

    fn here(&self) -> u64 {
        match self.section {
            Section::Text => self.options.text_base + self.text_len,
            Section::Data => self.options.data_base + self.data_len,
        }
    }

    fn advance(&mut self, bytes: u64) {
        match self.section {
            Section::Text => self.text_len += bytes,
            Section::Data => self.data_len += bytes,
        }
    }

    fn run(mut self, source: &str) -> Result<Program, AsmError> {
        // Pass 1: parse, size, place, collect symbols.
        for (idx, raw_line) in source.lines().enumerate() {
            let line_no = idx + 1;
            let err = |message: String| AsmError::new(line_no, message);
            let mut rest = strip_comment(raw_line).trim();
            // Peel leading labels.
            while let Some(colon) = find_label_colon(rest) {
                let name = rest[..colon].trim();
                if !is_symbol(name) {
                    return Err(err(format!("invalid label name {name:?}")));
                }
                if self.symbols.contains_key(name) {
                    return Err(err(format!("duplicate symbol {name:?}")));
                }
                self.symbols.insert(name.to_string(), self.here());
                rest = rest[colon + 1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            let (mnemonic, operand_str) = split_mnemonic(rest);
            let mnemonic = mnemonic.to_ascii_lowercase();
            if let Some(directive) = mnemonic.strip_prefix('.') {
                self.directive(directive, operand_str, line_no)?;
            } else {
                if self.section != Section::Text {
                    return Err(err("instruction outside .text".into()));
                }
                let operands = parse_operands(operand_str).map_err(&err)?;
                let size = instr_size(&mnemonic, &operands).map_err(&err)?;
                self.instrs.push(PendingInstr {
                    line: line_no,
                    mnemonic,
                    operands,
                    addr: self.here(),
                    size,
                });
                self.advance(size);
            }
        }

        // Pass 2: expand and encode.
        let mut text = vec![0u8; self.text_len as usize];
        let mut line_map = vec![0u32; (self.text_len / 4) as usize];
        for pending in &self.instrs {
            let instrs = expand(pending, &self.symbols)
                .map_err(|message| AsmError::new(pending.line, message))?;
            debug_assert_eq!(instrs.len() as u64 * 4, pending.size, "{}", pending.mnemonic);
            for (i, instr) in instrs.iter().enumerate() {
                let word = instr
                    .encode()
                    .map_err(|e| AsmError::new(pending.line, e.to_string()))?;
                let off = (pending.addr - self.options.text_base) as usize + 4 * i;
                text[off..off + 4].copy_from_slice(&word.to_le_bytes());
                line_map[off / 4] = pending.line as u32;
            }
        }
        let mut data = vec![0u8; self.data_len as usize];
        for (addr, item) in &self.data_items {
            let off = (*addr - self.options.data_base) as usize;
            match item {
                DataItem::Bytes(bytes) => data[off..off + bytes.len()].copy_from_slice(bytes),
                DataItem::SymValue { size, sym, line } => {
                    let value = *self.symbols.get(sym).ok_or_else(|| {
                        AsmError::new(*line, format!("undefined symbol {sym:?}"))
                    })?;
                    let bytes = value.to_le_bytes();
                    data[off..off + *size as usize].copy_from_slice(&bytes[..*size as usize]);
                }
            }
        }

        let entry = ["start", "_start", "main"]
            .iter()
            .find_map(|name| self.symbols.get(*name).copied())
            .unwrap_or(self.options.text_base);
        Ok(Program {
            entry,
            text: Segment {
                base: self.options.text_base,
                data: text,
            },
            data: Segment {
                base: self.options.data_base,
                data,
            },
            symbols: self.symbols,
            line_map,
        })
    }

    fn directive(&mut self, name: &str, args: &str, line: usize) -> Result<(), AsmError> {
        let err = |message: String| AsmError::new(line, message);
        match name {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "globl" | "global" | "type" | "size" | "section" => {}
            "align" | "p2align" => {
                let n: u32 = args
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("bad .align argument {args:?}")))?;
                if n > 12 {
                    return Err(err(format!(".align {n} too large")));
                }
                let alignment = 1u64 << n;
                let pad = (alignment - (self.here() % alignment)) % alignment;
                if pad > 0 {
                    if self.section == Section::Text {
                        if !pad.is_multiple_of(4) {
                            return Err(err(".align in .text must be word-aligned".into()));
                        }
                        // Pad with NOPs so the gap stays executable.
                        for _ in 0..pad / 4 {
                            self.instrs.push(PendingInstr {
                                line,
                                mnemonic: "nop".into(),
                                operands: vec![],
                                addr: self.here(),
                                size: 4,
                            });
                            self.advance(4);
                        }
                    } else {
                        self.data_items
                            .push((self.here(), DataItem::Bytes(vec![0; pad as usize])));
                        self.advance(pad);
                    }
                }
            }
            "byte" | "half" | "word" | "dword" | "quad" => {
                let size: u8 = match name {
                    "byte" => 1,
                    "half" => 2,
                    "word" => 4,
                    _ => 8,
                };
                if self.section != Section::Data {
                    return Err(err(format!(".{name} outside .data")));
                }
                for piece in split_top_level(args) {
                    let piece = piece.trim();
                    if piece.is_empty() {
                        return Err(err("empty data value".into()));
                    }
                    if let Ok(v) = parse_int(piece) {
                        let min = -(1i128 << (8 * size - 1));
                        let max = (1i128 << (8 * size)) - 1;
                        if (v as i128) < min || (v as i128) > max {
                            return Err(err(format!("value {v} does not fit .{name}")));
                        }
                        let bytes = (v as u64).to_le_bytes()[..size as usize].to_vec();
                        self.data_items.push((self.here(), DataItem::Bytes(bytes)));
                    } else if is_symbol(piece) {
                        if size < 4 {
                            return Err(err("symbol values need .word or .dword".into()));
                        }
                        self.data_items.push((
                            self.here(),
                            DataItem::SymValue {
                                size,
                                sym: piece.to_string(),
                                line,
                            },
                        ));
                    } else {
                        return Err(err(format!("bad data value {piece:?}")));
                    }
                    self.advance(u64::from(size));
                }
            }
            "ascii" | "asciz" | "string" => {
                if self.section != Section::Data {
                    return Err(err(format!(".{name} outside .data")));
                }
                let mut bytes = parse_string(args.trim()).map_err(&err)?;
                if name != "ascii" {
                    bytes.push(0);
                }
                let len = bytes.len() as u64;
                self.data_items.push((self.here(), DataItem::Bytes(bytes)));
                self.advance(len);
            }
            "space" | "zero" | "skip" => {
                let n: u64 = args
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("bad .{name} argument {args:?}")))?;
                if self.section == Section::Data {
                    self.data_items
                        .push((self.here(), DataItem::Bytes(vec![0; n as usize])));
                    self.advance(n);
                } else {
                    return Err(err(format!(".{name} outside .data")));
                }
            }
            "equ" | "set" => {
                let parts: Vec<&str> = split_top_level(args).collect();
                if parts.len() != 2 {
                    return Err(err(".equ needs `name, value`".into()));
                }
                let sym = parts[0].trim();
                if !is_symbol(sym) {
                    return Err(err(format!("invalid .equ name {sym:?}")));
                }
                let value =
                    parse_int(parts[1].trim()).map_err(|_| err("bad .equ value".into()))?;
                self.symbols.insert(sym.to_string(), value as u64);
            }
            other => return Err(err(format!("unknown directive .{other}"))),
        }
        Ok(())
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if c == b'\\' {
                i += 1;
            } else if c == b'"' {
                in_str = false;
            }
        } else if c == b'"' {
            in_str = true;
        } else if c == b'#' || c == b';' || (c == b'/' && bytes.get(i + 1) == Some(&b'/')) {
            return &line[..i];
        }
        i += 1;
    }
    line
}

fn find_label_colon(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    // A colon inside a string or after whitespace-containing junk is not a
    // label; labels are a leading identifier.
    let candidate = s[..colon].trim();
    if !candidate.is_empty() && is_symbol(candidate) {
        Some(colon)
    } else {
        None
    }
}

fn split_mnemonic(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    }
}

fn is_symbol(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

fn split_top_level(s: &str) -> impl Iterator<Item = &str> {
    let mut pieces = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut start = 0;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'(' if !in_str => depth += 1,
            b')' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                pieces.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < s.len() || !pieces.is_empty() {
        pieces.push(&s[start..]);
    } else if !s.trim().is_empty() {
        pieces.push(s);
    }
    pieces.into_iter().filter(|p| !p.trim().is_empty())
}

fn parse_int(s: &str) -> Result<i64, String> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let value: i64 = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X"))
    {
        u64::from_str_radix(&hex.replace('_', ""), 16).map_err(|e| e.to_string())? as i64
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u64::from_str_radix(&bin.replace('_', ""), 2).map_err(|e| e.to_string())? as i64
    } else if body.len() == 3 && body.starts_with('\'') && body.ends_with('\'') {
        i64::from(body.as_bytes()[1])
    } else {
        // Parse through u64 so the full 64-bit range is accepted
        // (e.g. `-9223372036854775808` and `18446744073709551615`).
        body.replace('_', "")
            .parse::<u64>()
            .map_err(|e| e.to_string())? as i64
    };
    Ok(if neg { value.wrapping_neg() } else { value })
}

fn parse_string(s: &str) -> Result<Vec<u8>, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted string, got {s:?}"))?;
    let mut out = Vec::with_capacity(inner.len());
    let mut chars = inner.bytes();
    while let Some(c) = chars.next() {
        if c == b'\\' {
            match chars.next() {
                Some(b'n') => out.push(b'\n'),
                Some(b't') => out.push(b'\t'),
                Some(b'0') => out.push(0),
                Some(b'\\') => out.push(b'\\'),
                Some(b'"') => out.push(b'"'),
                other => return Err(format!("bad escape {other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_operands(s: &str) -> Result<Vec<Operand>, String> {
    split_top_level(s).map(|p| parse_operand(p.trim())).collect()
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    if s.is_empty() {
        return Err("empty operand".into());
    }
    // offset(base) form
    if let Some(open) = s.find('(') {
        if s.ends_with(')') {
            let offset_str = s[..open].trim();
            let base_str = s[open + 1..s.len() - 1].trim();
            let base: Reg = base_str
                .parse()
                .map_err(|_| format!("bad base register {base_str:?}"))?;
            let offset = if offset_str.is_empty() {
                0
            } else {
                parse_int(offset_str)?
            };
            return Ok(Operand::Mem { offset, base });
        }
    }
    if let Ok(reg) = s.parse::<Reg>() {
        return Ok(Operand::Reg(reg));
    }
    if let Ok(v) = parse_int(s) {
        return Ok(Operand::Imm(v));
    }
    if is_symbol(s) {
        return Ok(Operand::Sym(s.to_string()));
    }
    Err(format!("cannot parse operand {s:?}"))
}

/// Materialization sequence for a 64-bit immediate (the `li` expansion).
pub(crate) fn li_sequence(rd: Reg, imm: i64) -> Vec<Instr> {
    if (-2048..=2047).contains(&imm) {
        vec![Instr::OpImm {
            op: OpImmOp::Addi,
            rd,
            rs1: Reg::ZERO,
            imm: imm as i32,
        }]
    } else if i64::from(imm as i32) == imm {
        let hi_pattern = ((imm.wrapping_add(0x800) >> 12) & 0xFFFFF) as u32;
        let imm20 = ((hi_pattern << 12) as i32) >> 12;
        let lo = ((imm << 52) >> 52) as i32;
        let mut seq = vec![Instr::Lui { rd, imm20 }];
        if lo != 0 {
            seq.push(Instr::OpImm32 {
                op: OpImm32Op::Addiw,
                rd,
                rs1: rd,
                imm: lo,
            });
        }
        seq
    } else {
        let lo12 = (imm << 52) >> 52;
        let rest = imm.wrapping_sub(lo12);
        let shift = rest.trailing_zeros();
        let mut seq = li_sequence(rd, rest >> shift);
        seq.push(Instr::OpImm {
            op: OpImmOp::Slli,
            rd,
            rs1: rd,
            imm: shift as i32,
        });
        if lo12 != 0 {
            seq.push(Instr::OpImm {
                op: OpImmOp::Addi,
                rd,
                rs1: rd,
                imm: lo12 as i32,
            });
        }
        seq
    }
}

fn instr_size(mnemonic: &str, operands: &[Operand]) -> Result<u64, String> {
    Ok(match mnemonic {
        "li" => {
            let (_, imm) = li_args(operands)?;
            li_sequence(Reg::ZERO, imm).len() as u64 * 4
        }
        "la" | "call" | "tail" => 8,
        _ => 4,
    })
}

fn li_args(operands: &[Operand]) -> Result<(Reg, i64), String> {
    match operands {
        [Operand::Reg(rd), Operand::Imm(imm)] => Ok((*rd, *imm)),
        [Operand::Reg(_), Operand::Sym(s)] => {
            Err(format!("li needs a literal immediate; use `la` for symbol {s:?}"))
        }
        _ => Err("li needs `rd, immediate`".into()),
    }
}

struct Ctx<'a> {
    pending: &'a PendingInstr,
    symbols: &'a BTreeMap<String, u64>,
}

impl Ctx<'_> {
    fn reg(&self, i: usize) -> Result<Reg, String> {
        match self.operand(i)? {
            Operand::Reg(r) => Ok(*r),
            other => Err(format!(
                "operand {} of {} must be a register, got {}",
                i + 1,
                self.pending.mnemonic,
                other.describe()
            )),
        }
    }

    fn imm(&self, i: usize) -> Result<i64, String> {
        match self.operand(i)? {
            Operand::Imm(v) => Ok(*v),
            Operand::Sym(s) => self
                .symbols
                .get(s)
                .map(|&v| v as i64)
                .ok_or_else(|| format!("undefined symbol {s:?}")),
            other => Err(format!(
                "operand {} of {} must be an immediate, got {}",
                i + 1,
                self.pending.mnemonic,
                other.describe()
            )),
        }
    }

    fn imm32(&self, i: usize) -> Result<i32, String> {
        let v = self.imm(i)?;
        i32::try_from(v).map_err(|_| format!("immediate {v} out of 32-bit range"))
    }

    fn mem(&self, i: usize) -> Result<(i64, Reg), String> {
        match self.operand(i)? {
            Operand::Mem { offset, base } => Ok((*offset, *base)),
            // Accept a bare register as 0(reg).
            Operand::Reg(r) => Ok((0, *r)),
            other => Err(format!(
                "operand {} of {} must be offset(base), got {}",
                i + 1,
                self.pending.mnemonic,
                other.describe()
            )),
        }
    }

    /// Branch/jump target: a symbol (absolute address) or immediate
    /// (pc-relative byte offset); returns the pc-relative offset.
    fn target(&self, i: usize) -> Result<i32, String> {
        let offset = match self.operand(i)? {
            Operand::Sym(s) => {
                let addr = self
                    .symbols
                    .get(s)
                    .copied()
                    .ok_or_else(|| format!("undefined symbol {s:?}"))?;
                addr.wrapping_sub(self.pending.addr) as i64
            }
            Operand::Imm(v) => *v,
            other => {
                return Err(format!(
                    "operand {} of {} must be a label or offset, got {}",
                    i + 1,
                    self.pending.mnemonic,
                    other.describe()
                ))
            }
        };
        i32::try_from(offset).map_err(|_| format!("branch target {offset} out of range"))
    }

    fn operand(&self, i: usize) -> Result<&Operand, String> {
        self.pending.operands.get(i).ok_or_else(|| {
            format!(
                "{} needs at least {} operands",
                self.pending.mnemonic,
                i + 1
            )
        })
    }

    fn expect_len(&self, n: usize) -> Result<(), String> {
        if self.pending.operands.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{} expects {} operands, got {}",
                self.pending.mnemonic,
                n,
                self.pending.operands.len()
            ))
        }
    }

    /// `auipc`-style split of a pc-relative delta into (hi20, lo12).
    fn pcrel(&self, i: usize) -> Result<(i32, i32), String> {
        let delta = i64::from(self.target(i)?);
        let hi_pattern = ((delta.wrapping_add(0x800) >> 12) & 0xFFFFF) as u32;
        let hi = ((hi_pattern << 12) as i32) >> 12;
        let lo = ((delta << 52) >> 52) as i32;
        Ok((hi, lo))
    }
}

fn csr_number(ctx: &Ctx, i: usize) -> Result<u16, String> {
    match ctx.operand(i)? {
        Operand::Imm(v) => u16::try_from(*v).map_err(|_| format!("csr number {v} out of range")),
        Operand::Sym(name) => match name.as_str() {
            "cycle" => Ok(csr::CYCLE),
            "time" => Ok(csr::TIME),
            "instret" => Ok(csr::INSTRET),
            "mhartid" => Ok(csr::MHARTID),
            other => Err(format!("unknown csr name {other:?}")),
        },
        other => Err(format!("csr operand must be a number or name, got {}", other.describe())),
    }
}

fn op_for(mnemonic: &str) -> Option<OpOp> {
    Some(match mnemonic {
        "add" => OpOp::Add,
        "sub" => OpOp::Sub,
        "sll" => OpOp::Sll,
        "slt" => OpOp::Slt,
        "sltu" => OpOp::Sltu,
        "xor" => OpOp::Xor,
        "srl" => OpOp::Srl,
        "sra" => OpOp::Sra,
        "or" => OpOp::Or,
        "and" => OpOp::And,
        "mul" => OpOp::Mul,
        "mulh" => OpOp::Mulh,
        "mulhsu" => OpOp::Mulhsu,
        "mulhu" => OpOp::Mulhu,
        "div" => OpOp::Div,
        "divu" => OpOp::Divu,
        "rem" => OpOp::Rem,
        "remu" => OpOp::Remu,
        _ => return None,
    })
}

fn op32_for(mnemonic: &str) -> Option<Op32Op> {
    Some(match mnemonic {
        "addw" => Op32Op::Addw,
        "subw" => Op32Op::Subw,
        "sllw" => Op32Op::Sllw,
        "srlw" => Op32Op::Srlw,
        "sraw" => Op32Op::Sraw,
        "mulw" => Op32Op::Mulw,
        "divw" => Op32Op::Divw,
        "divuw" => Op32Op::Divuw,
        "remw" => Op32Op::Remw,
        "remuw" => Op32Op::Remuw,
        _ => return None,
    })
}

fn opimm_for(mnemonic: &str) -> Option<OpImmOp> {
    Some(match mnemonic {
        "addi" => OpImmOp::Addi,
        "slti" => OpImmOp::Slti,
        "sltiu" => OpImmOp::Sltiu,
        "xori" => OpImmOp::Xori,
        "ori" => OpImmOp::Ori,
        "andi" => OpImmOp::Andi,
        "slli" => OpImmOp::Slli,
        "srli" => OpImmOp::Srli,
        "srai" => OpImmOp::Srai,
        _ => return None,
    })
}

fn opimm32_for(mnemonic: &str) -> Option<OpImm32Op> {
    Some(match mnemonic {
        "addiw" => OpImm32Op::Addiw,
        "slliw" => OpImm32Op::Slliw,
        "srliw" => OpImm32Op::Srliw,
        "sraiw" => OpImm32Op::Sraiw,
        _ => return None,
    })
}

fn load_for(mnemonic: &str) -> Option<LoadOp> {
    Some(match mnemonic {
        "lb" => LoadOp::Lb,
        "lh" => LoadOp::Lh,
        "lw" => LoadOp::Lw,
        "ld" => LoadOp::Ld,
        "lbu" => LoadOp::Lbu,
        "lhu" => LoadOp::Lhu,
        "lwu" => LoadOp::Lwu,
        _ => return None,
    })
}

fn store_for(mnemonic: &str) -> Option<StoreOp> {
    Some(match mnemonic {
        "sb" => StoreOp::Sb,
        "sh" => StoreOp::Sh,
        "sw" => StoreOp::Sw,
        "sd" => StoreOp::Sd,
        _ => return None,
    })
}

fn branch_for(mnemonic: &str) -> Option<BranchOp> {
    Some(match mnemonic {
        "beq" => BranchOp::Beq,
        "bne" => BranchOp::Bne,
        "blt" => BranchOp::Blt,
        "bge" => BranchOp::Bge,
        "bltu" => BranchOp::Bltu,
        "bgeu" => BranchOp::Bgeu,
        _ => return None,
    })
}

fn custom_for(mnemonic: &str) -> Option<CustomOpcode> {
    Some(match mnemonic {
        "custom0" => CustomOpcode::Custom0,
        "custom1" => CustomOpcode::Custom1,
        "custom2" => CustomOpcode::Custom2,
        "custom3" => CustomOpcode::Custom3,
        _ => return None,
    })
}

fn expand(pending: &PendingInstr, symbols: &BTreeMap<String, u64>) -> Result<Vec<Instr>, String> {
    let ctx = Ctx { pending, symbols };
    let m = pending.mnemonic.as_str();

    if let Some(op) = op_for(m) {
        ctx.expect_len(3)?;
        return Ok(vec![Instr::Op {
            op,
            rd: ctx.reg(0)?,
            rs1: ctx.reg(1)?,
            rs2: ctx.reg(2)?,
        }]);
    }
    if let Some(op) = op32_for(m) {
        ctx.expect_len(3)?;
        return Ok(vec![Instr::Op32 {
            op,
            rd: ctx.reg(0)?,
            rs1: ctx.reg(1)?,
            rs2: ctx.reg(2)?,
        }]);
    }
    if let Some(op) = opimm_for(m) {
        ctx.expect_len(3)?;
        return Ok(vec![Instr::OpImm {
            op,
            rd: ctx.reg(0)?,
            rs1: ctx.reg(1)?,
            imm: ctx.imm32(2)?,
        }]);
    }
    if let Some(op) = opimm32_for(m) {
        ctx.expect_len(3)?;
        return Ok(vec![Instr::OpImm32 {
            op,
            rd: ctx.reg(0)?,
            rs1: ctx.reg(1)?,
            imm: ctx.imm32(2)?,
        }]);
    }
    if let Some(op) = load_for(m) {
        ctx.expect_len(2)?;
        let (offset, base) = ctx.mem(1)?;
        return Ok(vec![Instr::Load {
            op,
            rd: ctx.reg(0)?,
            rs1: base,
            offset: i32::try_from(offset).map_err(|_| "load offset out of range".to_string())?,
        }]);
    }
    if let Some(op) = store_for(m) {
        ctx.expect_len(2)?;
        let (offset, base) = ctx.mem(1)?;
        return Ok(vec![Instr::Store {
            op,
            rs2: ctx.reg(0)?,
            rs1: base,
            offset: i32::try_from(offset).map_err(|_| "store offset out of range".to_string())?,
        }]);
    }
    if let Some(op) = branch_for(m) {
        ctx.expect_len(3)?;
        return Ok(vec![Instr::Branch {
            op,
            rs1: ctx.reg(0)?,
            rs2: ctx.reg(1)?,
            offset: ctx.target(2)?,
        }]);
    }
    if let Some(opcode) = custom_for(m) {
        ctx.expect_len(7)?;
        return Ok(vec![Instr::Custom(RoccInstruction {
            opcode,
            funct7: u8::try_from(ctx.imm(0)?).map_err(|_| "funct7 out of range".to_string())?,
            rd: ctx.reg(1)?,
            rs1: ctx.reg(2)?,
            rs2: ctx.reg(3)?,
            xd: ctx.imm(4)? != 0,
            xs1: ctx.imm(5)? != 0,
            xs2: ctx.imm(6)? != 0,
        })]);
    }

    Ok(match m {
        "lui" => {
            ctx.expect_len(2)?;
            vec![Instr::Lui {
                rd: ctx.reg(0)?,
                imm20: ctx.imm32(1)?,
            }]
        }
        "auipc" => {
            ctx.expect_len(2)?;
            vec![Instr::Auipc {
                rd: ctx.reg(0)?,
                imm20: ctx.imm32(1)?,
            }]
        }
        "jal" => match pending.operands.len() {
            1 => vec![Instr::Jal {
                rd: Reg::RA,
                offset: ctx.target(0)?,
            }],
            2 => vec![Instr::Jal {
                rd: ctx.reg(0)?,
                offset: ctx.target(1)?,
            }],
            n => return Err(format!("jal expects 1 or 2 operands, got {n}")),
        },
        "jalr" => match pending.operands.len() {
            1 => {
                let (offset, base) = ctx.mem(0)?;
                vec![Instr::Jalr {
                    rd: Reg::RA,
                    rs1: base,
                    offset: offset as i32,
                }]
            }
            2 => {
                let (offset, base) = ctx.mem(1)?;
                vec![Instr::Jalr {
                    rd: ctx.reg(0)?,
                    rs1: base,
                    offset: offset as i32,
                }]
            }
            3 => vec![Instr::Jalr {
                rd: ctx.reg(0)?,
                rs1: ctx.reg(1)?,
                offset: ctx.imm32(2)?,
            }],
            n => return Err(format!("jalr expects 1-3 operands, got {n}")),
        },
        "j" => {
            ctx.expect_len(1)?;
            vec![Instr::Jal {
                rd: Reg::ZERO,
                offset: ctx.target(0)?,
            }]
        }
        "jr" => {
            ctx.expect_len(1)?;
            vec![Instr::Jalr {
                rd: Reg::ZERO,
                rs1: ctx.reg(0)?,
                offset: 0,
            }]
        }
        "ret" => {
            ctx.expect_len(0)?;
            vec![Instr::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            }]
        }
        "call" => {
            ctx.expect_len(1)?;
            let (hi, lo) = ctx.pcrel(0)?;
            vec![
                Instr::Auipc {
                    rd: Reg::RA,
                    imm20: hi,
                },
                Instr::Jalr {
                    rd: Reg::RA,
                    rs1: Reg::RA,
                    offset: lo,
                },
            ]
        }
        "tail" => {
            ctx.expect_len(1)?;
            let (hi, lo) = ctx.pcrel(0)?;
            vec![
                Instr::Auipc {
                    rd: Reg::T1,
                    imm20: hi,
                },
                Instr::Jalr {
                    rd: Reg::ZERO,
                    rs1: Reg::T1,
                    offset: lo,
                },
            ]
        }
        "la" => {
            ctx.expect_len(2)?;
            let rd = ctx.reg(0)?;
            let (hi, lo) = ctx.pcrel(1)?;
            vec![
                Instr::Auipc { rd, imm20: hi },
                Instr::OpImm {
                    op: OpImmOp::Addi,
                    rd,
                    rs1: rd,
                    imm: lo,
                },
            ]
        }
        "li" => {
            let (rd, imm) = li_args(&pending.operands)?;
            li_sequence(rd, imm)
        }
        "nop" => vec![Instr::NOP],
        "mv" => {
            ctx.expect_len(2)?;
            vec![Instr::OpImm {
                op: OpImmOp::Addi,
                rd: ctx.reg(0)?,
                rs1: ctx.reg(1)?,
                imm: 0,
            }]
        }
        "not" => {
            ctx.expect_len(2)?;
            vec![Instr::OpImm {
                op: OpImmOp::Xori,
                rd: ctx.reg(0)?,
                rs1: ctx.reg(1)?,
                imm: -1,
            }]
        }
        "neg" => {
            ctx.expect_len(2)?;
            vec![Instr::Op {
                op: OpOp::Sub,
                rd: ctx.reg(0)?,
                rs1: Reg::ZERO,
                rs2: ctx.reg(1)?,
            }]
        }
        "negw" => {
            ctx.expect_len(2)?;
            vec![Instr::Op32 {
                op: Op32Op::Subw,
                rd: ctx.reg(0)?,
                rs1: Reg::ZERO,
                rs2: ctx.reg(1)?,
            }]
        }
        "sext.w" => {
            ctx.expect_len(2)?;
            vec![Instr::OpImm32 {
                op: OpImm32Op::Addiw,
                rd: ctx.reg(0)?,
                rs1: ctx.reg(1)?,
                imm: 0,
            }]
        }
        "seqz" => {
            ctx.expect_len(2)?;
            vec![Instr::OpImm {
                op: OpImmOp::Sltiu,
                rd: ctx.reg(0)?,
                rs1: ctx.reg(1)?,
                imm: 1,
            }]
        }
        "snez" => {
            ctx.expect_len(2)?;
            vec![Instr::Op {
                op: OpOp::Sltu,
                rd: ctx.reg(0)?,
                rs1: Reg::ZERO,
                rs2: ctx.reg(1)?,
            }]
        }
        "sltz" => {
            ctx.expect_len(2)?;
            vec![Instr::Op {
                op: OpOp::Slt,
                rd: ctx.reg(0)?,
                rs1: ctx.reg(1)?,
                rs2: Reg::ZERO,
            }]
        }
        "sgtz" => {
            ctx.expect_len(2)?;
            vec![Instr::Op {
                op: OpOp::Slt,
                rd: ctx.reg(0)?,
                rs1: Reg::ZERO,
                rs2: ctx.reg(1)?,
            }]
        }
        "beqz" | "bnez" | "blez" | "bgez" | "bltz" | "bgtz" => {
            ctx.expect_len(2)?;
            let rs = ctx.reg(0)?;
            let offset = ctx.target(1)?;
            let (op, rs1, rs2) = match m {
                "beqz" => (BranchOp::Beq, rs, Reg::ZERO),
                "bnez" => (BranchOp::Bne, rs, Reg::ZERO),
                "blez" => (BranchOp::Bge, Reg::ZERO, rs),
                "bgez" => (BranchOp::Bge, rs, Reg::ZERO),
                "bltz" => (BranchOp::Blt, rs, Reg::ZERO),
                _ => (BranchOp::Blt, Reg::ZERO, rs),
            };
            vec![Instr::Branch { op, rs1, rs2, offset }]
        }
        "bgt" | "ble" | "bgtu" | "bleu" => {
            ctx.expect_len(3)?;
            let a = ctx.reg(0)?;
            let b = ctx.reg(1)?;
            let offset = ctx.target(2)?;
            let (op, rs1, rs2) = match m {
                "bgt" => (BranchOp::Blt, b, a),
                "ble" => (BranchOp::Bge, b, a),
                "bgtu" => (BranchOp::Bltu, b, a),
                _ => (BranchOp::Bgeu, b, a),
            };
            vec![Instr::Branch { op, rs1, rs2, offset }]
        }
        "csrrw" | "csrrs" | "csrrc" => {
            ctx.expect_len(3)?;
            let op = match m {
                "csrrw" => CsrOp::Csrrw,
                "csrrs" => CsrOp::Csrrs,
                _ => CsrOp::Csrrc,
            };
            vec![Instr::Csr {
                op,
                rd: ctx.reg(0)?,
                csr: csr_number(&ctx, 1)?,
                rs1: ctx.reg(2)?,
            }]
        }
        "csrrwi" | "csrrsi" | "csrrci" => {
            ctx.expect_len(3)?;
            let op = match m {
                "csrrwi" => CsrOp::Csrrw,
                "csrrsi" => CsrOp::Csrrs,
                _ => CsrOp::Csrrc,
            };
            let imm = ctx.imm(2)?;
            vec![Instr::CsrImm {
                op,
                rd: ctx.reg(0)?,
                csr: csr_number(&ctx, 1)?,
                imm: u8::try_from(imm).map_err(|_| "csr immediate out of range".to_string())?,
            }]
        }
        "rdcycle" => {
            ctx.expect_len(1)?;
            vec![Instr::Csr {
                op: CsrOp::Csrrs,
                rd: ctx.reg(0)?,
                csr: csr::CYCLE,
                rs1: Reg::ZERO,
            }]
        }
        "rdinstret" => {
            ctx.expect_len(1)?;
            vec![Instr::Csr {
                op: CsrOp::Csrrs,
                rd: ctx.reg(0)?,
                csr: csr::INSTRET,
                rs1: Reg::ZERO,
            }]
        }
        "ecall" => {
            ctx.expect_len(0)?;
            vec![Instr::Ecall]
        }
        "ebreak" => {
            ctx.expect_len(0)?;
            vec![Instr::Ebreak]
        }
        "mret" => {
            ctx.expect_len(0)?;
            vec![Instr::Mret]
        }
        "fence" => vec![Instr::Fence],
        other => return Err(format!("unknown mnemonic {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn li_sequences_are_correct_shape() {
        assert_eq!(li_sequence(Reg::A0, 0).len(), 1);
        assert_eq!(li_sequence(Reg::A0, 2047).len(), 1);
        assert_eq!(li_sequence(Reg::A0, 2048).len(), 2);
        assert_eq!(li_sequence(Reg::A0, -4096).len(), 1); // lui only
        assert!(li_sequence(Reg::A0, 0x1234_5678_9ABC_DEF0).len() <= 8);
    }

    #[test]
    fn parse_int_forms() {
        assert_eq!(parse_int("42").unwrap(), 42);
        assert_eq!(parse_int("-7").unwrap(), -7);
        assert_eq!(parse_int("0x10").unwrap(), 16);
        assert_eq!(parse_int("0b101").unwrap(), 5);
        assert_eq!(parse_int("'A'").unwrap(), 65);
        assert_eq!(parse_int("1_000").unwrap(), 1000);
        assert!(parse_int("foo").is_err());
    }

    #[test]
    fn operand_forms() {
        assert_eq!(parse_operand("a0").unwrap(), Operand::Reg(Reg::A0));
        assert_eq!(parse_operand("-8").unwrap(), Operand::Imm(-8));
        assert_eq!(
            parse_operand("16(sp)").unwrap(),
            Operand::Mem {
                offset: 16,
                base: Reg::SP
            }
        );
        assert_eq!(
            parse_operand("(t0)").unwrap(),
            Operand::Mem {
                offset: 0,
                base: Reg::T0
            }
        );
        assert_eq!(parse_operand("loop").unwrap(), Operand::Sym("loop".into()));
        assert!(parse_operand("12(xx)").is_err());
    }

    #[test]
    fn comment_stripping() {
        assert_eq!(strip_comment("add a0, a1, a2 # hi"), "add a0, a1, a2 ");
        assert_eq!(strip_comment("nop // c"), "nop ");
        assert_eq!(strip_comment("nop ; c"), "nop ");
        assert_eq!(strip_comment(r#".ascii "a#b" # real"#), r#".ascii "a#b" "#);
    }
}
