//! Differential verification driver: lockstep-checks the three simulators
//! against each other, the kernels against the verification database, the
//! accelerator against its software model, and the accelerator protocol
//! against a seeded fault-injection campaign.
//!
//! ```text
//! lockstep [conformance|fuzz|rocc|faults|all] [--samples N] [--seed S]
//!          [--programs N] [--body N] [--commands N] [--no-rocc]
//!          [--faults N] [--fault-samples N]
//!          [--journal PATH | --resume PATH] [--checkpoint-every N]
//! ```
//!
//! Defaults: `all`, 200 database samples (the paper's 8,000-sample
//! configuration scaled down for CI — pass `--samples 8000` for the full
//! database), seed 2019, 200 fuzz programs, 500 injected faults over a
//! 6-sample guest.
//!
//! `--journal PATH` makes the `conformance`, `fuzz`, and `faults`
//! subcommands (one at a time — not `all`) write an append-only journal of
//! completed cases; `--resume PATH` restarts a killed run from its journal
//! and, because every campaign is deterministic in its seed, produces the
//! same stdout report byte for byte. The `faults` subcommand journals one
//! file per kernel at `PATH.<kernel-slug>`. Progress lines (cases done /
//! total / quarantined) go to stderr so stdout stays diffable.
//!
//! Exits nonzero on any divergence, printing the full report (pc,
//! instruction, register/memory delta, retirement context) and the shrunk
//! reproducing program for fuzz failures. A lockstep run that only ends
//! because the step budget ran out is reported as a distinct warning (a
//! bounded hang is not a pass) and counted as a failure. I/O and setup
//! failures (an unreadable journal, a kernel that fails to build) are
//! reported as typed errors with a nonzero exit, never a panic.

use std::collections::HashMap;
use std::path::PathBuf;

use codesign::kernels::KernelKind;
use lockstep::campaign::{run_campaign_journaled, CampaignConfig};
use lockstep::fuzz::{run_fuzz_journaled, FuzzConfig};
use lockstep::journal::{Fingerprint, Journal, JournalSpec, Progress};
use lockstep::rocc_diff::fuzz_rocc_commands;
use lockstep::{guest_budget, run_guest_pair, LockstepOutcome, Pair, Termination, DEFAULT_CONTEXT};
use testgen::TestConfig;

struct Options {
    what: String,
    samples: usize,
    seed: u64,
    programs: u32,
    body_items: usize,
    commands: u32,
    with_rocc: bool,
    faults: usize,
    fault_samples: usize,
    journal: Option<PathBuf>,
    resume: bool,
    checkpoint_every: usize,
}

impl Options {
    /// The journal spec for this run (`suffix` distinguishes per-kernel
    /// journals within one invocation).
    fn journal_spec(&self, suffix: Option<&str>) -> Option<JournalSpec> {
        self.journal.as_ref().map(|path| {
            let path = match suffix {
                Some(suffix) => {
                    let mut name = path.as_os_str().to_os_string();
                    name.push(".");
                    name.push(suffix);
                    PathBuf::from(name)
                }
                None => path.clone(),
            };
            JournalSpec {
                path,
                resume: self.resume,
                checkpoint_every: self.checkpoint_every,
            }
        })
    }
}

fn parse_args() -> Options {
    let mut options = Options {
        what: "all".to_string(),
        samples: 200,
        seed: 2019,
        programs: 200,
        body_items: 40,
        commands: 10_000,
        with_rocc: true,
        faults: 500,
        fault_samples: 6,
        journal: None,
        resume: false,
        checkpoint_every: 50,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |flag: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
        };
        match arg.as_str() {
            "--samples" => options.samples = number("--samples") as usize,
            "--seed" => options.seed = number("--seed"),
            "--programs" => options.programs = number("--programs") as u32,
            "--body" => options.body_items = number("--body") as usize,
            "--commands" => options.commands = number("--commands") as u32,
            "--faults" => options.faults = number("--faults") as usize,
            "--fault-samples" => options.fault_samples = number("--fault-samples") as usize,
            "--no-rocc" => options.with_rocc = false,
            "--journal" => {
                options.journal =
                    Some(args.next().unwrap_or_else(|| usage("--journal needs a path")).into());
            }
            "--resume" => {
                options.journal =
                    Some(args.next().unwrap_or_else(|| usage("--resume needs a path")).into());
                options.resume = true;
            }
            "--checkpoint-every" => {
                options.checkpoint_every = number("--checkpoint-every") as usize;
            }
            "conformance" | "fuzz" | "rocc" | "faults" | "all" => options.what = arg,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if options.journal.is_some() && !matches!(options.what.as_str(), "conformance" | "fuzz" | "faults")
    {
        usage("--journal/--resume requires a single journaled subcommand: conformance, fuzz, or faults");
    }
    options
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: lockstep [conformance|fuzz|rocc|faults|all] [--samples N] [--seed S] \
         [--programs N] [--body N] [--commands N] [--no-rocc] [--faults N] [--fault-samples N] \
         [--journal PATH | --resume PATH] [--checkpoint-every N]"
    );
    std::process::exit(2);
}

/// Reports a typed runtime failure (journal I/O, header mismatch) and
/// exits nonzero — the error path the panic audit demands: no backtraces.
fn die(error: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {error}");
    std::process::exit(1);
}

fn progress_line(what: &str, progress: Progress) {
    eprintln!(
        "progress: {what} {}/{} done, {} quarantined",
        progress.done, progress.total, progress.quarantined
    );
}

/// Lockstep-checks every kernel over the verification database on every
/// simulator pair. Returns the number of divergences (budget exhaustion
/// counts: a guest that never exits within budget is a bounded hang, not
/// an agreement).
fn conformance(options: &Options) -> u32 {
    println!(
        "— conformance: {} samples, seed {}, {} kernels × {} pairs",
        options.samples,
        options.seed,
        KernelKind::ALL.len(),
        Pair::ALL.len()
    );
    let vectors = testgen::generate(&TestConfig {
        count: options.samples,
        seed: options.seed,
        ..TestConfig::default()
    });
    // The conformance journal records one line per finished kernel:
    // `case <slug> <divergence count>`. Clean kernels replay from the
    // journal without re-running; diverged kernels re-run so the full
    // divergence report is regenerated.
    let fingerprint = {
        let mut fp = Fingerprint::new("conformance");
        fp.u64(options.samples as u64).u64(options.seed);
        fp.finish()
    };
    let mut journaled: HashMap<String, u32> = HashMap::new();
    let spec = options.journal_spec(None);
    let mut journal = match &spec {
        None => None,
        Some(spec) if spec.resume => {
            let (recovered, file) =
                Journal::resume(&spec.path, "conformance", fingerprint).unwrap_or_else(|e| die(&e));
            for line in &recovered.cases {
                if let Some((slug, count)) = line.split_once(' ') {
                    if let Ok(count) = count.parse() {
                        journaled.insert(slug.to_string(), count);
                    }
                }
            }
            Some(file)
        }
        Some(spec) => {
            Some(Journal::create(&spec.path, "conformance", fingerprint).unwrap_or_else(|e| die(&e)))
        }
    };
    let mut divergences = 0;
    for (done, kind) in KernelKind::ALL.into_iter().enumerate() {
        if journaled.get(kind.slug()) == Some(&0) {
            println!("  {kind:<16} all pairs agree");
            continue;
        }
        let guest = match codesign::framework::build_guest(kind, &vectors, 1) {
            Ok(guest) => guest,
            Err(e) => {
                divergences += 1;
                println!("  {kind:<16} BUILD FAILED: {e}");
                continue;
            }
        };
        let mut kernel_divergences = 0;
        for pair in Pair::ALL {
            let outcome = run_guest_pair(&guest, pair, DEFAULT_CONTEXT);
            match outcome {
                LockstepOutcome::Agreement {
                    termination: Termination::BudgetExhausted,
                    ..
                } => {
                    kernel_divergences += 1;
                    println!(
                        "  {kind:<16} WARNING on {pair}: step budget ({}) exhausted before \
                         exit — a bounded hang, not a pass",
                        guest_budget(&guest)
                    );
                }
                outcome if !outcome.is_agreement() => {
                    kernel_divergences += 1;
                    println!("  {kind:<16} DIVERGED on {pair}:");
                    if let Some(divergence) = outcome.divergence() {
                        println!("{divergence}");
                    }
                }
                _ => {}
            }
        }
        if kernel_divergences == 0 {
            println!("  {kind:<16} all pairs agree");
        }
        divergences += kernel_divergences;
        if let Some(j) = journal.as_mut() {
            j.append_case(&[kind.slug(), &kernel_divergences.to_string()])
                .unwrap_or_else(|e| die(&e));
            progress_line(
                "conformance",
                Progress {
                    done: done + 1,
                    total: KernelKind::ALL.len(),
                    quarantined: 0,
                },
            );
        }
    }
    divergences
}

/// Runs the seeded fault-injection campaign on the plain and the
/// fault-tolerant Method-1 guests. Returns the failure count: campaign
/// errors (a golden run that fails, a guest with no commands) always
/// fail; silent data corruption fails only for the fault-tolerant kernel,
/// whose whole job is to eliminate that class. Quarantined cases are
/// logged skips, not failures.
fn faults(options: &Options) -> u32 {
    println!(
        "— faults: {} single-bit faults over a {}-sample guest, seed {}",
        options.faults, options.fault_samples, options.seed
    );
    let vectors = testgen::generate(&TestConfig {
        count: options.fault_samples,
        seed: options.seed,
        ..TestConfig::default()
    });
    let mut failures = 0;
    for kind in KernelKind::FAULT_CAMPAIGN {
        let guest = match codesign::framework::build_guest(kind, &vectors, 1) {
            Ok(guest) => guest,
            Err(e) => {
                failures += 1;
                println!("  {:<28} BUILD FAILED: {e}", kind.name());
                continue;
            }
        };
        let config = CampaignConfig {
            seed: options.seed,
            faults: options.faults,
            instruction_budget: guest_budget(&guest),
            result_words: vectors.len(),
            ..CampaignConfig::default()
        };
        let spec = options.journal_spec(Some(kind.slug()));
        let label = format!("faults[{}]", kind.slug());
        let report = run_campaign_journaled(&guest.program, &config, spec.as_ref(), &mut |p| {
            if spec.is_some() {
                progress_line(&label, p);
            }
        })
        .unwrap_or_else(|e| die(&e));
        let tally = report.tally();
        println!(
            "  {:<28} {} RoCC commands; {} masked, {} detected, {} caught-by-watchdog, {} \
             silent-data-corruption, {} quarantined",
            kind.name(),
            report.total_commands,
            tally.masked,
            tally.detected,
            tally.caught_by_watchdog,
            tally.silent_data_corruption,
            report.quarantined.len(),
        );
        for case in &report.quarantined {
            println!("  {:<28} QUARANTINED: {case}", kind.name());
        }
        for error in &report.errors {
            failures += 1;
            println!("  {:<28} ERROR: {error}", kind.name());
        }
        if kind == KernelKind::Method1Ft && tally.silent_data_corruption > 0 {
            failures += tally.silent_data_corruption as u32;
            println!(
                "  {:<28} FAILED: {} silent corruption(s) slipped past the detection net",
                kind.name(),
                tally.silent_data_corruption
            );
        }
    }
    failures
}

/// Runs the differential instruction fuzzer. Returns the failure count.
fn fuzz(options: &Options) -> u32 {
    println!(
        "— fuzz: {} programs × {} pairs, seed {}, {} body items, rocc {}",
        options.programs,
        Pair::ALL.len(),
        options.seed,
        options.body_items,
        if options.with_rocc { "on" } else { "off" }
    );
    let spec = options.journal_spec(None);
    let report = run_fuzz_journaled(
        &FuzzConfig {
            seed: options.seed,
            programs: options.programs,
            body_items: options.body_items,
            with_rocc: options.with_rocc,
            ..FuzzConfig::default()
        },
        spec.as_ref(),
        &mut |p| {
            if spec.is_some() {
                progress_line("fuzz", p);
            }
        },
    )
    .unwrap_or_else(|e| die(&e));
    println!(
        "  {} programs, {} pair runs, {} instructions compared in lockstep",
        report.programs_run, report.pairs_checked, report.instructions_checked
    );
    for failure in &report.failures {
        println!(
            "  program {} DIVERGED on {}:\n{}\n  minimal reproducer:\n{}",
            failure.program_index, failure.pair, failure.divergence, failure.shrunk_source
        );
    }
    report.failures.len() as u32
}

/// Runs the RoCC command-level differential. Returns the mismatch count.
fn rocc(options: &Options) -> u32 {
    println!(
        "— rocc: {} commands against the software model, seed {}",
        options.commands, options.seed
    );
    let report = fuzz_rocc_commands(options.seed, options.commands);
    println!("  {} commands compared", report.commands_run);
    for mismatch in &report.mismatches {
        println!(
            "  command {} ({}) MISMATCHED: {}",
            mismatch.index, mismatch.funct, mismatch.detail
        );
    }
    report.mismatches.len() as u32
}

fn main() {
    let options = parse_args();
    let mut failures = 0;
    if matches!(options.what.as_str(), "conformance" | "all") {
        failures += conformance(&options);
    }
    if matches!(options.what.as_str(), "fuzz" | "all") {
        failures += fuzz(&options);
    }
    if matches!(options.what.as_str(), "rocc" | "all") {
        failures += rocc(&options);
    }
    if matches!(options.what.as_str(), "faults" | "all") {
        failures += faults(&options);
    }
    if failures > 0 {
        eprintln!("{failures} divergence(s) found");
        std::process::exit(1);
    }
    println!("all differential checks passed");
}
