//! Systematic fault-injection campaign over the accelerator's
//! architectural state.
//!
//! A campaign runs one guest program to completion on a healthy
//! accelerator (the *golden* run), then replays it once per planned fault,
//! flipping a single bit of accelerator state — a register-file entry, the
//! carry latch, or the interface FSM — immediately before a sampled
//! command index. Every replay is classified into exactly one of four
//! outcomes:
//!
//! * [`FaultOutcome::Masked`] — the run finished with the golden results
//!   and nothing noticed; the flipped state was dead (e.g. a register-file
//!   bit Method-1 never reads).
//! * [`FaultOutcome::Detected`] — the guest's detection net saw the fault
//!   in-band: a nonzero `STAT` readback, or a fault-tolerant kernel's
//!   degradation counter advancing. Results still match the golden run.
//! * [`FaultOutcome::CaughtByWatchdog`] — the core's busy-watchdog aborted
//!   a wedged handshake: either delivered as an M-mode trap the guest
//!   handled, or surfaced as [`riscv_sim::CpuError::RoccTimeout`] when no
//!   trap vector was armed. Bounded in time either way.
//! * [`FaultOutcome::SilentDataCorruption`] — the run finished cleanly but
//!   the results differ from the golden run: the worst class, the one
//!   fault tolerance exists to eliminate.
//!
//! The plan is drawn deterministically from a [`SplitMix64`] seed, so a
//! campaign is exactly reproducible from `(program, seed, faults)`.

use std::cell::Cell;
use std::rc::Rc;

use riscv_asm::Program;
use riscv_isa::csr::cause;
use riscv_sim::{Coprocessor, Cpu, CpuError, Memory, RoccCommand, RoccResponse};
use rocc::{DecimalAccelerator, DecimalFunct};

use crate::fuzz::SplitMix64;
use crate::guest::load_program;

/// One single-bit (or single-latch) fault in accelerator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Flip one bit of a register-file entry (`regfile[15]` is the
    /// accumulator, so the sweep covers it too).
    RegisterBit {
        /// Register-file index (0..16).
        index: usize,
        /// Bit position (0..128).
        bit: u32,
    },
    /// Flip the latched decimal carry.
    CarryFlip,
    /// Wedge the interface FSM mid-command: the handshake never completes
    /// until the core's busy-watchdog aborts it.
    FsmWedge,
    /// Force the FSM state register into `Error` without a latched cause.
    FsmError,
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTarget::RegisterBit { index, bit } => write!(f, "regfile[{index}] bit {bit}"),
            FaultTarget::CarryFlip => write!(f, "carry flip"),
            FaultTarget::FsmWedge => write!(f, "FSM wedge"),
            FaultTarget::FsmError => write!(f, "FSM error-state flip"),
        }
    }
}

#[derive(Debug, Default)]
struct ProbeState {
    commands_seen: Cell<u64>,
    fired: Cell<bool>,
    stat_detected: Cell<bool>,
}

/// Shared observation handle for a [`FaultInjectingAccelerator`]: the
/// campaign keeps one end while the core owns the accelerator.
#[derive(Debug, Clone, Default)]
pub struct FaultProbe(Rc<ProbeState>);

impl FaultProbe {
    /// RoCC commands the accelerator has received so far.
    #[must_use]
    pub fn commands_seen(&self) -> u64 {
        self.0.commands_seen.get()
    }

    /// True once the planned fault has been injected.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.0.fired.get()
    }

    /// True if the guest read a nonzero `STAT` word after the injection —
    /// the in-band detection signal.
    #[must_use]
    pub fn stat_detected(&self) -> bool {
        self.0.stat_detected.get()
    }
}

/// A [`DecimalAccelerator`] that injects one planned fault into its own
/// architectural state immediately before the command at `fire_at`, and
/// records (through a [`FaultProbe`]) whether the guest later observed a
/// nonzero `STAT`.
#[derive(Debug)]
pub struct FaultInjectingAccelerator {
    inner: DecimalAccelerator,
    fire_at: Option<u64>,
    fault: Option<FaultTarget>,
    probe: Rc<ProbeState>,
}

impl FaultInjectingAccelerator {
    /// An accelerator that injects `fault` before command `fire_at`
    /// (0-based). Returns the accelerator and its observation probe.
    #[must_use]
    pub fn new(fault: FaultTarget, fire_at: u64) -> (Self, FaultProbe) {
        let probe = Rc::new(ProbeState::default());
        (
            FaultInjectingAccelerator {
                inner: DecimalAccelerator::new(),
                fire_at: Some(fire_at),
                fault: Some(fault),
                probe: Rc::clone(&probe),
            },
            FaultProbe(probe),
        )
    }

    /// A healthy accelerator that only counts commands — the golden run.
    #[must_use]
    pub fn golden() -> (Self, FaultProbe) {
        let probe = Rc::new(ProbeState::default());
        (
            FaultInjectingAccelerator {
                inner: DecimalAccelerator::new(),
                fire_at: None,
                fault: None,
                probe: Rc::clone(&probe),
            },
            FaultProbe(probe),
        )
    }

    fn apply(&mut self, fault: FaultTarget) {
        match fault {
            FaultTarget::RegisterBit { index, bit } => {
                self.inner.inject_register_bit_flip(index, bit);
            }
            FaultTarget::CarryFlip => self.inner.inject_carry_flip(),
            FaultTarget::FsmWedge => self.inner.inject_fsm_wedge(),
            FaultTarget::FsmError => self.inner.inject_fsm_error(),
        }
    }
}

impl Coprocessor for FaultInjectingAccelerator {
    fn execute(&mut self, cmd: &RoccCommand, mem: &mut Memory) -> Result<RoccResponse, CpuError> {
        let index = self.probe.commands_seen.get();
        self.probe.commands_seen.set(index + 1);
        if !self.probe.fired.get() && self.fire_at == Some(index) {
            if let Some(fault) = self.fault {
                self.apply(fault);
            }
            self.probe.fired.set(true);
        }
        let response = self.inner.execute(cmd, mem)?;
        if self.probe.fired.get()
            && cmd.instruction.funct7 == DecimalFunct::Stat.funct7()
            && response.rd_value.is_some_and(|v| v != 0)
        {
            self.probe.stat_detected.set(true);
        }
        Ok(response)
    }

    fn watchdog_abort(&mut self) {
        self.inner.watchdog_abort();
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Classification of one fault replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Golden results, no detection signal: the fault hit dead state.
    Masked,
    /// The guest observed the fault in-band (STAT or its degradation
    /// counter) and the results still match the golden run.
    Detected,
    /// The busy-watchdog bounded a wedged handshake (trap or
    /// `RoccTimeout`).
    CaughtByWatchdog,
    /// Clean completion with wrong results.
    SilentDataCorruption,
}

impl std::fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::Detected => "detected",
            FaultOutcome::CaughtByWatchdog => "caught-by-watchdog",
            FaultOutcome::SilentDataCorruption => "silent-data-corruption",
        })
    }
}

/// One planned fault and what came of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Command index the fault preceded.
    pub at_command: u64,
    /// What was flipped.
    pub target: FaultTarget,
    /// How the replay ended.
    pub outcome: FaultOutcome,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Plan seed: same seed, same program — same campaign, fault for
    /// fault.
    pub seed: u64,
    /// Number of faults to inject.
    pub faults: usize,
    /// Instruction budget per replay (a replay must never hang the host).
    pub instruction_budget: u64,
    /// Data symbol holding the guest's results, compared word-for-word
    /// against the golden run to tell masked from corrupted.
    pub results_symbol: Option<String>,
    /// Number of 64-bit words under `results_symbol`.
    pub result_words: usize,
    /// Data symbol of a degradation counter (fault-tolerant kernels); an
    /// advance past the golden value counts as in-band detection.
    pub degraded_symbol: Option<String>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2019,
            faults: 500,
            instruction_budget: 2_000_000,
            results_symbol: Some("results".to_string()),
            result_words: 0,
            degraded_symbol: Some("ft_degraded".to_string()),
        }
    }
}

/// The campaign's result: the golden baseline, every classified record,
/// and any replay that escaped the four classes (must be empty).
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// RoCC commands the golden run issued (the samplable index space).
    pub total_commands: u64,
    /// The golden run's exit code.
    pub golden_exit: i64,
    /// One record per injected fault, in plan order.
    pub records: Vec<FaultRecord>,
    /// Replays that ended outside the four classes (budget exhaustion, an
    /// unexpected fault). A sound protocol leaves this empty.
    pub errors: Vec<String>,
}

/// Per-class totals of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignTally {
    /// Faults with no architectural effect.
    pub masked: u64,
    /// Faults the guest observed in-band.
    pub detected: u64,
    /// Wedges bounded by the busy-watchdog.
    pub caught_by_watchdog: u64,
    /// Faults that silently corrupted results.
    pub silent_data_corruption: u64,
}

impl CampaignReport {
    /// Per-class totals.
    #[must_use]
    pub fn tally(&self) -> CampaignTally {
        let mut tally = CampaignTally::default();
        for record in &self.records {
            match record.outcome {
                FaultOutcome::Masked => tally.masked += 1,
                FaultOutcome::Detected => tally.detected += 1,
                FaultOutcome::CaughtByWatchdog => tally.caught_by_watchdog += 1,
                FaultOutcome::SilentDataCorruption => tally.silent_data_corruption += 1,
            }
        }
        tally
    }

    /// True when every replay landed in one of the four classes.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

fn read_words(memory: &Memory, program: &Program, symbol: &str, words: usize) -> Option<Vec<u64>> {
    let base = program.symbol(symbol)?;
    (0..words)
        .map(|i| memory.read_u64(base + 8 * i as u64).ok())
        .collect()
}

fn read_counter(memory: &Memory, program: &Program, symbol: &str) -> Option<u64> {
    memory.read_u64(program.symbol(symbol)?).ok()
}

fn sample_target(rng: &mut SplitMix64) -> FaultTarget {
    // Register-file bits dominate the real state space; weight them so.
    match rng.below(8) {
        0..=4 => FaultTarget::RegisterBit {
            index: rng.below(16) as usize,
            bit: rng.below(128) as u32,
        },
        5 => FaultTarget::CarryFlip,
        6 => FaultTarget::FsmWedge,
        _ => FaultTarget::FsmError,
    }
}

/// Runs a full campaign over `program`.
///
/// The golden run must complete with exit code 0 within the budget;
/// otherwise the report carries a single error and no records. Replays
/// never panic the host: every failure mode is either classified or
/// reported in [`CampaignReport::errors`].
#[must_use]
pub fn run_campaign(program: &Program, config: &CampaignConfig) -> CampaignReport {
    // ---- golden run ----
    let (accelerator, probe) = FaultInjectingAccelerator::golden();
    let mut cpu = Cpu::new();
    cpu.attach_coprocessor(Box::new(accelerator));
    load_program(&mut cpu, program);
    let golden_exit = match cpu.run(config.instruction_budget) {
        Ok(code) => code,
        Err(e) => {
            return CampaignReport {
                total_commands: probe.commands_seen(),
                golden_exit: -1,
                records: Vec::new(),
                errors: vec![format!("golden run failed: {e}")],
            }
        }
    };
    let total_commands = probe.commands_seen();
    let golden_results = config
        .results_symbol
        .as_deref()
        .and_then(|s| read_words(&cpu.memory, program, s, config.result_words));
    let golden_degraded = config
        .degraded_symbol
        .as_deref()
        .and_then(|s| read_counter(&cpu.memory, program, s));
    if total_commands == 0 {
        return CampaignReport {
            total_commands,
            golden_exit,
            records: Vec::new(),
            errors: vec!["guest issued no RoCC commands; nothing to inject into".to_string()],
        };
    }

    // ---- planned replays ----
    let mut rng = SplitMix64::new(config.seed);
    let mut records = Vec::with_capacity(config.faults);
    let mut errors = Vec::new();
    for _ in 0..config.faults {
        let at_command = rng.below(total_commands);
        let target = sample_target(&mut rng);
        let (accelerator, probe) = FaultInjectingAccelerator::new(target, at_command);
        let mut cpu = Cpu::new();
        cpu.attach_coprocessor(Box::new(accelerator));
        load_program(&mut cpu, program);
        let run = cpu.run(config.instruction_budget);
        let watchdog_trapped = cpu
            .trap_log
            .iter()
            .any(|t| t.cause == cause::ROCC_TIMEOUT);
        let outcome = match run {
            // Watchdog surfaced as a hard fault: no trap vector was armed.
            Err(CpuError::RoccTimeout { .. }) => FaultOutcome::CaughtByWatchdog,
            Err(e) => {
                errors.push(format!(
                    "fault {target} before command {at_command}: unclassified failure: {e}"
                ));
                continue;
            }
            Ok(code) => {
                let results = config
                    .results_symbol
                    .as_deref()
                    .and_then(|s| read_words(&cpu.memory, program, s, config.result_words));
                let degraded = config
                    .degraded_symbol
                    .as_deref()
                    .and_then(|s| read_counter(&cpu.memory, program, s));
                let corrupted = code != golden_exit || results != golden_results;
                let in_band = probe.stat_detected()
                    || matches!((golden_degraded, degraded), (Some(g), Some(d)) if d > g);
                if watchdog_trapped {
                    FaultOutcome::CaughtByWatchdog
                } else if corrupted {
                    FaultOutcome::SilentDataCorruption
                } else if in_band {
                    FaultOutcome::Detected
                } else {
                    FaultOutcome::Masked
                }
            }
        };
        records.push(FaultRecord {
            at_command,
            target,
            outcome,
        });
    }
    CampaignReport {
        total_commands,
        golden_exit,
        records,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_asm::assemble;

    fn add_guest() -> Program {
        // Four DEC_ADD/DEC_ADC pairs, results summed into a0.
        assemble(
            "
            start:
                li   s1, 0
                li   s2, 4
            loop:
                li   t0, 0x15
                li   t1, 0x27
                custom0 4, t2, t0, t1, 1, 1, 1
                custom0 9, t3, zero, zero, 1, 1, 1
                add  s1, s1, t2
                add  s1, s1, t3
                addi s2, s2, -1
                bnez s2, loop
                la   t0, results
                sd   s1, 0(t0)
                li   a0, 0
                li   a7, 93
                ecall
                .data
            .align 3
            results:
                .space 8
            ",
        )
        .unwrap()
    }

    #[test]
    fn campaign_is_deterministic_in_the_seed() {
        let program = add_guest();
        let config = CampaignConfig {
            faults: 60,
            result_words: 1,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&program, &config);
        let b = run_campaign(&program, &config);
        assert_eq!(a.records, b.records);
        assert!(a.ok(), "{:?}", a.errors);
        assert_eq!(a.total_commands, 8);
    }

    #[test]
    fn unprotected_guest_shows_corruption_and_watchdog_classes() {
        let program = add_guest();
        let report = run_campaign(
            &program,
            &CampaignConfig {
                faults: 120,
                result_words: 1,
                ..CampaignConfig::default()
            },
        );
        assert!(report.ok(), "{:?}", report.errors);
        let tally = report.tally();
        // No trap vector and no STAT reads: wedges die on RoccTimeout and
        // carry flips corrupt silently.
        assert!(tally.caught_by_watchdog > 0, "{tally:?}");
        assert!(tally.silent_data_corruption > 0, "{tally:?}");
        assert!(tally.masked > 0, "{tally:?}");
    }
}
