//! Crash-safe campaign resumption, end to end: a journaled fault-injection
//! campaign over a real kernel guest, killed at *any* byte of its journal,
//! must resume to a report identical to the uninterrupted run. The
//! truncation points below simulate `kill -9` landing mid-line (a torn
//! write), on a line boundary, right after the header, and before anything
//! was written at all.

use decimalarith::codesign::framework::build_guest;
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::lockstep::campaign::{run_campaign_journaled, CampaignConfig};
use decimalarith::lockstep::fuzz::{run_fuzz_journaled, FuzzConfig};
use decimalarith::lockstep::guest_budget;
use decimalarith::lockstep::journal::{JournalError, JournalSpec};
use decimalarith::testgen::{generate, TestConfig};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("resumable-campaign-{tag}-{}", std::process::id()));
    path
}

fn spec(path: &std::path::Path, resume: bool) -> JournalSpec {
    JournalSpec {
        path: path.to_path_buf(),
        resume,
        checkpoint_every: 3,
    }
}

#[test]
fn campaign_resumes_identically_from_any_truncation_point() {
    let vectors = generate(&TestConfig {
        count: 2,
        seed: 2019,
        ..TestConfig::default()
    });
    let guest = build_guest(KernelKind::Method1, &vectors, 1).expect("guest builds");
    let config = CampaignConfig {
        seed: 2019,
        faults: 10,
        instruction_budget: guest_budget(&guest),
        result_words: vectors.len(),
        ..CampaignConfig::default()
    };

    // The uninterrupted reference: journaled, run to completion.
    let path = temp_path("reference");
    let reference =
        run_campaign_journaled(&guest.program, &config, Some(&spec(&path, false)), &mut |_| {})
            .expect("journaled run succeeds");
    assert!(reference.ok(), "{:?}", reference.errors);
    assert_eq!(reference.records.len() + reference.quarantined.len(), config.faults);
    let journal_bytes = std::fs::read(&path).expect("journal written");
    let header_end = journal_bytes
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| i + 1)
        .expect("journal has a header line");

    // Kill points: nothing written, header only, torn case lines, torn
    // tail one byte short of complete.
    let kill_points = [
        0,
        header_end,
        header_end + 7, // mid-first-case torn write
        journal_bytes.len() / 3,
        journal_bytes.len() / 2,
        journal_bytes.len() - 1,
    ];
    for (i, &cut) in kill_points.iter().enumerate() {
        let path = temp_path(&format!("cut{i}"));
        std::fs::write(&path, &journal_bytes[..cut]).unwrap();
        let mut progress_calls = 0;
        let resumed = run_campaign_journaled(
            &guest.program,
            &config,
            Some(&spec(&path, true)),
            &mut |_| progress_calls += 1,
        )
        .unwrap_or_else(|e| panic!("resume from {cut} bytes failed: {e}"));
        assert_eq!(
            resumed, reference,
            "report after resuming from a {cut}-byte journal prefix"
        );
        assert!(progress_calls > 0, "resumed run reports progress");
        std::fs::remove_file(&path).unwrap();
    }

    // A second resume of the *complete* journal is a pure replay and
    // still produces the identical report.
    let replayed =
        run_campaign_journaled(&guest.program, &config, Some(&spec(&path, true)), &mut |_| {})
            .expect("pure replay succeeds");
    assert_eq!(replayed, reference);

    // Resuming with a different configuration is a typed error — the
    // journal is bound to its fingerprint, never silently misapplied.
    let other = CampaignConfig {
        seed: 77,
        ..config.clone()
    };
    match run_campaign_journaled(&guest.program, &other, Some(&spec(&path, true)), &mut |_| {}) {
        Err(JournalError::Fingerprint { .. }) => {}
        other => panic!("expected JournalError::Fingerprint, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn fuzz_campaign_resumes_to_identical_counters() {
    let config = FuzzConfig {
        seed: 2019,
        programs: 8,
        body_items: 20,
        ..FuzzConfig::default()
    };
    let path = temp_path("fuzz-reference");
    let reference = run_fuzz_journaled(&config, Some(&spec(&path, false)), &mut |_| {})
        .expect("journaled fuzz run succeeds");
    assert!(reference.ok(), "seed 2019 fuzz run is clean");
    let journal_bytes = std::fs::read(&path).expect("journal written");

    for (i, cut) in [journal_bytes.len() / 4, journal_bytes.len() / 2].into_iter().enumerate() {
        let path = temp_path(&format!("fuzz-cut{i}"));
        std::fs::write(&path, &journal_bytes[..cut]).unwrap();
        let resumed = run_fuzz_journaled(&config, Some(&spec(&path, true)), &mut |_| {})
            .unwrap_or_else(|e| panic!("fuzz resume from {cut} bytes failed: {e}"));
        assert_eq!(resumed.programs_run, reference.programs_run);
        assert_eq!(resumed.pairs_checked, reference.pairs_checked);
        assert_eq!(resumed.instructions_checked, reference.instructions_checked);
        assert_eq!(resumed.failures.len(), reference.failures.len());
        std::fs::remove_file(&path).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}
