//! The decimal128 interchange format ("quad" decimal in the paper).

use crate::declet::{decode_declet, encode_declet};
use crate::{Class, DpdError, Sign};

/// An IEEE 754-2008 decimal128 value in its DPD interchange encoding.
///
/// Layout: 1 sign bit, 5-bit combination, 12-bit exponent continuation,
/// 110-bit coefficient continuation (eleven declets). Precision is
/// thirty-four digits, so the coefficient is exposed as a digit array rather
/// than a packed word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal128(u128);

/// The sign, coefficient digits and exponent of a finite decimal128.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parts128 {
    /// The sign.
    pub sign: Sign,
    /// Coefficient digits, least significant first; exactly 34 entries.
    pub digits: [u8; 34],
    /// The exponent of the least significant coefficient digit (`q`).
    pub exponent: i32,
}

impl Parts128 {
    /// Number of significant digits (zero has zero).
    #[must_use]
    pub fn significant_digits(&self) -> u32 {
        self.digits
            .iter()
            .rposition(|&d| d != 0)
            .map_or(0, |i| i as u32 + 1)
    }
}

impl Decimal128 {
    /// Precision in decimal digits.
    pub const PRECISION: u32 = 34;
    /// Exponent bias applied to `q`.
    pub const BIAS: i32 = 6176;
    /// Smallest exponent `q`.
    pub const EMIN_Q: i32 = -6176;
    /// Largest exponent `q`.
    pub const EMAX_Q: i32 = 6111;

    /// Positive zero.
    pub const ZERO: Decimal128 = Decimal128(0x2208_0000_0000_0000_0000_0000_0000_0000);
    /// Positive infinity.
    pub const INFINITY: Decimal128 = Decimal128(0x7800_0000_0000_0000_0000_0000_0000_0000);
    /// A quiet NaN.
    pub const NAN: Decimal128 = Decimal128(0x7C00_0000_0000_0000_0000_0000_0000_0000);

    const COMBO_SHIFT: u32 = 122;
    const EXP_CONT_SHIFT: u32 = 110;
    const EXP_CONT_BITS: u32 = 12;
    const DECLETS: u32 = 11;

    /// Wraps raw interchange bits.
    #[must_use]
    pub const fn from_bits(bits: u128) -> Self {
        Decimal128(bits)
    }

    /// The raw interchange bits.
    #[must_use]
    pub const fn to_bits(self) -> u128 {
        self.0
    }

    /// Builds a finite value from its parts. `digits` is least significant
    /// first and at most 34 entries long.
    ///
    /// # Errors
    ///
    /// Returns [`DpdError::CoefficientTooWide`], [`DpdError::InvalidDigit`] or
    /// [`DpdError::ExponentOutOfRange`] on malformed input.
    pub fn from_parts(sign: Sign, digits: &[u8], exponent: i32) -> Result<Self, DpdError> {
        if digits.len() > Self::PRECISION as usize {
            return Err(DpdError::CoefficientTooWide {
                precision: Self::PRECISION,
            });
        }
        if let Some(&d) = digits.iter().find(|&&d| d > 9) {
            return Err(DpdError::InvalidDigit { digit: d });
        }
        if !(Self::EMIN_Q..=Self::EMAX_Q).contains(&exponent) {
            return Err(DpdError::ExponentOutOfRange {
                min: Self::EMIN_Q,
                max: Self::EMAX_Q,
            });
        }
        let mut full = [0u8; 34];
        full[..digits.len()].copy_from_slice(digits);
        let biased = (exponent + Self::BIAS) as u128;
        let exp_high = biased >> Self::EXP_CONT_BITS;
        let exp_cont = biased & ((1 << Self::EXP_CONT_BITS) - 1);
        let msd = full[33];
        let combo = if msd <= 7 {
            (exp_high << 3) | u128::from(msd)
        } else {
            0b11000 | (exp_high << 1) | u128::from(msd - 8)
        };
        let mut coeff_cont = 0u128;
        for i in 0..Self::DECLETS as usize {
            let declet = encode_declet(full[3 * i + 2], full[3 * i + 1], full[3 * i]);
            coeff_cont |= u128::from(declet) << (10 * i);
        }
        Ok(Decimal128(
            (u128::from(sign == Sign::Negative) << 127)
                | (combo << Self::COMBO_SHIFT)
                | (exp_cont << Self::EXP_CONT_SHIFT)
                | coeff_cont,
        ))
    }

    /// Classifies the value.
    #[must_use]
    pub fn classify(self) -> Class {
        let combo = (self.0 >> Self::COMBO_SHIFT) & 0x1F;
        if combo >> 1 == 0b1111 {
            if combo & 1 == 0 {
                Class::Infinity
            } else if self.0 & (1 << 121) != 0 {
                Class::SignalingNan
            } else {
                Class::QuietNan
            }
        } else {
            Class::Finite
        }
    }

    /// The sign bit.
    #[must_use]
    pub fn sign(self) -> Sign {
        if self.0 >> 127 == 1 {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// True for finite values.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.classify() == Class::Finite
    }

    /// True for quiet or signaling NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        matches!(self.classify(), Class::QuietNan | Class::SignalingNan)
    }

    /// Decomposes a finite value.
    ///
    /// # Errors
    ///
    /// Returns [`DpdError::NotFinite`] for infinities and NaNs.
    pub fn to_parts(self) -> Result<Parts128, DpdError> {
        if !self.is_finite() {
            return Err(DpdError::NotFinite);
        }
        let combo = (self.0 >> Self::COMBO_SHIFT) & 0x1F;
        let (exp_high, msd) = if combo >> 3 == 0b11 {
            ((combo >> 1) & 0b11, 8 + (combo & 1) as u8)
        } else {
            (combo >> 3, (combo & 0b111) as u8)
        };
        let exp_cont = (self.0 >> Self::EXP_CONT_SHIFT) & ((1 << Self::EXP_CONT_BITS) - 1);
        let biased = (exp_high << Self::EXP_CONT_BITS) | exp_cont;
        let mut digits = [0u8; 34];
        digits[33] = msd;
        for i in 0..Self::DECLETS as usize {
            let declet = ((self.0 >> (10 * i)) & 0x3FF) as u16;
            let (d2, d1, d0) = decode_declet(declet);
            digits[3 * i] = d0;
            digits[3 * i + 1] = d1;
            digits[3 * i + 2] = d2;
        }
        Ok(Parts128 {
            sign: self.sign(),
            digits,
            exponent: biased as i32 - Self::BIAS,
        })
    }
}

impl Default for Decimal128 {
    fn default() -> Self {
        Decimal128::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_encodes_to_known_bits() {
        // decimal128 1 = 0x22080000000000000000000000000001.
        let one = Decimal128::from_parts(Sign::Positive, &[1], 0).unwrap();
        assert_eq!(one.to_bits(), 0x2208_0000_0000_0000_0000_0000_0000_0001);
    }

    #[test]
    fn parts_roundtrip_full_precision() {
        let digits: Vec<u8> = (0..34).map(|i| ((i * 7 + 3) % 10) as u8).collect();
        let v = Decimal128::from_parts(Sign::Negative, &digits, -2000).unwrap();
        let p = v.to_parts().unwrap();
        assert_eq!(&p.digits[..], &digits[..]);
        assert_eq!(p.exponent, -2000);
        assert_eq!(p.sign, Sign::Negative);
    }

    #[test]
    fn msd_nine_roundtrips() {
        let mut digits = [0u8; 34];
        digits[33] = 9;
        let v = Decimal128::from_parts(Sign::Positive, &digits, 0).unwrap();
        assert_eq!(v.to_parts().unwrap().digits[33], 9);
    }

    #[test]
    fn significant_digits_helper() {
        let p = Decimal128::from_parts(Sign::Positive, &[0, 0, 5], 0)
            .unwrap()
            .to_parts()
            .unwrap();
        assert_eq!(p.significant_digits(), 3);
        let zero = Decimal128::ZERO.to_parts().unwrap();
        assert_eq!(zero.significant_digits(), 0);
    }

    #[test]
    fn range_checks() {
        assert!(Decimal128::from_parts(Sign::Positive, &[1; 35], 0).is_err());
        assert!(Decimal128::from_parts(Sign::Positive, &[10], 0).is_err());
        assert!(Decimal128::from_parts(Sign::Positive, &[1], 6112).is_err());
        assert!(Decimal128::from_parts(Sign::Positive, &[1], -6177).is_err());
    }

    #[test]
    fn specials() {
        assert_eq!(Decimal128::INFINITY.classify(), Class::Infinity);
        assert_eq!(Decimal128::NAN.classify(), Class::QuietNan);
        assert!(Decimal128::NAN.is_nan());
        assert!(Decimal128::ZERO.is_finite());
    }
}
