//! The differential instruction fuzzer: generates seeded random-but-valid
//! RV64IM programs (optionally laced with RoCC command sequences), runs each
//! on every simulator pair in lockstep, and shrinks any failure to a minimal
//! reproducing program by delta debugging.
//!
//! Generated programs terminate by construction: all control transfers are
//! forward, and the epilogue always exits. Every program is a pure function
//! of the fuzzer seed and program index.

use riscv_asm::assemble;

use crate::compare::{Divergence, LockstepOptions, LockstepOutcome};
use crate::guest::{run_program_pair, Pair};
use crate::journal::{Fingerprint, Journal, JournalError, JournalSpec, Progress};

/// A tiny deterministic generator (splitmix64) — the fuzzer's only source
/// of randomness, so every program is reproducible from its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniformly chosen element of `choices`.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.below(choices.len() as u64) as usize]
    }
}

/// Registers the generator may freely clobber. `s0` (scratch base), `a7`
/// (syscall number), `sp`/`ra`/`gp`/`tp` are reserved.
const WRITABLE: [&str; 17] = [
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "a0", "a1", "a2", "a3", "a4", "a5", "s1", "s2",
    "s3", "s4",
];

/// Bytes of scratch data memory addressed through `s0`.
const SCRATCH_BYTES: u64 = 256;

/// One generated unit: a labelled block of one or more instructions that
/// the shrinker removes atomically (so multi-instruction RoCC sequences
/// keep their internal invariants).
#[derive(Debug, Clone)]
pub struct Item {
    label: String,
    lines: Vec<String>,
}

impl Item {
    /// An item with the given label and assembly lines — for hand-written
    /// regression items mixed into generated programs. The label must be
    /// unique within the program (generated items use `b{index}`).
    #[must_use]
    pub fn new(label: impl Into<String>, lines: Vec<String>) -> Self {
        Item {
            label: label.into(),
            lines,
        }
    }
}

fn readable(rng: &mut SplitMix64) -> &'static str {
    if rng.below(8) == 0 {
        ["zero", "s0"][rng.below(2) as usize]
    } else {
        WRITABLE[rng.below(WRITABLE.len() as u64) as usize]
    }
}

fn writable(rng: &mut SplitMix64) -> &'static str {
    WRITABLE[rng.below(WRITABLE.len() as u64) as usize]
}

/// A random valid packed-BCD word of 1..=16 significant digits.
fn bcd_literal(rng: &mut SplitMix64) -> u64 {
    let digits = 1 + rng.below(16);
    let mut value = 0u64;
    for _ in 0..digits {
        value = (value << 4) | rng.below(10);
    }
    value
}

fn load_store_item(rng: &mut SplitMix64) -> Vec<String> {
    let (mnemonic, size): (&str, u64) = *rng.pick(&[
        ("lb", 1),
        ("lbu", 1),
        ("lh", 2),
        ("lhu", 2),
        ("lw", 4),
        ("lwu", 4),
        ("ld", 8),
        ("sb", 1),
        ("sh", 2),
        ("sw", 4),
        ("sd", 8),
    ]);
    let offset = rng.below(SCRATCH_BYTES / size) * size;
    let reg = if mnemonic.starts_with('s') {
        readable(rng)
    } else {
        writable(rng)
    };
    vec![format!("{mnemonic} {reg}, {offset}(s0)")]
}

fn rocc_item(rng: &mut SplitMix64) -> Vec<String> {
    let temp_a = writable(rng);
    let temp_b = writable(rng);
    let dest = writable(rng);
    match rng.below(9) {
        // WR: a valid BCD word into a register-file low half (the fuzzer's
        // invariant: the register file only ever holds valid BCD, so the
        // decimal functions below never trip the protocol checks).
        0 => vec![
            format!("li {temp_a}, {:#x}", bcd_literal(rng)),
            format!("custom0 0, zero, {temp_a}, x{}, 0, 1, 0", 1 + rng.below(7)),
        ],
        // RD a register-file half back into the core.
        1 => vec![format!("custom0 1, {dest}, x{}, zero, 1, 0, 0", 1 + rng.below(7))],
        // ACCUM: binary accumulate of any core value.
        2 => vec![format!("custom0 3, {dest}, {}, zero, 1, 1, 0", readable(rng))],
        // DEC_ADD / DEC_ADC over two fresh valid BCD operands.
        3 => {
            let funct = if rng.below(2) == 0 { 4 } else { 9 };
            vec![
                format!("li {temp_a}, {:#x}", bcd_literal(rng)),
                format!("li {temp_b}, {:#x}", bcd_literal(rng)),
                format!("custom0 {funct}, {dest}, {temp_a}, {temp_b}, 1, 1, 1"),
            ]
        }
        // CLR_ALL.
        4 => vec!["custom0 5, zero, zero, zero, 0, 0, 0".to_string()],
        // DEC_CNV of an arbitrary binary value.
        5 => vec![
            format!("li {temp_a}, {:#x}", rng.next_u64()),
            format!("custom0 6, {dest}, {temp_a}, zero, 1, 1, 0"),
        ],
        // DEC_MUL: write both multiplicands, then multiply reg1 × reg2.
        6 => vec![
            format!("li {temp_a}, {:#x}", bcd_literal(rng)),
            "custom0 0, zero, ".to_string() + temp_a + ", x1, 0, 1, 0",
            format!("li {temp_a}, {:#x}", bcd_literal(rng)),
            "custom0 0, zero, ".to_string() + temp_a + ", x2, 0, 1, 0",
            format!("custom0 7, {dest}, x1, x2, 1, 0, 0"),
        ],
        // DEC_ACCUM / DEC_MULD with a digit operand.
        7 => {
            let funct = if rng.below(2) == 0 { 8 } else { 11 };
            vec![
                format!("li {temp_a}, {}", rng.below(10)),
                format!("custom0 {funct}, zero, {temp_a}, zero, 0, 1, 0"),
            ]
        }
        // DEC_ADD_R over register-file entries.
        _ => vec![format!(
            "custom0 10, x{}, x{}, x{}, 0, 0, 0",
            1 + rng.below(7),
            1 + rng.below(7),
            1 + rng.below(7)
        )],
    }
}

fn item_lines(
    rng: &mut SplitMix64,
    index: usize,
    total: usize,
    with_rocc: bool,
) -> Vec<String> {
    let forward_label = |rng: &mut SplitMix64| {
        let target = index as u64 + 1 + rng.below(total as u64 - index as u64);
        if target as usize >= total {
            "done".to_string()
        } else {
            format!("b{target}")
        }
    };
    match rng.below(100) {
        0..=19 => {
            let op = rng.pick(&[
                "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and", "mul",
                "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
            ]);
            vec![format!("{op} {}, {}, {}", writable(rng), readable(rng), readable(rng))]
        }
        20..=34 => {
            let op = rng.pick(&["addi", "xori", "ori", "andi", "slti", "sltiu"]);
            let imm = rng.below(4096) as i64 - 2048;
            vec![format!("{op} {}, {}, {imm}", writable(rng), readable(rng))]
        }
        35..=41 => {
            let (op, max_shift) = *rng.pick(&[
                ("slli", 64u64),
                ("srli", 64),
                ("srai", 64),
                ("slliw", 32),
                ("srliw", 32),
                ("sraiw", 32),
            ]);
            vec![format!(
                "{op} {}, {}, {}",
                writable(rng),
                readable(rng),
                rng.below(max_shift)
            )]
        }
        42..=49 => {
            let op = rng.pick(&[
                "addw", "subw", "sllw", "srlw", "sraw", "mulw", "divw", "divuw", "remw", "remuw",
            ]);
            vec![format!("{op} {}, {}, {}", writable(rng), readable(rng), readable(rng))]
        }
        50..=55 => {
            if rng.below(2) == 0 {
                vec![format!("lui {}, {:#x}", writable(rng), rng.below(1 << 20))]
            } else {
                let imm = rng.below(4096) as i64 - 2048;
                vec![format!("addiw {}, {}, {imm}", writable(rng), readable(rng))]
            }
        }
        56..=75 => load_store_item(rng),
        76..=85 => {
            let op = rng.pick(&["beq", "bne", "blt", "bge", "bltu", "bgeu"]);
            let target = forward_label(rng);
            vec![format!("{op} {}, {}, {target}", readable(rng), readable(rng))]
        }
        86..=88 => {
            let target = forward_label(rng);
            if rng.below(2) == 0 {
                vec![format!("j {target}")]
            } else {
                vec![format!("jal {}, {target}", writable(rng))]
            }
        }
        89..=93 => match rng.below(4) {
            0 => vec![format!("rdinstret {}", writable(rng))],
            // rdcycle differs across timing models on purpose — it
            // exercises the comparator's cycle-CSR masking. The register is
            // cleared immediately: the comparator masks the read itself but
            // does not track cycle values through later arithmetic.
            1 => {
                let reg = writable(rng);
                vec![format!("rdcycle {reg}"), format!("li {reg}, 0")]
            }
            _ => {
                let op = rng.pick(&["csrrw", "csrrs", "csrrc"]);
                let csr = 0x800 + rng.below(16);
                vec![format!("{op} {}, {csr:#x}, {}", writable(rng), readable(rng))]
            }
        },
        _ if with_rocc => rocc_item(rng),
        _ => vec![format!("add {}, {}, {}", writable(rng), readable(rng), readable(rng))],
    }
}

/// Generates the body items of one random program.
#[must_use]
pub fn generate_items(rng: &mut SplitMix64, count: usize, with_rocc: bool) -> Vec<Item> {
    (0..count)
        .map(|index| Item {
            label: format!("b{index}"),
            lines: item_lines(rng, index, count, with_rocc),
        })
        .collect()
}

/// Renders a complete program around the given body items: register and
/// scratch-memory seeding up front, exit epilogue, seeded data section.
#[must_use]
pub fn render_program(items: &[Item], rng: &mut SplitMix64) -> String {
    let mut source = String::from(".text\nstart:\n    la s0, scratch\n");
    for reg in WRITABLE.iter().take(8) {
        source += &format!("    li {reg}, {:#x}\n", rng.next_u64());
    }
    for item in items {
        source += &format!("{}:\n", item.label);
        for line in &item.lines {
            source += &format!("    {line}\n");
        }
    }
    source += "done:\n    li a0, 0\n    li a7, 93\n    ecall\n";
    source += "\n.data\n.align 3\nscratch:\n";
    for _ in 0..SCRATCH_BYTES / 8 {
        source += &format!("    .dword {:#x}\n", rng.next_u64());
    }
    source
}

/// Fuzzer configuration. Everything is deterministic in `seed`.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; program `i` derives its own stream from `(seed, i)`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub programs: u32,
    /// Body items per program (each item is 1–5 instructions).
    pub body_items: usize,
    /// Also emit RoCC command sequences (and attach the accelerator).
    pub with_rocc: bool,
    /// Per-run lockstep step budget (generated programs retire far fewer —
    /// control flow is forward-only).
    pub max_instructions: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 2019,
            programs: 50,
            body_items: 40,
            with_rocc: true,
            max_instructions: 100_000,
        }
    }
}

/// One reproduced, shrunk lockstep failure.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the generating program (with the config's seed, this
    /// reproduces the unshrunk program exactly).
    pub program_index: u32,
    /// The simulator pair that diverged.
    pub pair: Pair,
    /// The original generated source.
    pub source: String,
    /// The minimal program that still reproduces the divergence.
    pub shrunk_source: String,
    /// The divergence on the shrunk program.
    pub divergence: Divergence,
}

/// The fuzzing campaign's outcome.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Programs generated and run.
    pub programs_run: u32,
    /// Lockstep pair runs performed.
    pub pairs_checked: u64,
    /// Instructions retired in lockstep, summed over all agreeing runs.
    pub instructions_checked: u64,
    /// All failures found (each shrunk independently).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True if no run diverged.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn program_rng(seed: u64, index: u32) -> SplitMix64 {
    let mut mixer = SplitMix64::new(seed ^ (u64::from(index).wrapping_mul(0xA076_1D64_78BD_642F)));
    // Burn one output so index 0 does not reduce to the raw seed stream.
    mixer.next_u64();
    mixer
}

/// The source of program `index` under `config` (for reproducing reports).
#[must_use]
pub fn nth_program_source(config: &FuzzConfig, index: u32) -> String {
    let mut rng = program_rng(config.seed, index);
    let items = generate_items(&mut rng, config.body_items, config.with_rocc);
    render_program(&items, &mut rng)
}

/// Shrinks `items` to a (locally) minimal subsequence for which
/// `reproduces` still holds, by chunked delta debugging: try removing
/// windows of halving size until no single window can be removed.
#[must_use]
pub fn shrink_items(items: Vec<Item>, reproduces: &dyn Fn(&[Item]) -> bool) -> Vec<Item> {
    let mut current = items;
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<Item> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if reproduces(&candidate) {
                current = candidate;
                // Re-scan from the top at this granularity.
                start = 0;
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            return current;
        }
        chunk = chunk.div_ceil(2).max(1);
    }
}

/// The outcome of fuzzing one program index across every simulator pair.
struct ProgramResult {
    pairs_checked: u64,
    instructions_checked: u64,
    failures: Vec<FuzzFailure>,
}

/// Generates, runs, and (on divergence) shrinks program `index`.
fn fuzz_program(config: &FuzzConfig, options: &LockstepOptions, index: u32) -> ProgramResult {
    let mut result = ProgramResult {
        pairs_checked: 0,
        instructions_checked: 0,
        failures: Vec::new(),
    };
    let mut rng = program_rng(config.seed, index);
    let items = generate_items(&mut rng, config.body_items, config.with_rocc);
    // The data/prologue seeds must not depend on which items survive
    // shrinking, so render against a fixed tail stream.
    let tail_rng = rng.clone();
    let render = |items: &[Item]| render_program(items, &mut tail_rng.clone());
    let source = render(&items);
    let program = assemble(&source)
        .unwrap_or_else(|e| panic!("generated program {index} does not assemble: {e}"));
    for pair in Pair::ALL {
        result.pairs_checked += 1;
        let outcome = run_program_pair(&program, pair, config.with_rocc, options);
        match outcome {
            LockstepOutcome::Agreement { instructions, .. } => {
                result.instructions_checked += instructions;
            }
            LockstepOutcome::Divergence(_) => {
                let reproduces = |candidate: &[Item]| {
                    let Ok(program) = assemble(&render(candidate)) else {
                        // A removed label some branch still targets:
                        // this candidate is invalid, not minimal.
                        return false;
                    };
                    !run_program_pair(&program, pair, config.with_rocc, options).is_agreement()
                };
                let shrunk = shrink_items(items.clone(), &reproduces);
                let shrunk_source = render(&shrunk);
                let shrunk_program =
                    assemble(&shrunk_source).expect("shrunk candidate assembled before");
                let final_outcome =
                    run_program_pair(&shrunk_program, pair, config.with_rocc, options);
                let divergence = final_outcome
                    .divergence()
                    .expect("shrinker only keeps reproducing candidates")
                    .clone();
                result.failures.push(FuzzFailure {
                    program_index: index,
                    pair,
                    source: source.clone(),
                    shrunk_source,
                    divergence,
                });
            }
        }
    }
    result
}

/// Runs the full differential fuzzing campaign: every generated program on
/// every simulator pair, shrinking any failure before reporting it.
///
/// # Panics
///
/// Panics if a generated program fails to assemble — that is a generator
/// bug, not a simulator divergence.
#[must_use]
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_fuzz_journaled(config, None, &mut |_| {})
        .expect("a fuzz run without a journal performs no fallible I/O")
}

/// Binds a fuzz journal to everything that shapes the program stream.
fn fuzz_fingerprint(config: &FuzzConfig) -> u64 {
    let mut fp = Fingerprint::new("fuzz");
    fp.u64(config.seed)
        .u64(u64::from(config.programs))
        .u64(config.body_items as u64)
        .u64(u64::from(config.with_rocc))
        .u64(config.max_instructions);
    fp.finish()
}

/// Runs the fuzzing campaign with an optional write-ahead journal and
/// progress callback.
///
/// Each journal line records one completed program: its index, the
/// instructions it contributed, the pairs it checked, and its failure
/// count. On resume, clean programs are credited from the journal without
/// re-running; diverged programs are re-run (everything is deterministic
/// in the seed) to regenerate the full shrunk failure report.
///
/// # Errors
///
/// Journal I/O failures and header mismatches ([`JournalError`]).
///
/// # Panics
///
/// Panics if a generated program fails to assemble (a generator bug).
pub fn run_fuzz_journaled(
    config: &FuzzConfig,
    journal: Option<&JournalSpec>,
    progress: &mut dyn FnMut(Progress),
) -> Result<FuzzReport, JournalError> {
    let options = LockstepOptions {
        max_instructions: config.max_instructions,
        ..LockstepOptions::default()
    };
    let fingerprint = fuzz_fingerprint(config);
    // index -> (instructions, pairs, failure count)
    let mut journaled: std::collections::HashMap<u32, (u64, u64, usize)> =
        std::collections::HashMap::new();
    let mut journal_file = match journal {
        None => None,
        Some(spec) if spec.resume => {
            let (recovered, file) = Journal::resume(&spec.path, "fuzz", fingerprint)?;
            for line in &recovered.cases {
                let fields: Vec<&str> = line.split(' ').collect();
                if let [index, instructions, pairs, failures] = fields[..] {
                    if let (Ok(i), Ok(n), Ok(p), Ok(f)) = (
                        index.parse(),
                        instructions.parse(),
                        pairs.parse(),
                        failures.parse(),
                    ) {
                        journaled.insert(i, (n, p, f));
                    }
                }
            }
            Some(file)
        }
        Some(spec) => Some(Journal::create(&spec.path, "fuzz", fingerprint)?),
    };
    let mut report = FuzzReport {
        programs_run: 0,
        pairs_checked: 0,
        instructions_checked: 0,
        failures: Vec::new(),
    };
    let mut failed_programs = 0usize;
    for index in 0..config.programs {
        // A journaled clean program is credited without re-running; a
        // journaled diverged program re-runs to regenerate its shrunk
        // failure (the run is deterministic, so the journal only needs
        // the fact of the failure, not its details).
        let from_journal = matches!(journaled.get(&index), Some(&(_, _, 0)));
        if from_journal {
            let &(instructions, pairs, _) = journaled.get(&index).expect("checked above");
            report.instructions_checked += instructions;
            report.pairs_checked += pairs;
        } else {
            let result = fuzz_program(config, &options, index);
            report.pairs_checked += result.pairs_checked;
            report.instructions_checked += result.instructions_checked;
            failed_programs += usize::from(!result.failures.is_empty());
            if let Some(j) = journal_file.as_mut() {
                if !journaled.contains_key(&index) {
                    j.append_case(&[
                        &index.to_string(),
                        &result.instructions_checked.to_string(),
                        &result.pairs_checked.to_string(),
                        &result.failures.len().to_string(),
                    ])?;
                }
            }
            report.failures.extend(result.failures);
        }
        report.programs_run += 1;
        let done = (index + 1) as usize;
        if let Some(spec) = journal {
            if spec.checkpoint_every > 0 && done.is_multiple_of(spec.checkpoint_every) {
                if let (Some(j), false) = (journal_file.as_mut(), from_journal) {
                    j.checkpoint(done)?;
                }
                progress(Progress {
                    done,
                    total: config.programs as usize,
                    quarantined: failed_programs,
                });
            }
        }
    }
    progress(Progress {
        done: config.programs as usize,
        total: config.programs as usize,
        quarantined: failed_programs,
    });
    Ok(report)
}
