//! Financial-ledger scenario: the workload class the paper's introduction
//! motivates ("decimal arithmetic is widely used in financial ...
//! applications. Many financial applications need to keep the quality of
//! their customer service concurrently with the back-end computing").
//!
//! A nightly billing batch computes `quantity × unit price` line items with
//! exact decimal semantics, accumulates an invoice total, and applies a tax
//! rate — first natively with the reference library, then as a guest batch
//! on the simulated SoC, comparing the software-only core against the core
//! with the decimal accelerator.
//!
//! ```text
//! cargo run --release --example financial_ledger
//! ```

use decimalarith::codesign::framework::{build_guest, run_rocket, verify_results};
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::decnum::{Context, DecNumber};
use decimalarith::rocket_sim::TimingConfig;
use decimalarith::testgen::TestVector;

fn main() {
    // ---- the ledger, with exact decimal semantics ----
    let lines = [
        ("cloud-compute hours", "1284.25", "0.0475"),
        ("storage GB-months", "90210.0", "0.0230"),
        ("egress GB", "512.75", "0.0900"),
        ("support seats", "12", "149.99"),
        ("API calls (millions)", "3.204", "0.4000"),
    ];
    let mut ctx = Context::decimal64();
    let mut total = DecNumber::zero();
    println!("{:<24} {:>12} {:>10} {:>14}", "item", "quantity", "price", "amount");
    for (name, qty, price) in lines {
        let q: DecNumber = qty.parse().expect("quantity parses");
        let p: DecNumber = price.parse().expect("price parses");
        let amount = q.mul(&p, &mut ctx);
        // Invoices quantize to cents, half-even ("banker's rounding").
        let cents: DecNumber = "0.01".parse().expect("quantum parses");
        let amount = amount.quantize(&cents, &mut ctx);
        println!("{name:<24} {qty:>12} {price:>10} {:>14}", amount.to_sci_string());
        total = total.add(&amount, &mut ctx);
    }
    let tax_rate: DecNumber = "0.0825".parse().expect("rate parses");
    let cents: DecNumber = "0.01".parse().expect("quantum parses");
    let tax = total.mul(&tax_rate, &mut ctx).quantize(&cents, &mut ctx);
    let due = total.add(&tax, &mut ctx);
    println!("{:<24} {:>38}", "subtotal", total.to_sci_string());
    println!("{:<24} {:>38}", "tax (8.25%)", tax.to_sci_string());
    println!("{:<24} {:>38}", "total due", due.to_sci_string());
    assert!(ctx.status().is_clear() || !ctx.status().is_clear()); // flags inspected below
    println!("context flags after the batch: {}", ctx.status());

    // ---- the same multiplications as a back-end batch on the SoC ----
    // Build the line-item multiplications as test vectors and run them on
    // the cycle-accurate core with and without the accelerator.
    let vectors: Vec<TestVector> = lines
        .iter()
        .map(|(_, qty, price)| TestVector {
            x: qty.parse().expect("parses"),
            y: price.parse().expect("parses"),
            class: decimalarith::testgen::CaseClass::Normal,
        })
        .collect();
    println!("\nback-end batch on the simulated SoC ({} multiplies):", vectors.len());
    let mut baseline = None;
    for kind in [KernelKind::Software, KernelKind::Method1] {
        let guest = build_guest(kind, &vectors, 50).expect("kernel assembles");
        let eval = run_rocket(&guest, TimingConfig::default());
        assert!(
            verify_results(&eval.results, &vectors).is_empty(),
            "all line items must verify against the reference"
        );
        let total_cycles = eval.avg_total_cycles;
        let speedup = baseline.map(|b: f64| b / total_cycles);
        baseline = baseline.or(Some(total_cycles));
        println!(
            "  {:<28} {:>7.0} cycles/multiply{}",
            kind.name(),
            total_cycles,
            speedup.map_or(String::new(), |s| format!("  ({s:.2}x faster)")),
        );
    }
}
