//! Guest-kernel verification: every kernel must reproduce the `decnum`
//! oracle's bits on the functional simulator (the Spike-role check of the
//! paper's flow), except the dummy configuration which is wrong by design.

use crate::framework::{build_guest, run_functional, verify_results};
use crate::kernels::KernelKind;
use testgen::{generate, CaseClass, TestConfig};

fn vectors(count: usize, seed: u64) -> Vec<testgen::TestVector> {
    generate(&TestConfig {
        count,
        seed,
        class_mix: vec![
            (CaseClass::Normal, 1),
            (CaseClass::Rounding, 1),
            (CaseClass::Overflow, 1),
            (CaseClass::Underflow, 1),
            (CaseClass::Clamping, 1),
            (CaseClass::Special, 1),
        ],
        ..TestConfig::default()
    })
}

fn check_kernel(kind: KernelKind, count: usize, seed: u64) {
    let vectors = vectors(count, seed);
    let guest = build_guest(kind, &vectors, 1).unwrap_or_else(|e| panic!("{kind}: {e}"));
    let run = run_functional(&guest);
    let mismatches = verify_results(&run.results, &vectors);
    assert!(
        mismatches.is_empty(),
        "{kind}: {} mismatches, first at sample {}: {} × {} -> got {:#018x}",
        mismatches.len(),
        mismatches[0],
        vectors[mismatches[0]].x,
        vectors[mismatches[0]].y,
        run.results[mismatches[0]],
    );
}

#[test]
fn software_kernel_matches_oracle() {
    check_kernel(KernelKind::Software, 120, 11);
}

#[test]
fn method1_kernel_matches_oracle() {
    check_kernel(KernelKind::Method1, 120, 22);
}

#[test]
fn method1_ft_kernel_matches_oracle() {
    check_kernel(KernelKind::Method1Ft, 120, 77);
}

#[test]
fn method1_ft_never_degrades_on_a_healthy_accelerator() {
    let vectors = vectors(60, 88);
    let guest = build_guest(KernelKind::Method1Ft, &vectors, 1).unwrap();
    let run = run_functional(&guest);
    assert!(verify_results(&run.results, &vectors).is_empty());
    assert_eq!(
        run.degraded,
        Some(0),
        "detection net must not false-positive on a healthy accelerator"
    );
}

#[test]
fn method2_kernel_matches_oracle() {
    check_kernel(KernelKind::Method2, 90, 33);
}

#[test]
fn method3_kernel_matches_oracle() {
    check_kernel(KernelKind::Method3, 90, 44);
}

#[test]
fn method4_kernel_matches_oracle() {
    check_kernel(KernelKind::Method4, 90, 55);
}

#[test]
fn dummy_kernel_runs_but_is_wrong() {
    let vectors = vectors(60, 66);
    let guest = build_guest(KernelKind::Method1Dummy, &vectors, 1).unwrap();
    let run = run_functional(&guest);
    let mismatches = verify_results(&run.results, &vectors);
    assert!(
        !mismatches.is_empty(),
        "dummy functions must corrupt at least some results"
    );
}

#[test]
fn kernel_sources_are_plausible_assembly() {
    for kind in KernelKind::ALL {
        let src = super::kernel_source(kind);
        assert!(src.contains("kernel:"), "{kind}");
        assert!(src.contains("round_pack"), "{kind}");
        if kind == KernelKind::Method1Dummy {
            assert!(src.contains("dummy_dec_add"), "{kind}");
            assert!(!src.contains("custom0 4"), "{kind} must not use DEC_ADD");
        }
        if kind == KernelKind::Software {
            assert!(!src.contains("custom0"), "{kind} must be pure software");
        }
    }
}

#[test]
fn regression_pow10_overrun_in_binary_rounding() {
    // Found at sample 7088 of the full 8,000-vector workload: an
    // underflow-to-zero product whose 64-bit remainder still spanned 20
    // decimal digits, which used to index past the pow10 table in the
    // binary rounding epilogue.
    use dpd::Decimal64;
    let x = decnum::DecNumber::from_decimal64(Decimal64::from_bits(0x8284_0000_2A04_FA0E));
    let y = decnum::DecNumber::from_decimal64(Decimal64::from_bits(0x0358_33A7_59A7_3CF2));
    let vectors = vec![testgen::TestVector {
        x,
        y,
        class: CaseClass::Underflow,
    }];
    for kind in [KernelKind::Software, KernelKind::SoftwareBid] {
        let guest = build_guest(kind, &vectors, 1).unwrap();
        let run = run_functional(&guest);
        assert!(
            verify_results(&run.results, &vectors).is_empty(),
            "{kind}: got {:#018x}",
            run.results[0]
        );
    }
}

#[test]
fn regression_full_width_discard_shift() {
    // discard == 32 makes the BCD epilogue's shift amount 128 bits; RV64
    // shifts mask the amount to six bits, so the kernel must branch to an
    // explicit clear instead (found by the workspace property test).
    let x: decnum::DecNumber = "1.127694509785803E-339".parse().unwrap();
    let y: decnum::DecNumber = "-9.262133257640877E-61".parse().unwrap();
    let vectors = vec![testgen::TestVector {
        x,
        y,
        class: CaseClass::Underflow,
    }];
    for kind in [
        KernelKind::Method1,
        KernelKind::Method1Ft,
        KernelKind::Method2,
        KernelKind::Method3,
        KernelKind::Method4,
    ] {
        let guest = build_guest(kind, &vectors, 1).unwrap();
        let run = run_functional(&guest);
        assert!(
            verify_results(&run.results, &vectors).is_empty(),
            "{kind}: got {:#018x}",
            run.results[0]
        );
    }
}

#[test]
fn kernel_slugs_round_trip_and_are_unique() {
    let mut seen = std::collections::BTreeSet::new();
    for kind in KernelKind::ALL {
        let slug = kind.slug();
        assert!(seen.insert(slug), "duplicate slug {slug:?}");
        assert_eq!(KernelKind::from_slug(slug), Some(kind));
        assert!(
            slug.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "slug {slug:?} is not a clean identifier"
        );
    }
    assert_eq!(KernelKind::from_slug("no_such_kernel"), None);
    for kind in KernelKind::FAULT_CAMPAIGN {
        assert!(KernelKind::ALL.contains(&kind));
    }
}
