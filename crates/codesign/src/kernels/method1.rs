//! The Method-1 guest kernel (paper Fig. 1 and §IV-B).
//!
//! Software part: specials, sign/exponent, DPD→BCD, rounding, BCD→DPD.
//! Hardware part: `DEC_ADD`/`DEC_ADC` for the multiplicand multiples and
//! the partial-product accumulation (or dummy-function calls in the
//! estimation configuration).
//!
//! Register allocation inside `kernel`:
//! `s4`/`s5` — operand bits, later the MM-table base and the digit shift;
//! `s6`/`s7` — X/Y coefficients (BCD); `s8` — biased product exponent;
//! `s9`/`s11` — product hi/lo; `s10` — result sign.

use super::common::{dec_add, dec_adc, AddStyle};

/// The common specials-and-decode prologue shared by all BCD kernels:
/// NaN/infinity handling on raw bits, then decode of both operands, leaving
/// the zero check done and registers set up as documented above. Jumps to
/// `k_core` for finite non-zero operands.
pub(crate) const PROLOGUE: &str = "
kernel:
    addi sp, sp, -96
    sd   ra, 88(sp)
    sd   s4, 0(sp)
    sd   s5, 8(sp)
    sd   s6, 16(sp)
    sd   s7, 24(sp)
    sd   s8, 32(sp)
    sd   s9, 40(sp)
    sd   s10, 48(sp)
    sd   s11, 56(sp)
    mv   s4, a0
    mv   s5, a1
    # ---- Special? ----
    srli t0, s4, 58
    andi t0, t0, 31
    srli t2, s5, 58
    andi t2, t2, 31
    li   t1, 31
    beq  t0, t1, k_x_nan
    beq  t2, t1, k_y_nan
    li   t1, 30
    beq  t0, t1, k_x_inf
    beq  t2, t1, k_y_inf
    j    k_finite
k_x_nan:
    mv   a0, s4
    j    k_quiet
k_y_nan:
    mv   a0, s5
k_quiet:
    # quiet + canonical: clear the exponent-continuation bits 57..50
    li   t0, 255
    slli t0, t0, 50
    not  t0, t0
    and  a0, a0, t0
    j    k_return
k_x_inf:
    li   t1, 30
    beq  t2, t1, k_inf_result   # inf x inf
    mv   a0, s5
    call is_zero64
    bnez a0, k_invalid
    j    k_inf_result
k_y_inf:
    mv   a0, s4
    call is_zero64
    bnez a0, k_invalid
k_inf_result:
    srli t0, s4, 63
    srli t1, s5, 63
    xor  t0, t0, t1
    slli t0, t0, 63
    li   a0, 0x7800000000000000
    or   a0, a0, t0
    j    k_return
k_invalid:
    li   a0, 0x7C00000000000000
    j    k_return
k_finite:
    # ---- decode both operands ----
    mv   a0, s4
    call decode64
    mv   s6, a0
    mv   s8, a1
    mv   s10, a2
    mv   a0, s5
    call decode64
    mv   s7, a0
    add  s8, s8, a1
    addi s8, s8, -398          # biased product exponent
    xor  s10, s10, a2          # sign
    bnez s6, k_x_nonzero
    j    k_zero
k_x_nonzero:
    bnez s7, k_core
k_zero:
    li   a0, 0
    li   a1, 0
    mv   a2, s8
    mv   a3, s10
    call round_pack
    j    k_return
k_core:
";

/// The shared epilogue: hand the product to `round_pack` and restore.
pub(crate) const EPILOGUE: &str = "
k_pack:
    mv   a0, s11
    mv   a1, s9
    mv   a2, s8
    mv   a3, s10
    call round_pack
k_return:
    ld   ra, 88(sp)
    ld   s4, 0(sp)
    ld   s5, 8(sp)
    ld   s6, 16(sp)
    ld   s7, 24(sp)
    ld   s8, 32(sp)
    ld   s9, 40(sp)
    ld   s10, 48(sp)
    ld   s11, 56(sp)
    addi sp, sp, 96
    ret
";

/// Emits the Method-1 kernel (real RoCC instructions, or dummy calls).
#[must_use]
pub(crate) fn kernel(dummy: bool) -> String {
    let style = AddStyle::from_dummy(dummy);
    let mut core = String::new();
    // ---- multiplicand multiples MM[0..9] (Fig. 1 left) ----
    core += "
    la   s4, mm_table
    sd   zero, 0(s4)
    sd   zero, 8(s4)
    sd   s6, 16(s4)
    sd   zero, 24(s4)
    li   t5, 8
    addi t6, s4, 16
m1_mm_loop:
    ld   a0, 0(t6)
    ld   a1, 8(t6)
";
    core += &dec_add("a0", "a0", "s6", style);
    core += &dec_adc("a1", "a1", "zero", style);
    core += "
    sd   a0, 16(t6)
    sd   a1, 24(t6)
    addi t6, t6, 16
    addi t5, t5, -1
    bnez t5, m1_mm_loop
";
    // ---- accumulate shifted partial products (Fig. 1 right) ----
    core += "
    li   s9, 0
    li   s11, 0
    li   s5, 60
m1_acc_loop:
    srli t0, s11, 60
    slli s9, s9, 4
    or   s9, s9, t0
    slli s11, s11, 4
    srl  t0, s7, s5
    andi t0, t0, 15
    slli t0, t0, 4
    add  t0, t0, s4
    ld   a0, 0(t0)
    ld   a1, 8(t0)
";
    core += &dec_add("s11", "s11", "a0", style);
    core += &dec_adc("s9", "s9", "a1", style);
    core += "
    addi s5, s5, -4
    bgez s5, m1_acc_loop
    j    k_pack
";
    format!("{PROLOGUE}{core}{EPILOGUE}")
}
