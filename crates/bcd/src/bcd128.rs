use std::fmt;
use std::str::FromStr;

use crate::{Bcd64, BcdError, BCD128_DIGITS};

/// Thirty-two packed BCD-8421 digits in a `u128`.
///
/// Wide BCD values appear in two places in the co-design: coefficient
/// products (16 × 16 digits → up to 32 digits) and the decimal accelerator's
/// internal accumulator, which `DEC_ACCUM` updates without round-tripping
/// through the core.
///
/// # Example
///
/// ```
/// use bcd::{Bcd64, Bcd128};
///
/// # fn main() -> Result<(), bcd::BcdError> {
/// let x = Bcd64::from_value(9_999_999_999_999_999)?;
/// let square: Bcd128 = x.full_mul(x);
/// assert_eq!(square.significant_digits(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bcd128(u128);

impl Bcd128 {
    /// The zero value.
    pub const ZERO: Bcd128 = Bcd128(0);
    /// The one value.
    pub const ONE: Bcd128 = Bcd128(1);
    /// The largest representable value (thirty-two nines).
    pub const MAX: Bcd128 = Bcd128(0x9999_9999_9999_9999_9999_9999_9999_9999);

    /// Wraps a raw packed word, validating every nibble.
    ///
    /// # Errors
    ///
    /// Returns [`BcdError::InvalidNibble`] if any nibble is `0xA..=0xF`.
    pub fn new(raw: u128) -> Result<Self, BcdError> {
        for i in 0..32 {
            let nibble = ((raw >> (4 * i)) & 0xF) as u8;
            if nibble > 9 {
                return Err(BcdError::InvalidNibble { position: i, nibble });
            }
        }
        Ok(Bcd128(raw))
    }

    /// Wraps a raw packed word the caller already knows is valid.
    #[must_use]
    pub const fn from_raw_unchecked(raw: u128) -> Self {
        Bcd128(raw)
    }

    /// Zero-extends a [`Bcd64`] into the wide type.
    #[must_use]
    pub const fn from_bcd64(b: Bcd64) -> Self {
        Bcd128(b.raw() as u128)
    }

    /// Builds a wide value from `(high, low)` 64-bit halves.
    #[must_use]
    pub fn from_halves(high: Bcd64, low: Bcd64) -> Self {
        Bcd128(((high.raw() as u128) << 64) | low.raw() as u128)
    }

    /// Converts a binary integer to BCD.
    ///
    /// # Errors
    ///
    /// Returns [`BcdError::ValueTooLarge`] if `value >= 10^32`.
    pub fn from_value(value: u128) -> Result<Self, BcdError> {
        const LIMIT: u128 = 100_000_000_000_000_000_000_000_000_000_000; // 10^32
        if value >= LIMIT {
            return Err(BcdError::ValueTooLarge {
                capacity: BCD128_DIGITS,
            });
        }
        let mut raw = 0u128;
        let mut v = value;
        let mut shift = 0;
        while v != 0 {
            raw |= (v % 10) << shift;
            v /= 10;
            shift += 4;
        }
        Ok(Bcd128(raw))
    }

    /// The raw packed representation.
    #[must_use]
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Splits into `(high, low)` 64-bit halves.
    #[must_use]
    pub fn to_halves(self) -> (Bcd64, Bcd64) {
        (
            Bcd64::from_raw_unchecked((self.0 >> 64) as u64),
            Bcd64::from_raw_unchecked(self.0 as u64),
        )
    }

    /// The low sixteen digits (truncation).
    #[must_use]
    pub fn low(self) -> Bcd64 {
        self.to_halves().1
    }

    /// Converts back to a binary integer.
    #[must_use]
    pub fn to_value(self) -> u128 {
        let mut v = 0u128;
        for i in (0..32).rev() {
            v = v * 10 + ((self.0 >> (4 * i)) & 0xF);
        }
        v
    }

    /// Returns digit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[must_use]
    pub fn digit(self, i: u32) -> u8 {
        assert!(i < BCD128_DIGITS, "digit index {i} out of range");
        ((self.0 >> (4 * i)) & 0xF) as u8
    }

    /// Number of significant decimal digits (zero has zero).
    #[must_use]
    pub fn significant_digits(self) -> u32 {
        if self.0 == 0 {
            0
        } else {
            32 - self.0.leading_zeros() / 4
        }
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Decimal addition. Returns `(sum, carry_out)`.
    ///
    /// Implemented as two chained 64-bit BCD adds, exactly as the guest
    /// kernels chain `DEC_ADD`/`DEC_ADC` over the RoCC interface.
    // Not `std::ops`: decimal add/sub also return the carry/borrow.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Bcd128) -> (Bcd128, bool) {
        let (ah, al) = self.to_halves();
        let (bh, bl) = other.to_halves();
        let (lo, c0) = al.add(bl);
        let (hi, c1) = ah.adc(bh, c0);
        (Bcd128::from_halves(hi, lo), c1)
    }

    /// Decimal subtraction. Returns `(difference, borrow)`.
    // Not `std::ops`: decimal add/sub also return the carry/borrow.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn sub(self, other: Bcd128) -> (Bcd128, bool) {
        let (ah, al) = self.to_halves();
        let (bh, bl) = other.to_halves();
        let (lo, borrow_lo) = al.sub(bl);
        // Propagate the borrow by subtracting (bh + borrow).
        let (hi1, borrow1) = ah.sub(bh);
        if borrow_lo {
            let (hi2, borrow2) = hi1.sub(Bcd64::ONE);
            (Bcd128::from_halves(hi2, lo), borrow1 | borrow2)
        } else {
            (Bcd128::from_halves(hi1, lo), borrow1)
        }
    }

    /// Shifts left by `digits` decimal digits.
    #[must_use]
    pub fn shl_digits(self, digits: u32) -> Bcd128 {
        if digits >= BCD128_DIGITS {
            Bcd128(0)
        } else {
            Bcd128(self.0 << (4 * digits))
        }
    }

    /// Shifts right by `digits` decimal digits (discarding low digits).
    #[must_use]
    pub fn shr_digits(self, digits: u32) -> Bcd128 {
        if digits >= BCD128_DIGITS {
            Bcd128(0)
        } else {
            Bcd128(self.0 >> (4 * digits))
        }
    }

    /// True if any of the lowest `digits` digits is non-zero (the "sticky"
    /// condition used when rounding a shifted-off tail).
    #[must_use]
    pub fn sticky_below(self, digits: u32) -> bool {
        if digits == 0 {
            false
        } else if digits >= BCD128_DIGITS {
            !self.is_zero()
        } else {
            self.0 & ((1u128 << (4 * digits)) - 1) != 0
        }
    }

    /// Iterates over all thirty-two digit positions, least significant first.
    pub fn iter_digits(self) -> impl Iterator<Item = u8> {
        (0..BCD128_DIGITS).map(move |i| self.digit(i))
    }
}

impl fmt::Debug for Bcd128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bcd128({:#034x})", self.0)
    }
}

impl fmt::Display for Bcd128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_value())
    }
}

impl fmt::LowerHex for Bcd128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<Bcd64> for Bcd128 {
    fn from(b: Bcd64) -> Self {
        Bcd128::from_bcd64(b)
    }
}

impl FromStr for Bcd128 {
    type Err = BcdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(BcdError::ParseError);
        }
        if s.len() > 32 {
            return Err(BcdError::ValueTooLarge {
                capacity: BCD128_DIGITS,
            });
        }
        let mut raw = 0u128;
        for b in s.bytes() {
            raw = (raw << 4) | u128::from(b - b'0');
        }
        Ok(Bcd128(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        for v in [0u128, 1, 99, 10u128.pow(31), 10u128.pow(32) - 1] {
            assert_eq!(Bcd128::from_value(v).unwrap().to_value(), v);
        }
        assert!(Bcd128::from_value(10u128.pow(32)).is_err());
    }

    #[test]
    fn halves_roundtrip() {
        let hi = Bcd64::from_value(1234).unwrap();
        let lo = Bcd64::from_value(5678).unwrap();
        let wide = Bcd128::from_halves(hi, lo);
        assert_eq!(wide.to_halves(), (hi, lo));
        assert_eq!(wide.low(), lo);
    }

    #[test]
    fn add_carries_across_halves() {
        let a = Bcd128::from_value(9_999_999_999_999_999).unwrap(); // all 16 low digits
        let (s, c) = a.add(Bcd128::ONE);
        assert_eq!(s.to_value(), 10_000_000_000_000_000);
        assert!(!c);
    }

    #[test]
    fn add_overflow() {
        let (s, c) = Bcd128::MAX.add(Bcd128::ONE);
        assert_eq!(s, Bcd128::ZERO);
        assert!(c);
    }

    #[test]
    fn sub_across_halves() {
        let a = Bcd128::from_value(10_000_000_000_000_000).unwrap();
        let (d, borrow) = a.sub(Bcd128::ONE);
        assert_eq!(d.to_value(), 9_999_999_999_999_999);
        assert!(!borrow);
        let (_, borrow2) = Bcd128::ZERO.sub(Bcd128::ONE);
        assert!(borrow2);
    }

    #[test]
    fn shifts_and_sticky() {
        let v = Bcd128::from_value(123_400).unwrap();
        assert_eq!(v.shl_digits(2).to_value(), 12_340_000);
        assert_eq!(v.shr_digits(3).to_value(), 123);
        assert!(v.sticky_below(3));
        assert!(!v.sticky_below(2));
        assert!(!Bcd128::ZERO.sticky_below(32));
        assert!(Bcd128::ONE.sticky_below(32));
    }

    #[test]
    fn significant_digits_wide() {
        assert_eq!(Bcd128::ZERO.significant_digits(), 0);
        assert_eq!(Bcd128::from_value(10u128.pow(16)).unwrap().significant_digits(), 17);
        assert_eq!(Bcd128::MAX.significant_digits(), 32);
    }

    #[test]
    fn parse_long_string() {
        let s = "12345678901234567890123456789012";
        let b: Bcd128 = s.parse().unwrap();
        assert_eq!(b.to_string(), s);
        assert!("123456789012345678901234567890123".parse::<Bcd128>().is_err());
    }
}
