//! Spike-style execution tracing: an instruction-by-instruction commit log
//! for debugging guest kernels.

use riscv_isa::Reg;

use crate::{Cpu, CpuError, Event};

/// One committed instruction in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Address of the instruction.
    pub pc: u64,
    /// The raw disassembly.
    pub disassembly: String,
    /// Destination register write, if any: `(reg, new value)`.
    pub write: Option<(Reg, u64)>,
    /// Data-memory effective address touched, if any.
    pub mem_addr: Option<u64>,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}  {:<32}", self.pc, self.disassembly)?;
        if let Some((reg, value)) = self.write {
            write!(f, "  {reg} <- {value:#x}")?;
        }
        if let Some(addr) = self.mem_addr {
            write!(f, "  [{addr:#x}]")?;
        }
        Ok(())
    }
}

/// Runs the CPU to exit while recording a commit log, keeping only the most
/// recent `window` entries (a flight recorder — full traces of real kernels
/// are millions of lines).
///
/// Returns the exit code and the retained trace tail. On a fault, returns
/// the error alongside the tail so the crash context is inspectable.
///
/// # Errors
///
/// Propagates the underlying [`CpuError`], paired with the trace tail.
pub fn run_traced(
    cpu: &mut Cpu,
    max_instructions: u64,
    window: usize,
) -> Result<(i64, Vec<TraceEntry>), (CpuError, Vec<TraceEntry>)> {
    let mut tail: std::collections::VecDeque<TraceEntry> =
        std::collections::VecDeque::with_capacity(window.max(1));
    for _ in 0..max_instructions {
        match cpu.step() {
            Ok(Event::Exited { code }) => return Ok((code, tail.into_iter().collect())),
            Ok(Event::Retired(retired)) => {
                let write = retired
                    .instr
                    .dest()
                    .map(|reg| (reg, cpu.reg(reg)));
                if tail.len() == window {
                    tail.pop_front();
                }
                tail.push_back(TraceEntry {
                    pc: retired.pc,
                    disassembly: retired.instr.to_string(),
                    write,
                    mem_addr: retired.mem_access.map(|a| a.addr),
                });
            }
            Ok(Event::Trapped { cause, epc }) => {
                // Trap delivery is a commit-log event, not a retirement.
                if tail.len() == window {
                    tail.pop_front();
                }
                tail.push_back(TraceEntry {
                    pc: epc,
                    disassembly: format!("<trap cause={cause}>"),
                    write: None,
                    mem_addr: None,
                });
            }
            Err(e) => return Err((e, tail.into_iter().collect())),
        }
    }
    Err((
        CpuError::InstructionLimit(max_instructions),
        tail.into_iter().collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::instr::OpImmOp;
    use riscv_isa::Instr;

    fn program(cpu: &mut Cpu, instrs: &[Instr]) {
        for (i, instr) in instrs.iter().enumerate() {
            cpu.memory
                .write_u32(0x1000 + 4 * i as u64, instr.encode().unwrap())
                .unwrap();
        }
        cpu.set_pc(0x1000);
    }

    #[test]
    fn trace_records_writes_and_exit() {
        let mut cpu = Cpu::new();
        program(
            &mut cpu,
            &[
                Instr::OpImm {
                    op: OpImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::ZERO,
                    imm: 7,
                },
                Instr::OpImm {
                    op: OpImmOp::Addi,
                    rd: Reg::A7,
                    rs1: Reg::ZERO,
                    imm: 93,
                },
                Instr::Ecall,
            ],
        );
        let (code, trace) = run_traced(&mut cpu, 100, 16).unwrap();
        assert_eq!(code, 7);
        assert_eq!(trace.len(), 2, "the exiting ecall is not a retirement");
        assert_eq!(trace[0].write, Some((Reg::A0, 7)));
        assert!(trace[0].to_string().contains("addi a0, zero, 7"));
    }

    #[test]
    fn window_keeps_only_the_tail() {
        let mut cpu = Cpu::new();
        let mut body = vec![
            Instr::OpImm {
                op: OpImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: 1,
            };
            20
        ];
        body.push(Instr::OpImm {
            op: OpImmOp::Addi,
            rd: Reg::A7,
            rs1: Reg::ZERO,
            imm: 93,
        });
        body.push(Instr::Ecall);
        program(&mut cpu, &body);
        let (_, trace) = run_traced(&mut cpu, 1000, 5).unwrap();
        assert_eq!(trace.len(), 5);
        // The last retained entry is the a7 setup, preceded by increments.
        assert!(trace[4].disassembly.contains("a7"));
        assert_eq!(trace[3].write, Some((Reg::T0, 20)));
    }

    #[test]
    fn fault_returns_context() {
        let mut cpu = Cpu::new();
        program(
            &mut cpu,
            &[
                Instr::NOP,
                Instr::Load {
                    op: riscv_isa::instr::LoadOp::Ld,
                    rd: Reg::T0,
                    rs1: Reg::ZERO,
                    offset: 0x70,
                },
            ],
        );
        let (err, trace) = run_traced(&mut cpu, 100, 8).unwrap_err();
        assert!(matches!(err, CpuError::UnmappedAddress(0x70)));
        assert_eq!(trace.len(), 1, "the faulting instruction does not retire");
    }
}
