//! A Gem5-`AtomicSimpleCPU`-like simulator.
//!
//! The paper's Table VI cross-checks the dummy-function estimate on "Gem-5
//! simulator with AtomicSimpleCPU at system call emulation (SE) mode"
//! targeting the RISC-V ISA. `AtomicSimpleCPU` executes one instruction per
//! CPU tick and folds memory time into fixed atomic-access latencies — no
//! pipeline, no caches. This crate reproduces that model on top of the
//! shared functional executor: every instruction costs one cycle plus a
//! fixed latency per data-memory access, and results are reported as
//! simulated seconds at a configurable clock.
//!
//! # Example
//!
//! ```
//! use atomic_sim::{AtomicSim, AtomicConfig};
//! use riscv_isa::{Instr, Reg};
//! use riscv_isa::instr::OpImmOp;
//!
//! # fn main() -> Result<(), riscv_sim::CpuError> {
//! let mut sim = AtomicSim::new(AtomicConfig::default());
//! let prog = [
//!     Instr::OpImm { op: OpImmOp::Addi, rd: Reg::A0, rs1: Reg::ZERO, imm: 0 },
//!     Instr::OpImm { op: OpImmOp::Addi, rd: Reg::A7, rs1: Reg::ZERO, imm: 93 },
//!     Instr::Ecall,
//! ];
//! for (i, instr) in prog.iter().enumerate() {
//!     sim.cpu.memory.write_u32(0x1000 + 4 * i as u64, instr.encode().unwrap())?;
//! }
//! sim.cpu.set_pc(0x1000);
//! let report = sim.run(100)?;
//! assert!(report.simulated_seconds > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use riscv_isa::Instr;
use riscv_sim::snapshot::{seal, unseal, ByteReader, ByteWriter};
use riscv_sim::{Coprocessor, CpuError, CpuSnapshot, Event, Marker, SnapshotError};

/// Atomic-CPU timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicConfig {
    /// Clock frequency in Hz (Gem5's default CPU clock is 1 GHz).
    pub clock_hz: f64,
    /// Extra cycles charged per data-memory access (atomic access latency).
    pub mem_access_cycles: u64,
    /// Extra cycles charged per multiply.
    pub mul_cycles: u64,
    /// Extra cycles charged per divide/remainder.
    pub div_cycles: u64,
    /// RoCC busy-watchdog bound forwarded to the functional core (a hung
    /// accelerator command reports [`CpuError::RoccTimeout`]).
    pub rocc_watchdog: u32,
}

impl Default for AtomicConfig {
    fn default() -> Self {
        AtomicConfig {
            clock_hz: 1.0e9,
            mem_access_cycles: 1,
            mul_cycles: 0,
            div_cycles: 0,
            rocc_watchdog: riscv_sim::DEFAULT_ROCC_WATCHDOG,
        }
    }
}

/// Counters for one atomic-mode run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AtomicStats {
    /// Ticks consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// Data-memory accesses.
    pub mem_accesses: u64,
}

/// Result of a completed atomic-mode run.
#[derive(Debug, Clone)]
pub struct AtomicReport {
    /// The guest's exit code.
    pub exit_code: i64,
    /// Counters.
    pub stats: AtomicStats,
    /// Simulated wall-clock time (`cycles / clock_hz`), the quantity the
    /// paper's Table VI reports.
    pub simulated_seconds: f64,
    /// Markers recorded by the guest.
    pub markers: Vec<Marker>,
    /// Captured console output.
    pub console: Vec<u8>,
}

/// The atomic CPU: the shared functional executor plus trivial fixed-cost
/// timing.
pub struct AtomicSim {
    /// The wrapped functional core (public for program loading).
    pub cpu: riscv_sim::Cpu,
    config: AtomicConfig,
    stats: AtomicStats,
}

impl std::fmt::Debug for AtomicSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicSim")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Default for AtomicSim {
    fn default() -> Self {
        AtomicSim::new(AtomicConfig::default())
    }
}

impl AtomicSim {
    /// Builds a simulator with the given timing parameters.
    #[must_use]
    pub fn new(config: AtomicConfig) -> Self {
        let mut cpu = riscv_sim::Cpu::new();
        cpu.rocc_watchdog = config.rocc_watchdog;
        AtomicSim {
            cpu,
            config,
            stats: AtomicStats::default(),
        }
    }

    /// Attaches a RoCC accelerator (SE-mode co-simulation).
    pub fn attach_coprocessor(&mut self, coprocessor: Box<dyn Coprocessor>) {
        self.cpu.attach_coprocessor(coprocessor);
    }

    /// Installs a retirement observer on the wrapped functional core, so
    /// this simulator emits the same canonical retirement stream as the
    /// others (see [`riscv_sim::RetirementRecord`]).
    pub fn set_retire_observer(
        &mut self,
        observer: impl FnMut(&riscv_sim::RetirementRecord) + 'static,
    ) {
        self.cpu.set_retire_observer(observer);
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> AtomicStats {
        self.stats
    }

    /// Executes one instruction, charging one tick plus fixed latencies.
    ///
    /// # Errors
    ///
    /// Propagates functional-core faults.
    pub fn step(&mut self) -> Result<Event, CpuError> {
        self.cpu.cycle = self.stats.cycles;
        let event = self.cpu.step()?;
        self.stats.cycles += 1;
        if let Event::Trapped { .. } = event {
            // Trap delivery consumes the tick but retires nothing.
            return Ok(event);
        }
        self.stats.instret += 1;
        if let Event::Retired(retired) = &event {
            if retired.mem_access.is_some() {
                self.stats.cycles += self.config.mem_access_cycles;
                self.stats.mem_accesses += 1;
            }
            match retired.instr {
                Instr::Op { op, .. } if op.is_muldiv() => {
                    self.stats.cycles += if matches!(
                        op,
                        riscv_isa::instr::OpOp::Mul
                            | riscv_isa::instr::OpOp::Mulh
                            | riscv_isa::instr::OpOp::Mulhsu
                            | riscv_isa::instr::OpOp::Mulhu
                    ) {
                        self.config.mul_cycles
                    } else {
                        self.config.div_cycles
                    };
                }
                Instr::Custom(_) => {
                    if let Some(resp) = retired.rocc {
                        self.stats.cycles += u64::from(resp.busy_cycles);
                        self.stats.mem_accesses += u64::from(resp.mem_accesses);
                    }
                }
                _ => {}
            }
        }
        Ok(event)
    }

    /// Captures the complete machine state: the functional core (registers,
    /// pc, CSRs, memory pages, attached-coprocessor state, counters) plus
    /// this simulator's tick counters. The timing parameters
    /// ([`AtomicConfig`]) are *not* part of the snapshot — restore targets a
    /// simulator built with the same configuration.
    #[must_use]
    pub fn snapshot(&self) -> AtomicSnapshot {
        AtomicSnapshot {
            cpu: self.cpu.snapshot(),
            stats: self.stats,
        }
    }

    /// Restores a snapshot taken with [`AtomicSim::snapshot`] into this
    /// simulator. The retirement observer, if any, is harness state and is
    /// kept as-is.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] from the functional-core restore (for
    /// example a coprocessor-state mismatch).
    pub fn restore(&mut self, snapshot: &AtomicSnapshot) -> Result<(), SnapshotError> {
        self.cpu.restore(&snapshot.cpu)?;
        self.stats = snapshot.stats;
        Ok(())
    }

    /// Runs to exit or `max_instructions`.
    ///
    /// # Errors
    ///
    /// Propagates faults, or [`CpuError::InstructionLimit`].
    pub fn run(&mut self, max_instructions: u64) -> Result<AtomicReport, CpuError> {
        for _ in 0..max_instructions {
            if let Event::Exited { code } = self.step()? {
                return Ok(AtomicReport {
                    exit_code: code,
                    stats: self.stats,
                    simulated_seconds: self.stats.cycles as f64 / self.config.clock_hz,
                    markers: self.cpu.markers.clone(),
                    console: self.cpu.console.clone(),
                });
            }
        }
        Err(CpuError::InstructionLimit(max_instructions))
    }
}

/// Envelope kind tag for serialized [`AtomicSnapshot`]s (`"ATM1"`).
pub const SNAPSHOT_KIND: u32 = 0x314D_5441;

/// Serializable state of an [`AtomicSim`]: the wrapped functional core plus
/// the atomic-mode tick counters. The [`AtomicConfig`] is excluded — a
/// snapshot only restores into a simulator built with the same
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSnapshot {
    /// Functional-core state.
    pub cpu: CpuSnapshot,
    /// Tick counters at the snapshot point.
    pub stats: AtomicStats,
}

impl AtomicSnapshot {
    /// Serializes into the common checksummed snapshot envelope.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.blob(&self.cpu.to_bytes());
        w.u64(self.stats.cycles);
        w.u64(self.stats.instret);
        w.u64(self.stats.mem_accesses);
        seal(SNAPSHOT_KIND, &w.finish())
    }

    /// Deserializes a snapshot produced by [`AtomicSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the envelope, version, kind,
    /// checksum, or body layout is invalid.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let body = unseal(bytes, SNAPSHOT_KIND)?;
        let mut r = ByteReader::new(body);
        let cpu = CpuSnapshot::from_bytes(r.blob()?)?;
        let stats = AtomicStats {
            cycles: r.u64()?,
            instret: r.u64()?,
            mem_accesses: r.u64()?,
        };
        r.expect_end()?;
        Ok(AtomicSnapshot { cpu, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::instr::{OpImmOp, OpOp};
    use riscv_isa::Reg;

    fn load(sim: &mut AtomicSim, prog: &[Instr]) {
        for (i, instr) in prog.iter().enumerate() {
            sim.cpu
                .memory
                .write_u32(0x1000 + 4 * i as u64, instr.encode().unwrap())
                .unwrap();
        }
        sim.cpu.set_pc(0x1000);
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::OpImm {
            op: OpImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    #[test]
    fn one_cycle_per_instruction() {
        let mut sim = AtomicSim::default();
        let mut prog = vec![Instr::NOP; 10];
        prog.push(addi(Reg::A7, Reg::ZERO, 93));
        prog.push(Instr::Ecall);
        load(&mut sim, &prog);
        let report = sim.run(100).unwrap();
        assert_eq!(report.stats.instret, 12);
        assert_eq!(report.stats.cycles, 12);
        assert!((report.simulated_seconds - 12e-9).abs() < 1e-15);
    }

    #[test]
    fn memory_access_costs_extra() {
        let mut sim = AtomicSim::default();
        sim.cpu.memory.write_u64(0x2000, 1).unwrap();
        sim.cpu.set_reg(Reg::T0, 0x2000);
        let prog = vec![
            Instr::Load {
                op: riscv_isa::instr::LoadOp::Ld,
                rd: Reg::T1,
                rs1: Reg::T0,
                offset: 0,
            },
            addi(Reg::A7, Reg::ZERO, 93),
            Instr::Ecall,
        ];
        load(&mut sim, &prog);
        let report = sim.run(100).unwrap();
        assert_eq!(report.stats.cycles, 4); // 3 instructions + 1 mem access
        assert_eq!(report.stats.mem_accesses, 1);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let build = || {
            let mut sim = AtomicSim::default();
            let mut prog = vec![Instr::NOP; 6];
            prog.push(addi(Reg::A0, Reg::ZERO, 7));
            prog.push(addi(Reg::A7, Reg::ZERO, 93));
            prog.push(Instr::Ecall);
            load(&mut sim, &prog);
            sim
        };
        // Uninterrupted reference run.
        let mut reference = build();
        let want = reference.run(100).unwrap();
        // Run half-way, snapshot, serialize, restore into a fresh sim.
        let mut first = build();
        for _ in 0..4 {
            first.step().unwrap();
        }
        let bytes = first.snapshot().to_bytes();
        let snapshot = AtomicSnapshot::from_bytes(&bytes).unwrap();
        let mut resumed = build();
        resumed.restore(&snapshot).unwrap();
        let got = resumed.run(100).unwrap();
        assert_eq!(got.exit_code, want.exit_code);
        assert_eq!(got.stats, want.stats);
    }

    #[test]
    fn muldiv_latencies_configurable() {
        let mut sim = AtomicSim::new(AtomicConfig {
            mul_cycles: 3,
            div_cycles: 30,
            ..AtomicConfig::default()
        });
        let prog = vec![
            Instr::Op {
                op: OpOp::Mul,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            },
            Instr::Op {
                op: OpOp::Divu,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            },
            addi(Reg::A7, Reg::ZERO, 93),
            Instr::Ecall,
        ];
        sim.cpu.set_reg(Reg::T2, 1);
        load(&mut sim, &prog);
        let report = sim.run(100).unwrap();
        assert_eq!(report.stats.cycles, 4 + 3 + 30);
    }
}
