//! Lockstep differential verification for the decimal co-design framework.
//!
//! The paper's methodology trusts three independently-written simulators —
//! the functional (Spike-role) core, the cycle-accurate Rocket-like core,
//! and the Gem5-`AtomicSimpleCPU`-like model — to agree on the
//! architectural behaviour of every guest binary. This crate *checks* that
//! trust, the way Spike-based co-simulation checks an RTL core:
//!
//! * every simulator emits a **canonical retirement stream**
//!   ([`riscv_sim::RetirementRecord`]): pc, decoded instruction, register
//!   writeback, memory effect, RoCC response value;
//! * [`run_lockstep`] steps two simulators through the same program and
//!   compares the streams retirement by retirement, reporting the first
//!   [`Divergence`] with the pc, the instruction, the register/memory
//!   delta, and the last retirements of shared context;
//! * the [`fuzz`] module generates seeded random-but-valid RV64IM programs
//!   (with RoCC command sequences mixed in), lockstep-checks every
//!   simulator pair, and shrinks failures to minimal programs by delta
//!   debugging;
//! * the [`rocc_diff`] module drives the decimal accelerator and an
//!   independent binary-arithmetic software model with the same command
//!   sequences;
//! * the [`inject`] module provides deliberately-faulty accelerators
//!   (wrong digit, stuck interface FSM) to prove the comparator catches
//!   RoCC-level bugs;
//! * the [`campaign`] module runs seeded single-bit fault-injection
//!   campaigns over the accelerator's architectural state, classifying
//!   every fault as masked, detected in-band, caught by the watchdog, or
//!   silent data corruption;
//! * the [`supervisor`] module bounds every replayed case with instruction
//!   fuel, a memory-page cap, and a wall-clock budget, classifies every
//!   termination into a typed [`supervisor::RunOutcome`], and retries
//!   wedged cases a bounded number of times before quarantining them;
//! * the [`journal`] module provides the append-only, checksummed
//!   write-ahead journal that makes campaigns resumable: a killed run
//!   restarted with its journal completes with a byte-identical report.
//!
//! Cycle counts are timing, not architecture: guest `rdcycle` values
//! legitimately differ across timing models and are masked by the
//! comparator ([`canonical`]); `rdinstret` is identical everywhere and is
//! compared.
//!
//! # Example
//!
//! ```
//! use lockstep::{run_program_pair, LockstepOptions, Pair};
//! use riscv_asm::assemble;
//!
//! let program = assemble(
//!     "start:\n    li a0, 0\n    li a7, 93\n    ecall\n",
//! ).unwrap();
//! for pair in Pair::ALL {
//!     let outcome = run_program_pair(&program, pair, false, &LockstepOptions::default());
//!     assert!(outcome.is_agreement(), "{pair}: {:?}", outcome.divergence());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
mod compare;
pub mod fuzz;
mod guest;
pub mod inject;
pub mod journal;
pub mod rocc_diff;
pub mod supervisor;

pub use compare::{
    canonical, run_lockstep, Divergence, LockstepOptions, LockstepOutcome, LockstepSim, RegDelta,
    StepOutcome, Termination, DEFAULT_CONTEXT,
};
pub use guest::{
    check_kernel_all_pairs, guest_budget, load_program, run_guest_pair, run_program_pair, Pair,
    SimKind,
};

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_asm::{assemble, TEXT_BASE};
    use riscv_isa::Reg;
    use riscv_sim::{Cpu, CpuError, Event};

    /// A functional core with a deliberate single-instruction semantic
    /// mutation: after the instruction at `mutate_at` retires, its
    /// destination register is corrupted (bit 0 flipped) — modelling an
    /// executor bug at exactly one retirement.
    struct MutantSim {
        cpu: Cpu,
        mutate_at: u64,
        fired: bool,
    }

    impl MutantSim {
        fn new(mutate_at: u64) -> Self {
            MutantSim {
                cpu: Cpu::new(),
                mutate_at,
                fired: false,
            }
        }
    }

    impl LockstepSim for MutantSim {
        fn label(&self) -> &'static str {
            "mutant"
        }

        fn cpu(&self) -> &Cpu {
            &self.cpu
        }

        fn cpu_mut(&mut self) -> &mut Cpu {
            &mut self.cpu
        }

        fn step_sim(&mut self) -> Result<Event, CpuError> {
            let event = self.cpu.step()?;
            if let Event::Retired(retired) = &event {
                if retired.pc == self.mutate_at && !self.fired {
                    self.fired = true;
                    if let Some(rd) = retired.instr.dest() {
                        let value = self.cpu.reg(rd);
                        self.cpu.set_reg(rd, value ^ 1);
                    }
                }
            }
            Ok(event)
        }
    }

    const STRAIGHT_LINE: &str = "
        start:
            li t0, 5
            addi t1, t0, 1
            addi t2, t1, 2
            addi t3, t2, 3
            li a0, 0
            li a7, 93
            ecall
    ";

    #[test]
    fn mutation_self_check_reports_exact_pc() {
        // The single mutated retirement must be the reported divergence
        // point — this is the checker checking itself.
        let program = assemble(STRAIGHT_LINE).unwrap();
        let mutated_pc = TEXT_BASE + 2 * 4; // the `addi t2, t1, 2`
        let mut mutant = MutantSim::new(mutated_pc);
        let mut reference = Cpu::new();
        load_program(mutant.cpu_mut(), &program);
        load_program(&mut reference, &program);
        let outcome = run_lockstep(&mut mutant, &mut reference, &LockstepOptions::default());
        let divergence = outcome.divergence().expect("mutation must be caught");
        assert_eq!(divergence.pc, mutated_pc, "{divergence}");
        assert_eq!(divergence.step, 2);
        assert!(
            divergence.reg_delta.iter().any(|d| d.reg == Reg::T2),
            "{divergence}"
        );
        // The report must carry the shared pre-divergence context.
        assert_eq!(divergence.context.len(), 2);
        assert_eq!(divergence.context[0].pc, TEXT_BASE);
    }

    #[test]
    fn unmutated_pair_agrees() {
        let program = assemble(STRAIGHT_LINE).unwrap();
        // A MutantSim that never fires behaves exactly like the reference.
        let mut mutant = MutantSim::new(u64::MAX);
        let mut reference = Cpu::new();
        load_program(mutant.cpu_mut(), &program);
        load_program(&mut reference, &program);
        let outcome = run_lockstep(&mut mutant, &mut reference, &LockstepOptions::default());
        assert!(outcome.is_agreement());
    }

    #[test]
    fn rdcycle_is_masked_but_rdinstret_is_compared() {
        // rdcycle reads each timing model's own counter — the functional
        // and rocket cores disagree wildly on it, and the comparator must
        // not flag that. rdinstret is architectural and must agree.
        let program = assemble(
            "
            start:
                nop
                nop
                rdcycle t0
                rdinstret t1
                li a0, 0
                li a7, 93
                ecall
            ",
        )
        .unwrap();
        for pair in Pair::ALL {
            let outcome = run_program_pair(&program, pair, false, &LockstepOptions::default());
            assert!(
                outcome.is_agreement(),
                "{pair}: {}",
                outcome.divergence().unwrap()
            );
        }
    }

    #[test]
    fn matching_faults_are_agreement() {
        // Both sides hit the same unmapped load: architectural agreement.
        let program = assemble(
            "
            start:
                li t0, 0x666000
                ld a0, 0(t0)
                li a7, 93
                ecall
            ",
        )
        .unwrap();
        let outcome = run_program_pair(
            &program,
            Pair { a: SimKind::Functional, b: SimKind::Rocket },
            false,
            &LockstepOptions::default(),
        );
        match outcome {
            LockstepOutcome::Agreement {
                termination: Termination::MatchingFault(CpuError::UnmappedAddress(0x66_6000)),
                ..
            } => {}
            other => panic!("expected matching fault, got {other:?}"),
        }
    }

    #[test]
    fn fuzz_smoke_run_is_clean() {
        let report = fuzz::run_fuzz(&fuzz::FuzzConfig {
            programs: 15,
            body_items: 30,
            ..fuzz::FuzzConfig::default()
        });
        assert_eq!(report.programs_run, 15);
        assert_eq!(report.pairs_checked, 45);
        for failure in &report.failures {
            panic!(
                "program {} on {} diverged:\n{}\nshrunk to:\n{}",
                failure.program_index, failure.pair, failure.divergence, failure.shrunk_source
            );
        }
        assert!(report.instructions_checked > 0);
    }

    #[test]
    fn fuzz_is_deterministic_in_the_seed() {
        let config = fuzz::FuzzConfig::default();
        assert_eq!(
            fuzz::nth_program_source(&config, 3),
            fuzz::nth_program_source(&config, 3)
        );
        assert_ne!(
            fuzz::nth_program_source(&config, 3),
            fuzz::nth_program_source(&config, 4)
        );
    }

    #[test]
    fn fuzzer_catches_and_shrinks_an_injected_divergence() {
        // Wrong-digit DEC_ADD on one side of the pair: the fuzzer's own
        // machinery (generate → lockstep → shrink) must find the mutant
        // and shrink the failure down to a program that still contains a
        // DEC_ADD command.
        use crate::compare::{run_lockstep, LockstepOptions};
        use crate::fuzz::{generate_items, render_program, shrink_items, Item, SplitMix64};
        use crate::inject::WrongDigitAccelerator;
        use rocc::{DecimalAccelerator, DecimalFunct};

        let mut rng = SplitMix64::new(7);
        let mut items = generate_items(&mut rng, 60, true);
        // A DEC_ADD that always executes (no branch skips past the last
        // item), so the wrong-digit mutant is guaranteed to be exercised.
        items.push(Item::new(
            "bdec",
            vec![
                "li t0, 0x15".to_string(),
                "li t1, 0x27".to_string(),
                "custom0 4, t2, t0, t1, 1, 1, 1".to_string(),
            ],
        ));
        let items = items;
        let tail = rng.clone();
        let render = |items: &[crate::fuzz::Item]| render_program(items, &mut tail.clone());
        let reproduces = |items: &[crate::fuzz::Item]| {
            let Ok(program) = assemble(&render(items)) else {
                return false;
            };
            let mut good = Cpu::new();
            good.attach_coprocessor(Box::new(DecimalAccelerator::new()));
            let mut bad = Cpu::new();
            bad.attach_coprocessor(Box::new(WrongDigitAccelerator::new(DecimalFunct::DecAdd)));
            load_program(&mut good, &program);
            load_program(&mut bad, &program);
            !run_lockstep(&mut good, &mut bad, &LockstepOptions::default()).is_agreement()
        };
        assert!(
            reproduces(&items),
            "the appended DEC_ADD item must expose the wrong-digit mutant"
        );
        let shrunk = shrink_items(items.clone(), &reproduces);
        assert!(shrunk.len() < items.len(), "shrinker should remove items");
        assert!(reproduces(&shrunk));
        let shrunk_source = render(&shrunk);
        assert!(
            shrunk_source.contains("custom0 4,"),
            "minimal program keeps the DEC_ADD:\n{shrunk_source}"
        );
    }

    #[test]
    fn rocc_command_differential_is_clean() {
        let report = rocc_diff::fuzz_rocc_commands(2019, 3_000);
        assert_eq!(report.commands_run, 3_000);
        assert!(report.ok(), "{:#?}", report.mismatches);
    }

    #[test]
    fn rocc_differential_catches_a_model_bug() {
        // Sanity: if the comparison were vacuous, a corrupted command
        // stream would pass too. Drive the accelerator directly out of
        // sync and check the differential notices.
        use rocc::{DecimalAccelerator, DecimalFunct};
        let mut accelerator = DecimalAccelerator::new();
        let mut model = rocc_diff::SoftwareModel::new();
        accelerator
            .command(DecimalFunct::DecAdd, 0x15, 0x27, 0, 0, 0)
            .unwrap();
        let rd = model.command(DecimalFunct::DecAdd, 0x15, 0x26, 0, 0, 0).unwrap();
        assert_ne!(rd, Some(0x42));
    }
}
