//! Building, loading and pairing simulators for lockstep runs — over raw
//! assembled programs (the fuzzer's case) and over the evaluation
//! framework's guest programs (the conformance case).

use codesign::framework::GuestProgram;
use codesign::kernels::KernelKind;
use riscv_asm::{Program, STACK_TOP};
use riscv_isa::Reg;
use riscv_sim::Cpu;
use rocc::DecimalAccelerator;
use testgen::TestVector;

use crate::compare::{run_lockstep, LockstepOptions, LockstepOutcome, LockstepSim};

/// Which simulator plays one side of a lockstep pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    /// The functional (Spike-role) core.
    Functional,
    /// The cycle-accurate Rocket-like core.
    Rocket,
    /// The Gem5-`AtomicSimpleCPU`-like model.
    Atomic,
}

impl SimKind {
    /// All three simulators.
    pub const ALL: [SimKind; 3] = [SimKind::Functional, SimKind::Rocket, SimKind::Atomic];

    /// The label the simulator reports in divergence output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SimKind::Functional => "functional",
            SimKind::Rocket => "rocket",
            SimKind::Atomic => "atomic",
        }
    }

    /// Builds a fresh simulator of this kind, with the decimal accelerator
    /// attached when `with_accelerator` is set.
    #[must_use]
    pub fn build(self, with_accelerator: bool) -> Box<dyn LockstepSim> {
        let mut sim: Box<dyn LockstepSim> = match self {
            SimKind::Functional => Box::new(Cpu::new()),
            SimKind::Rocket => Box::new(rocket_sim::RocketSim::new(
                rocket_sim::TimingConfig::default(),
            )),
            SimKind::Atomic => Box::new(atomic_sim::AtomicSim::new(
                atomic_sim::AtomicConfig::default(),
            )),
        };
        if with_accelerator {
            sim.cpu_mut()
                .attach_coprocessor(Box::new(DecimalAccelerator::new()));
        }
        sim
    }
}

impl std::fmt::Display for SimKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// An ordered pair of simulators to run in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// The first side.
    pub a: SimKind,
    /// The second side.
    pub b: SimKind,
}

impl Pair {
    /// The three distinct pairs over the three simulators.
    pub const ALL: [Pair; 3] = [
        Pair { a: SimKind::Functional, b: SimKind::Rocket },
        Pair { a: SimKind::Functional, b: SimKind::Atomic },
        Pair { a: SimKind::Rocket, b: SimKind::Atomic },
    ];
}

impl std::fmt::Display for Pair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} vs {}", self.a, self.b)
    }
}

/// Loads an assembled program into a core the same way the evaluation
/// framework does: all segments into memory, `pc` at the entry point, and
/// the stack pointer at [`STACK_TOP`].
///
/// # Panics
///
/// Panics if a segment does not fit in guest memory (a malformed program).
pub fn load_program(cpu: &mut Cpu, program: &Program) {
    for segment in program.segments() {
        if !segment.data.is_empty() {
            cpu.memory
                .load_bytes(segment.base, &segment.data)
                .expect("program segment loads");
        }
    }
    cpu.set_pc(program.entry);
    cpu.set_reg(Reg::SP, STACK_TOP);
}

/// Runs one assembled program on a pair of fresh simulators in lockstep.
#[must_use]
pub fn run_program_pair(
    program: &Program,
    pair: Pair,
    with_accelerator: bool,
    options: &LockstepOptions,
) -> LockstepOutcome {
    let mut a = pair.a.build(with_accelerator);
    let mut b = pair.b.build(with_accelerator);
    load_program(a.cpu_mut(), program);
    load_program(b.cpu_mut(), program);
    run_lockstep(a.as_mut(), b.as_mut(), options)
}

/// The framework's instruction budget for a guest (mirrors
/// `codesign::framework`).
#[must_use]
pub fn guest_budget(guest: &GuestProgram) -> u64 {
    200_000 + guest.layout.count as u64 * u64::from(guest.layout.repetitions.max(1)) * 40_000
}

/// Runs an evaluation-framework guest on a pair of simulators in lockstep,
/// with the decimal accelerator attached on both sides (exactly as the
/// framework's own runners attach it).
#[must_use]
pub fn run_guest_pair(guest: &GuestProgram, pair: Pair, context: usize) -> LockstepOutcome {
    let options = LockstepOptions {
        max_instructions: guest_budget(guest),
        context,
        compare_final_state: true,
    };
    run_program_pair(&guest.program, pair, true, &options)
}

/// Builds the guest for `kind` over `vectors` and lockstep-checks it on
/// every simulator pair, returning the first divergence (if any) with the
/// pair it occurred on.
///
/// # Panics
///
/// Panics if the kernel emitter produces unassemblable source (a framework
/// bug, identical to how the framework's own runners treat it).
#[must_use]
pub fn check_kernel_all_pairs(
    kind: KernelKind,
    vectors: &[TestVector],
) -> Option<(Pair, LockstepOutcome)> {
    let guest = codesign::framework::build_guest(kind, vectors, 1)
        .unwrap_or_else(|e| panic!("{kind}: {e}"));
    for pair in Pair::ALL {
        let outcome = run_guest_pair(&guest, pair, crate::compare::DEFAULT_CONTEXT);
        if !outcome.is_agreement() {
            return Some((pair, outcome));
        }
    }
    None
}
