//! Densely Packed Decimal (DPD) and the IEEE 754-2008 decimal interchange
//! formats.
//!
//! The evaluation framework uses DPD throughout, as the paper does ("we use
//! base billion, DPD encoding, with BCD-8421 on hardware"): operands arrive
//! in the [`Decimal64`]/[`Decimal128`] interchange encodings, the co-design
//! kernels unpack the DPD coefficient into BCD with cheap declet table
//! lookups, and results are repacked the same way.
//!
//! * [`declet`] — the 3-digit ⇄ 10-bit compression at the heart of DPD.
//! * [`Decimal32`], [`Decimal64`], [`Decimal128`] — the interchange formats
//!   (the paper's "double" is decimal64 and "quad" is decimal128).
//!
//! # Example
//!
//! ```
//! use bcd::Bcd64;
//! use dpd::{Decimal64, Sign};
//!
//! # fn main() -> Result<(), dpd::DpdError> {
//! let price = Decimal64::from_parts(Sign::Positive, Bcd64::from_value(1999).unwrap(), -2)?;
//! assert_eq!(price.to_string(), "1999E-2"); // 19.99
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod d128;
mod d32;
mod d64;
pub mod declet;
mod error;

pub use d128::{Decimal128, Parts128};
pub use d32::{Decimal32, Parts32};
pub use d64::{Decimal64, Parts64};
pub use error::DpdError;

/// The sign of a decimal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sign {
    /// Positive (sign bit clear).
    #[default]
    Positive,
    /// Negative (sign bit set).
    Negative,
}

impl Sign {
    /// XOR of two signs — the sign rule for multiplication and division.
    #[must_use]
    pub fn xor(self, other: Sign) -> Sign {
        if self == other {
            Sign::Positive
        } else {
            Sign::Negative
        }
    }

    /// The opposite sign.
    #[must_use]
    pub fn negate(self) -> Sign {
        self.xor(Sign::Negative)
    }

    /// True for [`Sign::Negative`].
    #[must_use]
    pub fn is_negative(self) -> bool {
        self == Sign::Negative
    }
}

impl std::fmt::Display for Sign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sign::Positive => write!(f, "+"),
            Sign::Negative => write!(f, "-"),
        }
    }
}

/// Classification of an interchange value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// An ordinary (possibly zero or subnormal) number.
    Finite,
    /// Positive or negative infinity.
    Infinity,
    /// Quiet NaN.
    QuietNan,
    /// Signaling NaN.
    SignalingNan,
}

impl Class {
    /// True for quiet or signaling NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        matches!(self, Class::QuietNan | Class::SignalingNan)
    }

    /// True for anything that is not [`Class::Finite`].
    #[must_use]
    pub fn is_special(self) -> bool {
        self != Class::Finite
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_rules() {
        assert_eq!(Sign::Positive.xor(Sign::Positive), Sign::Positive);
        assert_eq!(Sign::Positive.xor(Sign::Negative), Sign::Negative);
        assert_eq!(Sign::Negative.xor(Sign::Negative), Sign::Positive);
        assert_eq!(Sign::Negative.negate(), Sign::Positive);
        assert!(Sign::Negative.is_negative());
        assert!(!Sign::Positive.is_negative());
    }

    #[test]
    fn class_predicates() {
        assert!(Class::QuietNan.is_nan());
        assert!(Class::SignalingNan.is_nan());
        assert!(!Class::Infinity.is_nan());
        assert!(Class::Infinity.is_special());
        assert!(!Class::Finite.is_special());
    }
}
