//! Shared helpers for the benchmark harness: canonical workload and
//! platform configurations used by both the `tables` binary and the
//! Criterion benches, so every table is regenerated from one definition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atomic_sim::AtomicConfig;
use codesign::framework::{build_guest, run_rocket, verify_results, CycleEvaluation, GuestProgram};
use codesign::kernels::KernelKind;
use rocket_sim::TimingConfig;
use testgen::{TestConfig, TestVector};

/// The paper's sample count (Table IV: "8,000 sample inputs including
/// overflow, underflow, normal, rounding, and clamping cases").
pub const PAPER_SAMPLES: usize = 8_000;

/// The canonical Table IV workload, scaled to `count` samples.
#[must_use]
pub fn workload(count: usize, seed: u64) -> Vec<TestVector> {
    testgen::generate(&TestConfig {
        count,
        seed,
        ..TestConfig::default()
    })
}

/// The Rocket timing configuration every cycle-accurate table uses.
#[must_use]
pub fn rocket_timing(seed: u64) -> TimingConfig {
    TimingConfig {
        seed,
        ..TimingConfig::default()
    }
}

/// The Gem5-like configuration for Table VI: 1 GHz clock with Minor-CPU-ish
/// functional-unit latencies (IntMult 3, IntDiv 12).
#[must_use]
pub fn atomic_config() -> AtomicConfig {
    AtomicConfig {
        mul_cycles: 3,
        div_cycles: 12,
        ..AtomicConfig::default()
    }
}

/// Builds a guest for the canonical workload.
///
/// # Panics
///
/// Panics if kernel emission produced unassemblable source (a bug).
#[must_use]
pub fn guest_for(kind: KernelKind, vectors: &[TestVector]) -> GuestProgram {
    build_guest(kind, vectors, 1).unwrap_or_else(|e| panic!("{kind}: {e}"))
}

/// Runs one kernel cycle-accurately and verifies results against the
/// oracle (unless the kernel is a dummy configuration).
///
/// # Panics
///
/// Panics on result mismatches for non-dummy kernels.
#[must_use]
pub fn evaluate_cycles(
    kind: KernelKind,
    vectors: &[TestVector],
    timing: TimingConfig,
) -> CycleEvaluation {
    let guest = guest_for(kind, vectors);
    let eval = run_rocket(&guest, timing);
    if !kind.results_are_dummy() {
        let mismatches = verify_results(&eval.results, vectors);
        assert!(
            mismatches.is_empty(),
            "{kind}: {} result mismatches",
            mismatches.len()
        );
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(10, 1), workload(10, 1));
    }

    #[test]
    fn evaluate_cycles_smoke() {
        let vectors = workload(20, 3);
        let eval = evaluate_cycles(KernelKind::Method1, &vectors, rocket_timing(1));
        assert!(eval.avg_total_cycles > 0.0);
        assert!(eval.avg_hw_cycles > 0.0);
    }
}
