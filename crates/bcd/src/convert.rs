//! Binary ⇄ BCD conversion.
//!
//! The `DEC_CNV` accelerator instruction converts a binary number to BCD in
//! hardware; the classic circuit for this is the *double-dabble* (shift and
//! add-3) algorithm. [`double_dabble`] models that circuit exactly — one
//! iteration per input bit — so the accelerator's timing model can charge a
//! realistic cycle count, while [`binary_to_bcd`] is the fast software path.

use crate::{Bcd128, Bcd64, BcdError};

/// Converts a binary integer to BCD using division (software path).
///
/// # Errors
///
/// Returns [`BcdError::ValueTooLarge`] if `value >= 10^16`.
pub fn binary_to_bcd(value: u64) -> Result<Bcd64, BcdError> {
    Bcd64::from_value(value)
}

/// Converts a BCD value to a binary integer.
#[must_use]
pub fn bcd_to_binary(bcd: Bcd64) -> u64 {
    bcd.to_value()
}

/// Result of a hardware-modelled conversion: the value plus the number of
/// clock cycles the sequential circuit would take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwConversion {
    /// The converted BCD value.
    pub bcd: Bcd128,
    /// Cycles consumed by the shift-and-add-3 sequential circuit
    /// (one per input bit of the operand's significant width).
    pub cycles: u32,
}

/// Double-dabble (shift and add-3): the hardware algorithm behind `DEC_CNV`.
///
/// Processes `value` most-significant bit first; before each shift, every BCD
/// digit that is `>= 5` gets `+3` so the shift doubles it correctly in
/// decimal. A 64-bit operand always fits: `2^64 - 1` has twenty digits.
#[must_use]
pub fn double_dabble(value: u64) -> HwConversion {
    let width = if value == 0 {
        1
    } else {
        64 - value.leading_zeros()
    };
    let mut bcd: u128 = 0;
    for bit in (0..width).rev() {
        // Add-3 correction on every digit >= 5.
        let mut corrected = bcd;
        for i in 0..32 {
            let digit = (bcd >> (4 * i)) & 0xF;
            if digit >= 5 {
                corrected += 3u128 << (4 * i);
            }
        }
        bcd = (corrected << 1) | u128::from((value >> bit) & 1);
    }
    HwConversion {
        bcd: Bcd128::from_raw_unchecked(bcd),
        cycles: width,
    }
}

/// Reverse double-dabble: BCD to binary by shift and subtract-3, modelling a
/// hardware `BCD→binary` path (unused by Method-1 — its selling point is that
/// no binary conversion is needed — but provided for co-designs that want it).
#[must_use]
pub fn reverse_double_dabble(bcd: Bcd64) -> HwConversion {
    let mut scratch = u128::from(bcd.raw());
    let width = 64u32;
    let mut binary: u64 = 0;
    for _ in 0..width {
        binary = (binary >> 1) | ((scratch as u64 & 1) << 63);
        scratch >>= 1;
        for i in 0..32 {
            let digit = (scratch >> (4 * i)) & 0xF;
            if digit >= 8 {
                scratch -= 3u128 << (4 * i);
            }
        }
    }
    HwConversion {
        bcd: Bcd128::from_value(u128::from(binary)).unwrap_or(Bcd128::ZERO),
        cycles: width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_roundtrip() {
        for v in [0u64, 7, 10, 255, 123_456, 9_999_999_999_999_999] {
            assert_eq!(bcd_to_binary(binary_to_bcd(v).unwrap()), v);
        }
    }

    #[test]
    fn double_dabble_matches_software() {
        for v in [0u64, 1, 5, 9, 10, 255, 256, 65_535, 1_000_000, u64::MAX] {
            let hw = double_dabble(v);
            assert_eq!(hw.bcd.to_value(), u128::from(v), "value {v}");
        }
    }

    #[test]
    fn double_dabble_cycle_counts() {
        assert_eq!(double_dabble(0).cycles, 1);
        assert_eq!(double_dabble(1).cycles, 1);
        assert_eq!(double_dabble(255).cycles, 8);
        assert_eq!(double_dabble(u64::MAX).cycles, 64);
    }

    #[test]
    fn reverse_double_dabble_roundtrips() {
        for v in [0u64, 9, 42, 65_535, 9_999_999_999_999_999] {
            let bcd = Bcd64::from_value(v).unwrap();
            let hw = reverse_double_dabble(bcd);
            assert_eq!(hw.bcd.to_value(), u128::from(v), "value {v}");
        }
    }
}
