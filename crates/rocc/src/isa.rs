//! The decimal accelerator's instruction set (paper Table II, plus the
//! extension functions the deeper-offload methods use).

use std::fmt;

use crate::accelerator::ACC_INDEX;

/// The accelerator functions selected by `funct7` of a custom-0 instruction.
///
/// Values 0–8 are the paper's Table II codes verbatim (`CLR_ALL`'s code
/// appears in its Table III). Values 9–11 are this framework's extensions,
/// used by the Method-2/3/4 design points; the paper's framework explicitly
/// invites adding such instructions ("any such hardware component can be
/// integrated into the design").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum DecimalFunct {
    /// Write a 64-bit half of an accelerator register from a core register.
    /// `rs2` field addresses the target: low 4 bits select the register,
    /// bit 4 selects the half.
    Wr = 0b000_0000,
    /// Read a 64-bit half of an accelerator register into a core register.
    /// `rs1` field addresses the source like [`DecimalFunct::Wr`].
    Rd = 0b000_0001,
    /// Load a 64-bit value from memory (address in core `rs1`) into an
    /// accelerator register half addressed by the `rs2` field, over the RoCC
    /// memory interface.
    Ld = 0b000_0010,
    /// Binary accumulate (the classic Rocket tutorial accumulator): adds the
    /// core `rs1` value into a binary scratch register and returns the new
    /// value.
    Accum = 0b000_0011,
    /// BCD addition of two core register values through the BCD-CLA;
    /// the result goes to the core `rd` and the carry-out is latched.
    DecAdd = 0b000_0100,
    /// Clear all accelerator state.
    ClrAll = 0b000_0101,
    /// Convert a binary number in core `rs1` to BCD (low 16 digits to `rd`),
    /// modelling a shift-and-add-3 sequential circuit.
    DecCnv = 0b000_0110,
    /// Full BCD coefficient multiply: `acc = reg[rs1 field] × reg[rs2
    /// field]` (up to 32 digits). The Method-4 design point.
    DecMul = 0b000_0111,
    /// Decimal accumulate step: `acc = acc × 10 + reg[digit]` where the
    /// digit (0–9) arrives in core `rs1`. The Method-2 inner loop.
    DecAccum = 0b000_1000,
    /// BCD addition with the latched carry as carry-in, for chaining 64-bit
    /// halves of wide values (extension).
    DecAdc = 0b000_1001,
    /// Register-file-addressed wide BCD add: `reg[rd field] = reg[rs1 field]
    /// + reg[rs2 field]` at full 128-bit width (extension).
    DecAddR = 0b000_1010,
    /// Digit multiply-accumulate: `acc = acc × 10 + reg[1] × digit` with the
    /// digit in core `rs1`. The Method-3 inner loop (extension).
    DecMulD = 0b000_1011,
    /// Read the accelerator's status/cause word into the core `rd`
    /// (extension; serviced even in the sticky `Error` state — see
    /// [`crate::AccelStatus`] for the wire format).
    Stat = 0b000_1100,
}

impl DecimalFunct {
    /// All functions, in funct7 order.
    pub const ALL: [DecimalFunct; 13] = [
        DecimalFunct::Wr,
        DecimalFunct::Rd,
        DecimalFunct::Ld,
        DecimalFunct::Accum,
        DecimalFunct::DecAdd,
        DecimalFunct::ClrAll,
        DecimalFunct::DecCnv,
        DecimalFunct::DecMul,
        DecimalFunct::DecAccum,
        DecimalFunct::DecAdc,
        DecimalFunct::DecAddR,
        DecimalFunct::DecMulD,
        DecimalFunct::Stat,
    ];

    /// The funct7 encoding.
    #[must_use]
    pub fn funct7(self) -> u8 {
        self as u8
    }

    /// Decodes a funct7 value.
    #[must_use]
    pub fn from_funct7(funct7: u8) -> Option<DecimalFunct> {
        DecimalFunct::ALL
            .into_iter()
            .find(|f| f.funct7() == funct7)
    }

    /// The instruction's name as the paper spells it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DecimalFunct::Wr => "WR",
            DecimalFunct::Rd => "RD",
            DecimalFunct::Ld => "LD",
            DecimalFunct::Accum => "ACCUM",
            DecimalFunct::DecAdd => "DEC_ADD",
            DecimalFunct::ClrAll => "CLR_ALL",
            DecimalFunct::DecCnv => "DEC_CNV",
            DecimalFunct::DecMul => "DEC_MUL",
            DecimalFunct::DecAccum => "DEC_ACCUM",
            DecimalFunct::DecAdc => "DEC_ADC",
            DecimalFunct::DecAddR => "DEC_ADD_R",
            DecimalFunct::DecMulD => "DEC_MULD",
            DecimalFunct::Stat => "STAT",
        }
    }

    /// One-line description (Table II wording where applicable).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            DecimalFunct::Wr => "Write a value to a register in Rocket core",
            DecimalFunct::Rd => "Read a value from a register in Rocket core",
            DecimalFunct::Ld => "Load a value from a memory",
            DecimalFunct::Accum => "Accumulate a value into a register in Rocket core",
            DecimalFunct::DecAdd => "Add two BCD numbers",
            DecimalFunct::ClrAll => "Clear all accelerator state",
            DecimalFunct::DecCnv => "Convert binary number to corresponding BCD",
            DecimalFunct::DecMul => "Multiply two BCD numbers",
            DecimalFunct::DecAccum => "Accumulate BCD numbers stored in internal registers",
            DecimalFunct::DecAdc => "Add two BCD numbers with the latched carry-in",
            DecimalFunct::DecAddR => "Wide BCD add of two internal registers",
            DecimalFunct::DecMulD => "Multiply internal register by a digit and accumulate",
            DecimalFunct::Stat => "Read the accelerator status/cause word",
        }
    }

    /// True for functions the paper's Table II lists (as opposed to this
    /// framework's extensions).
    #[must_use]
    pub fn in_paper_table2(self) -> bool {
        self.funct7() <= DecimalFunct::DecAccum.funct7()
    }

    // ---- protocol/typestate metadata (consumed by `rvlint`) ------------
    //
    // These describe the architectural contract of `DecimalAccelerator`:
    // which commands the sticky Error state still services, which touch
    // the carry latch, and which internal registers each command reads
    // and writes. Static checkers derive their typestate automaton from
    // these instead of duplicating the `accelerator.rs` match.

    /// True if the sticky Error state still services this command
    /// (everything else answers benignly and stays latched).
    #[must_use]
    pub fn serviced_in_error(self) -> bool {
        matches!(self, DecimalFunct::Stat | DecimalFunct::ClrAll)
    }

    /// True if the command leaves the carry latch in a defined state
    /// (writes it, or clears it as part of `CLR_ALL`).
    #[must_use]
    pub fn defines_carry(self) -> bool {
        matches!(
            self,
            DecimalFunct::DecAdd
                | DecimalFunct::DecAdc
                | DecimalFunct::DecAccum
                | DecimalFunct::DecAddR
                | DecimalFunct::DecMulD
                | DecimalFunct::ClrAll
        )
    }

    /// True if the command consumes the latched carry (`DEC_ADC` only).
    #[must_use]
    pub fn reads_carry(self) -> bool {
        self == DecimalFunct::DecAdc
    }

    /// True if the command mutates accelerator-internal state (register
    /// file, accumulator, carry latch, or binary scratch) — i.e. breaks
    /// the "freshly cleared, untouched" condition a redundant `CLR_ALL`
    /// check relies on.
    #[must_use]
    pub fn mutates_state(self) -> bool {
        !matches!(
            self,
            DecimalFunct::Rd | DecimalFunct::Stat | DecimalFunct::ClrAll
        )
    }

    /// Internal register-file registers the command reads, as a 16-bit
    /// mask over the register index space. `fields` carries the decoded
    /// `(rd_field, rs1_field, rs2_field)` operand fields of the concrete
    /// instruction (register-file addresses for the register-addressed
    /// commands). `DEC_ACCUM`'s addend register is selected by a runtime
    /// digit, so it conservatively reads registers 0–9.
    #[must_use]
    pub fn regs_read(self, fields: (u8, u8, u8)) -> u16 {
        let (_, rs1_field, rs2_field) = fields;
        let bit = |field: u8| 1u16 << decode_reg_address(field).0;
        let acc = 1u16 << ACC_INDEX;
        match self {
            DecimalFunct::Rd => bit(rs1_field),
            DecimalFunct::DecMul | DecimalFunct::DecAddR => bit(rs1_field) | bit(rs2_field),
            DecimalFunct::DecAccum => acc | 0x03FF,
            DecimalFunct::DecMulD => acc | (1 << 1),
            _ => 0,
        }
    }

    /// Internal register-file registers the command writes, as a mask like
    /// [`DecimalFunct::regs_read`]. `CLR_ALL` defines every register (to
    /// zero) and is reported as writing all sixteen.
    #[must_use]
    pub fn regs_written(self, fields: (u8, u8, u8)) -> u16 {
        let (rd_field, _, rs2_field) = fields;
        let bit = |field: u8| 1u16 << decode_reg_address(field).0;
        let acc = 1u16 << ACC_INDEX;
        match self {
            DecimalFunct::Wr | DecimalFunct::Ld => bit(rs2_field),
            DecimalFunct::DecAddR => bit(rd_field),
            DecimalFunct::DecCnv
            | DecimalFunct::DecMul
            | DecimalFunct::DecAccum
            | DecimalFunct::DecMulD => acc,
            DecimalFunct::ClrAll => 0xFFFF,
            _ => 0,
        }
    }

    /// True for the commands that deposit a value into the register file
    /// from outside (`WR`/`LD`) — the "setup" the deeper-offload compute
    /// commands require on their explicitly-addressed operands.
    #[must_use]
    pub fn is_setup_write(self) -> bool {
        matches!(self, DecimalFunct::Wr | DecimalFunct::Ld)
    }

    /// Core-register operands (`rs1`, `rs2`) that must hold packed-BCD
    /// data, as a pair of booleans. `DEC_ACCUM`/`DEC_MULD` take a single
    /// digit in `rs1` (checked separately as a digit, not 16 nibbles).
    #[must_use]
    pub fn bcd_operands(self) -> (bool, bool) {
        match self {
            DecimalFunct::DecAdd | DecimalFunct::DecAdc => (true, true),
            DecimalFunct::Wr => (true, false),
            _ => (false, false),
        }
    }

    /// True if `rs1` carries a single decimal digit (0–9).
    #[must_use]
    pub fn digit_operand(self) -> bool {
        matches!(self, DecimalFunct::DecAccum | DecimalFunct::DecMulD)
    }
}

impl fmt::Display for DecimalFunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Decodes a register-file address field: `(register index, half)` where
/// half 0 is bits 63:0 and half 1 is bits 127:64.
#[must_use]
pub fn decode_reg_address(field: u8) -> (usize, usize) {
    ((field & 0xF) as usize, ((field >> 4) & 1) as usize)
}

/// Encodes a register-file address field from `(register index, half)`.
///
/// # Panics
///
/// Panics if `index > 15` or `half > 1`.
#[must_use]
pub fn encode_reg_address(index: usize, half: usize) -> u8 {
    assert!(index < 16, "register index {index} out of range");
    assert!(half < 2, "half {half} out of range");
    ((half as u8) << 4) | index as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_funct7_values() {
        // Table II of the paper.
        assert_eq!(DecimalFunct::Wr.funct7(), 0b000_0000);
        assert_eq!(DecimalFunct::Rd.funct7(), 0b000_0001);
        assert_eq!(DecimalFunct::Ld.funct7(), 0b000_0010);
        assert_eq!(DecimalFunct::Accum.funct7(), 0b000_0011);
        assert_eq!(DecimalFunct::DecAdd.funct7(), 0b000_0100);
        assert_eq!(DecimalFunct::ClrAll.funct7(), 0b000_0101);
        assert_eq!(DecimalFunct::DecCnv.funct7(), 0b000_0110);
        assert_eq!(DecimalFunct::DecMul.funct7(), 0b000_0111);
        assert_eq!(DecimalFunct::DecAccum.funct7(), 0b000_1000);
    }

    #[test]
    fn funct7_roundtrip() {
        for f in DecimalFunct::ALL {
            assert_eq!(DecimalFunct::from_funct7(f.funct7()), Some(f));
        }
        assert_eq!(DecimalFunct::from_funct7(0x7F), None);
    }

    #[test]
    fn paper_subset_flag() {
        assert!(DecimalFunct::DecAdd.in_paper_table2());
        assert!(DecimalFunct::DecAccum.in_paper_table2());
        assert!(!DecimalFunct::DecAdc.in_paper_table2());
        assert!(!DecimalFunct::Stat.in_paper_table2());
    }

    #[test]
    fn typestate_metadata_matches_accelerator_contract() {
        use DecimalFunct as F;
        // Error-state servicing mirrors `DecimalAccelerator::command`.
        for f in F::ALL {
            assert_eq!(
                f.serviced_in_error(),
                matches!(f, F::Stat | F::ClrAll),
                "{f}"
            );
        }
        // Only DEC_ADC consumes the latch; every carry consumer's
        // producers are the BCD adders plus CLR_ALL's clear.
        assert!(F::DecAdc.reads_carry());
        assert!(F::DecAdd.defines_carry() && F::ClrAll.defines_carry());
        assert!(!F::Wr.defines_carry() && !F::Stat.reads_carry());
        // Register-file dataflow for the concrete kernel encodings.
        let acc = 1u16 << ACC_INDEX;
        assert_eq!(F::Wr.regs_written((0, 0, 1)), 1 << 1);
        assert_eq!(F::Ld.regs_written((0, 0, 0x12)), 1 << 2);
        assert_eq!(F::DecMul.regs_read((0, 1, 2)), (1 << 1) | (1 << 2));
        assert_eq!(F::DecMul.regs_written((0, 1, 2)), acc);
        assert_eq!(F::DecAddR.regs_written((3, 1, 2)), 1 << 3);
        assert_eq!(F::DecMulD.regs_read((0, 0, 0)), acc | (1 << 1));
        assert_eq!(F::DecAccum.regs_read((0, 0, 0)), acc | 0x03FF);
        assert_eq!(F::ClrAll.regs_written((0, 0, 0)), 0xFFFF);
        // Half-addressed fields land on the same register index.
        assert_eq!(F::Rd.regs_read((0, 0x1F, 0)), acc);
        // Operand classes.
        assert_eq!(F::DecAdd.bcd_operands(), (true, true));
        assert_eq!(F::Wr.bcd_operands(), (true, false));
        assert!(F::DecAccum.digit_operand() && F::DecMulD.digit_operand());
        assert!(!F::DecAdd.digit_operand());
        // State mutation: reads don't dirty, writes do.
        assert!(!F::Rd.mutates_state() && !F::Stat.mutates_state());
        assert!(F::Wr.mutates_state() && F::Accum.mutates_state());
    }

    #[test]
    fn reg_address_roundtrip() {
        for index in 0..16 {
            for half in 0..2 {
                assert_eq!(
                    decode_reg_address(encode_reg_address(index, half)),
                    (index, half)
                );
            }
        }
    }
}
