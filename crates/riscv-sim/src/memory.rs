//! Sparse, page-granular physical memory.

use std::collections::BTreeMap;

use crate::CpuError;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Byte-addressable sparse memory backed by 4 KiB pages.
///
/// Reads of unmapped pages are an error (the guest touched memory the
/// program never initialized or reserved); writes allocate pages on demand.
///
/// # Example
///
/// ```
/// use riscv_sim::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u64(0x8000_0000, 0xDEAD_BEEF_0BAD_F00D).unwrap();
/// assert_eq!(mem.read_u64(0x8000_0000).unwrap(), 0xDEAD_BEEF_0BAD_F00D);
/// assert_eq!(mem.read_u32(0x8000_0004).unwrap(), 0xDEAD_BEEF);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// An empty memory.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of mapped pages (for footprint diagnostics).
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::UnmappedAddress`] if the page was never written.
    pub fn read_u8(&self, addr: u64) -> Result<u8, CpuError> {
        let page = self
            .pages
            .get(&(addr >> PAGE_SHIFT))
            .ok_or(CpuError::UnmappedAddress(addr))?;
        Ok(page[(addr & (PAGE_SIZE - 1)) as usize])
    }

    /// Writes one byte, mapping the page on demand.
    ///
    /// # Errors
    ///
    /// Infallible today; kept fallible for symmetry and future protection
    /// bits.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), CpuError> {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr & (PAGE_SIZE - 1)) as usize] = value;
        Ok(())
    }

    /// Reads `N` little-endian bytes.
    fn read_le<const N: usize>(&self, addr: u64) -> Result<[u8; N], CpuError> {
        let mut out = [0u8; N];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.read_u8(addr + i as u64)?;
        }
        Ok(out)
    }

    fn write_le(&mut self, addr: u64, bytes: &[u8]) -> Result<(), CpuError> {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b)?;
        }
        Ok(())
    }

    /// Reads a little-endian u16.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::UnmappedAddress`] for unmapped locations.
    pub fn read_u16(&self, addr: u64) -> Result<u16, CpuError> {
        Ok(u16::from_le_bytes(self.read_le(addr)?))
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::UnmappedAddress`] for unmapped locations.
    pub fn read_u32(&self, addr: u64) -> Result<u32, CpuError> {
        Ok(u32::from_le_bytes(self.read_le(addr)?))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::UnmappedAddress`] for unmapped locations.
    pub fn read_u64(&self, addr: u64) -> Result<u64, CpuError> {
        Ok(u64::from_le_bytes(self.read_le(addr)?))
    }

    /// Writes a little-endian u16.
    ///
    /// # Errors
    ///
    /// See [`Memory::write_u8`].
    pub fn write_u16(&mut self, addr: u64, value: u16) -> Result<(), CpuError> {
        self.write_le(addr, &value.to_le_bytes())
    }

    /// Writes a little-endian u32.
    ///
    /// # Errors
    ///
    /// See [`Memory::write_u8`].
    pub fn write_u32(&mut self, addr: u64, value: u32) -> Result<(), CpuError> {
        self.write_le(addr, &value.to_le_bytes())
    }

    /// Writes a little-endian u64.
    ///
    /// # Errors
    ///
    /// See [`Memory::write_u8`].
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), CpuError> {
        self.write_le(addr, &value.to_le_bytes())
    }

    /// Copies a byte slice into memory at `addr`.
    ///
    /// # Errors
    ///
    /// See [`Memory::write_u8`].
    pub fn load_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), CpuError> {
        self.write_le(addr, bytes)
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::UnmappedAddress`] for unmapped locations.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, CpuError> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Dumps every mapped page as `(base address, page bytes)` in address
    /// order — the snapshot view of memory.
    #[must_use]
    pub fn dump_pages(&self) -> Vec<(u64, Vec<u8>)> {
        self.pages
            .iter()
            .map(|(&index, data)| (index << PAGE_SHIFT, data.to_vec()))
            .collect()
    }

    /// Replaces the entire memory contents with previously dumped pages.
    ///
    /// Validates every page before mutating anything, so a malformed dump
    /// leaves the memory untouched.
    ///
    /// # Errors
    ///
    /// Returns a description if a page base is not page-aligned or a page
    /// is not exactly one page long.
    pub fn restore_pages(&mut self, pages: &[(u64, Vec<u8>)]) -> Result<(), &'static str> {
        for (base, data) in pages {
            if base & (PAGE_SIZE - 1) != 0 {
                return Err("memory page base is not page-aligned");
            }
            if data.len() != PAGE_SIZE as usize {
                return Err("memory page has the wrong size");
            }
        }
        self.pages.clear();
        for (base, data) in pages {
            let mut page = Box::new([0u8; PAGE_SIZE as usize]);
            page.copy_from_slice(data);
            self.pages.insert(base >> PAGE_SHIFT, page);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_all_widths() {
        let mut m = Memory::new();
        m.write_u8(0x1000, 0xAB).unwrap();
        m.write_u16(0x1002, 0x1234).unwrap();
        m.write_u32(0x1004, 0xDEAD_BEEF).unwrap();
        m.write_u64(0x1008, u64::MAX).unwrap();
        assert_eq!(m.read_u8(0x1000).unwrap(), 0xAB);
        assert_eq!(m.read_u16(0x1002).unwrap(), 0x1234);
        assert_eq!(m.read_u32(0x1004).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.read_u64(0x1008).unwrap(), u64::MAX);
    }

    #[test]
    fn unmapped_read_fails() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x42), Err(CpuError::UnmappedAddress(0x42)));
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1FFC; // straddles a 4 KiB boundary for u64
        m.write_u64(addr, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u64(addr).unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn bulk_load() {
        let mut m = Memory::new();
        m.load_bytes(0x2000, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(0x2000, 4).unwrap(), vec![1, 2, 3, 4]);
    }
}
