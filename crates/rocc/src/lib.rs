//! The RoCC decimal accelerator.
//!
//! This crate models the paper's hardware contribution: a decimal
//! coprocessor hanging off Rocket's RoCC interface, built around one BCD
//! carry-lookahead adder. It provides:
//!
//! * [`DecimalFunct`] — the instruction set (paper Table II plus the
//!   Method-2/3/4 extension functions);
//! * [`fsm::InterfaceFsm`] — the decode/interface FSM of Fig. 5, with an
//!   inspectable transition trace;
//! * [`DecimalAccelerator`] — the register set + execution unit of Fig. 4,
//!   implementing [`riscv_sim::Coprocessor`] so it attaches to any simulated
//!   core (and drivable directly for native-speed evaluation);
//! * [`AcceleratorConfig`] — per-method hardware cost estimates for the
//!   Pareto analysis.
//!
//! # Example
//!
//! ```
//! use rocc::{AcceleratorConfig, DecimalAccelerator, DecimalFunct};
//!
//! # fn main() -> Result<(), riscv_sim::CpuError> {
//! let mut acc = DecimalAccelerator::new();
//! let sum = acc.command(DecimalFunct::DecAdd, 0x0123, 0x0877, 0, 0, 0)?;
//! assert_eq!(sum.rd_value, Some(0x1000));
//! println!(
//!     "Method-1 accelerator ≈ {} NAND2-equivalent gates",
//!     AcceleratorConfig::method1().cost().gates
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod cost;
pub mod fsm;
mod isa;
mod status;

pub use accelerator::{busy_cycles, DecimalAccelerator, ACC_INDEX, SNAPSHOT_TAG};
pub use cost::AcceleratorConfig;
pub use isa::{decode_reg_address, encode_reg_address, DecimalFunct};
pub use status::{AccelCause, AccelStatus, STATUS_ERROR_BIT};
