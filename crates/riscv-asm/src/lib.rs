//! A two-pass RV64IM assembler.
//!
//! This crate replaces the GNU cross-toolchain of the paper's framework: the
//! evaluated guest kernels are authored in textual RISC-V assembly (emitted
//! by the `codesign` crate or written by hand), assembled here into real
//! RV64IM machine code, and executed on the functional, cycle-accurate and
//! atomic simulators.
//!
//! Supported surface:
//!
//! * all RV64IM instructions plus `ecall`/`ebreak`/`fence`/Zicsr;
//! * pseudo-instructions: `nop`, `li` (full 64-bit materialization), `la`,
//!   `mv`, `not`, `neg`, `sext.w`, `seqz`/`snez`/`sltz`/`sgtz`,
//!   `beqz`/`bnez`/`blez`/`bgez`/`bltz`/`bgtz`, `bgt`/`ble`/`bgtu`/`bleu`,
//!   `j`, `jr`, `call`, `ret`, `rdcycle`, `rdinstret`;
//! * RoCC custom instructions: `custom0 funct7, rd, rs1, rs2, xd, xs1, xs2`
//!   (likewise `custom1..3`);
//! * directives: `.text`, `.data`, `.align`, `.byte`, `.half`, `.word`,
//!   `.dword`/`.quad`, `.ascii`, `.asciz`, `.space`/`.zero`, `.globl`,
//!   `.equ`;
//! * `#`, `//` and `;` comments, decimal/hex/binary/char immediates.
//!
//! # Example
//!
//! ```
//! use riscv_asm::assemble;
//!
//! let program = assemble(r#"
//!     .text
//!     start:
//!         li   a0, 42
//!         li   a7, 93       # exit
//!         ecall
//! "#).unwrap();
//! assert_eq!(program.entry, riscv_asm::TEXT_BASE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod source;

pub use asm::{assemble, assemble_with, AsmError, AsmOptions, Program, Segment};
pub use source::SourceBuilder;

/// Default base address of the `.text` section.
pub const TEXT_BASE: u64 = 0x8000_0000;

/// Default base address of the `.data` section.
pub const DATA_BASE: u64 = 0x8010_0000;

/// Conventional initial stack pointer (grows down, away from both sections).
pub const STACK_TOP: u64 = 0x8100_0000;
