//! The decimal accelerator (paper Fig. 4): decode/interface FSM, a sixteen
//! entry × 128-bit register set, and a BCD-CLA-based execution unit.

use std::collections::BTreeMap;

use bcd::cla::BcdCla;
use bcd::convert::double_dabble;
use bcd::{Bcd128, Bcd64};
use riscv_sim::{Coprocessor, CpuError, Memory, RoccCommand, RoccResponse};

use crate::fsm::InterfaceFsm;
use crate::isa::{decode_reg_address, DecimalFunct};

/// Register-file index that serves as the wide accumulator (`ACC`).
pub const ACC_INDEX: usize = 15;

/// Per-function execution-unit busy cycles (excluding the core-side
/// dispatch/response handshake, which the pipeline model charges).
#[must_use]
pub fn busy_cycles(funct: DecimalFunct, operand: u64) -> u32 {
    match funct {
        DecimalFunct::Wr
        | DecimalFunct::Rd
        | DecimalFunct::Accum
        | DecimalFunct::ClrAll => 1,
        DecimalFunct::Ld => 2,
        // One pass through the BCD-CLA.
        DecimalFunct::DecAdd | DecimalFunct::DecAdc => 1,
        // Two chained CLA passes over the 128-bit width.
        DecimalFunct::DecAccum | DecimalFunct::DecAddR => 2,
        // Digit multiply-accumulate: the parallel 2X/4X/8X generators (paid
        // for in area) compose the multiple in one pass, then the wide
        // accumulate takes the second cycle.
        DecimalFunct::DecMulD => 2,
        // Iterative over sixteen multiplier digits plus setup/drain.
        DecimalFunct::DecMul => 18,
        // Shift-and-add-3: one cycle per significant input bit.
        DecimalFunct::DecCnv => double_dabble(operand).cycles,
    }
}

/// The decimal accelerator. Implements [`Coprocessor`] so it can be attached
/// to any of the simulated cores, and can also be driven directly (the
/// native Method-1 implementation does) via [`DecimalAccelerator::command`].
///
/// # Example
///
/// ```
/// use rocc::{DecimalAccelerator, DecimalFunct};
///
/// # fn main() -> Result<(), riscv_sim::CpuError> {
/// let mut acc = DecimalAccelerator::new();
/// // 0x0905 + 0x0095 in BCD is 0x1000.
/// let resp = acc.command(DecimalFunct::DecAdd, 0x0905, 0x0095, 0, 0, 0)?;
/// assert_eq!(resp.rd_value, Some(0x1000));
/// # Ok(())
/// # }
/// ```
pub struct DecimalAccelerator {
    /// Raw register file; decimal functions validate BCD on use.
    regfile: [u128; 16],
    bin_scratch: u64,
    carry: bool,
    cla: BcdCla,
    fsm: InterfaceFsm,
    command_counts: BTreeMap<DecimalFunct, u64>,
    total_busy: u64,
}

impl Default for DecimalAccelerator {
    fn default() -> Self {
        DecimalAccelerator::new()
    }
}

impl std::fmt::Debug for DecimalAccelerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecimalAccelerator")
            .field("carry", &self.carry)
            .field("total_busy", &self.total_busy)
            .finish_non_exhaustive()
    }
}

impl DecimalAccelerator {
    /// A cleared accelerator with a 16-digit BCD-CLA.
    #[must_use]
    pub fn new() -> Self {
        DecimalAccelerator {
            regfile: [0; 16],
            bin_scratch: 0,
            carry: false,
            cla: BcdCla::new(16),
            fsm: InterfaceFsm::new(),
            command_counts: BTreeMap::new(),
            total_busy: 0,
        }
    }

    /// Enables interface-FSM transition tracing (see [`InterfaceFsm`]).
    pub fn set_fsm_tracing(&mut self, on: bool) {
        self.fsm.set_tracing(on);
    }

    /// The interface FSM (for inspecting the Fig. 5 trace).
    #[must_use]
    pub fn fsm(&self) -> &InterfaceFsm {
        &self.fsm
    }

    /// The latched carry flag.
    #[must_use]
    pub fn carry(&self) -> bool {
        self.carry
    }

    /// Raw contents of a register-file entry.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    #[must_use]
    pub fn register(&self, index: usize) -> u128 {
        self.regfile[index]
    }

    /// The wide accumulator (`regfile[15]`).
    #[must_use]
    pub fn acc(&self) -> u128 {
        self.regfile[ACC_INDEX]
    }

    /// Total execution-unit busy cycles since construction/clear.
    #[must_use]
    pub fn total_busy_cycles(&self) -> u64 {
        self.total_busy
    }

    /// Per-function command counts since construction.
    #[must_use]
    pub fn command_counts(&self) -> &BTreeMap<DecimalFunct, u64> {
        &self.command_counts
    }

    fn write_half(&mut self, field: u8, value: u64) {
        let (index, half) = decode_reg_address(field);
        let shift = 64 * half;
        let mask = (u128::from(u64::MAX)) << shift;
        self.regfile[index] = (self.regfile[index] & !mask) | (u128::from(value) << shift);
    }

    fn read_half(&self, field: u8) -> u64 {
        let (index, half) = decode_reg_address(field);
        (self.regfile[index] >> (64 * half)) as u64
    }

    fn bcd64_operand(value: u64) -> Result<Bcd64, CpuError> {
        Bcd64::new(value).map_err(|_| CpuError::RoccProtocol("operand is not valid packed BCD"))
    }

    fn bcd128_reg(&self, index: usize) -> Result<Bcd128, CpuError> {
        Bcd128::new(self.regfile[index])
            .map_err(|_| CpuError::RoccProtocol("register does not hold valid packed BCD"))
    }

    fn digit_operand(value: u64) -> Result<u8, CpuError> {
        if value <= 9 {
            Ok(value as u8)
        } else {
            Err(CpuError::RoccProtocol("digit operand exceeds 9"))
        }
    }

    /// Executes one function directly, without going through instruction
    /// decode or a memory bus (so `LD` is rejected here).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::UnknownRoccFunction`] or
    /// [`CpuError::RoccProtocol`] on malformed operands.
    pub fn command(
        &mut self,
        funct: DecimalFunct,
        rs1_value: u64,
        rs2_value: u64,
        rd_field: u8,
        rs1_field: u8,
        rs2_field: u8,
    ) -> Result<RoccResponse, CpuError> {
        if funct == DecimalFunct::Ld {
            return Err(CpuError::RoccProtocol("LD requires the memory interface"));
        }
        self.dispatch(funct, rs1_value, rs2_value, rd_field, rs1_field, rs2_field, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        funct: DecimalFunct,
        rs1_value: u64,
        rs2_value: u64,
        rd_field: u8,
        rs1_field: u8,
        rs2_field: u8,
        mem: Option<&mut Memory>,
    ) -> Result<RoccResponse, CpuError> {
        let mut rd_value = None;
        let mut mem_accesses = 0;

        match funct {
            DecimalFunct::Wr => {
                self.write_half(rs2_field, rs1_value);
            }
            DecimalFunct::Rd => {
                rd_value = Some(self.read_half(rs1_field));
            }
            DecimalFunct::Ld => {
                let mem = mem.ok_or(CpuError::RoccProtocol("LD requires the memory interface"))?;
                let data = mem.read_u64(rs1_value)?;
                self.write_half(rs2_field, data);
                mem_accesses = 1;
            }
            DecimalFunct::Accum => {
                self.bin_scratch = self.bin_scratch.wrapping_add(rs1_value);
                rd_value = Some(self.bin_scratch);
            }
            DecimalFunct::DecAdd | DecimalFunct::DecAdc => {
                let a = Self::bcd64_operand(rs1_value)?;
                let b = Self::bcd64_operand(rs2_value)?;
                let carry_in = funct == DecimalFunct::DecAdc && self.carry;
                let (sum, carry_out) = self.cla.add(a, b, carry_in);
                self.carry = carry_out;
                rd_value = Some(sum.raw());
            }
            DecimalFunct::ClrAll => {
                self.regfile = [0; 16];
                self.bin_scratch = 0;
                self.carry = false;
            }
            DecimalFunct::DecCnv => {
                let hw = double_dabble(rs1_value);
                self.regfile[ACC_INDEX] = hw.bcd.raw();
                rd_value = Some(hw.bcd.raw() as u64);
            }
            DecimalFunct::DecMul => {
                let (i1, _) = decode_reg_address(rs1_field);
                let (i2, _) = decode_reg_address(rs2_field);
                let a = Self::bcd64_operand(self.regfile[i1] as u64)?;
                let b = Self::bcd64_operand(self.regfile[i2] as u64)?;
                let product = a.full_mul(b);
                self.regfile[ACC_INDEX] = product.raw();
                rd_value = Some(product.raw() as u64);
            }
            DecimalFunct::DecAccum => {
                let digit = Self::digit_operand(rs1_value)?;
                let acc = self.bcd128_reg(ACC_INDEX)?;
                let addend = self.bcd128_reg(usize::from(digit))?;
                let (sum, carry) = acc.shl_digits(1).add(addend);
                self.carry = carry;
                self.regfile[ACC_INDEX] = sum.raw();
            }
            DecimalFunct::DecAddR => {
                let (ia, _) = decode_reg_address(rs1_field);
                let (ib, _) = decode_reg_address(rs2_field);
                let (id, _) = decode_reg_address(rd_field);
                let a = self.bcd128_reg(ia)?;
                let b = self.bcd128_reg(ib)?;
                let (sum, carry) = a.add(b);
                self.carry = carry;
                self.regfile[id] = sum.raw();
            }
            DecimalFunct::DecMulD => {
                let digit = Self::digit_operand(rs1_value)?;
                let x = Self::bcd64_operand(self.regfile[1] as u64)?;
                let acc = self.bcd128_reg(ACC_INDEX)?;
                let (sum, carry) = acc.shl_digits(1).add(x.mul_digit(digit));
                self.carry = carry;
                self.regfile[ACC_INDEX] = sum.raw();
            }
        }

        let busy = busy_cycles(funct, rs1_value);
        self.total_busy += u64::from(busy);
        *self.command_counts.entry(funct).or_insert(0) += 1;
        self.fsm.run_command(funct, rd_value.is_some());
        Ok(RoccResponse {
            rd_value,
            busy_cycles: busy,
            mem_accesses,
        })
    }
}

impl Coprocessor for DecimalAccelerator {
    fn execute(&mut self, cmd: &RoccCommand, mem: &mut Memory) -> Result<RoccResponse, CpuError> {
        let instr = cmd.instruction;
        let funct = DecimalFunct::from_funct7(instr.funct7).ok_or(
            CpuError::UnknownRoccFunction {
                funct7: instr.funct7,
            },
        )?;
        let resp = self.dispatch(
            funct,
            cmd.rs1_value,
            cmd.rs2_value,
            instr.rd.number(),
            instr.rs1.number(),
            instr.rs2.number(),
            Some(mem),
        )?;
        // When xs-flags are clear, the field numbers double as accelerator
        // addresses; when set, the values travelled in rs1_value/rs2_value —
        // dispatch already received both forms.
        if instr.xd && resp.rd_value.is_none() {
            return Err(CpuError::MissingRoccResponse {
                funct7: instr.funct7,
            });
        }
        Ok(resp)
    }

    fn reset(&mut self) {
        self.regfile = [0; 16];
        self.bin_scratch = 0;
        self.carry = false;
        self.fsm.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> DecimalAccelerator {
        DecimalAccelerator::new()
    }

    #[test]
    fn dec_add_and_carry() {
        let mut a = acc();
        let r = a
            .command(DecimalFunct::DecAdd, 0x9999_9999_9999_9999, 0x1, 0, 0, 0)
            .unwrap();
        assert_eq!(r.rd_value, Some(0));
        assert!(a.carry());
        // Chain the carry into the high half.
        let r2 = a.command(DecimalFunct::DecAdc, 0x5, 0x5, 0, 0, 0).unwrap();
        assert_eq!(r2.rd_value, Some(0x11)); // 5 + 5 + 1 = 11 in BCD
        assert!(!a.carry());
    }

    #[test]
    fn dec_add_rejects_invalid_bcd() {
        let mut a = acc();
        assert!(matches!(
            a.command(DecimalFunct::DecAdd, 0xA, 0x1, 0, 0, 0),
            Err(CpuError::RoccProtocol(_))
        ));
    }

    #[test]
    fn wr_rd_halves() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 0x1234, 0, 0, 0, 3).unwrap(); // reg3 lo
        a.command(DecimalFunct::Wr, 0x5678, 0, 0, 0, 0x13).unwrap(); // reg3 hi
        assert_eq!(a.register(3), (0x5678u128 << 64) | 0x1234);
        let lo = a.command(DecimalFunct::Rd, 0, 0, 0, 3, 0).unwrap();
        let hi = a.command(DecimalFunct::Rd, 0, 0, 0, 0x13, 0).unwrap();
        assert_eq!(lo.rd_value, Some(0x1234));
        assert_eq!(hi.rd_value, Some(0x5678));
    }

    #[test]
    fn binary_accumulator() {
        let mut a = acc();
        assert_eq!(
            a.command(DecimalFunct::Accum, 5, 0, 0, 0, 0).unwrap().rd_value,
            Some(5)
        );
        assert_eq!(
            a.command(DecimalFunct::Accum, 7, 0, 0, 0, 0).unwrap().rd_value,
            Some(12)
        );
    }

    #[test]
    fn clr_all_clears() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 42, 0, 0, 0, 1).unwrap();
        a.command(DecimalFunct::DecAdd, 0x9999_9999_9999_9999, 1, 0, 0, 0)
            .unwrap();
        a.command(DecimalFunct::ClrAll, 0, 0, 0, 0, 0).unwrap();
        assert_eq!(a.register(1), 0);
        assert!(!a.carry());
    }

    #[test]
    fn dec_cnv_converts_binary() {
        let mut a = acc();
        let r = a.command(DecimalFunct::DecCnv, 90_24, 0, 0, 0, 0).unwrap();
        assert_eq!(r.rd_value, Some(0x9024));
        assert!(r.busy_cycles >= 14, "9024 needs 14 bits");
    }

    #[test]
    fn dec_mul_full_product_in_acc() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 0x9999_9999_9999_9999, 0, 0, 0, 1)
            .unwrap();
        a.command(DecimalFunct::Wr, 0x9999_9999_9999_9999, 0, 0, 0, 2)
            .unwrap();
        a.command(DecimalFunct::DecMul, 0, 0, 0, 1, 2).unwrap();
        let product = bcd::Bcd128::new(a.acc()).unwrap();
        assert_eq!(
            product.to_value(),
            9_999_999_999_999_999u128 * 9_999_999_999_999_999u128
        );
    }

    #[test]
    fn dec_accum_horner_step() {
        let mut a = acc();
        // reg1 = 7, reg2 = 3.
        a.command(DecimalFunct::Wr, 0x7, 0, 0, 0, 1).unwrap();
        a.command(DecimalFunct::Wr, 0x3, 0, 0, 0, 2).unwrap();
        // acc = ((0*10)+7)*10 + 3 = 73
        a.command(DecimalFunct::DecAccum, 1, 0, 0, 0, 0).unwrap();
        a.command(DecimalFunct::DecAccum, 2, 0, 0, 0, 0).unwrap();
        assert_eq!(a.acc(), 0x73);
    }

    #[test]
    fn dec_accum_rejects_wide_digit() {
        let mut a = acc();
        assert!(a.command(DecimalFunct::DecAccum, 10, 0, 0, 0, 0).is_err());
    }

    #[test]
    fn dec_add_r_wide() {
        let mut a = acc();
        // reg1 = 16 nines in the low half, 1 in the high half ... build 17-digit value.
        a.command(DecimalFunct::Wr, 0x9999_9999_9999_9999, 0, 0, 0, 1).unwrap();
        a.command(DecimalFunct::Wr, 0x1, 0, 0, 0, 2).unwrap();
        // reg3 = reg1 + reg2 (wide): 10^16.
        a.command(DecimalFunct::DecAddR, 0, 0, 3, 1, 2).unwrap();
        assert_eq!(a.register(3), 1u128 << 64);
    }

    #[test]
    fn dec_muld_digit_multiply() {
        let mut a = acc();
        a.command(DecimalFunct::Wr, 0x123, 0, 0, 0, 1).unwrap();
        // acc = 0*10 + 123*9 = 1107
        a.command(DecimalFunct::DecMulD, 9, 0, 0, 0, 0).unwrap();
        assert_eq!(a.acc(), 0x1107);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = acc();
        a.command(DecimalFunct::DecAdd, 1, 2, 0, 0, 0).unwrap();
        a.command(DecimalFunct::DecAdd, 3, 4, 0, 0, 0).unwrap();
        assert_eq!(a.command_counts()[&DecimalFunct::DecAdd], 2);
        assert_eq!(a.total_busy_cycles(), 2);
    }
}
