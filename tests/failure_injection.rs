//! Failure injection: the framework must fail loudly and precisely, not
//! silently, when guests or inputs are malformed.

use decimalarith::riscv_asm::assemble;
use decimalarith::riscv_isa::Reg;
use decimalarith::riscv_sim::{Cpu, CpuError};
use decimalarith::rocc::DecimalAccelerator;

fn run_with_accel(source: &str) -> Result<i64, CpuError> {
    let program = assemble(source).expect("test program assembles");
    let mut cpu = Cpu::new();
    cpu.attach_coprocessor(Box::new(DecimalAccelerator::new()));
    for seg in program.segments() {
        if !seg.data.is_empty() {
            cpu.memory.load_bytes(seg.base, &seg.data).unwrap();
        }
    }
    cpu.set_pc(program.entry);
    cpu.set_reg(Reg::SP, decimalarith::riscv_asm::STACK_TOP);
    cpu.run(100_000)
}

#[test]
fn invalid_bcd_operand_to_dec_add_latches_in_band_status() {
    // The bad operand no longer kills the run: the command is dropped, the
    // fault latches, and STAT (funct7=12) reads it back in-band.
    let result = run_with_accel(
        "
        start:
            li a0, 0xA           # not a decimal digit
            li a1, 0x1
            custom0 4, a2, a1, a0, 1, 1, 1
            custom0 12, a0, zero, zero, 1, 0, 0
            li a7, 93
            ecall
        ",
    );
    // funct7=4 in bits 15:8, error flag bit 7, cause 1 (InvalidBcdOperand).
    assert_eq!(result.unwrap(), (4 << 8) | (1 << 7) | 1);
}

#[test]
fn unknown_rocc_function_latches_in_band_status() {
    let result = run_with_accel(
        "
        start:
            custom0 99, a0, a1, a2, 1, 1, 1
            custom0 12, a0, zero, zero, 1, 0, 0
            li a7, 93
            ecall
        ",
    );
    // funct7=99 in bits 15:8, error flag bit 7, cause 4 (UnknownFunction).
    assert_eq!(result.unwrap(), (99 << 8) | (1 << 7) | 4);
}

#[test]
fn custom_instruction_without_accelerator_faults() {
    let program = assemble(
        "
        start:
            custom0 4, a2, a1, a0, 1, 1, 1
            li a7, 93
            ecall
        ",
    )
    .unwrap();
    let mut cpu = Cpu::new(); // no coprocessor attached
    for seg in program.segments() {
        if !seg.data.is_empty() {
            cpu.memory.load_bytes(seg.base, &seg.data).unwrap();
        }
    }
    cpu.set_pc(program.entry);
    assert!(matches!(
        cpu.run(100),
        Err(CpuError::NoCoprocessor { funct7: 4 })
    ));
}

#[test]
fn wild_load_faults_with_the_address() {
    let result = run_with_accel(
        "
        start:
            li t0, 0x12345678
            ld a0, 0(t0)
            li a7, 93
            ecall
        ",
    );
    assert!(
        matches!(result, Err(CpuError::UnmappedAddress(0x1234_5678))),
        "got {result:?}"
    );
}

#[test]
fn runaway_guest_hits_the_instruction_limit() {
    let result = run_with_accel(
        "
        start:
            j start
        ",
    );
    assert!(matches!(result, Err(CpuError::InstructionLimit(_))));
}

#[test]
fn assembler_reports_precise_errors() {
    for (source, needle) in [
        ("start:\n    addi a0, a0, 5000\n", "immediate"),
        ("start:\n    frobnicate a0\n", "unknown mnemonic"),
        ("start:\n    beq a0, a1, nowhere\n", "undefined symbol"),
        ("start:\n    ld a0, 16\n", "offset(base)"),
        ("start:\n    .bogus 3\n", "unknown directive"),
    ] {
        let err = assemble(source).expect_err(source);
        assert!(
            err.message.contains(needle),
            "{source:?}: expected {needle:?} in {:?}",
            err.message
        );
    }
}

/// Loads `source` into a fresh core with the given coprocessor attached,
/// ready for a lockstep run.
fn cpu_with(
    source: &str,
    coproc: Box<dyn decimalarith::riscv_sim::Coprocessor>,
) -> decimalarith::riscv_sim::Cpu {
    let program = assemble(source).expect("test program assembles");
    let mut cpu = Cpu::new();
    cpu.attach_coprocessor(coproc);
    decimalarith::lockstep::load_program(&mut cpu, &program);
    cpu
}

#[test]
fn lockstep_catches_a_wrong_digit_accelerator_at_the_custom0_pc() {
    // A broken BCD adder cell (low digit off by one) on one side of the
    // pair: the comparator must pin the divergence to the DEC_ADD
    // retirement itself, with the destination register in the delta.
    use decimalarith::lockstep::inject::WrongDigitAccelerator;
    use decimalarith::lockstep::{run_lockstep, LockstepOptions};
    use decimalarith::riscv_asm::TEXT_BASE;
    use decimalarith::rocc::DecimalFunct;

    let source = "
        start:
            li t0, 0x15
            li t1, 0x27
            custom0 4, t2, t0, t1, 1, 1, 1
            li a0, 0
            li a7, 93
            ecall
    ";
    let mut good = cpu_with(source, Box::new(DecimalAccelerator::new()));
    let mut bad = cpu_with(
        source,
        Box::new(WrongDigitAccelerator::new(DecimalFunct::DecAdd)),
    );
    let outcome = run_lockstep(&mut good, &mut bad, &LockstepOptions::default());
    let divergence = outcome.divergence().expect("wrong digit must be caught");
    assert_eq!(divergence.pc, TEXT_BASE + 2 * 4, "{divergence}");
    assert!(
        divergence.reg_delta.iter().any(|d| d.reg == Reg::T2),
        "{divergence}"
    );
    // BCD 15 + 27 = 42; the faulty datapath answers 43.
    assert!(
        divergence
            .reg_delta
            .iter()
            .any(|d| d.a_value == 0x42 && d.b_value == 0x43),
        "{divergence}"
    );
}

#[test]
fn lockstep_catches_a_stuck_interface_fsm_at_the_first_wedged_command() {
    // An interface FSM that wedges after one command: the second DEC_ADD
    // never completes its handshake on the faulty side. The busy-watchdog
    // bounds the hang and the comparator reports the asymmetric fault.
    use decimalarith::lockstep::inject::StuckFsmAccelerator;
    use decimalarith::lockstep::{run_lockstep, LockstepOptions, StepOutcome};
    use decimalarith::riscv_asm::TEXT_BASE;

    let source = "
        start:
            li t0, 0x11
            custom0 4, t2, t0, t0, 1, 1, 1
            li t0, 0x15
            li t1, 0x27
            custom0 4, t3, t0, t1, 1, 1, 1
            li a0, 0
            li a7, 93
            ecall
    ";
    let mut good = cpu_with(source, Box::new(DecimalAccelerator::new()));
    let mut bad = cpu_with(source, Box::new(StuckFsmAccelerator::new(1)));
    let outcome = run_lockstep(&mut good, &mut bad, &LockstepOptions::default());
    let divergence = outcome.divergence().expect("stuck FSM must be caught");
    assert_eq!(divergence.pc, TEXT_BASE + 4 * 4, "{divergence}");
    assert!(
        matches!(
            divergence.b,
            StepOutcome::Fault(CpuError::RoccTimeout { funct7: 4, .. })
        ),
        "{divergence}"
    );
    // Good side completed the sum; the wedged side never wrote t3.
    assert!(
        divergence
            .reg_delta
            .iter()
            .any(|d| d.reg == Reg::T3 && d.a_value == 0x42 && d.b_value == 0),
        "{divergence}"
    );
}

#[test]
fn ld_through_rocc_memory_interface_latches_memory_fault() {
    // LD (funct7=2) reads memory at the address in rs1; an unmapped address
    // latches MemoryFault (cause 5) instead of killing the run.
    let result = run_with_accel(
        "
        start:
            li a0, 0x666000
            custom0 2, zero, a0, x1, 0, 1, 0
            custom0 12, a0, zero, zero, 1, 0, 0
            li a7, 93
            ecall
        ",
    );
    assert_eq!(result.unwrap(), (2 << 8) | (1 << 7) | 5);
}

#[test]
fn clr_all_recovers_a_latched_fault_end_to_end() {
    // After CLR_ALL the accelerator computes again: 15 + 27 = 42 (BCD).
    let result = run_with_accel(
        "
        start:
            li a0, 0xA
            li a1, 0x1
            custom0 4, a2, a1, a0, 1, 1, 1     # latches InvalidBcdOperand
            custom0 5, zero, zero, zero, 0, 0, 0  # CLR_ALL clears it
            li t0, 0x15
            li t1, 0x27
            custom0 4, a0, t0, t1, 1, 1, 1
            li a7, 93
            ecall
        ",
    );
    assert_eq!(result.unwrap(), 0x42);
}
