//! RoCC-protocol typestate checking.
//!
//! The accelerator's architectural contract (the Fig. 5 FSM plus the PR-2
//! sticky-Error extension) is abstracted into a small product lattice
//! propagated over every CFG path:
//!
//! * `init`/`written` — *must* masks over the internal register file:
//!   which registers are initialized (by `CLR_ALL` or any write) and which
//!   hold explicitly deposited data since the last `CLR_ALL`. The
//!   deeper-offload compute commands require their explicitly-addressed
//!   operands in `written` (multiplying a merely-cleared register is
//!   almost certainly a protocol bug), and every read in `init`.
//! * `carry` — *must*: the carry latch is defined (`DEC_ADC` consumes it).
//! * `clean` — *must*: the accelerator is freshly cleared and untouched,
//!   so another `CLR_ALL` is dead.
//! * `error` — *may*: a path exists on which guest code *observed* a
//!   nonzero `STAT` (took the error direction of a branch on a
//!   `STAT`-tainted register) and has not yet issued `CLR_ALL`. Issuing
//!   any command the Error state does not service on such a path is a
//!   reuse-after-error bug.
//! * `taint` — *may* mask over core registers currently holding a `STAT`
//!   result, feeding both the `error` refinement and the dead-`STAT`
//!   (result never consumed) check via liveness.
//!
//! Commands' register effects come from [`DecimalFunct`]'s typestate
//! metadata, not a re-transcription of the accelerator match.

use std::collections::VecDeque;

use riscv_isa::instr::BranchOp;
use riscv_isa::rocc::{CustomOpcode, RoccInstruction};
use riscv_isa::{Instr, Reg};
use rocc::{DecimalFunct, ACC_INDEX};

use crate::cfg::Cfg;
use crate::dataflow::reg_bit;

/// The abstract accelerator-protocol state at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelState {
    /// Must-initialized internal registers.
    pub init: u16,
    /// Must-deposited internal registers since the last `CLR_ALL`.
    pub written: u16,
    /// The carry latch is defined on every path.
    pub carry: bool,
    /// Freshly cleared and untouched on every path.
    pub clean: bool,
    /// Some path observed an accelerator error without clearing it.
    pub error: bool,
    /// Core registers that may hold a `STAT` result.
    pub taint: u32,
}

impl AccelState {
    /// The state at the program entry: nothing initialized, carry
    /// undefined, no error observed.
    pub const ENTRY: AccelState = AccelState {
        init: 0,
        written: 0,
        carry: false,
        clean: false,
        error: false,
        taint: 0,
    };

    /// The state assumed at address-taken roots (trap handlers): their
    /// callers are outside the recovered graph, so everything that would
    /// produce a *must*-style finding is assumed established.
    pub const UNKNOWN_CALLER: AccelState = AccelState {
        init: u16::MAX,
        written: u16::MAX,
        carry: true,
        clean: false,
        error: false,
        taint: 0,
    };

    fn join(self, other: AccelState) -> AccelState {
        AccelState {
            init: self.init & other.init,
            written: self.written & other.written,
            carry: self.carry && other.carry,
            clean: self.clean && other.clean,
            error: self.error || other.error,
            taint: self.taint | other.taint,
        }
    }
}

/// Decoded operand fields of a RoCC instruction, as
/// [`DecimalFunct::regs_read`] expects them.
#[must_use]
pub fn rocc_fields(rocc: &RoccInstruction) -> (u8, u8, u8) {
    (rocc.rd.number(), rocc.rs1.number(), rocc.rs2.number())
}

/// The accelerator command carried by `instr`, if it is a custom-0
/// instruction (the opcode the decimal accelerator listens on).
#[must_use]
pub fn accel_command(instr: &Instr) -> Option<&RoccInstruction> {
    match instr {
        Instr::Custom(rocc) if rocc.opcode == CustomOpcode::Custom0 => Some(rocc),
        _ => None,
    }
}

/// Internal registers a command must hold *deposited* data in (beyond
/// mere initialization): the explicitly-addressed multiplicand/multiple
/// operands of the deeper-offload compute commands. The accumulator and
/// `DEC_ACCUM`'s digit-indexed addends are legitimately consumed in their
/// cleared state, so they only require `init`.
#[must_use]
pub fn required_written(funct: DecimalFunct, fields: (u8, u8, u8)) -> u16 {
    match funct {
        DecimalFunct::DecMul | DecimalFunct::DecAddR | DecimalFunct::DecMulD => {
            funct.regs_read(fields) & !(1u16 << ACC_INDEX)
        }
        _ => 0,
    }
}

/// Solved typestate facts: the joined abstract state at each reachable
/// instruction (`None` where unreachable).
pub struct Typestate {
    /// Per-instruction in-state.
    pub states: Vec<Option<AccelState>>,
}

impl Typestate {
    /// Propagates the protocol lattice to a fixpoint over the CFG.
    #[must_use]
    pub fn solve(cfg: &Cfg) -> Typestate {
        let n = cfg.len();
        let mut states: Vec<Option<AccelState>> = vec![None; n];
        let mut queue = VecDeque::new();
        let mut on_queue = vec![false; n];
        let mut seed = |i: u32, s: AccelState| {
            states[i as usize] = Some(match states[i as usize] {
                Some(old) => old.join(s),
                None => s,
            });
            on_queue[i as usize] = true;
            queue.push_back(i);
        };
        seed(cfg.entry, AccelState::ENTRY);
        for &r in &cfg.secondary_roots.clone() {
            seed(r, AccelState::UNKNOWN_CALLER);
        }
        while let Some(i) = queue.pop_front() {
            on_queue[i as usize] = false;
            let Some(s) = states[i as usize] else { continue };
            for (t, out) in successor_states(cfg, i, s) {
                let merged = match states[t as usize] {
                    Some(old) => old.join(out),
                    None => out,
                };
                if states[t as usize] != Some(merged) {
                    states[t as usize] = Some(merged);
                    if !std::mem::replace(&mut on_queue[t as usize], true) {
                        queue.push_back(t);
                    }
                }
            }
        }
        Typestate { states }
    }
}

/// The out-state along each successor edge of instruction `i`, applying
/// the command transfer function and the error-path refinement on
/// branches that test a `STAT`-tainted register against zero.
fn successor_states(cfg: &Cfg, i: u32, s: AccelState) -> Vec<(u32, AccelState)> {
    let Some(instr) = &cfg.instrs[i as usize] else {
        return Vec::new();
    };
    let base = transfer(instr, s);

    if let Instr::Branch {
        op: op @ (BranchOp::Bne | BranchOp::Beq),
        rs1,
        rs2,
        offset,
    } = instr
    {
        let tested = match (*rs1, *rs2) {
            (r, Reg::ZERO) | (Reg::ZERO, r) if r != Reg::ZERO && s.taint & reg_bit(r) != 0 => {
                Some(r)
            }
            _ => None,
        };
        if tested.is_some() {
            // `bnez stat` jumps on error; `beqz stat` falls through on it.
            let taken_pc = cfg.pc(i).wrapping_add(*offset as i64 as u64);
            let error_state = AccelState {
                error: true,
                ..base
            };
            return cfg.succs[i as usize]
                .iter()
                .map(|&t| {
                    let is_taken = u64::from(t) * 4 + cfg.base == taken_pc;
                    let errors_here = match op {
                        BranchOp::Bne => is_taken,
                        _ => !is_taken,
                    };
                    (t, if errors_here { error_state } else { base })
                })
                .collect();
        }
    }

    cfg.succs[i as usize].iter().map(|&t| (t, base)).collect()
}

/// The command/instruction transfer function (successor-independent part).
fn transfer(instr: &Instr, mut s: AccelState) -> AccelState {
    if let Some(rocc) = accel_command(instr) {
        if let Some(funct) = DecimalFunct::from_funct7(rocc.funct7) {
            let fields = rocc_fields(rocc);
            if funct == DecimalFunct::ClrAll {
                s.init = u16::MAX;
                s.written = 0;
                s.carry = true;
                s.clean = true;
                s.error = false;
            } else {
                let written = funct.regs_written(fields);
                s.init |= written;
                s.written |= written;
                if funct.defines_carry() {
                    s.carry = true;
                }
                if funct.mutates_state() {
                    s.clean = false;
                }
            }
            if rocc.xd && rocc.rd != Reg::ZERO {
                if funct == DecimalFunct::Stat {
                    s.taint |= reg_bit(rocc.rd);
                } else {
                    s.taint &= !reg_bit(rocc.rd);
                }
            }
            return s;
        }
    }
    if let Some(rd) = instr.dest() {
        s.taint &= !reg_bit(rd);
    }
    s
}
