//! Differential validation against an independent reference implementation.
//!
//! The reference below shares no code with `decnum`: products are computed
//! exactly in `u128`, rendered as digit strings, and rounded by direct
//! string manipulation following the IEEE 754-2008 / General Decimal
//! Arithmetic rules. Any systematic bias in `decnum`'s digit-vector
//! arithmetic or its `finish` pipeline would show up here.

use decnum::{Context, DecNumber, Rounding, Status};
use proptest::prelude::*;

/// decimal64 parameters.
const PRECISION: usize = 16;
const EMAX: i64 = 384;
const EMIN: i64 = -383;
const ETINY: i64 = EMIN - (PRECISION as i64 - 1);
const ETOP: i64 = EMAX - (PRECISION as i64 - 1);

/// An independently computed decimal64 multiplication result.
#[derive(Debug, PartialEq, Eq)]
struct RefResult {
    /// `None` = infinity (overflow).
    text: Option<(bool, String, i64)>, // (negative, coefficient, exponent)
    inexact: bool,
    overflow: bool,
    underflow: bool,
    subnormal: bool,
    clamped: bool,
}

/// Exact product of two coefficient/exponent pairs, rounded per decimal64
/// half-even — implemented entirely with strings and u128.
fn reference_multiply(
    neg_x: bool,
    cx: u64,
    qx: i64,
    neg_y: bool,
    cy: u64,
    qy: i64,
) -> RefResult {
    let negative = neg_x != neg_y;
    let exact = u128::from(cx) * u128::from(cy);
    let mut exponent = qx + qy;
    let mut inexact = false;
    let mut clamped = false;

    if exact == 0 {
        let clamped_exp = exponent.clamp(ETINY, ETOP);
        return RefResult {
            text: Some((negative, "0".to_string(), clamped_exp)),
            inexact: false,
            overflow: false,
            underflow: false,
            subnormal: false,
            clamped: clamped_exp != exponent,
        };
    }

    let mut digits = exact.to_string();
    let adjusted = exponent + digits.len() as i64 - 1;
    let subnormal = adjusted < EMIN;

    // Single rounding: to precision, or at Etiny for subnormal results.
    let mut discard = digits.len().saturating_sub(PRECISION);
    if subnormal && exponent < ETINY {
        discard = discard.max((ETINY - exponent) as usize);
    }
    if discard > 0 {
        let (kept_str, dropped) = if discard >= digits.len() {
            (String::new(), digits.clone())
        } else {
            let split = digits.len() - discard;
            (digits[..split].to_string(), digits[split..].to_string())
        };
        let dropped_bytes = dropped.as_bytes();
        let round_digit = dropped_bytes.first().map_or(0, |b| b - b'0');
        // When everything (and more) is discarded, the round digit position
        // is above the MSD: it is 0 and the whole value is sticky.
        let (round_digit, sticky) = if discard > digits.len() {
            (0u8, exact != 0)
        } else {
            (
                round_digit,
                dropped_bytes[1..].iter().any(|&b| b != b'0'),
            )
        };
        inexact = round_digit != 0 || sticky;
        let mut kept: u128 = if kept_str.is_empty() {
            0
        } else {
            kept_str.parse().expect("digits parse")
        };
        let lsd_odd = kept % 2 == 1;
        if round_digit > 5 || (round_digit == 5 && (sticky || lsd_odd)) {
            kept += 1;
        }
        digits = kept.to_string();
        exponent += discard as i64;
        if digits.len() > PRECISION {
            // All-nines rollover.
            assert!(digits.ends_with('0'));
            digits.pop();
            exponent += 1;
        }
        if kept == 0 {
            digits = "0".to_string();
        }
    }
    let underflow = subnormal && inexact;

    // Overflow.
    if digits != "0" {
        let adjusted = exponent + digits.len() as i64 - 1;
        if adjusted > EMAX {
            return RefResult {
                text: None,
                inexact: true,
                overflow: true,
                underflow: false,
                subnormal,
                clamped: false,
            };
        }
        if exponent > ETOP {
            let pad = (exponent - ETOP) as usize;
            digits.push_str(&"0".repeat(pad));
            exponent = ETOP;
            clamped = true;
        }
    } else {
        let target = exponent.clamp(ETINY, ETOP);
        if target != exponent && !subnormal {
            clamped = true;
        }
        if subnormal && digits == "0" {
            clamped = true; // underflowed to zero
        }
        exponent = target;
    }

    RefResult {
        text: Some((negative, digits, exponent)),
        inexact,
        overflow: false,
        underflow,
        subnormal,
        clamped,
    }
}

fn make(neg: bool, coeff: u64, exp: i64) -> DecNumber {
    let mut digits = Vec::new();
    let mut c = coeff;
    while c != 0 {
        digits.push((c % 10) as u8);
        c /= 10;
    }
    DecNumber::from_parts(
        if neg {
            decnum::Sign::Negative
        } else {
            decnum::Sign::Positive
        },
        &digits,
        exp as i32,
    )
}

fn check_pair(neg_x: bool, cx: u64, qx: i64, neg_y: bool, cy: u64, qy: i64) {
    let mut ctx = Context::decimal64().with_rounding(Rounding::HalfEven);
    let got = make(neg_x, cx, qx).mul(&make(neg_y, cy, qy), &mut ctx);
    let expected = reference_multiply(neg_x, cx, qx, neg_y, cy, qy);
    let label = format!("{cx}E{qx} × {cy}E{qy} (signs {neg_x}/{neg_y})");

    match expected.text {
        None => assert!(got.is_infinite(), "{label}: expected overflow, got {got}"),
        Some((negative, ref digits, exponent)) => {
            assert!(got.is_finite(), "{label}: got {got}");
            assert_eq!(
                got.coefficient_string(),
                *digits,
                "{label}: coefficient (got {got})"
            );
            assert_eq!(i64::from(got.exponent()), exponent, "{label}: exponent");
            if digits != "0" || negative {
                assert_eq!(got.is_negative(), negative, "{label}: sign");
            }
        }
    }
    let s = ctx.status();
    assert_eq!(s.contains(Status::INEXACT), expected.inexact, "{label}: inexact");
    assert_eq!(s.contains(Status::OVERFLOW), expected.overflow, "{label}: overflow");
    assert_eq!(s.contains(Status::UNDERFLOW), expected.underflow, "{label}: underflow");
    assert_eq!(s.contains(Status::SUBNORMAL), expected.subnormal, "{label}: subnormal");
    assert_eq!(s.contains(Status::CLAMPED), expected.clamped, "{label}: clamped");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn multiply_matches_independent_reference(
        cx in 0u64..=9_999_999_999_999_999,
        qx in -398i64..=369,
        cy in 0u64..=9_999_999_999_999_999,
        qy in -398i64..=369,
        neg_x: bool,
        neg_y: bool,
    ) {
        check_pair(neg_x, cx, qx, neg_y, cy, qy);
    }
}

#[test]
fn boundary_cases_match_independent_reference() {
    let max = 9_999_999_999_999_999u64;
    let cases = [
        (max, 369i64, max, 369i64),   // deep overflow
        (max, 0, max, 0),             // rounding with all-nines
        (1, -398, 1, 0),              // subnormal exact
        (max, -398, 1, -16),          // subnormal rounding
        (5, -200, 5, -199),           // half-way subnormal
        (1, 200, 1, 175),             // clamping
        (123, -398, 1000, -3),        // rounding at etiny
        (max, 192, max, 193),         // adjusted == emax + 1 edge
        (1, 369, 1, 15),              // exponent exactly etop + 15
        (9, 192, 9, 192),             // adjusted exactly emax
    ];
    for (cx, qx, cy, qy) in cases {
        for (nx, ny) in [(false, false), (true, false), (true, true)] {
            check_pair(nx, cx, qx, ny, cy, qy);
        }
    }
}

/// Mode-parameterized increment rule, written independently of the library.
fn ref_increment(mode: Rounding, negative: bool, round_digit: u8, sticky: bool, lsd: u128) -> bool {
    let any = round_digit != 0 || sticky;
    match mode {
        Rounding::Down => false,
        Rounding::Up => any,
        Rounding::Ceiling => !negative && any,
        Rounding::Floor => negative && any,
        Rounding::HalfUp => round_digit >= 5,
        Rounding::HalfDown => round_digit > 5 || (round_digit == 5 && sticky),
        Rounding::HalfEven => {
            round_digit > 5 || (round_digit == 5 && (sticky || lsd % 2 == 1))
        }
        Rounding::ZeroFiveUp => any && (lsd % 10 == 0 || lsd % 10 == 5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// All eight rounding modes: the kept coefficient of a product that needs
    /// rounding (and stays in the normal range) matches the independent rule.
    #[test]
    fn all_rounding_modes_match_reference(
        cx in 1_000_000_000u64..=9_999_999_999_999_999,
        cy in 1_000_000_000u64..=9_999_999_999_999_999,
        negative: bool,
        mode_index in 0usize..8,
    ) {
        let mode = Rounding::ALL[mode_index];
        let mut ctx = Context::decimal64().with_rounding(mode);
        let x = make(negative, cx, 0);
        let y = make(false, cy, 0);
        let got = x.mul(&y, &mut ctx);

        let exact = u128::from(cx) * u128::from(cy);
        let digits = exact.to_string();
        prop_assume!(digits.len() > PRECISION); // rounding must occur
        let split = digits.len() - PRECISION;
        let mut kept: u128 = digits[..PRECISION].parse().unwrap();
        let round_digit = digits.as_bytes()[PRECISION] - b'0';
        let sticky = digits.as_bytes()[PRECISION + 1..].iter().any(|&b| b != b'0');
        if ref_increment(mode, negative, round_digit, sticky, kept) {
            kept += 1;
        }
        let mut exponent = split as i64;
        let mut kept_str = kept.to_string();
        if kept_str.len() > PRECISION {
            kept_str.pop();
            exponent += 1;
        }
        prop_assert!(got.is_finite());
        prop_assert_eq!(got.coefficient_string(), kept_str, "mode {:?}", mode);
        prop_assert_eq!(i64::from(got.exponent()), exponent, "mode {:?}", mode);
    }
}
