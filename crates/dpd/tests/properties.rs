//! Property tests for declet compression and the interchange formats.

use bcd::Bcd64;
use dpd::declet::{decode_declet, decode_declet_bin, encode_declet, encode_declet_bin};
use dpd::{Decimal128, Decimal32, Decimal64, Sign};
use proptest::prelude::*;

proptest! {
    #[test]
    fn declet_roundtrip(d2 in 0u8..=9, d1 in 0u8..=9, d0 in 0u8..=9) {
        let declet = encode_declet(d2, d1, d0);
        prop_assert!(declet < 1024);
        prop_assert_eq!(decode_declet(declet), (d2, d1, d0));
    }

    #[test]
    fn declet_bin_roundtrip(v in 0u16..1000) {
        prop_assert_eq!(decode_declet_bin(encode_declet_bin(v)), v);
    }

    #[test]
    fn decode_is_total(bits in 0u16..1024) {
        let (d2, d1, d0) = decode_declet(bits);
        prop_assert!(d2 <= 9 && d1 <= 9 && d0 <= 9);
        // Decoding then re-encoding must be idempotent on the canonical form.
        let canon = encode_declet(d2, d1, d0);
        prop_assert_eq!(decode_declet(canon), (d2, d1, d0));
    }

    #[test]
    fn d64_parts_roundtrip(
        coeff in 0u64..=9_999_999_999_999_999,
        exp in Decimal64::EMIN_Q..=Decimal64::EMAX_Q,
        negative: bool,
    ) {
        let sign = if negative { Sign::Negative } else { Sign::Positive };
        let c = Bcd64::from_value(coeff).unwrap();
        let v = Decimal64::from_parts(sign, c, exp).unwrap();
        let p = v.to_parts().unwrap();
        prop_assert_eq!(p.sign, sign);
        prop_assert_eq!(p.coefficient, c);
        prop_assert_eq!(p.exponent, exp);
        prop_assert!(v.is_canonical());
        prop_assert!(v.is_finite());
    }

    #[test]
    fn d64_every_bit_pattern_classifies(bits in any::<u64>()) {
        let v = Decimal64::from_bits(bits);
        // classify() and (for finite values) to_parts() must never panic and
        // must produce in-range digits.
        if v.is_finite() {
            let p = v.to_parts().unwrap();
            prop_assert!(p.coefficient.significant_digits() <= 16);
            prop_assert!((Decimal64::EMIN_Q..=Decimal64::EMAX_Q).contains(&p.exponent));
        } else {
            prop_assert!(v.to_parts().is_err());
        }
    }

    #[test]
    fn d32_parts_roundtrip(
        coeff in 0u64..=9_999_999,
        exp in Decimal32::EMIN_Q..=Decimal32::EMAX_Q,
        negative: bool,
    ) {
        let sign = if negative { Sign::Negative } else { Sign::Positive };
        let c = Bcd64::from_value(coeff).unwrap();
        let v = Decimal32::from_parts(sign, c, exp).unwrap();
        let p = v.to_parts().unwrap();
        prop_assert_eq!((p.sign, p.coefficient, p.exponent), (sign, c, exp));
    }

    #[test]
    fn d128_parts_roundtrip(
        digits in proptest::collection::vec(0u8..=9, 0..=34),
        exp in Decimal128::EMIN_Q..=Decimal128::EMAX_Q,
        negative: bool,
    ) {
        let sign = if negative { Sign::Negative } else { Sign::Positive };
        let v = Decimal128::from_parts(sign, &digits, exp).unwrap();
        let p = v.to_parts().unwrap();
        prop_assert_eq!(p.sign, sign);
        prop_assert_eq!(p.exponent, exp);
        for (i, &d) in p.digits.iter().enumerate() {
            let expected = digits.get(i).copied().unwrap_or(0);
            prop_assert_eq!(d, expected, "digit {}", i);
        }
    }

    #[test]
    fn d128_every_bit_pattern_classifies(bits in any::<u128>()) {
        let v = Decimal128::from_bits(bits);
        if v.is_finite() {
            let p = v.to_parts().unwrap();
            prop_assert!(p.digits.iter().all(|&d| d <= 9));
        }
    }
}
