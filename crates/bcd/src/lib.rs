//! Packed BCD-8421 arithmetic and hardware-model components.
//!
//! This crate provides the decimal digit-level substrate used throughout the
//! co-design evaluation framework:
//!
//! * [`Bcd64`] — sixteen packed BCD digits in a `u64` (the word size that the
//!   RoCC decimal accelerator exchanges with the Rocket core).
//! * [`Bcd128`] — thirty-two packed BCD digits in a `u128` (wide values such
//!   as coefficient products and the accelerator's internal accumulator).
//! * [`cla`] — a functional, cost-annotated model of the BCD carry-lookahead
//!   adder (BCD-CLA) that the paper's accelerator is built around.
//! * [`convert`] — binary ⇄ BCD conversion, including the double-dabble
//!   algorithm that models the `DEC_CNV` instruction's hardware.
//!
//! # Example
//!
//! ```
//! use bcd::Bcd64;
//!
//! # fn main() -> Result<(), bcd::BcdError> {
//! let a = Bcd64::from_value(1234)?;
//! let b = Bcd64::from_value(8766)?;
//! let (sum, carry) = a.add(b);
//! assert_eq!(sum.to_value(), 10_000);
//! assert!(!carry);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bcd128;
mod bcd64;
pub mod cla;
pub mod convert;
mod error;

pub use bcd128::Bcd128;
pub use bcd64::Bcd64;
pub use error::BcdError;

/// Number of decimal digits stored in a [`Bcd64`].
pub const BCD64_DIGITS: u32 = 16;

/// Number of decimal digits stored in a [`Bcd128`].
pub const BCD128_DIGITS: u32 = 32;

/// Mask of the per-nibble decimal carry-out positions for a 64-bit word
/// (bit `4*(i+1)` is the carry out of digit `i`).
pub(crate) const CARRY_BITS64: u128 = 0x1_1111_1111_1111_1110;

/// `0x6` replicated in every nibble of a 64-bit word; the excess-6 bias used
/// by the classic branch-free packed-BCD addition.
pub(crate) const SIXES64: u128 = 0x6666_6666_6666_6666;

/// Adds two packed-BCD `u64` words plus a carry-in.
///
/// Returns `(sum, carry_out)`. Inputs must be valid packed BCD; the output is
/// then valid packed BCD. This is the software reference model of the BCD-CLA
/// hardware (see [`cla`]).
pub(crate) fn raw_add64(a: u64, b: u64, carry_in: bool) -> (u64, bool) {
    let (s1, c1) = raw_add64_nocarry(a, b);
    if carry_in {
        let (s2, c2) = raw_add64_nocarry(s1, 1);
        (s2, c1 | c2)
    } else {
        (s1, c1)
    }
}

fn raw_add64_nocarry(a: u64, b: u64) -> (u64, bool) {
    let t = a as u128 + SIXES64;
    let u = t + b as u128;
    // Bit 4*(i+1) of the carry vector is the carry *into* that bit position,
    // i.e. the decimal carry out of digit i (excess-6 makes a nibble overflow
    // exactly when the digit sum is >= 10).
    let carries = (t ^ b as u128 ^ u) & CARRY_BITS64;
    // Digits that produced no decimal carry still hold the +6 bias: remove it.
    let correction = ((!carries & CARRY_BITS64) >> 4) * 6;
    let sum = (u - correction) as u64;
    let carry_out = carries & (1 << 64) != 0;
    (sum, carry_out)
}

/// Nine's complement of a packed-BCD `u64` word (each digit `d` → `9 - d`).
pub(crate) fn nines_complement64(a: u64) -> u64 {
    // Every nibble of `a` is <= 9, so the subtraction never borrows across
    // nibble boundaries.
    0x9999_9999_9999_9999 - a
}

/// Returns true if every nibble of `raw` is a decimal digit (0..=9).
pub(crate) fn is_valid_packed64(raw: u64) -> bool {
    // A nibble is >= 10 iff adding 6 to it carries out of the nibble.
    let t = (raw as u128 + SIXES64) ^ raw as u128 ^ SIXES64;
    t & CARRY_BITS64 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_add_simple() {
        assert_eq!(raw_add64(0x19, 0x03, false), (0x22, false));
        assert_eq!(raw_add64(0x99, 0x01, false), (0x100, false));
        assert_eq!(raw_add64(0, 0, false), (0, false));
    }

    #[test]
    fn raw_add_carry_in() {
        assert_eq!(raw_add64(0x19, 0x03, true), (0x23, false));
        assert_eq!(
            raw_add64(0x9999_9999_9999_9999, 0, true),
            (0, true),
            "carry-in ripples through all sixteen nines"
        );
    }

    #[test]
    fn raw_add_full_width_carry() {
        let max = 0x9999_9999_9999_9999;
        assert_eq!(raw_add64(max, 0x1, false), (0, true));
        assert_eq!(raw_add64(max, max, false), (0x9999_9999_9999_9998, true));
    }

    #[test]
    fn validity_check() {
        assert!(is_valid_packed64(0x0123_4567_8901_2345));
        assert!(is_valid_packed64(0x9999_9999_9999_9999));
        assert!(!is_valid_packed64(0x0A00));
        assert!(!is_valid_packed64(0xF000_0000_0000_0000));
    }

    #[test]
    fn nines_complement_works() {
        assert_eq!(nines_complement64(0), 0x9999_9999_9999_9999);
        assert_eq!(
            nines_complement64(0x0123_4567_8912_3456),
            0x9876_5432_1087_6543
        );
    }
}
