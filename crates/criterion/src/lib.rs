//! A self-contained, offline stand-in for the `criterion` crate.
//!
//! Provides the surface this workspace's benches use — [`Criterion`],
//! [`black_box`], `bench_function`, `benchmark_group` (with
//! `sample_size`/`finish`), [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! median-of-samples wall-clock timer. No statistics, plots, or baselines:
//! just honest ns/iter numbers on stdout so the benches keep running in a
//! network-less container.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting a
/// computation or const-folding its input.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs the measured closure and reports timing per iteration.
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Times `f`, auto-calibrating the iteration count so each sample runs
    /// at least ~1 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Sample.
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    }
}

fn report(label: &str, bencher: &Bencher) {
    let ns = bencher.median_ns();
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!(
        "{label:<48} {value:>10.3} {unit}/iter  ({} iters/sample, {} samples)",
        bencher.iters_per_sample,
        bencher.samples.len()
    );
}

/// The bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&name.to_string(), &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("— group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks (shares a heading and a sample size).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&format!("  {name}"), &bencher);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a bench group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_add(black_box(1));
                acc
            })
        });
    }
}
