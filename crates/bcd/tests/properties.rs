//! Property-based tests pinning the BCD arithmetic to `u64`/`u128` reference
//! semantics.

use bcd::cla::BcdCla;
use bcd::convert::{double_dabble, reverse_double_dabble};
use bcd::{Bcd128, Bcd64};
use proptest::prelude::*;

const MAX16: u64 = 9_999_999_999_999_999;

fn bcd64_value() -> impl Strategy<Value = u64> {
    0..=MAX16
}

proptest! {
    #[test]
    fn value_roundtrip(v in bcd64_value()) {
        prop_assert_eq!(Bcd64::from_value(v).unwrap().to_value(), v);
    }

    #[test]
    fn add_matches_integer_add(a in bcd64_value(), b in bcd64_value()) {
        let (s, carry) = Bcd64::from_value(a).unwrap().add(Bcd64::from_value(b).unwrap());
        let expected = a as u128 + b as u128;
        let expected_sum = (expected % 10u128.pow(16)) as u64;
        prop_assert_eq!(s.to_value(), expected_sum);
        prop_assert_eq!(carry, expected >= 10u128.pow(16));
    }

    #[test]
    fn adc_matches_integer_add(a in bcd64_value(), b in bcd64_value(), cin: bool) {
        let (s, carry) = Bcd64::from_value(a).unwrap().adc(Bcd64::from_value(b).unwrap(), cin);
        let expected = a as u128 + b as u128 + u128::from(cin);
        prop_assert_eq!(s.to_value(), (expected % 10u128.pow(16)) as u64);
        prop_assert_eq!(carry, expected >= 10u128.pow(16));
    }

    #[test]
    fn sub_matches_integer_sub(a in bcd64_value(), b in bcd64_value()) {
        let (d, borrow) = Bcd64::from_value(a).unwrap().sub(Bcd64::from_value(b).unwrap());
        if a >= b {
            prop_assert!(!borrow);
            prop_assert_eq!(d.to_value(), a - b);
        } else {
            prop_assert!(borrow);
            prop_assert_eq!(u128::from(d.to_value()), 10u128.pow(16) + u128::from(a) - u128::from(b));
        }
    }

    #[test]
    fn cla_matches_software_adder(a in bcd64_value(), b in bcd64_value(), cin: bool) {
        let cla = BcdCla::new(16);
        let x = Bcd64::from_value(a).unwrap();
        let y = Bcd64::from_value(b).unwrap();
        prop_assert_eq!(cla.add(x, y, cin), x.adc(y, cin));
    }

    #[test]
    fn mul_digit_matches_integer(a in bcd64_value(), d in 0u8..=9) {
        let p = Bcd64::from_value(a).unwrap().mul_digit(d);
        prop_assert_eq!(p.to_value(), u128::from(a) * u128::from(d));
    }

    #[test]
    fn full_mul_matches_integer(a in bcd64_value(), b in bcd64_value()) {
        let p = Bcd64::from_value(a).unwrap().full_mul(Bcd64::from_value(b).unwrap());
        prop_assert_eq!(p.to_value(), u128::from(a) * u128::from(b));
    }

    #[test]
    fn wide_add_matches_integer(a in any::<u128>(), b in any::<u128>()) {
        let limit = 10u128.pow(32);
        let (a, b) = (a % limit, b % limit);
        let (s, carry) = Bcd128::from_value(a).unwrap().add(Bcd128::from_value(b).unwrap());
        if a + b >= limit {
            prop_assert!(carry);
            prop_assert_eq!(s.to_value(), a + b - limit);
        } else {
            prop_assert!(!carry);
            prop_assert_eq!(s.to_value(), a + b);
        }
    }

    #[test]
    fn wide_sub_matches_integer(a in any::<u128>(), b in any::<u128>()) {
        let limit = 10u128.pow(32);
        let (a, b) = (a % limit, b % limit);
        let (d, borrow) = Bcd128::from_value(a).unwrap().sub(Bcd128::from_value(b).unwrap());
        if a >= b {
            prop_assert!(!borrow);
            prop_assert_eq!(d.to_value(), a - b);
        } else {
            prop_assert!(borrow);
        }
    }

    #[test]
    fn shifts_are_pow10(a in bcd64_value(), k in 0u32..16) {
        let b = Bcd64::from_value(a).unwrap();
        prop_assert_eq!(b.shr_digits(k).to_value(), a / 10u64.pow(k));
        let shifted = b.shl_digits(k).to_value();
        prop_assert_eq!(u128::from(shifted), (u128::from(a) * 10u128.pow(k)) % 10u128.pow(16));
    }

    #[test]
    fn double_dabble_matches(v in any::<u64>()) {
        prop_assert_eq!(double_dabble(v).bcd.to_value(), u128::from(v));
    }

    #[test]
    fn reverse_double_dabble_matches(v in bcd64_value()) {
        let hw = reverse_double_dabble(Bcd64::from_value(v).unwrap());
        prop_assert_eq!(hw.bcd.to_value(), u128::from(v));
    }

    #[test]
    fn ordering_is_numeric(a in bcd64_value(), b in bcd64_value()) {
        let x = Bcd64::from_value(a).unwrap();
        let y = Bcd64::from_value(b).unwrap();
        prop_assert_eq!(x.cmp(&y), a.cmp(&b));
    }

    #[test]
    fn significant_digits_matches_string(v in bcd64_value()) {
        let n = Bcd64::from_value(v).unwrap().significant_digits();
        if v == 0 {
            prop_assert_eq!(n, 0);
        } else {
            prop_assert_eq!(n as usize, v.to_string().len());
        }
    }
}
