//! Instruction decoding from 32-bit words.

use std::fmt;

use crate::instr::{BranchOp, CsrOp, Instr, LoadOp, Op32Op, OpImm32Op, OpImmOp, OpOp, StoreOp};
use crate::rocc::RoccInstruction;
use crate::Reg;

/// Errors produced when a word is not a recognized RV64IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The bit pattern matches no implemented instruction.
    Unrecognized(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Unrecognized(w) => write!(f, "unrecognized instruction {w:#010x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn rd(word: u32) -> Reg {
    Reg::new(((word >> 7) & 0x1F) as u8)
}

fn rs1(word: u32) -> Reg {
    Reg::new(((word >> 15) & 0x1F) as u8)
}

fn rs2(word: u32) -> Reg {
    Reg::new(((word >> 20) & 0x1F) as u8)
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Sign-extends the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

fn imm_i(word: u32) -> i32 {
    sext(word >> 20, 12)
}

fn imm_s(word: u32) -> i32 {
    sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
}

fn imm_b(word: u32) -> i32 {
    let imm = (((word >> 31) & 1) << 12)
        | (((word >> 7) & 1) << 11)
        | (((word >> 25) & 0x3F) << 5)
        | (((word >> 8) & 0xF) << 1);
    sext(imm, 13)
}

fn imm_j(word: u32) -> i32 {
    let imm = (((word >> 31) & 1) << 20)
        | (((word >> 12) & 0xFF) << 12)
        | (((word >> 20) & 1) << 11)
        | (((word >> 21) & 0x3FF) << 1);
    sext(imm, 21)
}

impl Instr {
    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Unrecognized`] for bit patterns outside the
    /// implemented RV64IM + Zicsr + custom-opcode subset.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let opcode = word & 0x7F;
        let err = Err(DecodeError::Unrecognized(word));
        Ok(match opcode {
            0b0110111 => Instr::Lui {
                rd: rd(word),
                imm20: sext(word >> 12, 20),
            },
            0b0010111 => Instr::Auipc {
                rd: rd(word),
                imm20: sext(word >> 12, 20),
            },
            0b1101111 => Instr::Jal {
                rd: rd(word),
                offset: imm_j(word),
            },
            0b1100111 => {
                if funct3(word) != 0 {
                    return err;
                }
                Instr::Jalr {
                    rd: rd(word),
                    rs1: rs1(word),
                    offset: imm_i(word),
                }
            }
            0b1100011 => {
                let op = match funct3(word) {
                    0b000 => BranchOp::Beq,
                    0b001 => BranchOp::Bne,
                    0b100 => BranchOp::Blt,
                    0b101 => BranchOp::Bge,
                    0b110 => BranchOp::Bltu,
                    0b111 => BranchOp::Bgeu,
                    _ => return err,
                };
                Instr::Branch {
                    op,
                    rs1: rs1(word),
                    rs2: rs2(word),
                    offset: imm_b(word),
                }
            }
            0b0000011 => {
                let op = match funct3(word) {
                    0b000 => LoadOp::Lb,
                    0b001 => LoadOp::Lh,
                    0b010 => LoadOp::Lw,
                    0b011 => LoadOp::Ld,
                    0b100 => LoadOp::Lbu,
                    0b101 => LoadOp::Lhu,
                    0b110 => LoadOp::Lwu,
                    _ => return err,
                };
                Instr::Load {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    offset: imm_i(word),
                }
            }
            0b0100011 => {
                let op = match funct3(word) {
                    0b000 => StoreOp::Sb,
                    0b001 => StoreOp::Sh,
                    0b010 => StoreOp::Sw,
                    0b011 => StoreOp::Sd,
                    _ => return err,
                };
                Instr::Store {
                    op,
                    rs2: rs2(word),
                    rs1: rs1(word),
                    offset: imm_s(word),
                }
            }
            0b0010011 => {
                let f3 = funct3(word);
                let op = match f3 {
                    0b000 => OpImmOp::Addi,
                    0b010 => OpImmOp::Slti,
                    0b011 => OpImmOp::Sltiu,
                    0b100 => OpImmOp::Xori,
                    0b110 => OpImmOp::Ori,
                    0b111 => OpImmOp::Andi,
                    0b001 => {
                        if word >> 26 != 0 {
                            return err;
                        }
                        return Ok(Instr::OpImm {
                            op: OpImmOp::Slli,
                            rd: rd(word),
                            rs1: rs1(word),
                            imm: ((word >> 20) & 0x3F) as i32,
                        });
                    }
                    0b101 => {
                        let shtop = word >> 26;
                        let op = match shtop {
                            0b000000 => OpImmOp::Srli,
                            0b010000 => OpImmOp::Srai,
                            _ => return err,
                        };
                        return Ok(Instr::OpImm {
                            op,
                            rd: rd(word),
                            rs1: rs1(word),
                            imm: ((word >> 20) & 0x3F) as i32,
                        });
                    }
                    _ => return err,
                };
                Instr::OpImm {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    imm: imm_i(word),
                }
            }
            0b0011011 => match funct3(word) {
                0b000 => Instr::OpImm32 {
                    op: OpImm32Op::Addiw,
                    rd: rd(word),
                    rs1: rs1(word),
                    imm: imm_i(word),
                },
                0b001 if funct7(word) == 0 => Instr::OpImm32 {
                    op: OpImm32Op::Slliw,
                    rd: rd(word),
                    rs1: rs1(word),
                    imm: ((word >> 20) & 0x1F) as i32,
                },
                0b101 => {
                    let op = match funct7(word) {
                        0b0000000 => OpImm32Op::Srliw,
                        0b0100000 => OpImm32Op::Sraiw,
                        _ => return err,
                    };
                    Instr::OpImm32 {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        imm: ((word >> 20) & 0x1F) as i32,
                    }
                }
                _ => return err,
            },
            0b0110011 => {
                let op = match (funct7(word), funct3(word)) {
                    (0b0000000, 0b000) => OpOp::Add,
                    (0b0100000, 0b000) => OpOp::Sub,
                    (0b0000000, 0b001) => OpOp::Sll,
                    (0b0000000, 0b010) => OpOp::Slt,
                    (0b0000000, 0b011) => OpOp::Sltu,
                    (0b0000000, 0b100) => OpOp::Xor,
                    (0b0000000, 0b101) => OpOp::Srl,
                    (0b0100000, 0b101) => OpOp::Sra,
                    (0b0000000, 0b110) => OpOp::Or,
                    (0b0000000, 0b111) => OpOp::And,
                    (0b0000001, 0b000) => OpOp::Mul,
                    (0b0000001, 0b001) => OpOp::Mulh,
                    (0b0000001, 0b010) => OpOp::Mulhsu,
                    (0b0000001, 0b011) => OpOp::Mulhu,
                    (0b0000001, 0b100) => OpOp::Div,
                    (0b0000001, 0b101) => OpOp::Divu,
                    (0b0000001, 0b110) => OpOp::Rem,
                    (0b0000001, 0b111) => OpOp::Remu,
                    _ => return err,
                };
                Instr::Op {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }
            }
            0b0111011 => {
                let op = match (funct7(word), funct3(word)) {
                    (0b0000000, 0b000) => Op32Op::Addw,
                    (0b0100000, 0b000) => Op32Op::Subw,
                    (0b0000000, 0b001) => Op32Op::Sllw,
                    (0b0000000, 0b101) => Op32Op::Srlw,
                    (0b0100000, 0b101) => Op32Op::Sraw,
                    (0b0000001, 0b000) => Op32Op::Mulw,
                    (0b0000001, 0b100) => Op32Op::Divw,
                    (0b0000001, 0b101) => Op32Op::Divuw,
                    (0b0000001, 0b110) => Op32Op::Remw,
                    (0b0000001, 0b111) => Op32Op::Remuw,
                    _ => return err,
                };
                Instr::Op32 {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }
            }
            0b0001111 => Instr::Fence,
            0b1110011 => {
                let f3 = funct3(word);
                match f3 {
                    0b000 => match word >> 20 {
                        0 if rd(word) == Reg::ZERO && rs1(word) == Reg::ZERO => Instr::Ecall,
                        1 if rd(word) == Reg::ZERO && rs1(word) == Reg::ZERO => Instr::Ebreak,
                        0x302 if rd(word) == Reg::ZERO && rs1(word) == Reg::ZERO => Instr::Mret,
                        _ => return err,
                    },
                    0b001..=0b011 => {
                        let op = match f3 {
                            0b001 => CsrOp::Csrrw,
                            0b010 => CsrOp::Csrrs,
                            _ => CsrOp::Csrrc,
                        };
                        Instr::Csr {
                            op,
                            rd: rd(word),
                            csr: (word >> 20) as u16,
                            rs1: rs1(word),
                        }
                    }
                    0b101..=0b111 => {
                        let op = match f3 {
                            0b101 => CsrOp::Csrrw,
                            0b110 => CsrOp::Csrrs,
                            _ => CsrOp::Csrrc,
                        };
                        Instr::CsrImm {
                            op,
                            rd: rd(word),
                            csr: (word >> 20) as u16,
                            imm: ((word >> 15) & 0x1F) as u8,
                        }
                    }
                    _ => return err,
                }
            }
            _ => {
                if let Ok(rocc) = RoccInstruction::decode(word) {
                    Instr::Custom(rocc)
                } else {
                    return err;
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_golden() {
        assert_eq!(Instr::decode(0x0000_0013).unwrap(), Instr::NOP);
        assert_eq!(
            Instr::decode(0x00C5_8533).unwrap(),
            Instr::Op {
                op: OpOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
        );
        assert_eq!(Instr::decode(0x0000_0073).unwrap(), Instr::Ecall);
        assert_eq!(Instr::decode(0x0010_0073).unwrap(), Instr::Ebreak);
    }

    #[test]
    fn decode_negative_immediates() {
        // addi a0, a0, -1 = 0xFFF50513
        match Instr::decode(0xFFF5_0513).unwrap() {
            Instr::OpImm {
                op: OpImmOp::Addi,
                imm,
                ..
            } => assert_eq!(imm, -1),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Instr::decode(0xFFFF_FFFF).is_err());
        assert!(Instr::decode(0x0000_0000).is_err());
    }

    #[test]
    fn rocc_words_decode_as_custom() {
        match Instr::decode(0x08A5_F60B).unwrap() {
            Instr::Custom(r) => {
                assert_eq!(r.funct7, 4);
                assert!(r.xd && r.xs1 && r.xs2);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
