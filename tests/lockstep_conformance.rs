//! Lockstep conformance: every kernel of the evaluation, run over the
//! verification database on every simulator pair, must retire identical
//! canonical instruction streams (timing excluded). This is the
//! differential check behind the paper's cross-platform methodology — the
//! three simulators are only trustworthy as independent witnesses if they
//! agree architecturally on every guest.
//!
//! The sample counts here are the paper's 8,000-sample database scaled
//! down for CI; `cargo run --release -p decimal-bench --bin lockstep --
//! conformance --samples 8000` runs the full configuration.

use decimalarith::codesign::kernels::KernelKind;
use decimalarith::lockstep::{check_kernel_all_pairs, run_guest_pair, Pair, DEFAULT_CONTEXT};
use decimalarith::testgen::{generate, CaseClass, TestConfig};

fn vectors(count: usize, seed: u64) -> Vec<decimalarith::testgen::TestVector> {
    generate(&TestConfig {
        count,
        seed,
        ..TestConfig::default()
    })
}

#[test]
fn every_kernel_agrees_on_every_pair() {
    let vectors = vectors(5, 2019);
    for kind in KernelKind::ALL {
        if let Some((pair, outcome)) = check_kernel_all_pairs(kind, &vectors) {
            panic!(
                "{kind:?} diverged on {pair}:\n{}",
                outcome.divergence().unwrap()
            );
        }
    }
}

#[test]
fn every_case_class_agrees_in_lockstep() {
    // One single-class database per operand case class, checked on the
    // two extreme kernels: the pure-software baseline (no RoCC traffic)
    // and Method-4 (the heaviest hardware offload).
    let classes = [
        CaseClass::Normal,
        CaseClass::Rounding,
        CaseClass::Overflow,
        CaseClass::Underflow,
        CaseClass::Clamping,
        CaseClass::Special,
    ];
    for class in classes {
        let vectors = generate(&TestConfig {
            count: 4,
            seed: 2019,
            class_mix: vec![(class, 1)],
            ..TestConfig::default()
        });
        for kind in [KernelKind::Software, KernelKind::Method4] {
            if let Some((pair, outcome)) = check_kernel_all_pairs(kind, &vectors) {
                panic!(
                    "{kind:?} on {class} operands diverged on {pair}:\n{}",
                    outcome.divergence().unwrap()
                );
            }
        }
    }
}

#[test]
fn scaled_verification_database_stays_in_lockstep() {
    // A deeper run of the accelerated kernels over the paper's five-class
    // mix — more samples than the per-kernel smoke check, still far below
    // the full 8,000 reserved for the CLI.
    let vectors = vectors(25, 7);
    for kind in [KernelKind::Method1, KernelKind::Method2, KernelKind::Method3] {
        let guest =
            decimalarith::codesign::framework::build_guest(kind, &vectors, 1).unwrap();
        for pair in Pair::ALL {
            let outcome = run_guest_pair(&guest, pair, DEFAULT_CONTEXT);
            assert!(
                outcome.is_agreement(),
                "{kind:?} diverged on {pair}:\n{}",
                outcome.divergence().unwrap()
            );
        }
    }
}
