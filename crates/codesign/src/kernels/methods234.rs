//! The deeper-offload guest kernels (Methods 2–4).
//!
//! All three share Method-1's software prologue/epilogue; only the
//! coefficient-product core differs:
//!
//! * Method-2 keeps the multiples table in the accelerator register file
//!   (`DEC_ADD_R` builds it; `DEC_ACCUM` folds one multiplier digit per
//!   command; only two reads return the product).
//! * Method-3 needs no table at all: `DEC_MULD` multiplies the latched
//!   multiplicand by each digit and accumulates.
//! * Method-4 performs the whole coefficient multiplication with one
//!   `DEC_MUL`.

use super::method1::{EPILOGUE, PROLOGUE};

/// Method-2 core: multiples table inside the accelerator.
#[must_use]
pub(crate) fn kernel_method2() -> String {
    let mut core = String::new();
    core += "
    # CLR_ALL, then X into accelerator register 1
    custom0 5, zero, zero, zero, 0, 0, 0
    custom0 0, zero, s6, x1, 0, 1, 0
    # multiples 2X..9X built register-to-register (no core traffic)
    custom0 10, x2, x1, x1, 0, 0, 0
    custom0 10, x3, x2, x1, 0, 0, 0
    custom0 10, x4, x3, x1, 0, 0, 0
    custom0 10, x5, x4, x1, 0, 0, 0
    custom0 10, x6, x5, x1, 0, 0, 0
    custom0 10, x7, x6, x1, 0, 0, 0
    custom0 10, x8, x7, x1, 0, 0, 0
    custom0 10, x9, x8, x1, 0, 0, 0
    # Horner accumulation: one DEC_ACCUM per multiplier digit
    li   s5, 60
m2_acc_loop:
    srl  t0, s7, s5
    andi t0, t0, 15
    custom0 8, zero, t0, zero, 0, 1, 0
    addi s5, s5, -4
    bgez s5, m2_acc_loop
    # read the accumulator (register 15): low then high half
    custom0 1, s11, x15, zero, 1, 0, 0
    custom0 1, s9, x31, zero, 1, 0, 0
    j    k_pack
";
    format!("{PROLOGUE}{core}{EPILOGUE}")
}

/// Method-3 core: hardware digit multiply-accumulate.
#[must_use]
pub(crate) fn kernel_method3() -> String {
    let mut core = String::new();
    core += "
    custom0 5, zero, zero, zero, 0, 0, 0
    custom0 0, zero, s6, x1, 0, 1, 0
    li   s5, 60
m3_acc_loop:
    srl  t0, s7, s5
    andi t0, t0, 15
    custom0 11, zero, t0, zero, 0, 1, 0
    addi s5, s5, -4
    bgez s5, m3_acc_loop
    custom0 1, s11, x15, zero, 1, 0, 0
    custom0 1, s9, x31, zero, 1, 0, 0
    j    k_pack
";
    format!("{PROLOGUE}{core}{EPILOGUE}")
}

/// Method-4 core: full coefficient multiplication in hardware.
#[must_use]
pub(crate) fn kernel_method4() -> String {
    let mut core = String::new();
    core += "
    custom0 5, zero, zero, zero, 0, 0, 0
    custom0 0, zero, s6, x1, 0, 1, 0
    custom0 0, zero, s7, x2, 0, 1, 0
    custom0 7, zero, x1, x2, 0, 0, 0
    custom0 1, s11, x15, zero, 1, 0, 0
    custom0 1, s9, x31, zero, 1, 0, 0
    j    k_pack
";
    format!("{PROLOGUE}{core}{EPILOGUE}")
}
