#!/usr/bin/env bash
# CI entry point: tier-1 (build + full test suite) plus a bounded,
# fixed-seed differential fuzz pass over all three simulator pairs.
# Everything here is deterministic; a red run reproduces locally with the
# same commands.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== lint: clippy (warnings are errors) =="
cargo clippy -q --all-targets -- -D warnings

echo "== static analysis: rvlint over every kernel guest =="
# Lints every co-design kernel guest (CFG/dataflow + RoCC-protocol
# typestate + BCD operand checks) across generated vector databases of
# increasing size. Exits nonzero on any Error-severity finding. The
# broken-fixture suite (tests/rvlint_fixtures.rs) already ran in tier-1.
cargo run --release -p decimal-bench --bin rvlint -- --seed 2019

echo "== differential verification (bounded) =="
# Conformance on a CI-sized database slice, a 200-program fuzz run, and
# the RoCC command differential — all on the paper's seed. The full
# 8,000-sample configuration is the same binary with --samples 8000.
cargo run --release -p decimal-bench --bin lockstep -- all \
    --seed 2019 --samples 200 --programs 200 --commands 10000

echo "== fault-injection campaign (bounded, fixed seed) =="
# 500 seeded single-bit faults against the plain and the fault-tolerant
# Method-1 guests. Fails on any replay outside the four outcome classes,
# and on any silent data corruption slipping past the fault-tolerant
# kernel's detection net.
cargo run --release -p decimal-bench --bin lockstep -- faults \
    --seed 2019 --faults 500 --fault-samples 6

echo "== crash-safe resume (kill -9 mid-campaign, resume, diff) =="
# A journaled campaign is started, killed mid-run, and resumed from its
# journal; the resumed stdout must be byte-identical to an uninterrupted
# run's. Campaigns are deterministic in the seed, so the diff also passes
# in the (timing-dependent) case where the kill lands after completion —
# resume then degrades to a pure journal replay.
LOCKSTEP=target/release/lockstep
RESUME_DIR="$(mktemp -d)"
trap 'rm -rf "$RESUME_DIR"' EXIT
"$LOCKSTEP" faults --seed 2019 --faults 300 --fault-samples 6 \
    --journal "$RESUME_DIR/full.journal" --checkpoint-every 25 \
    > "$RESUME_DIR/full.out"
"$LOCKSTEP" faults --seed 2019 --faults 300 --fault-samples 6 \
    --journal "$RESUME_DIR/killed.journal" --checkpoint-every 25 \
    > "$RESUME_DIR/killed.out" 2>/dev/null &
KILLED_PID=$!
sleep 2
kill -9 "$KILLED_PID" 2>/dev/null || true
wait "$KILLED_PID" 2>/dev/null || true
"$LOCKSTEP" faults --seed 2019 --faults 300 --fault-samples 6 \
    --resume "$RESUME_DIR/killed.journal" --checkpoint-every 25 \
    > "$RESUME_DIR/resumed.out" 2>/dev/null
diff "$RESUME_DIR/full.out" "$RESUME_DIR/resumed.out"
echo "resumed campaign output is byte-identical"

echo "ci: all checks passed"
