//! The arbitrary-precision decimal number type.

use std::fmt;
use std::str::FromStr;

use dpd::Sign;

use crate::context::{Context, Status};

/// What kind of value a [`DecNumber`] holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// An ordinary finite number (including zeros and subnormals).
    Finite,
    /// Positive or negative infinity.
    Infinity,
    /// Not-a-number; `signaling` NaNs raise invalid-operation when used.
    Nan {
        /// True for a signaling NaN.
        signaling: bool,
    },
}

/// An arbitrary-precision decimal floating-point number, modelled on IBM's
/// decNumber: a sign, a coefficient held as decimal digits, and an exponent.
///
/// All arithmetic is performed through a [`Context`] which supplies the
/// working precision, rounding mode and exponent range, and accumulates
/// exception status — exactly how the software baseline of the paper's
/// evaluation computes.
///
/// # Example
///
/// ```
/// use decnum::{Context, DecNumber};
///
/// let mut ctx = Context::decimal64();
/// let price: DecNumber = "19.99".parse().unwrap();
/// let qty: DecNumber = "3".parse().unwrap();
/// assert_eq!(price.mul(&qty, &mut ctx).to_string(), "59.97");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecNumber {
    pub(crate) sign: Sign,
    pub(crate) kind: Kind,
    /// Coefficient digits, least significant first, with no most-significant
    /// zeros (the empty vector is a zero coefficient). For NaNs this holds
    /// the diagnostic payload.
    pub(crate) digits: Vec<u8>,
    pub(crate) exponent: i32,
}

impl DecNumber {
    /// Positive zero with exponent 0.
    #[must_use]
    pub fn zero() -> Self {
        DecNumber {
            sign: Sign::Positive,
            kind: Kind::Finite,
            digits: Vec::new(),
            exponent: 0,
        }
    }

    /// One.
    #[must_use]
    pub fn one() -> Self {
        DecNumber::from_u64(1)
    }

    /// Positive infinity.
    #[must_use]
    pub fn infinity(sign: Sign) -> Self {
        DecNumber {
            sign,
            kind: Kind::Infinity,
            digits: Vec::new(),
            exponent: 0,
        }
    }

    /// A quiet NaN with no payload.
    #[must_use]
    pub fn nan() -> Self {
        DecNumber {
            sign: Sign::Positive,
            kind: Kind::Nan { signaling: false },
            digits: Vec::new(),
            exponent: 0,
        }
    }

    /// A signaling NaN with no payload.
    #[must_use]
    pub fn snan() -> Self {
        DecNumber {
            sign: Sign::Positive,
            kind: Kind::Nan { signaling: true },
            digits: Vec::new(),
            exponent: 0,
        }
    }

    /// Builds a finite number from an unsigned integer.
    #[must_use]
    pub fn from_u64(mut v: u64) -> Self {
        let mut digits = Vec::new();
        while v != 0 {
            digits.push((v % 10) as u8);
            v /= 10;
        }
        DecNumber {
            sign: Sign::Positive,
            kind: Kind::Finite,
            digits,
            exponent: 0,
        }
    }

    /// Builds a finite number from a signed integer.
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        let mut n = DecNumber::from_u64(v.unsigned_abs());
        if v < 0 {
            n.sign = Sign::Negative;
        }
        n
    }

    /// Builds a finite number from raw parts. `digits` is least significant
    /// first; most-significant zeros are trimmed.
    #[must_use]
    pub fn from_parts(sign: Sign, digits: &[u8], exponent: i32) -> Self {
        debug_assert!(digits.iter().all(|&d| d <= 9), "digits must be decimal");
        let mut digits = digits.to_vec();
        while digits.last() == Some(&0) {
            digits.pop();
        }
        DecNumber {
            sign,
            kind: Kind::Finite,
            digits,
            exponent,
        }
    }

    /// The sign. Note zeros and NaNs are signed too.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The kind of value.
    #[must_use]
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The exponent of the least significant coefficient digit.
    /// Zero for non-finite values.
    #[must_use]
    pub fn exponent(&self) -> i32 {
        self.exponent
    }

    /// Coefficient digits, least significant first (empty for a zero
    /// coefficient). For NaNs this is the payload.
    #[must_use]
    pub fn coefficient_digits(&self) -> &[u8] {
        &self.digits
    }

    /// Number of significant coefficient digits (zero has one conceptually;
    /// this returns 0 for an empty coefficient).
    #[must_use]
    pub fn ndigits(&self) -> u32 {
        self.digits.len() as u32
    }

    /// The adjusted exponent (exponent of the most significant digit).
    /// Meaningful only for finite non-zero values.
    #[must_use]
    pub fn adjusted_exponent(&self) -> i32 {
        if self.digits.is_empty() {
            self.exponent
        } else {
            self.exponent + self.digits.len() as i32 - 1
        }
    }

    /// True for finite values (including zeros).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.kind == Kind::Finite
    }

    /// True for ±infinity.
    #[must_use]
    pub fn is_infinite(&self) -> bool {
        self.kind == Kind::Infinity
    }

    /// True for quiet or signaling NaN.
    #[must_use]
    pub fn is_nan(&self) -> bool {
        matches!(self.kind, Kind::Nan { .. })
    }

    /// True for a signaling NaN.
    #[must_use]
    pub fn is_snan(&self) -> bool {
        matches!(self.kind, Kind::Nan { signaling: true })
    }

    /// True for a finite zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.kind == Kind::Finite && self.digits.is_empty()
    }

    /// True if the value is negative (including -0 and -Inf; false for NaN).
    #[must_use]
    pub fn is_negative(&self) -> bool {
        !self.is_nan() && self.sign == Sign::Negative
    }

    /// True if the value is subnormal in `ctx` (finite, non-zero, adjusted
    /// exponent below `emin`).
    #[must_use]
    pub fn is_subnormal(&self, ctx: &Context) -> bool {
        self.is_finite() && !self.is_zero() && self.adjusted_exponent() < ctx.emin
    }

    /// The absolute value (quiet; no rounding, no flags).
    #[must_use]
    pub fn abs(&self) -> Self {
        let mut n = self.clone();
        if !n.is_nan() {
            n.sign = Sign::Positive;
        }
        n
    }

    /// The negation (quiet; flips the sign without rounding, like IEEE
    /// `negate`).
    #[must_use]
    pub fn neg(&self) -> Self {
        let mut n = self.clone();
        n.sign = n.sign.negate();
        n
    }

    /// Copies the number, applying context rounding (IEEE `plus`: `0 + x`).
    #[must_use]
    pub fn plus(&self, ctx: &mut Context) -> Self {
        if let Some(n) = crate::arith::handle_nan_unary(self, ctx) {
            return n;
        }
        self.clone().finish(ctx)
    }

    /// Removes trailing zeros from the coefficient (decNumber `reduce`),
    /// then applies context rounding.
    #[must_use]
    pub fn reduce(&self, ctx: &mut Context) -> Self {
        if let Some(n) = crate::arith::handle_nan_unary(self, ctx) {
            return n;
        }
        let mut n = self.clone();
        if n.is_zero() {
            n.exponent = 0;
            return n.finish(ctx);
        }
        while n.digits.first() == Some(&0) {
            n.digits.remove(0);
            n.exponent += 1;
        }
        n.finish(ctx)
    }

    /// Coefficient as a big-endian decimal string (for diagnostics).
    #[must_use]
    pub fn coefficient_string(&self) -> String {
        if self.digits.is_empty() {
            "0".to_string()
        } else {
            self.digits
                .iter()
                .rev()
                .map(|d| (b'0' + d) as char)
                .collect()
        }
    }

    /// Scientific-notation string per the General Decimal Arithmetic
    /// `to-scientific-string` rules.
    #[must_use]
    pub fn to_sci_string(&self) -> String {
        let sign = if self.sign == Sign::Negative { "-" } else { "" };
        match self.kind {
            Kind::Infinity => format!("{sign}Infinity"),
            Kind::Nan { signaling } => {
                let prefix = if signaling { "sNaN" } else { "NaN" };
                if self.digits.is_empty() {
                    format!("{sign}{prefix}")
                } else {
                    format!("{sign}{prefix}{}", self.coefficient_string())
                }
            }
            Kind::Finite => {
                let coeff = self.coefficient_string();
                let ndigits = coeff.len() as i32;
                let adjusted = self.exponent + ndigits - 1;
                if self.exponent <= 0 && adjusted >= -6 {
                    // Plain notation.
                    if self.exponent == 0 {
                        format!("{sign}{coeff}")
                    } else {
                        let point = ndigits + self.exponent; // digits before the point
                        if point > 0 {
                            format!(
                                "{sign}{}.{}",
                                &coeff[..point as usize],
                                &coeff[point as usize..]
                            )
                        } else {
                            format!("{sign}0.{}{}", "0".repeat(-point as usize), coeff)
                        }
                    }
                } else {
                    // Scientific notation with one digit before the point.
                    if ndigits == 1 {
                        format!("{sign}{coeff}E{adjusted:+}")
                    } else {
                        format!("{sign}{}.{}E{adjusted:+}", &coeff[..1], &coeff[1..])
                    }
                }
            }
        }
    }

    /// Parses a string, rounding the result to the context and raising
    /// [`Status::CONVERSION_SYNTAX`] (returning NaN) on malformed input.
    #[must_use]
    pub fn parse_with(s: &str, ctx: &mut Context) -> Self {
        match s.parse::<DecNumber>() {
            Ok(n) => n.finish(ctx),
            Err(_) => {
                ctx.raise(Status::CONVERSION_SYNTAX);
                DecNumber::nan()
            }
        }
    }

    /// Internal invariant check used by debug assertions and tests.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn assert_valid(&self) {
        assert!(self.digits.iter().all(|&d| d <= 9), "digit out of range");
        if self.kind == Kind::Finite {
            assert!(
                self.digits.last() != Some(&0),
                "most significant digit must be non-zero"
            );
        }
    }
}

impl Default for DecNumber {
    fn default() -> Self {
        DecNumber::zero()
    }
}

impl fmt::Display for DecNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sci_string())
    }
}

impl From<u64> for DecNumber {
    fn from(v: u64) -> Self {
        DecNumber::from_u64(v)
    }
}

impl From<i64> for DecNumber {
    fn from(v: i64) -> Self {
        DecNumber::from_i64(v)
    }
}

/// Error returned when a string is not a valid decimal number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDecError;

impl fmt::Display for ParseDecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal number syntax")
    }
}

impl std::error::Error for ParseDecError {}

impl FromStr for DecNumber {
    type Err = ParseDecError;

    /// Exact parse: the value is not rounded to any context
    /// (use [`DecNumber::parse_with`] for context-rounded conversion).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseDecError);
        }
        let (sign, rest) = match s.as_bytes()[0] {
            b'+' => (Sign::Positive, &s[1..]),
            b'-' => (Sign::Negative, &s[1..]),
            _ => (Sign::Positive, s),
        };
        if rest.is_empty() {
            return Err(ParseDecError);
        }
        let lower = rest.to_ascii_lowercase();
        if lower == "inf" || lower == "infinity" {
            return Ok(DecNumber::infinity(sign));
        }
        for (prefix, signaling) in [("snan", true), ("nan", false)] {
            if let Some(payload) = lower.strip_prefix(prefix) {
                if !payload.is_empty() && !payload.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(ParseDecError);
                }
                let mut digits: Vec<u8> =
                    payload.bytes().rev().map(|b| b - b'0').collect();
                while digits.last() == Some(&0) {
                    digits.pop();
                }
                return Ok(DecNumber {
                    sign,
                    kind: Kind::Nan { signaling },
                    digits,
                    exponent: 0,
                });
            }
        }
        // [digits][.digits][(e|E)[sign]digits]
        let (mantissa, exp_part) = match rest.find(['e', 'E']) {
            Some(i) => (&rest[..i], Some(&rest[i + 1..])),
            None => (rest, None),
        };
        let exp_extra: i64 = match exp_part {
            Some(e) => {
                if e.is_empty() {
                    return Err(ParseDecError);
                }
                e.parse().map_err(|_| ParseDecError)?
            }
            None => 0,
        };
        let (int_part, frac_part) = match mantissa.find('.') {
            Some(i) => (&mantissa[..i], &mantissa[i + 1..]),
            None => (mantissa, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(ParseDecError);
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(ParseDecError);
        }
        let mut digits: Vec<u8> = int_part
            .bytes()
            .chain(frac_part.bytes())
            .rev()
            .map(|b| b - b'0')
            .collect();
        while digits.last() == Some(&0) {
            digits.pop();
        }
        let exponent = exp_extra - frac_part.len() as i64;
        if !(i32::MIN as i64..=i32::MAX as i64).contains(&exponent) {
            return Err(ParseDecError);
        }
        Ok(DecNumber {
            sign,
            kind: Kind::Finite,
            digits,
            exponent: exponent as i32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(DecNumber::zero().is_zero());
        assert_eq!(DecNumber::one().to_string(), "1");
        assert!(DecNumber::infinity(Sign::Negative).is_infinite());
        assert!(DecNumber::nan().is_nan());
        assert!(DecNumber::snan().is_snan());
        assert_eq!(DecNumber::from_i64(-42).to_string(), "-42");
        assert_eq!(DecNumber::from_u64(0).ndigits(), 0);
    }

    #[test]
    fn from_parts_trims() {
        let n = DecNumber::from_parts(Sign::Positive, &[1, 2, 3, 0, 0], 5);
        assert_eq!(n.ndigits(), 3);
        assert_eq!(n.exponent(), 5);
        n.assert_valid();
    }

    #[test]
    fn adjusted_exponent_rules() {
        let n: DecNumber = "123E+4".parse().unwrap();
        assert_eq!(n.exponent(), 4);
        assert_eq!(n.adjusted_exponent(), 6);
    }

    #[test]
    fn parse_plain_and_fraction() {
        assert_eq!("0".parse::<DecNumber>().unwrap().to_string(), "0");
        assert_eq!("12.34".parse::<DecNumber>().unwrap().to_string(), "12.34");
        assert_eq!("-0.001".parse::<DecNumber>().unwrap().to_string(), "-0.001");
        assert_eq!("1E+6".parse::<DecNumber>().unwrap().to_string(), "1E+6");
        assert_eq!("1.5e-3".parse::<DecNumber>().unwrap().to_string(), "0.0015");
        assert_eq!(".5".parse::<DecNumber>().unwrap().to_string(), "0.5");
        assert_eq!("5.".parse::<DecNumber>().unwrap().to_string(), "5");
    }

    #[test]
    fn parse_specials() {
        assert!("Infinity".parse::<DecNumber>().unwrap().is_infinite());
        assert!("-inf".parse::<DecNumber>().unwrap().is_negative());
        assert!("NaN".parse::<DecNumber>().unwrap().is_nan());
        assert!("sNaN".parse::<DecNumber>().unwrap().is_snan());
        let payload = "NaN123".parse::<DecNumber>().unwrap();
        assert_eq!(payload.coefficient_digits(), &[3, 2, 1]);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "+", "abc", "1.2.3", "1e", "1e+", "--5", "NaNx"] {
            assert!(bad.parse::<DecNumber>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn sci_string_rules() {
        // From the General Decimal Arithmetic specification examples.
        let cases = [
            ("123", "123"),
            ("-123", "-123"),
            ("1.23E+3", "1.23E+3"),
            ("1.23E-7", "1.23E-7"),
            ("0.00123", "0.00123"),
            ("5E-7", "5E-7"),
            ("0E+2", "0E+2"),
            ("-0", "-0"),
        ];
        for (input, expected) in cases {
            let n: DecNumber = input.parse().unwrap();
            assert_eq!(n.to_sci_string(), expected, "input {input}");
        }
    }

    #[test]
    fn quiet_sign_ops() {
        let n: DecNumber = "-5".parse().unwrap();
        assert_eq!(n.abs().to_string(), "5");
        assert_eq!(n.neg().to_string(), "5");
        assert_eq!(n.neg().neg().to_string(), "-5");
        assert!(!n.abs().is_negative());
    }

    #[test]
    fn parse_with_raises_syntax() {
        let mut ctx = Context::decimal64();
        let n = DecNumber::parse_with("not-a-number", &mut ctx);
        assert!(n.is_nan());
        assert!(ctx.status().contains(Status::CONVERSION_SYNTAX));
    }

    #[test]
    fn subnormal_predicate() {
        let ctx = Context::decimal64();
        let tiny: DecNumber = "1E-390".parse().unwrap();
        assert!(tiny.is_subnormal(&ctx));
        let normal: DecNumber = "1E-383".parse().unwrap();
        assert!(!normal.is_subnormal(&ctx));
    }
}
