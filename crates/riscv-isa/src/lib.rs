//! RV64IM instruction-set definitions: encoding, decoding, disassembly and
//! the RoCC custom-instruction format.
//!
//! This crate is the shared vocabulary of the whole evaluation framework —
//! the assembler emits [`Instr`] values, and the functional ([`riscv-sim`]),
//! cycle-accurate (`rocket-sim`) and atomic (`atomic-sim`) simulators all
//! decode through it. The [`rocc`] module implements the custom-instruction
//! encoding of the paper's Fig. 3 / Table III.
//!
//! [`riscv-sim`]: https://www.decimalarith.info
//!
//! # Example
//!
//! ```
//! use riscv_isa::{Instr, Reg};
//! use riscv_isa::instr::OpOp;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let add = Instr::Op { op: OpOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
//! let word = add.encode()?;
//! assert_eq!(Instr::decode(word)?, add);
//! assert_eq!(add.to_string(), "add a0, a1, a2");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
mod decode;
mod encode;
pub mod instr;
mod reg;
pub mod rocc;

pub use decode::DecodeError;
pub use encode::EncodeError;
pub use instr::Instr;
pub use reg::{ParseRegError, Reg};
