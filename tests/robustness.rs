//! Robustness of the fault-tolerant protocol stack: M-mode trap delivery
//! must be lockstep-identical across the three simulators, the RoCC
//! busy-watchdog must be architecturally deterministic under timing-model
//! perturbation, and the fault-injection campaign must be reproducible
//! with zero silent corruption on the fault-tolerant kernel.

use decimalarith::codesign::framework::build_guest;
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::lockstep::campaign::{run_campaign, CampaignConfig};
use decimalarith::lockstep::inject::StuckFsmAccelerator;
use decimalarith::lockstep::{
    guest_budget, load_program, run_program_pair, LockstepOptions, LockstepOutcome, Pair, SimKind,
    Termination,
};
use decimalarith::riscv_asm::{assemble, Program};
use decimalarith::riscv_isa::csr::cause;
use decimalarith::riscv_sim::Event;
use decimalarith::testgen::{generate, TestConfig};

/// A guest that arms `mtvec`, takes two different synchronous traps (an
/// unmapped load, then a write to a read-only CSR), and exits with the sum
/// of the delivered `mcause` codes: 5 (load fault) + 2 (illegal
/// instruction) = 7.
const TWO_TRAP_GUEST: &str = "
    start:
        la   t0, handler
        csrrw zero, 0x305, t0      # mtvec
        li   s0, 0
        li   t0, 0x666000
        ld   t1, 0(t0)             # unmapped: LOAD_FAULT (5)
        csrrw t0, 0xC00, t0        # read-only cycle CSR: ILLEGAL (2)
        mv   a0, s0
        li   a7, 93
        ecall
    handler:
        csrrs t1, 0x342, zero      # mcause
        add  s0, s0, t1
        csrrs t1, 0x341, zero      # mepc
        addi t1, t1, 4
        csrrw zero, 0x341, t1      # skip the faulting instruction
        mret
";

#[test]
fn trap_delivery_is_lockstep_identical_across_all_simulator_pairs() {
    let program = assemble(TWO_TRAP_GUEST).unwrap();
    for pair in Pair::ALL {
        let outcome = run_program_pair(&program, pair, false, &LockstepOptions::default());
        match outcome {
            LockstepOutcome::Agreement {
                termination: Termination::Exited(7),
                ..
            } => {}
            other => panic!("{pair}: expected agreed exit code 7, got {other:?}"),
        }
    }
}

/// A guest that arms `mtvec`, issues one DEC_ADD, and exits with the
/// delivered `mcause` — run against a wedged accelerator so the watchdog
/// is the only thing that can terminate the command.
fn wedged_trap_guest() -> Program {
    assemble(
        "
        start:
            la   t0, handler
            csrrw zero, 0x305, t0
            li   s0, 0
            li   t0, 0x15
        wedge:
            custom0 4, t1, t0, t0, 1, 1, 1   # wedges; watchdog must fire
            mv   a0, s0
            li   a7, 93
            ecall
        handler:
            csrrs t1, 0x342, zero
            add  s0, s0, t1
            csrrs t1, 0x341, zero
            addi t1, t1, 4
            csrrw zero, 0x341, t1
            mret
        ",
    )
    .unwrap()
}

#[test]
fn rocc_timeout_trap_is_delivered_identically_on_all_three_sims() {
    let program = wedged_trap_guest();
    let custom0_pc = program.symbol("wedge").unwrap();
    for kind in SimKind::ALL {
        let mut sim = kind.build(false);
        sim.cpu_mut()
            .attach_coprocessor(Box::new(StuckFsmAccelerator::new(0)));
        load_program(sim.cpu_mut(), &program);
        let mut code = None;
        for _ in 0..100_000 {
            if let Event::Exited { code: c } =
                sim.step_sim().expect("watchdog must trap, not kill the host")
            {
                code = Some(c);
                break;
            }
        }
        assert_eq!(
            code,
            Some(cause::ROCC_TIMEOUT as i64),
            "{kind:?}: guest must observe mcause {}",
            cause::ROCC_TIMEOUT
        );
        let log = &sim.cpu().trap_log;
        assert_eq!(log.len(), 1, "{kind:?}: exactly one delivered trap");
        assert_eq!(log[0].cause, cause::ROCC_TIMEOUT, "{kind:?}");
        assert_eq!(
            log[0].epc, custom0_pc,
            "{kind:?}: mepc must pin the wedged custom0"
        );
    }
}

#[test]
fn watchdog_fires_deterministically_across_cache_seeds() {
    // The watchdog bound is architectural: the cache random-replacement
    // seed moves cycle counts, but the wedge must surface as the same
    // RoccTimeout at the same retired-instruction count on every seed —
    // never as budget exhaustion.
    use decimalarith::riscv_sim::CpuError;
    use decimalarith::rocket_sim::{RocketSim, TimingConfig};

    let program = assemble(
        "
        start:
            li   t0, 0x15
            custom0 4, t1, t0, t0, 1, 1, 1
            li   a0, 0
            li   a7, 93
            ecall
        ",
    )
    .unwrap();
    let mut seen = Vec::new();
    for seed in 0..8u64 {
        let mut sim = RocketSim::new(TimingConfig {
            seed,
            ..TimingConfig::default()
        });
        sim.attach_coprocessor(Box::new(StuckFsmAccelerator::new(0)));
        load_program(&mut sim.cpu, &program);
        let result = sim.run(1_000_000);
        match result {
            Err(CpuError::RoccTimeout { funct7: 4, .. }) => {}
            other => panic!("seed {seed}: expected RoccTimeout, got {other:?}"),
        }
        seen.push(sim.stats().instret);
    }
    assert!(
        seen.windows(2).all(|w| w[0] == w[1]),
        "retired-instruction count at the watchdog must not depend on the \
         cache seed: {seen:?}"
    );
}

#[test]
fn ft_campaign_is_reproducible_and_free_of_silent_corruption() {
    // The acceptance gate in miniature: a seeded campaign over the real
    // fault-tolerant Method-1 guest replays identically, classifies every
    // fault into the four outcome classes (no host panics, no
    // unclassifiable replays), and lets nothing through silently — the
    // golden results are already oracle-verified by the kernel tests, so
    // zero silent corruption is bit-correctness under every injected
    // fault.
    let vectors = generate(&TestConfig {
        count: 2,
        seed: 2019,
        ..TestConfig::default()
    });
    let guest = build_guest(KernelKind::Method1Ft, &vectors, 1).unwrap();
    let config = CampaignConfig {
        seed: 2019,
        faults: 80,
        instruction_budget: guest_budget(&guest),
        result_words: vectors.len(),
        ..CampaignConfig::default()
    };
    let first = run_campaign(&guest.program, &config);
    let second = run_campaign(&guest.program, &config);
    assert_eq!(first.records, second.records, "campaign must replay exactly");
    assert!(first.errors.is_empty(), "{:?}", first.errors);
    let tally = first.tally();
    assert_eq!(
        tally.silent_data_corruption, 0,
        "detection net must leave no silent corruption: {tally:?}"
    );
    assert!(tally.detected > 0, "some faults must be caught in-band: {tally:?}");
    assert!(
        tally.caught_by_watchdog > 0,
        "wedges must be caught by the watchdog: {tally:?}"
    );
    assert!(tally.masked > 0, "dead-state faults must be masked: {tally:?}");
}
