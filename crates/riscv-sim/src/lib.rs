//! Functional RV64IM simulator — the role Spike plays in the paper's
//! framework ("the binaries are simulated by SPIKE ISA simulator for
//! functional verification").
//!
//! The crate provides:
//!
//! * [`Memory`] — sparse byte-addressable guest memory;
//! * [`Cpu`] — an instruction-accurate RV64IM core with a syscall-style host
//!   interface (`exit`, `write`, and a `mark` extension for delimiting
//!   measurement regions) and user counters (`rdcycle`, `rdinstret`);
//! * [`Coprocessor`] — the RoCC attachment point that the decimal
//!   accelerator implements.
//!
//! Timing models (the Rocket-like pipeline in `rocket-sim`, the Gem5-like
//! atomic CPU in `atomic-sim`) wrap [`Cpu`] for semantics and drive
//! [`Cpu::cycle`] themselves, so one executor is shared by every evaluation
//! platform — the same property the paper gets from reusing one RISC-V
//! binary everywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coproc;
mod cpu;
mod memory;
pub mod snapshot;
pub mod trace;

use std::fmt;

pub use coproc::{Coprocessor, NoCoprocessor, RoccCommand, RoccResponse, ROCC_HANG};
pub use cpu::{
    syscall, trap_cause, Cpu, Event, Marker, MemAccess, MemEffect, Retired, RetireObserver,
    RetirementRecord, TrapRecord, DEFAULT_ROCC_WATCHDOG,
};
pub use memory::Memory;
pub use snapshot::{CoprocSnapshot, CpuSnapshot, SnapshotError, SNAPSHOT_VERSION};

/// Faults and limits surfaced by the simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CpuError {
    /// A data access touched an unmapped page.
    UnmappedAddress(u64),
    /// Instruction fetch from an unmapped page.
    FetchFault(u64),
    /// The program counter is not 4-byte aligned.
    MisalignedPc(u64),
    /// The fetched word is not a recognized instruction.
    Decode(riscv_isa::DecodeError),
    /// `ecall` with an unknown syscall number in `a7`.
    UnknownSyscall(u64),
    /// The program hit `ebreak`.
    Breakpoint(u64),
    /// A write to a read-only CSR.
    ReadOnlyCsr(u16),
    /// A custom instruction executed with no accelerator attached.
    NoCoprocessor {
        /// The function the instruction requested.
        funct7: u8,
    },
    /// An accelerator function is not implemented.
    UnknownRoccFunction {
        /// The offending funct7 value.
        funct7: u8,
    },
    /// The accelerator returned malformed data for this command.
    RoccProtocol(&'static str),
    /// A command with `xd` set produced no destination value.
    MissingRoccResponse {
        /// The function that misbehaved.
        funct7: u8,
    },
    /// The accelerator did not respond within the core's RoCC busy-watchdog
    /// bound (a wedged interface FSM).
    RoccTimeout {
        /// The function the hung command requested.
        funct7: u8,
        /// The watchdog bound that expired, in cycles.
        watchdog: u32,
    },
    /// `run` exhausted its instruction budget without the program exiting.
    InstructionLimit(u64),
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CpuError::UnmappedAddress(a) => write!(f, "access to unmapped address {a:#x}"),
            CpuError::FetchFault(a) => write!(f, "instruction fetch fault at {a:#x}"),
            CpuError::MisalignedPc(a) => write!(f, "misaligned pc {a:#x}"),
            CpuError::Decode(e) => write!(f, "{e}"),
            CpuError::UnknownSyscall(n) => write!(f, "unknown syscall {n}"),
            CpuError::Breakpoint(a) => write!(f, "breakpoint at {a:#x}"),
            CpuError::ReadOnlyCsr(c) => write!(f, "write to read-only csr {c:#x}"),
            CpuError::NoCoprocessor { funct7 } => {
                write!(f, "custom instruction funct7={funct7} with no accelerator attached")
            }
            CpuError::UnknownRoccFunction { funct7 } => {
                write!(f, "accelerator does not implement funct7={funct7}")
            }
            CpuError::RoccProtocol(msg) => write!(f, "rocc protocol violation: {msg}"),
            CpuError::MissingRoccResponse { funct7 } => {
                write!(f, "accelerator returned no rd value for funct7={funct7} with xd set")
            }
            CpuError::RoccTimeout { funct7, watchdog } => {
                write!(
                    f,
                    "accelerator did not respond to funct7={funct7} within {watchdog} cycles"
                )
            }
            CpuError::InstructionLimit(n) => {
                write!(f, "program did not exit within {n} instructions")
            }
        }
    }
}

impl std::error::Error for CpuError {}

impl From<riscv_isa::DecodeError> for CpuError {
    fn from(e: riscv_isa::DecodeError) -> Self {
        CpuError::Decode(e)
    }
}
