//! A small helper for generating assembly source programmatically.
//!
//! The co-design kernels are generated code: Rust functions assemble the
//! DPD-unpack loop, the multiplicand-multiple loop and so on, then hand the
//! text to [`crate::assemble`]. `SourceBuilder` keeps that generation tidy
//! (fresh label allocation, uniform indentation) and keeps the emitted text
//! human-readable for debugging.

use std::fmt::Write as _;

/// An assembly source accumulator with fresh-label support.
///
/// # Example
///
/// ```
/// use riscv_asm::SourceBuilder;
///
/// let mut s = SourceBuilder::new();
/// s.label("start");
/// s.push("li a0, 0");
/// let done = s.fresh_label("done");
/// s.push(format!("beqz a0, {done}"));
/// s.push("addi a0, a0, 1");
/// s.label(&done);
/// s.push("li a7, 93");
/// s.push("ecall");
/// let program = riscv_asm::assemble(&s.finish()).unwrap();
/// assert!(program.symbol("done.0").is_some());
/// ```
#[derive(Debug, Default, Clone)]
pub struct SourceBuilder {
    text: String,
    next_label: u32,
}

impl SourceBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        SourceBuilder::default()
    }

    /// Appends one instruction or directive line (indented).
    pub fn push(&mut self, line: impl AsRef<str>) {
        let _ = writeln!(self.text, "    {}", line.as_ref());
    }

    /// Appends several lines at once.
    pub fn push_all(&mut self, lines: &[&str]) {
        for line in lines {
            self.push(line);
        }
    }

    /// Appends a label definition (unindented).
    pub fn label(&mut self, name: &str) {
        let _ = writeln!(self.text, "{name}:");
    }

    /// Appends a comment line.
    pub fn comment(&mut self, text: &str) {
        let _ = writeln!(self.text, "    # {text}");
    }

    /// Appends a blank line (purely cosmetic).
    pub fn blank(&mut self) {
        self.text.push('\n');
    }

    /// Returns a unique label derived from `stem` (e.g. `loop.3`).
    #[must_use]
    pub fn fresh_label(&mut self, stem: &str) -> String {
        let label = format!("{stem}.{}", self.next_label);
        self.next_label += 1;
        label
    }

    /// The accumulated source text.
    #[must_use]
    pub fn finish(self) -> String {
        self.text
    }

    /// Borrows the text accumulated so far.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_labelled_source() {
        let mut s = SourceBuilder::new();
        s.comment("demo");
        s.label("start");
        s.push("nop");
        let l1 = s.fresh_label("x");
        let l2 = s.fresh_label("x");
        assert_ne!(l1, l2);
        s.label(&l1);
        s.label(&l2);
        s.push("ecall");
        let text = s.finish();
        assert!(text.contains("start:\n"));
        assert!(text.contains("x.0:"));
        assert!(text.contains("x.1:"));
    }
}
