//! Pareto sweep: hardware cost against cycle-accurate performance for the
//! four co-design methods — the "several Pareto points to development of
//! embedded systems in terms of hardware cost and performance" the paper's
//! abstract promises.
//!
//! ```text
//! cargo run --release --example pareto_sweep -- 500
//! ```

use decimalarith::codesign::framework::{build_guest, run_rocket, verify_results};
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::rocc::AcceleratorConfig;
use decimalarith::rocket_sim::TimingConfig;
use decimalarith::testgen::{generate, TestConfig};

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let vectors = generate(&TestConfig {
        count,
        ..TestConfig::default()
    });

    // Software baseline for the speedup column.
    let software = {
        let guest = build_guest(KernelKind::Software, &vectors, 1).expect("assembles");
        run_rocket(&guest, TimingConfig::default()).avg_total_cycles
    };
    println!("software baseline: {software:.0} cycles/multiply over {count} samples\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>9}",
        "method", "NAND2 gates", "cycles", "speedup", "HW share"
    );

    let methods = [
        (KernelKind::Method1, AcceleratorConfig::method1()),
        (KernelKind::Method2, AcceleratorConfig::method2()),
        (KernelKind::Method3, AcceleratorConfig::method3()),
        (KernelKind::Method4, AcceleratorConfig::method4()),
    ];
    let mut frontier: Vec<(u64, f64)> = Vec::new();
    for (kind, config) in methods {
        let guest = build_guest(kind, &vectors, 1).expect("assembles");
        let eval = run_rocket(&guest, TimingConfig::default());
        assert!(
            verify_results(&eval.results, &vectors).is_empty(),
            "{kind} must verify"
        );
        let gates = config.cost().gates;
        println!(
            "{:<10} {:>12} {:>12.0} {:>9.2}x {:>8.1}%",
            config.name,
            gates,
            eval.avg_total_cycles,
            software / eval.avg_total_cycles,
            100.0 * eval.avg_hw_cycles / eval.avg_total_cycles,
        );
        frontier.push((gates, eval.avg_total_cycles));
    }

    // Check the frontier property: more gates should buy fewer cycles.
    let monotone = frontier
        .windows(2)
        .all(|w| w[1].0 > w[0].0 && w[1].1 <= w[0].1 * 1.05);
    println!(
        "\nPareto frontier (more area -> no slower): {}",
        if monotone { "holds" } else { "violated" }
    );
}
