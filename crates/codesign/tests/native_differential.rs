//! Differential test: native Method-1 (with the real accelerator model)
//! must be bit-identical — result and status flags — to the decNumber-style
//! reference across the whole verification database.

use codesign::native::{method1_multiply, software_multiply};
use codesign::backend::{AccelBackend, ClaBackend, SoftwareBackend};
use decnum::Status;
use dpd::Decimal64;
use testgen::{verification_database, CaseClass, TestConfig};

fn db(count: usize, seed: u64) -> Vec<(Decimal64, Decimal64, CaseClass, u64, Status)> {
    let config = TestConfig {
        count,
        seed,
        class_mix: vec![
            (CaseClass::Normal, 1),
            (CaseClass::Rounding, 1),
            (CaseClass::Overflow, 1),
            (CaseClass::Underflow, 1),
            (CaseClass::Clamping, 1),
            (CaseClass::Special, 1),
        ],
        ..TestConfig::default()
    };
    verification_database(&config)
        .into_iter()
        .map(|(v, _)| {
            let (xb, yb) = v.to_decimal64_bits();
            let x = Decimal64::from_bits(xb);
            let y = Decimal64::from_bits(yb);
            // Golden from the interchange-level reference (the encoded
            // operands may differ from the abstract ones by clamping).
            let mut status = Status::CLEAR;
            let golden = software_multiply(x, y, &mut status);
            (x, y, v.class, golden.to_bits(), status)
        })
        .collect()
}

#[test]
fn method1_accel_matches_reference_across_database() {
    let mut checked = 0;
    for (x, y, class, golden_bits, golden_status) in db(600, 20190717) {
        let mut backend = ClaBackend::new();
        let mut status = Status::CLEAR;
        let got = method1_multiply(x, y, &mut backend, &mut status);
        assert_eq!(
            got.to_bits(),
            golden_bits,
            "{class}: {} × {} -> got {} want {}",
            codesign::format_decimal64(x),
            codesign::format_decimal64(y),
            codesign::format_decimal64(got),
            codesign::format_decimal64(Decimal64::from_bits(golden_bits)),
        );
        assert_eq!(status, golden_status, "{class}: {x:?} × {y:?} flags");
        checked += 1;
    }
    assert_eq!(checked, 600);
}

#[test]
fn method1_software_backend_matches_too() {
    for (x, y, class, golden_bits, _) in db(300, 7) {
        let mut backend = SoftwareBackend::new();
        let mut status = Status::CLEAR;
        let got = method1_multiply(x, y, &mut backend, &mut status);
        assert_eq!(got.to_bits(), golden_bits, "{class}");
    }
}

#[test]
fn hardware_invocations_bounded() {
    // Method-1 uses exactly 16 adds for the multiples table, 32 for the
    // accumulation, and at most 1 rounding increment — for every finite
    // non-zero input.
    for (x, y, _, _, _) in db(200, 99) {
        if !x.is_finite() || !y.is_finite() {
            continue;
        }
        let mut backend = ClaBackend::new();
        let mut status = Status::CLEAR;
        let _ = method1_multiply(x, y, &mut backend, &mut status);
        let calls = backend.calls();
        assert!(calls == 0 || (48..=49).contains(&calls), "calls = {calls}");
    }
}
