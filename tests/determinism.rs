//! Determinism and the paper's §V statistical claim: cycle counts vary with
//! the cache random-replacement seed ("Rocket chip computes the number of
//! cycles nondeterministically"), but averaging over many samples gives
//! statistically meaningful results.

use decimalarith::codesign::framework::{build_guest, run_rocket};
use decimalarith::codesign::kernels::KernelKind;
use decimalarith::rocket_sim::TimingConfig;
use decimalarith::testgen::{generate, TestConfig};

fn timing(seed: u64) -> TimingConfig {
    TimingConfig {
        seed,
        ..TimingConfig::default()
    }
}

#[test]
fn same_seed_replays_exactly() {
    let vectors = generate(&TestConfig {
        count: 40,
        ..TestConfig::default()
    });
    let guest = build_guest(KernelKind::Method1, &vectors, 1).unwrap();
    let a = run_rocket(&guest, timing(42));
    let b = run_rocket(&guest, timing(42));
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.results, b.results);
}

#[test]
fn different_seeds_change_cycles_but_not_results() {
    let vectors = generate(&TestConfig {
        count: 60,
        ..TestConfig::default()
    });
    let guest = build_guest(KernelKind::Software, &vectors, 1).unwrap();
    let runs: Vec<_> = (0..4u64).map(|s| run_rocket(&guest, timing(s))).collect();
    // Results are architectural: identical across seeds.
    for r in &runs[1..] {
        assert_eq!(r.results, runs[0].results);
    }
    // Timing is microarchitectural: the replacement seed may move it.
    // (With warm caches the effect can be small, so only assert spread.)
    let cycles: Vec<u64> = runs.iter().map(|r| r.stats.cycles).collect();
    let min = *cycles.iter().min().unwrap() as f64;
    let max = *cycles.iter().max().unwrap() as f64;
    assert!(
        (max - min) / min < 0.05,
        "seed-induced spread should be small over a long averaged run: {cycles:?}"
    );
}

#[test]
fn averages_are_statistically_stable_across_seeds() {
    // The paper's argument: "a large numbers of input samples with many
    // repetition ... can show statistically meaningful results".
    let vectors = generate(&TestConfig {
        count: 120,
        ..TestConfig::default()
    });
    let guest = build_guest(KernelKind::Method1, &vectors, 1).unwrap();
    let averages: Vec<f64> = (0..5u64)
        .map(|s| run_rocket(&guest, timing(s)).avg_total_cycles)
        .collect();
    let mean = averages.iter().sum::<f64>() / averages.len() as f64;
    for avg in &averages {
        assert!(
            (avg - mean).abs() / mean < 0.02,
            "per-seed average {avg:.1} strays from mean {mean:.1}"
        );
    }
}

#[test]
fn workload_generation_is_a_pure_function_of_the_config() {
    let config = TestConfig {
        count: 100,
        seed: 77,
        ..TestConfig::default()
    };
    assert_eq!(generate(&config), generate(&config));
}
