//! Test-program generator and verification database (paper §III).
//!
//! The paper's framework includes "a test program generator written in C"
//! whose configuration covers: precision (double or quad), input data type
//! ("rounding, overflow, normal, underflow, etc."), the arithmetic
//! operation, the number of repetitions per calculation, and the output
//! pattern (execution time or number of cycles). Its evaluation runs 8,000
//! samples "including overflow, underflow, normal, rounding, and clamping
//! cases".
//!
//! This crate reproduces that component:
//!
//! * [`TestConfig`] — the generator configuration;
//! * [`generate`] — deterministic constrained-random operands per
//!   [`CaseClass`], produced by rejection sampling against the reference
//!   arithmetic so every vector provably exhibits its class;
//! * [`verification_database`] — vectors paired with golden results and
//!   status flags from the `decnum` oracle (the role of the arithmetic
//!   verification database \[18\] in the paper);
//! * [`driver_source`] — the guest-side test program skeleton that loops
//!   over the operand table calling a kernel, with `mark` syscalls
//!   delimiting the measurement region.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod gen;

pub use driver::{
    driver_source, operand_data_section, DriverLayout, MARK_LOOP_END, MARK_LOOP_START,
    MARK_SAMPLE_BASE,
};
pub use gen::{
    generate, paper_mix, verification_database, CaseClass, GoldenResult, Operation, Precision,
    TestConfig, TestVector,
};
