//! The evaluation framework (paper Fig. 2).
//!
//! Guest programs are produced exactly as the paper's flow does: the test
//! generator supplies operands, the driver loop and the kernel under test
//! are assembled into one RISC-V binary, and that binary runs unmodified on
//! each evaluation platform —
//!
//! * [`run_functional`] — the Spike-role functional simulator, used for
//!   verification against the `decnum` oracle;
//! * [`run_rocket`] — the cycle-accurate Rocket-like core with the decimal
//!   accelerator attached, producing the SW/HW cycle split of Table IV;
//! * [`run_atomic`] — the Gem5-`AtomicSimpleCPU`-like model of Table VI;
//! * [`time_native`] — host wall-clock runs of the native implementations
//!   (Table V).

use std::time::{Duration, Instant};

use atomic_sim::{AtomicConfig, AtomicSim};
use decnum::Status;
use dpd::Decimal64;
use riscv_asm::{assemble, AsmError, Program, STACK_TOP};
use riscv_isa::Reg;
use rocc::DecimalAccelerator;
use rocket_sim::{RocketSim, RunStats, TimingConfig};
use testgen::{driver_source, operand_data_section, DriverLayout, TestVector};

use crate::kernels::{kernel_source, KernelKind};
use crate::native;

/// A built guest program plus the layout needed to read its results back.
#[derive(Debug, Clone)]
pub struct GuestProgram {
    /// The assembled binary.
    pub program: Program,
    /// Operand count / repetitions.
    pub layout: DriverLayout,
    /// The kernel configuration inside.
    pub kind: KernelKind,
}

/// Builds the guest program for `kind` over `vectors`.
///
/// # Errors
///
/// Returns the assembler error if the generated source is malformed (a bug
/// in the kernel emitters).
pub fn build_guest(
    kind: KernelKind,
    vectors: &[TestVector],
    repetitions: u32,
) -> Result<GuestProgram, AsmError> {
    build_guest_with(
        kind,
        vectors,
        DriverLayout {
            count: vectors.len(),
            repetitions,
            per_sample_marks: false,
        },
    )
}

/// Builds the guest program with an explicit driver layout (e.g. with
/// per-sample markers for per-class cycle attribution).
///
/// # Errors
///
/// See [`build_guest`].
pub fn build_guest_with(
    kind: KernelKind,
    vectors: &[TestVector],
    layout: DriverLayout,
) -> Result<GuestProgram, AsmError> {
    let mut source = String::new();
    source += &driver_source(layout);
    source += &kernel_source(kind);
    source += &operand_data_section(vectors);
    Ok(GuestProgram {
        program: assemble(&source)?,
        layout,
        kind,
    })
}

fn load_into_cpu(cpu: &mut riscv_sim::Cpu, guest: &GuestProgram) {
    for seg in guest.program.segments() {
        if !seg.data.is_empty() {
            cpu.memory
                .load_bytes(seg.base, &seg.data)
                .expect("segment loads");
        }
    }
    cpu.set_pc(guest.program.entry);
    cpu.set_reg(Reg::SP, STACK_TOP);
}

fn read_results(memory: &riscv_sim::Memory, guest: &GuestProgram) -> Vec<u64> {
    let base = guest
        .program
        .symbol("results")
        .expect("driver defines results");
    (0..guest.layout.count)
        .map(|i| {
            memory
                .read_u64(base + 8 * i as u64)
                .expect("result slot mapped")
        })
        .collect()
}

fn instruction_budget(guest: &GuestProgram) -> u64 {
    200_000 + guest.layout.count as u64 * u64::from(guest.layout.repetitions.max(1)) * 40_000
}

/// A guest run that did not produce results: a fault, a nonzero exit, or a
/// missing measurement marker. The panicking `run_*` entry points wrap
/// these; the `try_run_*` variants surface them to callers that inject
/// faults on purpose and expect to handle failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The guest faulted; the program counter locates the instruction.
    Fault {
        /// Faulting program counter.
        pc: u64,
        /// The underlying CPU fault.
        error: riscv_sim::CpuError,
    },
    /// The guest ran to completion but exited nonzero.
    ExitCode(i64),
    /// A required measurement marker never fired.
    MissingMarker(&'static str),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Fault { pc, error } => write!(f, "guest faulted at pc {pc:#x}: {error}"),
            RunError::ExitCode(code) => write!(f, "guest exited with {code}"),
            RunError::MissingMarker(which) => write!(f, "missing {which} marker"),
        }
    }
}

impl std::error::Error for RunError {}

/// Reads the fault-tolerant kernel's degradation counter — how many
/// multiplications fell back to the software datapath — if the guest has
/// one (`None` for kernels without fault tolerance).
#[must_use]
pub fn read_degradation(memory: &riscv_sim::Memory, guest: &GuestProgram) -> Option<u64> {
    let base = guest.program.symbol("ft_degraded")?;
    memory.read_u64(base).ok()
}

/// Outcome of a functional (Spike-role) run.
#[derive(Debug, Clone)]
pub struct FunctionalRun {
    /// Result bits per sample.
    pub results: Vec<u64>,
    /// Instructions retired.
    pub instret: u64,
    /// Fault-tolerant kernels only: kernel invocations that degraded to
    /// the software fallback.
    pub degraded: Option<u64>,
}

/// Runs the guest on the functional simulator (with the accelerator
/// attached when the kernel needs it), surfacing failures as values.
///
/// # Errors
///
/// Returns [`RunError`] if the guest faults or exits nonzero.
pub fn try_run_functional(guest: &GuestProgram) -> Result<FunctionalRun, RunError> {
    let mut cpu = riscv_sim::Cpu::new();
    cpu.attach_coprocessor(Box::new(DecimalAccelerator::new()));
    load_into_cpu(&mut cpu, guest);
    let code = cpu.run(instruction_budget(guest)).map_err(|error| RunError::Fault {
        pc: cpu.pc(),
        error,
    })?;
    if code != 0 {
        return Err(RunError::ExitCode(code));
    }
    Ok(FunctionalRun {
        results: read_results(&cpu.memory, guest),
        instret: cpu.instret,
        degraded: read_degradation(&cpu.memory, guest),
    })
}

/// Runs the guest on the functional simulator (with the accelerator
/// attached when the kernel needs it).
///
/// # Panics
///
/// Panics if the guest faults — kernels are expected to be correct by
/// construction; a fault is a framework bug worth failing loudly on.
#[must_use]
pub fn run_functional(guest: &GuestProgram) -> FunctionalRun {
    try_run_functional(guest).unwrap_or_else(|e| panic!("functional run failed: {e}"))
}

/// Outcome of a cycle-accurate run: Table IV's quantities.
#[derive(Debug, Clone)]
pub struct CycleEvaluation {
    /// Result bits per sample.
    pub results: Vec<u64>,
    /// Average cycles per multiplication (measurement region / samples).
    pub avg_total_cycles: f64,
    /// Average cycles attributed to the accelerator ("HW part").
    pub avg_hw_cycles: f64,
    /// Average software cycles ("SW part" = total − HW).
    pub avg_sw_cycles: f64,
    /// Whole-run statistics.
    pub stats: RunStats,
    /// Fault-tolerant kernels only: kernel invocations that degraded to
    /// the software fallback (the cycle averages include that cost).
    pub degraded: Option<u64>,
}

/// Runs the guest cycle-accurately on the Rocket-like core, surfacing
/// failures as values.
///
/// # Errors
///
/// Returns [`RunError`] on guest faults, nonzero exit, or a missing
/// measurement region.
pub fn try_run_rocket(
    guest: &GuestProgram,
    timing: TimingConfig,
) -> Result<CycleEvaluation, RunError> {
    let mut sim = RocketSim::new(timing);
    sim.attach_coprocessor(Box::new(DecimalAccelerator::new()));
    load_into_cpu(&mut sim.cpu, guest);
    let report = sim.run(instruction_budget(guest)).map_err(|error| RunError::Fault {
        pc: sim.cpu.pc(),
        error,
    })?;
    if report.exit_code != 0 {
        return Err(RunError::ExitCode(report.exit_code));
    }
    let start = report
        .markers
        .iter()
        .find(|m| m.id == testgen::MARK_LOOP_START)
        .ok_or(RunError::MissingMarker("loop start"))?;
    let end = report
        .markers
        .iter()
        .find(|m| m.id == testgen::MARK_LOOP_END)
        .ok_or(RunError::MissingMarker("loop end"))?;
    let calls = (guest.layout.count as f64) * f64::from(guest.layout.repetitions.max(1));
    let region = (end.cycle - start.cycle) as f64;
    // The HW bucket only accumulates inside kernel executions, so the
    // whole-run total is the measurement region's total.
    let hw = report.stats.hw_cycles as f64;
    Ok(CycleEvaluation {
        results: read_results(&sim.cpu.memory, guest),
        avg_total_cycles: region / calls,
        avg_hw_cycles: hw / calls,
        avg_sw_cycles: (region - hw) / calls,
        stats: report.stats,
        degraded: read_degradation(&sim.cpu.memory, guest),
    })
}

/// Runs the guest cycle-accurately on the Rocket-like core.
///
/// # Panics
///
/// Panics on guest faults or a missing measurement region.
#[must_use]
pub fn run_rocket(guest: &GuestProgram, timing: TimingConfig) -> CycleEvaluation {
    try_run_rocket(guest, timing).unwrap_or_else(|e| panic!("rocket run failed: {e}"))
}

/// Per-input-class cycle averages from a marked run.
#[derive(Debug, Clone)]
pub struct ClassBreakdown {
    /// `(class, average cycles per multiplication, sample count)` rows,
    /// ordered by class.
    pub rows: Vec<(testgen::CaseClass, f64, usize)>,
    /// The overall average across all samples.
    pub overall: f64,
}

/// Runs the guest (which must have been built with per-sample markers via
/// [`build_guest_with`]) and attributes cycles to each input class — the
/// measurement behind the paper's observation that "computing time \[is\]
/// highly dependent on the nature of the input, like rounding operation
/// takes higher time than normal operation".
///
/// # Panics
///
/// Panics if the guest was built without per-sample markers, or on faults.
#[must_use]
pub fn run_rocket_per_class(
    guest: &GuestProgram,
    vectors: &[TestVector],
    timing: TimingConfig,
) -> ClassBreakdown {
    assert!(
        guest.layout.per_sample_marks,
        "guest must be built with per-sample markers"
    );
    let mut sim = RocketSim::new(timing);
    sim.attach_coprocessor(Box::new(DecimalAccelerator::new()));
    load_into_cpu(&mut sim.cpu, guest);
    let report = sim
        .run(instruction_budget(guest))
        .unwrap_or_else(|e| panic!("rocket run faulted: {e}"));
    assert_eq!(report.exit_code, 0);
    // Per-sample cycles: marker i+1 (or the end marker) minus marker i.
    let sample_marks: Vec<&riscv_sim::Marker> = report
        .markers
        .iter()
        .filter(|m| m.id >= testgen::MARK_SAMPLE_BASE)
        .collect();
    let end = report
        .markers
        .iter()
        .find(|m| m.id == testgen::MARK_LOOP_END)
        .expect("end marker");
    assert_eq!(sample_marks.len(), vectors.len(), "one marker per sample");
    let reps = f64::from(guest.layout.repetitions.max(1));
    let mut sums: std::collections::BTreeMap<testgen::CaseClass, (f64, usize)> =
        std::collections::BTreeMap::new();
    let mut total = 0.0;
    for (i, vector) in vectors.iter().enumerate() {
        let start_cycle = sample_marks[i].cycle;
        let end_cycle = sample_marks
            .get(i + 1)
            .map_or(end.cycle, |m| m.cycle);
        let cycles = (end_cycle - start_cycle) as f64 / reps;
        total += cycles;
        let entry = sums.entry(vector.class).or_insert((0.0, 0));
        entry.0 += cycles;
        entry.1 += 1;
    }
    ClassBreakdown {
        rows: sums
            .into_iter()
            .map(|(class, (sum, n))| (class, sum / n as f64, n))
            .collect(),
        overall: total / vectors.len() as f64,
    }
}

/// Outcome of a Gem5-like atomic run: Table VI's quantities.
#[derive(Debug, Clone)]
pub struct AtomicEvaluation {
    /// Result bits per sample.
    pub results: Vec<u64>,
    /// Simulated seconds for the measurement region.
    pub simulated_seconds: f64,
    /// Instructions retired in the whole run.
    pub instret: u64,
}

/// Runs the guest on the atomic (Gem5 `AtomicSimpleCPU` SE-mode analogue)
/// simulator, surfacing failures as values.
///
/// # Errors
///
/// Returns [`RunError`] on guest faults, nonzero exit, or a missing
/// measurement region.
pub fn try_run_atomic(
    guest: &GuestProgram,
    config: AtomicConfig,
) -> Result<AtomicEvaluation, RunError> {
    let mut sim = AtomicSim::new(config);
    sim.attach_coprocessor(Box::new(DecimalAccelerator::new()));
    load_into_cpu(&mut sim.cpu, guest);
    let report = sim.run(instruction_budget(guest)).map_err(|error| RunError::Fault {
        pc: sim.cpu.pc(),
        error,
    })?;
    if report.exit_code != 0 {
        return Err(RunError::ExitCode(report.exit_code));
    }
    let start = report
        .markers
        .iter()
        .find(|m| m.id == testgen::MARK_LOOP_START)
        .ok_or(RunError::MissingMarker("loop start"))?;
    let end = report
        .markers
        .iter()
        .find(|m| m.id == testgen::MARK_LOOP_END)
        .ok_or(RunError::MissingMarker("loop end"))?;
    Ok(AtomicEvaluation {
        results: read_results(&sim.cpu.memory, guest),
        simulated_seconds: (end.cycle - start.cycle) as f64 / config.clock_hz,
        instret: report.stats.instret,
    })
}

/// Runs the guest on the atomic (Gem5 `AtomicSimpleCPU` SE-mode analogue)
/// simulator.
///
/// # Panics
///
/// Panics on guest faults.
#[must_use]
pub fn run_atomic(guest: &GuestProgram, config: AtomicConfig) -> AtomicEvaluation {
    try_run_atomic(guest, config).unwrap_or_else(|e| panic!("atomic run failed: {e}"))
}

/// Compares per-sample results against the `decnum` oracle; returns the
/// mismatching sample indices (expected to be empty for every kernel except
/// the dummy configuration).
#[must_use]
pub fn verify_results(results: &[u64], vectors: &[TestVector]) -> Vec<usize> {
    results
        .iter()
        .zip(vectors)
        .enumerate()
        .filter_map(|(i, (&got, vector))| {
            let (xb, yb) = vector.to_decimal64_bits();
            let mut status = Status::CLEAR;
            let expected = native::software_multiply(
                Decimal64::from_bits(xb),
                Decimal64::from_bits(yb),
                &mut status,
            );
            (got != expected.to_bits()).then_some(i)
        })
        .collect()
}

/// Which native implementation to time for Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeMethod {
    /// decNumber-style software multiplication.
    Software,
    /// Method-1 flow with dummy functions (the paper's Table V subject).
    Method1Dummy,
    /// Method-1 flow with the real accelerator model (not in the paper's
    /// Table V — hardware cannot run natively — but useful for comparison).
    Method1Accel,
}

/// Times `repetitions` passes of a native implementation over `vectors` on
/// the host (the paper's "real implementation" evaluation).
#[must_use]
pub fn time_native(method: NativeMethod, vectors: &[TestVector], repetitions: u32) -> Duration {
    let pairs: Vec<(Decimal64, Decimal64)> = vectors
        .iter()
        .map(|v| {
            let (x, y) = v.to_decimal64_bits();
            (Decimal64::from_bits(x), Decimal64::from_bits(y))
        })
        .collect();
    let mut sink = 0u64;
    let start = Instant::now();
    for _ in 0..repetitions.max(1) {
        for &(x, y) in &pairs {
            let mut status = Status::CLEAR;
            let r = match method {
                NativeMethod::Software => native::software_multiply(x, y, &mut status),
                NativeMethod::Method1Dummy => native::method1_multiply_dummy(x, y, &mut status),
                NativeMethod::Method1Accel => native::method1_multiply_accel(x, y, &mut status),
            };
            sink = sink.wrapping_add(r.to_bits());
        }
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use testgen::TestConfig;

    #[test]
    fn build_guest_assembles_for_all_kernels() {
        let vectors = testgen::generate(&TestConfig {
            count: 5,
            ..TestConfig::default()
        });
        for kind in KernelKind::ALL {
            build_guest(kind, &vectors, 1).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn native_timing_returns_nonzero() {
        let vectors = testgen::generate(&TestConfig {
            count: 50,
            ..TestConfig::default()
        });
        let d = time_native(NativeMethod::Software, &vectors, 2);
        assert!(d.as_nanos() > 0);
    }
}
