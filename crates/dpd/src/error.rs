use std::fmt;

/// Errors produced when encoding decimal interchange values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DpdError {
    /// The coefficient has more digits than the format's precision.
    CoefficientTooWide {
        /// The format's precision in digits.
        precision: u32,
    },
    /// The exponent is outside the format's representable range.
    ExponentOutOfRange {
        /// Smallest representable exponent (of the least significant digit).
        min: i32,
        /// Largest representable exponent.
        max: i32,
    },
    /// A coefficient digit outside `0..=9` was supplied.
    InvalidDigit {
        /// The offending digit.
        digit: u8,
    },
    /// The operation requires a finite number but the value is a special
    /// (infinity or NaN).
    NotFinite,
}

impl fmt::Display for DpdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DpdError::CoefficientTooWide { precision } => {
                write!(f, "coefficient exceeds {precision} digits")
            }
            DpdError::ExponentOutOfRange { min, max } => {
                write!(f, "exponent outside representable range [{min}, {max}]")
            }
            DpdError::InvalidDigit { digit } => {
                write!(f, "digit {digit} is outside the decimal range 0..=9")
            }
            DpdError::NotFinite => write!(f, "value is not a finite number"),
        }
    }
}

impl std::error::Error for DpdError {}
