//! RoCC custom-instruction encoding (paper Fig. 3 and Table III).
//!
//! A RoCC instruction uses one of the four `custom-0..3` major opcodes. The
//! `funct7` field selects the accelerator function; `xd`, `xs1` and `xs2`
//! say whether `rd`, `rs1` and `rs2` name Rocket-core integer registers
//! (value exchanged, synchronization required) or accelerator-internal
//! register addresses.

use std::fmt;

use crate::{DecodeError, Reg};

/// The four major opcodes reserved for custom instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CustomOpcode {
    /// `custom-0` (0b0001011) — the opcode the decimal accelerator uses.
    #[default]
    Custom0,
    /// `custom-1` (0b0101011).
    Custom1,
    /// `custom-2` (0b1011011).
    Custom2,
    /// `custom-3` (0b1111011).
    Custom3,
}

impl CustomOpcode {
    /// The 7-bit opcode value.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            CustomOpcode::Custom0 => 0b000_1011,
            CustomOpcode::Custom1 => 0b010_1011,
            CustomOpcode::Custom2 => 0b101_1011,
            CustomOpcode::Custom3 => 0b111_1011,
        }
    }

    /// Maps a 7-bit opcode back, if it is a custom opcode.
    #[must_use]
    pub fn from_bits(bits: u32) -> Option<CustomOpcode> {
        match bits {
            0b000_1011 => Some(CustomOpcode::Custom0),
            0b010_1011 => Some(CustomOpcode::Custom1),
            0b101_1011 => Some(CustomOpcode::Custom2),
            0b111_1011 => Some(CustomOpcode::Custom3),
            _ => None,
        }
    }
}

impl fmt::Display for CustomOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = match self {
            CustomOpcode::Custom0 => 0,
            CustomOpcode::Custom1 => 1,
            CustomOpcode::Custom2 => 2,
            CustomOpcode::Custom3 => 3,
        };
        write!(f, "custom{n}")
    }
}

/// One RoCC instruction: `funct7 | rs2 | rs1 | xd xs1 xs2 | rd | opcode`
/// (Fig. 3 of the paper; field widths 7/5/5/1/1/1/5/7).
///
/// # Example
///
/// The paper's `DEC_ADD` example — funct7 `0000100`, sources `x10`/`x11`,
/// destination `x12`, all exchange flags set. The paper prints this as
/// `0x08A5F617`, using `0010111` as the custom-0 opcode; that bit pattern is
/// actually `AUIPC`'s major opcode (a typo in the paper — GCC and Spike
/// would misassemble it). With the architecturally correct custom-0 opcode
/// (`0001011`) the same fields encode to `0x08A5F60B`, which is what this
/// crate produces; every other field matches the paper bit for bit.
///
/// ```
/// use riscv_isa::rocc::{CustomOpcode, RoccInstruction};
/// use riscv_isa::Reg;
///
/// let dec_add = RoccInstruction {
///     opcode: CustomOpcode::Custom0,
///     funct7: 0b0000100,
///     rd: Reg::A2,
///     rs1: Reg::A1,
///     rs2: Reg::A0,
///     xd: true,
///     xs1: true,
///     xs2: true,
/// };
/// assert_eq!(dec_add.encode(), 0x08A5_F60B);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoccInstruction {
    /// Which custom major opcode carries the instruction.
    pub opcode: CustomOpcode,
    /// The accelerator function selector (7 bits).
    pub funct7: u8,
    /// Destination register (core register if `xd`, else an accelerator
    /// register-file address).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// `rd` names a core register: the core waits for the response.
    pub xd: bool,
    /// `rs1` names a core register: its value travels with the command.
    pub xs1: bool,
    /// `rs2` names a core register: its value travels with the command.
    pub xs2: bool,
}

impl RoccInstruction {
    /// Builds a fully-synchronized register instruction (`xd = xs1 = xs2 =
    /// true`), the common shape for compute commands like `DEC_ADD`.
    #[must_use]
    pub fn reg_reg(opcode: CustomOpcode, funct7: u8, rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        RoccInstruction {
            opcode,
            funct7,
            rd,
            rs1,
            rs2,
            xd: true,
            xs1: true,
            xs2: true,
        }
    }

    /// Encodes into the 32-bit instruction word.
    ///
    /// # Panics
    ///
    /// Panics if `funct7` does not fit in seven bits.
    #[must_use]
    pub fn encode(&self) -> u32 {
        assert!(self.funct7 < 0x80, "funct7 {:#x} exceeds 7 bits", self.funct7);
        (u32::from(self.funct7) << 25)
            | (u32::from(self.rs2) << 20)
            | (u32::from(self.rs1) << 15)
            | (u32::from(self.xd) << 14)
            | (u32::from(self.xs1) << 13)
            | (u32::from(self.xs2) << 12)
            | (u32::from(self.rd) << 7)
            | self.opcode.bits()
    }

    /// Decodes from a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the major opcode is not custom-0..3.
    pub fn decode(word: u32) -> Result<Self, DecodeError> {
        let opcode =
            CustomOpcode::from_bits(word & 0x7F).ok_or(DecodeError::Unrecognized(word))?;
        Ok(RoccInstruction {
            opcode,
            funct7: ((word >> 25) & 0x7F) as u8,
            rs2: Reg::new(((word >> 20) & 0x1F) as u8),
            rs1: Reg::new(((word >> 15) & 0x1F) as u8),
            xd: (word >> 14) & 1 == 1,
            xs1: (word >> 13) & 1 == 1,
            xs2: (word >> 12) & 1 == 1,
            rd: Reg::new(((word >> 7) & 0x1F) as u8),
        })
    }

    /// Renders the bit-field layout of Fig. 3 for this instruction, for the
    /// encoding-table report.
    #[must_use]
    pub fn field_layout(&self) -> String {
        format!(
            "funct7={:07b} rs2={:05b} rs1={:05b} xd={} xs1={} xs2={} rd={:05b} opcode={:07b}",
            self.funct7,
            self.rs2.number(),
            self.rs1.number(),
            u8::from(self.xd),
            u8::from(self.xs1),
            u8::from(self.xs2),
            self.rd.number(),
            self.opcode.bits(),
        )
    }
}

impl fmt::Display for RoccInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.f{} {}, {}, {} [xd={} xs1={} xs2={}]",
            self.opcode,
            self.funct7,
            self.rd,
            self.rs1,
            self.rs2,
            u8::from(self.xd),
            u8::from(self.xs1),
            u8::from(self.xs2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dec_add_encoding() {
        // Table III / Section IV-B print "0x08A5F617", whose opcode bits
        // collide with AUIPC; with the spec custom-0 opcode the identical
        // field values give 0x08A5F60B. All non-opcode fields match the
        // paper's hex exactly.
        let i = RoccInstruction::reg_reg(CustomOpcode::Custom0, 0b0000100, Reg::A2, Reg::A1, Reg::A0);
        assert_eq!(i.encode(), 0x08A5_F60B);
        assert_eq!(i.encode() >> 7, 0x08A5_F617u32 >> 7, "fields above the opcode match the paper");
        assert_eq!(RoccInstruction::decode(0x08A5_F60B).unwrap(), i);
    }

    #[test]
    fn custom_opcode_values() {
        assert_eq!(CustomOpcode::Custom0.bits(), 0b000_1011);
        assert_eq!(CustomOpcode::Custom3.bits(), 0b111_1011);
        assert_eq!(CustomOpcode::from_bits(0b010_1011), Some(CustomOpcode::Custom1));
        assert_eq!(CustomOpcode::from_bits(0b0110011), None);
    }

    #[test]
    fn roundtrip_all_flag_combinations() {
        for flags in 0..8u8 {
            let i = RoccInstruction {
                opcode: CustomOpcode::Custom2,
                funct7: 0x55,
                rd: Reg::T3,
                rs1: Reg::S5,
                rs2: Reg::A7,
                xd: flags & 4 != 0,
                xs1: flags & 2 != 0,
                xs2: flags & 1 != 0,
            };
            assert_eq!(RoccInstruction::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn decode_rejects_non_custom() {
        assert!(RoccInstruction::decode(0x0000_0033).is_err()); // OP opcode
    }

    #[test]
    fn field_layout_readable() {
        let i = RoccInstruction::reg_reg(CustomOpcode::Custom0, 4, Reg::A2, Reg::A1, Reg::A0);
        assert_eq!(
            i.field_layout(),
            "funct7=0000100 rs2=01010 rs1=01011 xd=1 xs1=1 xs2=1 rd=01100 opcode=0001011"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 7 bits")]
    fn oversized_funct7_panics() {
        let i = RoccInstruction {
            funct7: 0x80,
            ..RoccInstruction::reg_reg(CustomOpcode::Custom0, 0, Reg::A0, Reg::A0, Reg::A0)
        };
        let _ = i.encode();
    }
}
