//! End-to-end: assemble a RoCC guest program, attach the decimal
//! accelerator, run cycle-accurately, and check the SW/HW cycle split.

use riscv_asm::{assemble, STACK_TOP};
use riscv_isa::Reg;
use rocc::DecimalAccelerator;
use rocket_sim::{RocketSim, RunReport, TimingConfig};

fn run(source: &str) -> RunReport {
    let program = assemble(source).unwrap_or_else(|e| panic!("asm: {e}"));
    let mut sim = RocketSim::new(TimingConfig::default());
    sim.attach_coprocessor(Box::new(DecimalAccelerator::new()));
    for seg in program.segments() {
        if !seg.data.is_empty() {
            sim.cpu.memory.load_bytes(seg.base, &seg.data).unwrap();
        }
    }
    sim.cpu.set_pc(program.entry);
    sim.cpu.set_reg(Reg::SP, STACK_TOP);
    sim.run(1_000_000).expect("run failed")
}

#[test]
fn dec_add_through_the_pipeline() {
    // DEC_ADD x12 <- x11 + x10 in BCD: 0905 + 0095 = 1000.
    let report = run("
        start:
            li a0, 0x0905
            li a1, 0x0095
            custom0 4, a2, a1, a0, 1, 1, 1
            mv a0, a2
            li a7, 93
            ecall
    ");
    assert_eq!(report.exit_code, 0x1000);
    assert!(report.stats.hw_cycles > 0, "accelerator time must be charged");
    assert!(report.stats.sw_cycles > report.stats.hw_cycles);
    assert_eq!(report.stats.rocc_instructions, 1);
}

#[test]
fn carry_chained_wide_add() {
    // Add 17-digit values using DEC_ADD then DEC_ADC on the halves:
    // lo: 9999999999999999 + 0000000000000001 -> 0, carry
    // hi: 0 + 0 + carry -> 1
    let report = run("
        start:
            li a0, 0x9999999999999999
            li a1, 0x1
            custom0 4, a2, a1, a0, 1, 1, 1   # DEC_ADD -> lo
            li a0, 0
            li a1, 0
            custom0 9, a3, a1, a0, 1, 1, 1   # DEC_ADC -> hi
            # result = hi * 16 + (lo != 0): expect hi=1, lo=0
            snez t0, a2
            slli a0, a3, 4
            or a0, a0, t0
            li a7, 93
            ecall
    ");
    assert_eq!(report.exit_code, 0x10);
    assert_eq!(report.stats.rocc_instructions, 2);
}

#[test]
fn accelerator_registers_via_wr_rd() {
    let report = run("
        start:
            li a0, 0x1234
            li t0, 3              # accel reg 3, low half
            custom0 0, zero, a0, t0, 0, 1, 0   # WR: value a0 -> accel[rs2 field]... fields are register *numbers*
            custom0 1, a0, t0, zero, 1, 0, 0   # RD: accel[rs1 field] -> a0
            li a7, 93
            ecall
    ");
    // WR used rs2 *field* = t0's number (5) as the address; RD read the same
    // field number back, so the roundtrip returns 0x1234.
    assert_eq!(report.exit_code, 0x1234);
}

#[test]
fn dec_cnv_binary_to_bcd() {
    let report = run("
        start:
            li a0, 9024
            custom0 6, a1, a0, zero, 1, 1, 0   # DEC_CNV
            mv a0, a1
            li a7, 93
            ecall
    ");
    assert_eq!(report.exit_code, 0x9024);
}

#[test]
fn hw_cycles_scale_with_rocc_count() {
    let once = run("
        start:
            li a0, 0x1
            li a1, 0x2
            custom0 4, a2, a1, a0, 1, 1, 1
            li a0, 0
            li a7, 93
            ecall
    ");
    let many = run("
        start:
            li a0, 0x1
            li a1, 0x2
            li t0, 32
        loop:
            custom0 4, a2, a1, a0, 1, 1, 1
            addi t0, t0, -1
            bnez t0, loop
            li a0, 0
            li a7, 93
            ecall
    ");
    assert!(many.stats.hw_cycles > 20 * once.stats.hw_cycles);
    assert_eq!(many.stats.rocc_instructions, 32);
}
